"""Benchmark configuration.

Set ``REPRO_BENCH_FRACTION`` (e.g. ``1.0``) to run the full 1/1000-scale
Table-II replica datasets; the default fractions keep the whole suite to a
few minutes.  All paper-vs-model tables are printed to the real stdout so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records them.
"""

from __future__ import annotations

import os

import pytest


def fraction_for(name: str) -> float | None:
    env = os.environ.get("REPRO_BENCH_FRACTION")
    if env:
        return float(env)
    return None  # harness defaults


@pytest.fixture(scope="session")
def fractions():
    return {
        "ch1-sim": fraction_for("ch1-sim"),
        "ch21-sim": fraction_for("ch21-sim"),
    }
