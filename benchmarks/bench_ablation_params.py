"""Ablation: sensitivity to the parameters the paper leaves unspecified.

DESIGN.md fixes values for quantities the paper never states (the PCR
dependency coefficient behind ``adjust``, the ti/tv prior ratio, the
calibration pseudo-count).  This ablation shows the reproduction's
*conclusions* are insensitive to those choices: under every setting the
three engines stay bitwise identical and calling accuracy moves only
marginally — so none of the headline results hinge on our guesses.
"""

import pytest

from repro.bench.accuracy import quality_sweep
from repro.bench.harness import bench_dataset
from repro.bench.report import emit_table
from repro.core.pipeline import GsnpPipeline
from repro.soapsnp import CallingParams, SoapsnpPipeline

SETTINGS = {
    "design defaults": CallingParams(),
    "no PCR penalty (dep=1.0)": CallingParams(pcr_dependency=1.0),
    "strong PCR penalty (dep=0.25)": CallingParams(pcr_dependency=0.25),
    "ti/tv = 2": CallingParams(titv=2.0),
    "theory-heavy calibration": CallingParams(calibration_pseudo=500.0),
}


def test_ablation_unspecified_parameters(benchmark, fractions):
    ds = bench_dataset("ch21-sim", fractions["ch21-sim"])
    rows = []
    f1s = {}
    for label, params in SETTINGS.items():
        soap = SoapsnpPipeline(params=params, window_size=4000).run(ds)
        gsnp = GsnpPipeline(
            params=params, window_size=ds.n_sites, mode="gpu"
        ).run(ds)
        consistent = soap.table.equals(gsnp.table)
        point = quality_sweep(soap.table, ds, thresholds=(13,))[0]
        f1s[label] = point.f1
        rows.append(
            (
                label, "yes" if consistent else "NO",
                point.true_positives, point.false_positives,
                f"{point.precision:.2f}", f"{point.recall:.2f}",
                f"{point.f1:.2f}",
            )
        )
        assert consistent, label
    emit_table(
        "Ablation — unspecified model parameters (ch21-sim, q>=13)",
        ["setting", "engines bitwise equal", "TP", "FP", "precision",
         "recall", "F1"],
        rows,
        note="the §IV-G consistency property holds under every setting; "
        "accuracy shifts are small",
    )

    base = f1s["design defaults"]
    for label, f1 in f1s.items():
        assert f1 > base - 0.15, label

    benchmark.pedantic(
        lambda: SoapsnpPipeline(window_size=4000).run(ds),
        rounds=1, iterations=1,
    )
