"""Figure 4: (a) estimated base_occ memory-access time vs measured
likelihood/recycle time; (b) sparsity of the base_occ matrix."""

import pytest

from repro.bench.harness import exp_fig4a, exp_fig4b, soapsnp_result
from repro.bench.report import emit_table


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_fig4a_memory_estimate(benchmark, name, fractions):
    data = exp_fig4a(name, fractions[name])
    emit_table(
        f"Fig 4a — Formula (1) estimate vs modeled time ({name}), seconds",
        ["quantity", "seconds", "scan share"],
        [
            ("base_occ scan estimate", round(data["estimate_scan"]), "-"),
            ("likelihood (modeled)", round(data["likelihood"]),
             f"{100 * data['scan_share_likelihood']:.0f}%"),
            ("recycle (modeled)", round(data["recycle"]),
             f"{100 * data['scan_share_recycle']:.0f}%"),
        ],
        note="paper: scan explains 65-70% of likelihood, 89-92% of recycle",
    )
    # Paper's bands, slightly widened for the synthetic substrate.
    assert 0.55 <= data["scan_share_likelihood"] <= 0.85
    assert 0.80 <= data["scan_share_recycle"] <= 1.05

    benchmark.pedantic(
        lambda: exp_fig4a(name, fractions[name]), rounds=1, iterations=1
    )


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_fig4b_sparsity(benchmark, name, fractions):
    data = exp_fig4b(name, fractions[name])
    emit_table(
        f"Fig 4b — base_occ sparsity ({name})",
        ["non-zero bucket", "% of sites"],
        [(k, f"{v:.1f}") for k, v in data["histogram"].items()],
        note=f"mean non-zeros/site {data['mean_nnz']:.1f} of 131,072 "
        f"({data['nonzero_pct']:.4f}%); paper: up to ~0.08%",
    )
    # The paper's regime: most sites have only tens of non-zeros and the
    # overall non-zero share is far below 0.1%.
    assert data["nonzero_pct"] < 0.1
    tens = sum(
        v for k, v in data["histogram"].items()
        if k in ("[1,8)", "[8,16)", "[16,32)", "[32,64)")
    )
    assert tens > 50.0

    benchmark(lambda: exp_fig4b(name, fractions[name]))
