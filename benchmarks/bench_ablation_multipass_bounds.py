"""Ablation: multipass size-class boundaries.

The paper fixes the six classes [0,1], (1,8], (8,16], (16,32], (32,64],
(64, inf) without justification; this ablation sweeps alternative bucket
sets over the real base_word size distribution to show the chosen set sits
near the padding/pass-count sweet spot.
"""

import pytest

from repro.bench.harness import window_words
from repro.bench.report import emit_table
from repro.core.base_word import canonical_keys
from repro.gpusim.costmodel import GpuCostModel
from repro.gpusim.device import Device
from repro.sortnet.multipass import multipass_sort

BOUND_SETS = {
    "paper (1,8,16,32,64)": (1, 8, 16, 32, 64),
    "coarse (1,64)": (1, 64),
    "pow2-all (1,2,4,8,16,32,64,128)": (1, 2, 4, 8, 16, 32, 64, 128),
    "fine-low (1,4,8,12,16,32,64)": (1, 4, 8, 12, 16, 32, 64),
    "single-class ()": (),
}


def test_ablation_multipass_bounds(benchmark, fractions):
    _, _, words, offsets, _, _ = window_words("ch1-sim", fractions["ch1-sim"])
    keys = canonical_keys(words)
    model = GpuCostModel()
    results = {}
    for label, bounds in BOUND_SETS.items():
        device = Device()
        sorted_keys, stats = multipass_sort(
            keys, offsets, device=device, bounds=bounds
        )
        results[label] = {
            "time": model.kernel_time(device.counters.total()),
            "passes": stats.passes,
            "padding": stats.padding_ratio,
        }
    emit_table(
        "Ablation — multipass bucket boundaries (ch1-sim)",
        ["bounds", "passes", "padding", "modeled s (scaled)"],
        [
            (label, v["passes"], f"{v['padding']:.2f}x", f"{v['time']:.4f}")
            for label, v in results.items()
        ],
    )

    paper = results["paper (1,8,16,32,64)"]
    single = results["single-class ()"]
    # The paper's buckets pad far less than a single class...
    assert paper["padding"] < single["padding"] / 1.5
    # ...and adding many more classes barely helps.
    fine = results["pow2-all (1,2,4,8,16,32,64,128)"]
    assert fine["padding"] > paper["padding"] * 0.8

    benchmark(lambda: multipass_sort(keys, offsets)[0])
