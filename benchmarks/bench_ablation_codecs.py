"""Ablation: per-column codec choices for the 17-column output.

Shows why each column gets the codec it gets (Section V-B): RLE-DICT vs
its two levels alone vs gzip, per column, on real result data.
"""

import zlib

import pytest

import numpy as np

from repro.bench.harness import soapsnp_result
from repro.bench.report import emit_table
from repro.compress import dict_encode, rle_dict_encode, rle_encode
from repro.compress.columnar import RLE_DICT_COLUMNS, _quantize100


def _rle_only_size(col) -> int:
    v, l = rle_encode(col)
    return v.nbytes + l.astype(np.uint32).nbytes


def test_ablation_column_codecs(benchmark, fractions):
    table = soapsnp_result("ch21-sim", fractions["ch21-sim"]).table
    n = table.n_sites
    rows = []
    wins = {"rle_dict": 0, "dict": 0}
    for name in RLE_DICT_COLUMNS:
        col = getattr(table, name)
        if col.dtype.kind == "f":
            col = _quantize100(col)
        raw = col.nbytes
        sizes = {
            "rle_dict": len(rle_dict_encode(col)),
            "dict": len(dict_encode(col)),
            "rle": _rle_only_size(col),
            "gzip": len(zlib.compress(col.tobytes(), 6)),
        }
        best = min(sizes, key=sizes.get)
        if best in wins:
            wins[best] += 1
        rows.append(
            (
                name, raw,
                *(sizes[k] for k in ("rle_dict", "dict", "rle", "gzip")),
                best,
            )
        )
    emit_table(
        "Ablation — codec choice per quality column (ch21-sim, bytes)",
        ["column", "raw", "rle_dict", "dict", "rle", "gzip", "best"],
        rows,
        note="gzip is size-competitive per column but ~3x slower and not "
        "GPU-amenable (Section V-B); RLE-DICT must beat its own levels",
    )

    # RLE-DICT must beat both of its levels alone on every quality column
    # — the reason the paper composes them.
    for name, raw, rd, d, r, g, best in rows:
        assert rd <= raw, name  # never expands past raw
        assert rd <= 1.05 * min(d, r), name  # two levels beat either alone

    benchmark(lambda: [rle_dict_encode(
        _quantize100(getattr(table, c)) if getattr(table, c).dtype.kind == "f"
        else getattr(table, c)
    ) for c in RLE_DICT_COLUMNS])
