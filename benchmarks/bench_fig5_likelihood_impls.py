"""Figure 5: likelihood time across dense/sparse x CPU/GPU implementations.

Paper shape: GSNP_CPU ~4-5x faster than SOAPsnp; GSNP two orders of
magnitude faster than SOAPsnp and ~30x faster than GSNP_CPU; GPU-dense
~14-17x slower than GSNP.
"""

import pytest

from repro.bench.harness import exp_fig5
from repro.bench.report import emit_table


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_fig5_likelihood_implementations(benchmark, name, fractions):
    data = benchmark.pedantic(
        lambda: exp_fig5(name, fractions[name]), rounds=1, iterations=1
    )
    soap = data["SOAPsnp"]
    emit_table(
        f"Fig 5 — likelihood time by implementation ({name}), full-scale s",
        ["implementation", "seconds", "speedup vs SOAPsnp"],
        [
            (k, round(v, 1), f"{soap / v:.1f}x" if v else "-")
            for k, v in data.items()
        ],
        note="paper: GSNP_CPU 4-5x, GSNP ~100x+, GPU-dense 14-17x slower "
        "than GSNP",
    )

    assert data["GSNP"] < data["GSNP_CPU"] < data["SOAPsnp"]
    assert data["GSNP"] < data["GPU_dense"] < data["SOAPsnp"]
    # GSNP_CPU speedup band (paper 4-5x; accept 2-12x).
    assert 2 < soap / data["GSNP_CPU"] < 12
    # GSNP two orders of magnitude vs SOAPsnp (accept >50x).
    assert soap / data["GSNP"] > 50
    # Dense GPU significantly slower than sparse GPU (paper 14-17x).
    assert data["GPU_dense"] / data["GSNP"] > 4
