"""Table IV: GSNP component breakdown and speedup over SOAPsnp."""

import pytest

from repro.bench.events import COMPONENTS
from repro.bench.harness import bench_dataset, exp_table4
from repro.bench.report import emit_table, ratio_str
from repro.core.pipeline import GsnpPipeline

#: Paper Table IV speedups (in parentheses in the paper).
PAPER_SPEEDUP = {
    "ch1-sim": {"read_site": 5, "counting": 4, "likelihood": 204,
                "posterior": 7, "output": 13, "recycle": 2738, "total": 42},
    "ch21-sim": {"read_site": 4, "counting": 4, "likelihood": 231,
                 "posterior": 6, "output": 15, "recycle": 1603, "total": 50},
}


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_table4_breakdown(benchmark, name, fractions):
    frac = fractions[name]
    data = exp_table4(name, frac)

    rows = []
    for c in list(COMPONENTS) + ["total"]:
        paper = data["paper"][c]
        model = data["model"].get(c, 0.0)
        sp = data["speedup_model"].get(c)
        sp_paper = PAPER_SPEEDUP[name].get(c)
        rows.append(
            (
                c, paper, round(model, 1), ratio_str(model, paper),
                f"{sp:.0f}x" if sp is not None else "-",
                f"{sp_paper}x" if sp_paper else "-",
            )
        )
    emit_table(
        f"Table IV — GSNP breakdown ({name}), seconds at full scale",
        ["component", "paper", "model", "model/paper", "speedup",
         "paper speedup"],
        rows,
        note="bitwise consistency with SOAPsnp: "
        + ("VERIFIED" if data["consistent"] else "FAILED"),
    )

    assert data["consistent"]
    # Speedup shape: >25x end to end, recycle and likelihood the largest.
    assert data["speedup_model"]["total"] > 25
    assert data["speedup_model"]["recycle"] > 100
    assert data["speedup_model"]["likelihood"] > 50
    assert 0.3 < data["model"]["total"] / data["paper"]["total"] < 3.0

    # Benchmark one full scaled GSNP window pass (cpu mode for wall-clock
    # stability; the gpu-mode numbers come from the cost model).
    ds = bench_dataset(name, frac)
    benchmark.pedantic(
        lambda: GsnpPipeline(window_size=ds.n_sites, mode="cpu").run(ds),
        rounds=1, iterations=1,
    )
