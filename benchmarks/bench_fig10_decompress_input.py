"""Figure 10: (a) output decompression speed; (b) temporary input size.

Paper shapes: reading GSNP-compressed results is ~40x faster than reading
the raw SOAPsnp text and ~6x faster than gzip; the compressed temporary
input is ~1/3 of the original (gzip does slightly better on the more
general input data).
"""

import pytest

from repro.bench.harness import bench_dataset, exp_fig10, gsnp_result
from repro.bench.report import emit_table
from repro.compress.columnar import decode_table


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_fig10_decompression_and_input(benchmark, name, fractions):
    data = exp_fig10(name, fractions[name])
    d = data["decompression"]
    emit_table(
        f"Fig 10a — sequential result read ({name}), full-scale seconds",
        ["scheme", "seconds", "speedup vs SOAPsnp"],
        [(k, round(v, 1), f"{d['SOAPsnp'] / v:.1f}x") for k, v in d.items()],
        note="paper: GSNP ~40x faster than raw text, ~6x faster than gzip",
    )
    s = data["input_sizes"]
    emit_table(
        f"Fig 10b — temporary input size ({name}), full-scale bytes",
        ["scheme", "bytes", "fraction of original"],
        [
            (k, f"{v:.3g}", f"{v / s['original']:.2f}")
            for k, v in s.items()
        ],
        note="paper: compressed temp ~1/3 of original; gzip comparable or "
        "slightly better",
    )

    assert d["GSNP"] < d["SOAPsnp_gzip"] < d["SOAPsnp"]
    assert d["SOAPsnp"] / d["GSNP"] > 8
    assert s["GSNP_temp"] / s["original"] < 0.45

    # Wall-clock: actual in-memory decode of the compressed output.
    blob = gsnp_result(name, "gpu", fractions[name]).compressed_output

    def decode_all():
        offset = 0
        while offset < len(blob):
            _, offset = decode_table(blob, offset)

    benchmark(decode_all)
