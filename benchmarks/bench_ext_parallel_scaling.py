"""Extension experiment: sharded parallel execution scaling.

The paper runs GSNP as a single host process per chromosome; this
extension shows the reproduction's window-aligned sharded executor
(:mod:`repro.exec`) scaling the same job across worker processes while
staying bitwise identical to the serial run — the Section IV-G
consistency guarantee extended from engines to execution strategies.
"""

import pytest

from repro.bench.harness import exp_parallel_scaling
from repro.bench.report import emit_table


@pytest.mark.tier2
@pytest.mark.parametrize("engine", ["gsnp", "gsnp_cpu", "soapsnp"])
def test_parallel_scaling(benchmark, engine, fractions):
    rows_by_workers = exp_parallel_scaling(
        "ch21-sim",
        fractions["ch21-sim"],
        workers=(1, 2, 4, 8),
        engine=engine,
    )
    rows = [
        (
            w,
            f"{r['wall']:.3f}",
            f"{r['speedup']:.2f}x",
            r["shards"],
            r["pool"],
            "yes" if r["consistent"] else "NO",
        )
        for w, r in rows_by_workers.items()
    ]
    emit_table(
        f"Extension — sharded executor scaling ({engine}, ch21-sim)",
        ["workers", "wall s", "speedup", "shards", "pool", "bitwise=serial"],
        rows,
        note="speedup is vs the 1-worker (serial-pool) parallel run; "
        "consistency is calls AND compressed bytes vs the plain serial "
        "pipeline; default bench fractions are process-startup dominated "
        "— set REPRO_BENCH_FRACTION=1.0 for compute-bound scaling",
    )
    assert all(r["consistent"] for r in rows_by_workers.values())
