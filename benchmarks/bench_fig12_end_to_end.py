"""Figure 12: end-to-end comparison over all 24 human chromosomes.

Paper shape: GSNP >= 40x faster than SOAPsnp on every sequence; whole
genome ~3 days (SOAPsnp) vs ~2 hours (GSNP); GSNP_CPU in between.
"""

import pytest

from repro.bench.harness import exp_fig12
from repro.bench.report import emit_table


def test_fig12_whole_genome(benchmark, fractions):
    data = benchmark.pedantic(
        lambda: exp_fig12(fraction=0.04), rounds=1, iterations=1
    )
    rows = []
    total = {"SOAPsnp": 0.0, "GSNP_CPU": 0.0, "GSNP": 0.0}
    for chrom, v in data.items():
        for k in total:
            total[k] += v[k]
        rows.append(
            (
                chrom, round(v["SOAPsnp"]), round(v["GSNP_CPU"]),
                round(v["GSNP"], 1), f"{v['SOAPsnp'] / v['GSNP']:.0f}x",
            )
        )
    rows.append(
        (
            "TOTAL", round(total["SOAPsnp"]), round(total["GSNP_CPU"]),
            round(total["GSNP"]), f"{total['SOAPsnp'] / total['GSNP']:.0f}x",
        )
    )
    emit_table(
        "Fig 12 — end-to-end, all 24 chromosomes (full-scale modeled s)",
        ["sequence", "SOAPsnp", "GSNP_CPU", "GSNP", "speedup"],
        rows,
        note="paper: whole genome ~3 days (SOAPsnp) vs ~2 hours (GSNP), "
        ">=40x per sequence",
    )

    # Every chromosome: GSNP < GSNP_CPU < SOAPsnp, speedup > 20x.
    for chrom, v in data.items():
        assert v["GSNP"] < v["GSNP_CPU"] < v["SOAPsnp"], chrom
        assert v["SOAPsnp"] / v["GSNP"] > 20, chrom
    # Whole-genome wall: paper 3 days vs 2 hours -> ratio ~36; accept >20.
    assert total["SOAPsnp"] / total["GSNP"] > 20
    # Full-genome absolute scale: SOAPsnp ~ days (>1e5 s) and GSNP ~ hours
    # (<3e4 s) in the model.
    assert total["SOAPsnp"] > 1e5
    assert total["GSNP"] < 5e4
