"""Table III: hardware counters of likelihood_comp under each optimization.

Paper values (Ch. 1): the reproduction must match the *orderings* and the
approximate load-reduction ratios; absolute magnitudes differ because the
counters scale with the (scaled) dataset.
"""

import pytest

from repro.bench.harness import exp_table3
from repro.bench.report import emit_table

#: Paper Table III, normalized to the baseline (ratio form).
PAPER_RATIOS = {
    "baseline": {"inst_pw": 1.0, "g_load": 1.0, "g_store": 1.0},
    "w_shared": {"inst_pw": 0.94, "g_load": 0.70, "g_store": 0.68},
    "w_new_table": {"inst_pw": 0.73, "g_load": 0.64, "g_store": 0.97},
    "optimized": {"inst_pw": 0.70, "g_load": 0.36, "g_store": 0.65},
}


def test_table3_hardware_counters(benchmark, fractions):
    data = benchmark.pedantic(
        lambda: exp_table3("ch1-sim", fractions["ch1-sim"]),
        rounds=1, iterations=1,
    )
    base = data["baseline"]
    rows = []
    for v in ("baseline", "w_shared", "w_new_table", "optimized"):
        c = data[v]
        rows.append(
            (
                v,
                f"{c['inst_pw']:.3g}",
                f"{c['inst_pw'] / base['inst_pw']:.2f}",
                f"{PAPER_RATIOS[v]['inst_pw']:.2f}",
                f"{c['g_load']:.3g}",
                f"{c['g_load'] / base['g_load']:.2f}",
                f"{PAPER_RATIOS[v]['g_load']:.2f}",
                f"{c['g_store']:.3g}",
                f"{c['s_load_pw']:.3g}",
            )
        )
    emit_table(
        "Table III — likelihood_comp counters (ch1-sim)",
        ["variant", "inst_PW", "r", "paper_r", "g_load", "r", "paper_r",
         "g_store", "s_load_PW"],
        rows,
        note="r = ratio to baseline; paper_r = same ratio from Table III",
    )

    # Orderings must match the paper exactly.
    g = {v: data[v]["g_load"] for v in data}
    assert g["optimized"] < g["w_shared"] < g["baseline"]
    assert g["optimized"] < g["w_new_table"] < g["baseline"]
    i = {v: data[v]["inst_pw"] for v in data}
    assert i["optimized"] <= i["w_new_table"] < i["baseline"]
    assert i["w_shared"] < i["baseline"]
    # Load-reduction ratios within a band of the paper's.
    assert abs(g["optimized"] / g["baseline"] - 0.36) < 0.15
    assert abs(g["w_shared"] / g["baseline"] - 0.70) < 0.15
    # Shared memory only used by the shared variants.
    assert data["baseline"]["s_load_pw"] == 0
    assert data["optimized"]["s_load_pw"] > 0
