"""Figure 6: likelihood_sort vs likelihood_comp, CPU vs GPU.

Paper: GPU speedup ~22x for the sort and ~40x for the computation (the
bitonic network has a higher complexity than quicksort, so its speedup is
smaller).
"""

import pytest

from repro.bench.harness import exp_fig6, window_words
from repro.bench.report import emit_table
from repro.core.base_word import canonical_keys
from repro.sortnet.cpu_sort import quicksort_per_site


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_fig6_sort_and_comp(benchmark, name, fractions):
    data = exp_fig6(name, fractions[name])
    emit_table(
        f"Fig 6 — likelihood steps ({name}), full-scale seconds",
        ["step", "CPU", "GPU", "speedup"],
        [
            ("likelihood_sort", round(data["cpu_sort"], 1),
             round(data["gpu_sort"], 1),
             f"{data['cpu_sort'] / data['gpu_sort']:.0f}x"),
            ("likelihood_comp", round(data["cpu_comp"], 1),
             round(data["gpu_comp"], 1),
             f"{data['cpu_comp'] / data['gpu_comp']:.0f}x"),
        ],
        note="paper: sort ~22x, comp ~40x",
    )

    sort_speedup = data["cpu_sort"] / data["gpu_sort"]
    comp_speedup = data["cpu_comp"] / data["gpu_comp"]
    # Both steps accelerate strongly on the GPU.
    assert sort_speedup > 10
    assert 15 < comp_speedup < 100  # paper: ~40x
    # Comp dominates the GPU-side time, as in the paper's bars.
    assert data["gpu_comp"] > data["gpu_sort"]
    # Known deviation (see EXPERIMENTS.md): the paper's measured sort
    # speedup is 22x < comp's 40x; our analytic model prices the batch
    # bitonic closer to hardware optimum, so its speedup comes out larger.

    # Wall-clock benchmark of the real CPU quicksort step.
    _, _, words, offsets, _, _ = window_words(name, fractions[name])
    keys = canonical_keys(words)
    benchmark(lambda: quicksort_per_site(keys, offsets))
