"""Figure 7: (a) batch-sort primitive throughput; (b) multipass sorting.

Paper shapes: (a) the GPU batch bitonic beats the 16-thread CPU quicksort
by ~1.5x, the per-array sequential radix sort collapses, and throughput
falls as the batch array size grows; (b) multipass is ~5x faster than
single-pass (which sorts ~4x more elements) and beats the non-equal-size
direct sort via balanced workloads.
"""

import numpy as np
import pytest

from repro.bench.harness import exp_fig7a, exp_fig7b
from repro.bench.report import emit_table
from repro.sortnet.bitonic import bitonic_sort_batch


def test_fig7a_batchsort_throughput(benchmark, fractions):
    data = exp_fig7a(sizes=(4, 8, 16, 32, 64, 128, 256), n_arrays=1024)
    emit_table(
        "Fig 7a — batch sort throughput (elements/s)",
        ["array size", "CPU parallel qsort", "GPU batch bitonic",
         "GPU seq. radix"],
        [
            (m, f"{v['cpu_parallel']:.3g}", f"{v['gpu_batch_bitonic']:.3g}",
             f"{v['gpu_seq_radix']:.3g}")
            for m, v in data.items()
        ],
        note="paper: batch bitonic ~1.5x CPU; sequential radix collapses; "
        "throughput decreases with array size",
    )

    for m, v in data.items():
        # Sequential radix underutilizes the device by orders of magnitude.
        assert v["gpu_seq_radix"] < v["gpu_batch_bitonic"] / 10
    # Batch bitonic competitive with (or better than) the CPU baseline for
    # small arrays.
    assert (
        data[8]["gpu_batch_bitonic"] > 0.5 * data[8]["cpu_parallel"]
    )
    # Throughput decreases as arrays grow.
    assert (
        data[256]["gpu_batch_bitonic"] < data[8]["gpu_batch_bitonic"]
    )

    # Wall-clock benchmark of the functional network itself.
    rng = np.random.default_rng(0)
    batch = rng.integers(0, 2**17, (1024, 64)).astype(np.uint32)
    benchmark(lambda: bitonic_sort_batch(batch.copy()))


def test_fig7b_multipass(benchmark, fractions):
    data = benchmark.pedantic(
        lambda: exp_fig7b("ch1-sim", fractions["ch1-sim"]),
        rounds=1, iterations=1,
    )
    emit_table(
        "Fig 7b — multipass vs single-pass vs non-equal (ch1-sim)",
        ["strategy", "full-scale s", "padded elems", "padding", "cmp-exch"],
        [
            (k, round(v["time"], 1), f"{v['padded_elements']:.3g}",
             f"{v['padding_ratio']:.2f}x", f"{v['compare_exchanges']:.3g}")
            for k, v in data.items()
        ],
        note="paper: single-pass sorts ~4x more elements, ~5x slower; "
        "non-equal suffers imbalance",
    )

    mp, sp, ne = data["bitonic_MP"], data["bitonic_SP"], data["bitonic_noneq"]
    assert mp["time"] < sp["time"]
    assert mp["padded_elements"] < sp["padded_elements"]
    assert sp["padding_ratio"] / mp["padding_ratio"] > 1.5
    assert mp["compare_exchanges"] <= ne["compare_exchanges"]
