"""Extension experiment: calling accuracy against planted truth.

The paper takes accuracy as given (the model "has shown high accuracy in
practice" [1]); with synthetic truth we can measure it.  Sweeps the
consensus-quality threshold on both Table-II replica datasets and reports
precision / recall / F1 / genotype concordance — and verifies that all
engines produce the same accuracy (a corollary of bitwise consistency).
"""

import pytest

from repro.bench.accuracy import best_f1, quality_sweep
from repro.bench.harness import bench_dataset, soapsnp_result
from repro.bench.report import emit_table


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_accuracy_sweep(benchmark, name, fractions):
    ds = bench_dataset(name, fractions[name])
    table = soapsnp_result(name, fractions[name]).table
    points = benchmark.pedantic(
        lambda: quality_sweep(table, ds), rounds=1, iterations=1
    )
    emit_table(
        f"Extension — accuracy vs quality threshold ({name})",
        ["min quality", "TP", "FP", "FN", "precision", "recall", "F1",
         "genotype concordance"],
        [
            (p.min_quality, p.true_positives, p.false_positives,
             p.false_negatives, f"{p.precision:.2f}", f"{p.recall:.2f}",
             f"{p.f1:.2f}", f"{p.genotype_concordance:.2f}")
            for p in points
        ],
        note="truth = planted SNPs at covered sites; identical for every "
        "engine by bitwise consistency",
    )

    best = best_f1(points)
    assert best.f1 > 0.7
    assert best.genotype_concordance > 0.8
    # The unfiltered point catches nearly everything visible.
    assert points[0].recall > 0.8
