"""Figure 8: likelihood_comp time under each optimization combination.

Paper: optimized ~2.4x faster than baseline; shared memory alone reduces
time to ~55%, the new score table alone to ~78% (shared helps more because
it removes twenty non-coalesced global accesses per base_word).
"""

import pytest

from repro.bench.harness import exp_fig8
from repro.bench.report import emit_table


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_fig8_variants(benchmark, name, fractions):
    data = benchmark.pedantic(
        lambda: exp_fig8(name, fractions[name]), rounds=1, iterations=1
    )
    base = data["baseline"]
    emit_table(
        f"Fig 8 — likelihood_comp variants ({name}), full-scale seconds",
        ["variant", "seconds", "fraction of baseline", "paper fraction"],
        [
            ("baseline", round(base, 1), "1.00", "1.00"),
            ("w_shared", round(data["w_shared"], 1),
             f"{data['w_shared'] / base:.2f}", "0.55"),
            ("w_new_table", round(data["w_new_table"], 1),
             f"{data['w_new_table'] / base:.2f}", "0.78"),
            ("optimized", round(data["optimized"], 1),
             f"{data['optimized'] / base:.2f}", "0.42"),
        ],
    )

    # Orderings as in the paper.
    assert data["optimized"] < data["w_shared"] < base
    assert data["optimized"] < data["w_new_table"] < base
    # Both optimizations individually help; combined ~2.4x (accept 1.5-4.5x).
    assert 1.5 < base / data["optimized"] < 4.5
    # Shared memory contributes more than the table (paper's finding).
    assert data["w_shared"] <= data["w_new_table"] * 1.1
