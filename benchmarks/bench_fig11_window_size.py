"""Figure 11: elapsed time and memory consumption vs window size.

Paper shape: time rises sharply below ~128k sites/window (launch overhead +
underutilized hardware), and is flat beyond ~256k; memory grows with the
window.  Window sizes here scale with the bench dataset.
"""

import pytest

from repro.bench.harness import bench_dataset, exp_fig11
from repro.bench.report import emit_table
from repro.core.pipeline import GsnpPipeline


def test_fig11_window_sweep(benchmark, fractions):
    name = "ch1-sim"
    ds = bench_dataset(name, fractions[name])
    windows = tuple(
        w for w in (1000, 2000, 4000, 8000, 16000, ds.n_sites) if w <= ds.n_sites
    )
    data = benchmark.pedantic(
        lambda: exp_fig11(name, fractions[name], windows=windows),
        rounds=1, iterations=1,
    )
    emit_table(
        "Fig 11 — time & memory vs window size (ch1-sim)",
        ["window (sites)", "windows", "full-scale s", "GPU bytes"],
        [
            (w, v["windows"], round(v["time"], 1), f"{v['gpu_bytes']:.3g}")
            for w, v in data.items()
        ],
        note="paper: sharp slowdown below ~128k sites/window, flat above "
        "~256k; memory grows with window size",
    )

    ws = sorted(data)
    # Small windows are slower than the largest.
    assert data[ws[0]]["time"] > data[ws[-1]]["time"]
    # Time is monotone non-increasing within noise (allow 10%).
    for a, b in zip(ws[:-1], ws[1:]):
        assert data[b]["time"] <= data[a]["time"] * 1.10
    # The flat region: doubling the window near the top changes time <15%.
    assert data[ws[-1]]["time"] > 0.85 * data[ws[-2]]["time"]
