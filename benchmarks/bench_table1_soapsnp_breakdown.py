"""Table I: time breakdown by components in SOAPsnp.

Prints the paper's per-component seconds next to our full-scale modeled
seconds (scaled-run event counts x cost model x scale factor), and
benchmarks the scaled likelihood engine — SOAPsnp's dominant component.
"""

import pytest

from repro.bench.events import COMPONENTS
from repro.bench.harness import bench_dataset, exp_table1, soapsnp_result
from repro.bench.report import emit_table, ratio_str
from repro.soapsnp import SoapsnpPipeline


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_table1_breakdown(benchmark, name, fractions):
    frac = fractions[name]
    data = exp_table1(name, frac)

    rows = []
    for c in list(COMPONENTS) + ["total"]:
        paper = data["paper"][c]
        model = data["model"].get(c, 0.0)
        rows.append((c, paper, round(model), ratio_str(model, paper)))
    emit_table(
        f"Table I — SOAPsnp breakdown ({name}), seconds at full scale",
        ["component", "paper", "model", "model/paper"],
        rows,
        note=f"scaled run wall: {data['wall_scaled']:.2f}s",
    )

    # Benchmark the dominant component's actual scaled execution.
    ds = bench_dataset(name, frac)
    pipe = SoapsnpPipeline(window_size=4000)

    def run_likelihood_window():
        # One representative window through the full dense-semantics path.
        from repro.align.records import AlignmentBatch
        from repro.formats.window import WindowReader
        from repro.soapsnp.likelihood import window_type_likely
        from repro.soapsnp.observe import extract_observations

        res = soapsnp_result(name, frac)
        batch = AlignmentBatch.from_read_set(ds.reads)
        window = next(iter(WindowReader(batch, ds.n_sites, 4000)))
        obs = extract_observations(window)
        from repro.soapsnp.model import CallingParams
        from repro.soapsnp.p_matrix import flatten_p_matrix

        params = CallingParams(read_len=batch.read_len)
        return window_type_likely(
            obs, flatten_p_matrix(res.p_matrix), params.penalty_table()
        )

    benchmark(run_likelihood_window)

    # Shape assertions: likelihood dominates, recycle second.
    model = data["model"]
    assert model["likelihood"] == max(
        model[c] for c in COMPONENTS
    )
    assert model["recycle"] > model["counting"]
    assert 0.3 < model["total"] / data["paper"]["total"] < 3.0
