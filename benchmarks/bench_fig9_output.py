"""Figure 9: output size and output speed under three compression schemes.

Paper shapes: SOAPsnp text is 14-16x larger than GSNP's output and gzip'd
text is ~1.5x larger; output (compress+write) is 13-15x faster in GSNP than
SOAPsnp, and gzip is ~3x slower than the customized CPU codecs.
"""

import pytest

from repro.bench.harness import exp_fig9, soapsnp_result
from repro.bench.report import emit_table
from repro.compress.columnar import encode_table


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_fig9_output_size_and_speed(benchmark, name, fractions):
    data = exp_fig9(name, fractions[name])
    sizes, speeds = data["sizes"], data["speeds"]
    gsnp_size = sizes["GSNP"]
    emit_table(
        f"Fig 9a — output size ({name}), full-scale bytes",
        ["scheme", "bytes", "x GSNP"],
        [(k, f"{v:.3g}", f"{v / gsnp_size:.1f}x") for k, v in sizes.items()],
        note="paper: SOAPsnp 14-16x, gzip ~1.5x of GSNP",
    )
    emit_table(
        f"Fig 9b — output speed ({name}), full-scale seconds",
        ["scheme", "seconds", "speedup vs SOAPsnp"],
        [
            (k, round(v, 1), f"{speeds['SOAPsnp'] / v:.1f}x")
            for k, v in speeds.items()
        ],
        note="paper: GSNP 13-15x faster than SOAPsnp; gzip ~3x slower than "
        "GSNP_CPU; GPU ~3x faster than GSNP_CPU",
    )

    # Size shape.
    assert sizes["SOAPsnp"] / gsnp_size > 8
    assert 1.1 < sizes["SOAPsnp_gzip"] / gsnp_size < 2.5
    # Speed shape.
    assert speeds["GSNP"] < speeds["GSNP_CPU"] < speeds["SOAPsnp_gzip"]
    assert speeds["SOAPsnp"] / speeds["GSNP"] > 5

    # Wall-clock: the actual columnar encoder on the scaled table.
    table = soapsnp_result(name, fractions[name]).table
    benchmark(lambda: encode_table(table))
