"""Extension experiment: multithreaded SOAPsnp (Section VI-A aside).

"We have developed a multi-threaded version of SOAPsnp and it achieved a
3-4 times speedup using 16 threads ... mainly because the algorithm is
bounded by memory bandwidth."  This bench prices the same event counts
under the parallel CPU model and checks that the memory wall caps the
speedup right where the paper says — and far below GSNP.
"""

import pytest

from repro.bench.events import COMPONENTS
from repro.bench.harness import bench_spec, gsnp_result, soapsnp_result
from repro.bench.report import emit_table
from repro.bench.scale import extrapolate
from repro.gpusim.costmodel import CpuCostModel, DiskModel


@pytest.mark.parametrize("name", ["ch1-sim", "ch21-sim"])
def test_multithreaded_soapsnp(benchmark, name, fractions):
    res = soapsnp_result(name, fractions[name])
    spec = bench_spec(name, fractions[name])
    scaled = res.profile.scaled(spec.scale_factor)
    cpu = CpuCostModel()
    disk = DiskModel()

    single = 0.0
    multi = 0.0
    rows = []
    for c in COMPONENTS:
        rec = scaled.records[c]
        t1 = cpu.time(rec.cpu) + disk.time(rec.disk)
        t16 = cpu.time_parallel(rec.cpu, threads=16) + disk.time(rec.disk)
        single += t1
        multi += t16
        rows.append((c, round(t1), round(t16), f"{t1 / t16:.1f}x"))
    rows.append(("total", round(single), round(multi),
                 f"{single / multi:.1f}x"))
    gsnp_total = extrapolate(
        gsnp_result(name, "gpu", fractions[name]).profile, spec
    ).total
    emit_table(
        f"Extension — 16-thread SOAPsnp ({name}), full-scale seconds",
        ["component", "1 thread", "16 threads", "speedup"],
        rows,
        note=f"paper: 3-4x; GSNP for comparison: {gsnp_total:.0f}s "
        f"({single / gsnp_total:.0f}x)",
    )

    overall = single / multi
    # The paper's band: 3-4x (we accept 2.5-4.5 for the synthetic data).
    assert 2.5 < overall < 4.5
    # GSNP still beats 16 CPU threads by an order of magnitude.
    assert multi / gsnp_total > 10

    benchmark.pedantic(
        lambda: [cpu.time_parallel(scaled.records[c].cpu, 16)
                 for c in COMPONENTS],
        rounds=3, iterations=10,
    )
