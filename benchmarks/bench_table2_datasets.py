"""Table II: characteristics of the Chromosome 1 / 21 replica datasets."""

import pytest

from repro.bench.harness import bench_dataset, bench_spec, exp_table2
from repro.bench.report import emit_table
from repro.seqsim.datasets import TABLE2_FULL, generate_dataset


def test_table2_characteristics(benchmark, fractions):
    data = exp_table2(fractions["ch1-sim"])

    rows = []
    for name, s in data.items():
        paper = TABLE2_FULL[name]
        factor = bench_spec(name, fractions[name]).scale_factor
        rows.append(
            (
                name,
                f"{s['sites'] * factor:.3g} / {paper['sites']:.3g}",
                f"{s['depth']:.1f} / {paper['depth']}",
                f"{s['coverage']:.2f} / {paper['coverage']}",
                f"{s['reads'] * factor:.2g} / {paper['reads']:.2g}",
                f"{s['input_bytes'] * factor / 1e9:.1f} / {paper['input_gb']}",
            )
        )
    emit_table(
        "Table II — dataset characteristics (ours x scale / paper)",
        ["dataset", "sites", "depth", "coverage", "reads", "input GB"],
        rows,
        note="reads differ because the paper counts pre-filter reads; "
        "depth/coverage/sparsity are the algorithm-relevant quantities",
    )

    for name, s in data.items():
        paper = TABLE2_FULL[name]
        assert abs(s["depth"] - paper["depth"]) < 0.5
        assert abs(s["coverage"] - paper["coverage"]) < 0.05

    benchmark.pedantic(
        lambda: generate_dataset(bench_spec("ch21-sim", 0.2)),
        rounds=3, iterations=1,
    )
