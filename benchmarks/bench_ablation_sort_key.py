"""Ablation: the canonical sort-key transform (score-field inversion).

Sorting base_words *ascending without* inverting the score field yields
score-ascending order — a legal-looking but wrong iteration order: the
quality-dependency adjustment then penalizes the *high*-quality duplicates
instead of the low-quality ones, changing likelihoods.  This ablation
quantifies how many sites change and confirms the cost is identical (the
transform is a single XOR).
"""

import numpy as np
import pytest

from repro.bench.harness import window_words
from repro.bench.report import emit, emit_table
from repro.core.base_word import canonical_keys, decode_keys
from repro.core.likelihood import GsnpTables, OPTIMIZED, gsnp_likelihood_comp
from repro.gpusim.device import Device
from repro.soapsnp.likelihood import window_type_likely
from repro.sortnet.multipass import multipass_sort


def test_ablation_sort_key(benchmark, fractions):
    ds, obs, words, offsets, pm_flat, penalty = window_words(
        "ch21-sim", fractions["ch21-sim"]
    )
    ref = window_type_likely(obs, pm_flat, penalty)

    device = Device()
    tables = GsnpTables.load(device, pm_flat, penalty)

    # Correct: ascending sort of XOR-transformed keys.
    keys = canonical_keys(words)
    sorted_keys, _ = multipass_sort(keys, offsets)
    good = gsnp_likelihood_comp(
        device, decode_keys(sorted_keys), offsets, tables, OPTIMIZED,
        kernel_name="ablation_good",
    )
    # Ablated: plain ascending word sort (score ascending).
    plain_sorted, _ = multipass_sort(words, offsets)
    bad = gsnp_likelihood_comp(
        device, plain_sorted, offsets, tables, OPTIMIZED,
        kernel_name="ablation_plain",
    )

    assert np.array_equal(good, ref)
    changed = int((~np.all(good == bad, axis=1)).sum())
    diverted = 100.0 * changed / good.shape[0]
    emit_table(
        "Ablation — canonical sort key (ch21-sim)",
        ["variant", "bitwise == SOAPsnp", "sites changed"],
        [
            ("word ^ SCORE_MASK (canonical)", "yes", 0),
            ("plain ascending", "no", f"{changed} ({diverted:.1f}%)"),
        ],
        note="plain ascending processes low-quality duplicates first, "
        "mis-assigning the dependency penalty",
    )
    # The ablation must actually change results somewhere.
    assert changed > 0

    benchmark(lambda: multipass_sort(keys, offsets)[0])
