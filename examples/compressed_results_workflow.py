#!/usr/bin/env python
"""Downstream workflow on compressed GSNP output (Section V-B).

Runs GSNP, writes the compressed result file, then uses the decompression
APIs the way a downstream analysis would: sequential scan, range queries,
SNP-only extraction — and compares storage against SOAPsnp text and gzip.

Run:  python examples/compressed_results_workflow.py
"""

import tempfile
import time
from pathlib import Path

from repro import DatasetSpec, GsnpPipeline, generate_dataset
from repro.compress import CompressedResultReader, gzip_compress
from repro.constants import BASES, GENOTYPES, GENOTYPE_IUPAC
from repro.formats.cns import format_rows


def main() -> None:
    dataset = generate_dataset(
        DatasetSpec(name="chrC", n_sites=40_000, depth=10.0, coverage=0.88,
                    seed=21)
    )
    workdir = Path(tempfile.mkdtemp(prefix="gsnp_demo_"))
    out_path = workdir / "result.gsnp"

    result = GsnpPipeline(window_size=8000, mode="gpu").run(
        dataset, output_path=out_path
    )

    # --- storage comparison (Fig 9a shape) -------------------------------
    text = format_rows(result.table)
    gz, _ = gzip_compress(text)
    print("output storage:")
    print(f"  SOAPsnp text : {len(text):>9d} bytes")
    print(f"  text + gzip  : {len(gz):>9d} bytes "
          f"({len(text) / len(gz):.1f}x smaller)")
    print(f"  GSNP columnar: {result.output_bytes:>9d} bytes "
          f"({len(text) / result.output_bytes:.1f}x smaller)")

    # --- sequential scan ---------------------------------------------------
    reader = CompressedResultReader(out_path)
    t0 = time.perf_counter()
    n_rows = sum(t.n_sites for t in reader)
    dt = time.perf_counter() - t0
    print(f"\nsequential scan: {n_rows} rows decoded in {dt * 1000:.1f} ms")

    # --- range query ---------------------------------------------------------
    window = reader.query_range(10_000, 10_050)
    print(f"\nrange [10000, 10050): {window.n_sites} rows, "
          f"mean depth {window.depth.mean():.1f}")

    # --- SNP extraction ---------------------------------------------------
    snps = reader.query_snps()
    print(f"\n{snps.n_sites} SNP rows:")
    for i in range(min(snps.n_sites, 10)):
        g = GENOTYPE_IUPAC[GENOTYPES[int(snps.genotype[i])]]
        print(
            f"  pos {int(snps.pos[i]):>7d}  "
            f"{BASES[int(snps.ref_base[i])]} -> {g}  "
            f"q={int(snps.quality[i])}  known={int(snps.known_snp[i])}"
        )
    print(f"\n(files under {workdir})")


if __name__ == "__main__":
    main()
