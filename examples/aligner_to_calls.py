#!/usr/bin/env python
"""Full substrate path: raw machine reads -> aligner -> SNP calls.

The benchmark datasets feed simulation-derived alignments straight into the
callers; this example instead exercises the *alignment* substrate: it takes
the reads as the sequencer emitted them (machine orientation, no
positions), aligns them with the pigeonhole k-mer aligner, writes/reads the
SOAP text format, and calls SNPs from that — the same file-level contract
the original SOAPsnp/GSNP operate under.

Run:  python examples/aligner_to_calls.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DatasetSpec, Engine, GsnpDetector, generate_dataset
from repro.align import Aligner
from repro.core.detector import dataset_from_alignments
from repro.formats.soap import read_soap, write_soap
from repro.seqsim.reads import reverse_complement_view


def main() -> None:
    dataset = generate_dataset(
        DatasetSpec(name="chrAln", n_sites=15_000, depth=12.0, coverage=1.0,
                    snp_rate=1.5e-3, multihit_fraction=0.0, seed=44)
    )

    # 1. Recover the machine-orientation reads (what a FASTQ would hold).
    rs = dataset.reads
    machine_reads = np.empty_like(rs.bases)
    machine_quals = np.empty_like(rs.quals)
    for i in range(rs.n_reads):
        machine_reads[i], machine_quals[i] = reverse_complement_view(rs, i)

    # 2. Align them against the reference from scratch.
    aligner = Aligner(dataset.reference, seed_len=13, max_mismatches=3)
    batch = aligner.align_batch(machine_reads, machine_quals)
    print(
        f"aligned {batch.n_reads}/{rs.n_reads} reads "
        f"({100 * batch.n_reads / rs.n_reads:.1f}%); "
        f"{int((batch.hits == 1).sum())} unique"
    )
    placed = np.isin(batch.pos, rs.pos).mean()
    print(f"placement agreement with simulation truth: {100 * placed:.1f}%")

    # 3. Round-trip through the SOAP alignment text format.
    workdir = Path(tempfile.mkdtemp(prefix="gsnp_aln_"))
    soap_path = workdir / "aligned.soap"
    nbytes = write_soap(soap_path, batch)
    print(f"wrote {nbytes} bytes of SOAP alignments to {soap_path}")
    batch2 = read_soap(soap_path)

    # 4. Call SNPs from the aligner's output.  dataset_from_alignments
    # wraps the parsed batch; planted truth is grafted back for scoring.
    from dataclasses import replace

    aligned_dataset = replace(
        dataset_from_alignments(
            dataset.reference, batch2, prior=dataset.prior
        ),
        spec=dataset.spec,
        diploid=dataset.diploid,
    )
    detector = GsnpDetector(engine=Engine.GSNP_CPU, min_quality=13)
    result = detector.run(aligned_dataset)
    acc = detector.score(result.table, aligned_dataset, min_quality=13)
    print(
        f"\ncalls from aligner output: precision={acc.precision:.2f} "
        f"recall={acc.recall:.2f} "
        f"(TP={acc.true_positives} FP={acc.false_positives} "
        f"FN={acc.false_negatives})"
    )


if __name__ == "__main__":
    main()
