#!/usr/bin/env python
"""Stream a large SOAP alignment file window by window.

The production input is hundreds of gigabytes — far beyond memory.  This
example writes a SOAP file to disk, then processes it with
:class:`~repro.formats.stream.StreamingSoapReader`: only the reads
overlapping the current window are ever resident, and the per-window
results are compressed and appended incrementally, so peak memory is
O(window), not O(file).

Run:  python examples/streaming_bigfile.py
"""

import tempfile
from pathlib import Path

from repro import DatasetSpec, generate_dataset
from repro.align.records import AlignmentBatch
from repro.compress import CompressedResultReader, encode_table
from repro.formats.soap import write_soap
from repro.formats.stream import StreamingSoapReader
from repro.soapsnp import (
    CallingParams,
    build_p_matrix,
    extract_observations,
    flatten_p_matrix,
    is_snp_call,
    summarize_window,
    window_type_likely,
)


def main() -> None:
    dataset = generate_dataset(
        DatasetSpec(name="chrBig", n_sites=60_000, depth=10.0,
                    coverage=0.9, seed=55)
    )
    workdir = Path(tempfile.mkdtemp(prefix="gsnp_stream_"))
    soap_path = workdir / "aligned.soap"
    batch = AlignmentBatch.from_read_set(dataset.reads)
    nbytes = write_soap(soap_path, batch)
    print(f"input file: {nbytes / 1e6:.1f} MB, {batch.n_reads} reads")

    # Pass 1 (cal_p_matrix): calibrate from the full input.
    params = CallingParams(read_len=batch.read_len)
    pm_flat = flatten_p_matrix(
        build_p_matrix(batch, dataset.reference, params)
    )
    penalty = params.penalty_table()

    # Pass 2 (read_site): stream windows, call, compress, append.
    out_path = workdir / "result.gsnp"
    reader = StreamingSoapReader(soap_path, dataset.n_sites, 8000)
    n_snps = 0
    max_resident = 0
    with open(out_path, "wb") as out:
        for window in reader:
            max_resident = max(max_resident, window.reads.n_reads)
            obs = extract_observations(window)
            tl = window_type_likely(obs, pm_flat, penalty)
            table = summarize_window(
                obs, window.start,
                dataset.reference.codes[window.start : window.end],
                dataset.prior, tl, params, chrom=dataset.reference.name,
            )
            n_snps += int(is_snp_call(table).sum())
            out.write(encode_table(table))
    print(
        f"streamed {reader.n_windows} windows "
        f"(max {max_resident} reads resident of {batch.n_reads} total); "
        f"{n_snps} SNP rows"
    )
    print(
        f"compressed result: {out_path.stat().st_size / 1e6:.2f} MB "
        f"({nbytes / out_path.stat().st_size:.1f}x smaller than the input)"
    )

    # Downstream query straight off the compressed file.
    snps = CompressedResultReader(out_path).query_snps()
    print(f"reader confirms {snps.n_sites} SNP rows; files in {workdir}")
    assert snps.n_sites == n_snps


if __name__ == "__main__":
    main()
