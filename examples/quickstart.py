#!/usr/bin/env python
"""Quickstart: simulate a small genome, call SNPs, score against truth.

Run:  python examples/quickstart.py
"""

from repro import DatasetSpec, GsnpDetector, generate_dataset
from repro.constants import BASES, GENOTYPES, GENOTYPE_IUPAC


def main() -> None:
    # 1. Simulate an individual resequenced at 12x over a 50 kb reference.
    spec = DatasetSpec(
        name="chrDemo",
        n_sites=50_000,
        depth=12.0,
        coverage=0.9,
        snp_rate=1e-3,
        seed=7,
    )
    dataset = generate_dataset(spec)
    print(
        f"simulated {dataset.reads.n_reads} reads over "
        f"{dataset.n_sites} sites; {dataset.diploid.n_snps} SNPs planted"
    )

    # 2. Call SNPs with the GSNP engine (simulated GPU).  The engines
    #    "gsnp", "gsnp_cpu" and "soapsnp" all produce identical tables.
    detector = GsnpDetector(engine="gsnp", min_quality=13)
    result = detector.run(dataset)

    # 3. Inspect the calls.
    calls = detector.calls(result.table)
    print(f"\n{len(calls)} variant calls (quality >= 13):")
    for call in calls[:15]:
        a1, a2 = GENOTYPES[call.genotype]
        print(
            f"  {call.chrom}:{call.pos}  ref={BASES[call.ref]}  "
            f"genotype={BASES[a1]}/{BASES[a2]} "
            f"({GENOTYPE_IUPAC[GENOTYPES[call.genotype]]})  "
            f"q={call.quality}  depth={call.depth}"
        )
    if len(calls) > 15:
        print(f"  ... and {len(calls) - 15} more")

    # 4. Score against the planted truth.
    acc = detector.score(result.table, dataset, min_quality=13)
    print(
        f"\nprecision={acc.precision:.2f} recall={acc.recall:.2f} "
        f"(TP={acc.true_positives} FP={acc.false_positives} "
        f"FN={acc.false_negatives})"
    )

    # 5. The compressed output is ~13x smaller than SOAPsnp text.
    print(
        f"\ncompressed output: {result.output_bytes} bytes "
        f"(vs ~{result.table.n_sites * 46} bytes of text)"
    )


if __name__ == "__main__":
    main()
