#!/usr/bin/env python
"""Profile the likelihood kernel variants on the simulated GPU.

Reproduces the Table III / Figure 8 methodology at example scale: run the
four ``likelihood_comp`` configurations, read back the hardware counters,
and price them with the M2050 roofline model — while verifying all four
produce bitwise identical likelihoods.

Run:  python examples/gpu_kernel_profiling.py
"""

import numpy as np

from repro import DatasetSpec, generate_dataset
from repro.align.records import AlignmentBatch
from repro.core import (
    ALL_VARIANTS,
    GsnpTables,
    gsnp_likelihood_comp,
    gsnp_likelihood_sort,
    words_from_observations,
)
from repro.formats.window import Window
from repro.gpusim import Device, GpuCostModel
from repro.soapsnp import (
    CallingParams,
    build_p_matrix,
    extract_observations,
    flatten_p_matrix,
)


def main() -> None:
    dataset = generate_dataset(
        DatasetSpec(name="chrP", n_sites=20_000, depth=11.0, coverage=0.88,
                    seed=33)
    )
    reads = AlignmentBatch.from_read_set(dataset.reads)
    params = CallingParams(read_len=reads.read_len)
    pm_flat = flatten_p_matrix(
        build_p_matrix(reads, dataset.reference, params)
    )
    penalty = params.penalty_table()
    obs = extract_observations(
        Window(start=0, end=dataset.n_sites, reads=reads)
    )
    words, offsets = words_from_observations(obs)
    model = GpuCostModel()

    print(f"{'variant':<12s} {'inst_PW':>10s} {'g_load':>9s} {'g_store':>9s} "
          f"{'s_load_PW':>10s} {'modeled us':>11s}  vs baseline")
    results = {}
    base_time = None
    for variant in ALL_VARIANTS:
        device = Device()
        tables = GsnpTables.load(device, pm_flat, penalty)
        wsorted, _ = gsnp_likelihood_sort(device, words, offsets)
        device.reset_counters()  # profile only the comp kernel
        tl = gsnp_likelihood_comp(device, wsorted, offsets, tables, variant)
        results[variant.name] = tl
        c = device.counters.total()
        t = model.kernel_time(c)
        if base_time is None:
            base_time = t
        print(
            f"{variant.name:<12s} {c.inst_pw:>10.3g} {c.g_load:>9.3g} "
            f"{c.g_store:>9.3g} {c.s_load_pw:>10.3g} {t * 1e6:>11.1f}  "
            f"{base_time / t:.2f}x"
        )

    ref = results["baseline"]
    for name, tl in results.items():
        assert np.array_equal(tl, ref), name
    print("\nall four variants are bitwise identical "
          "(the paper's consistency requirement, Section IV-G)")
    print("paper Table III load ratios: shared 0.70, table 0.64, "
          "optimized 0.36 of baseline")


if __name__ == "__main__":
    main()
