#!/usr/bin/env python
"""Whole-genome workload: all 24 chromosomes through three engines.

Reproduces the shape of the paper's Figure 12 at example scale: per
chromosome, runs SOAPsnp (dense CPU), GSNP_CPU (sparse CPU) and GSNP
(simulated GPU), checks the three outputs are bitwise identical, and prints
modeled full-scale times.

Run:  python examples/whole_genome_calling.py  [--chromosomes N]
"""

import argparse
from dataclasses import replace

from repro import GsnpPipeline, SoapsnpPipeline, generate_dataset
from repro.bench.scale import extrapolate
from repro.seqsim import whole_genome_specs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--chromosomes", type=int, default=6,
        help="how many chromosomes to run (default 6; 24 = full genome)",
    )
    parser.add_argument(
        "--fraction", type=float, default=0.05,
        help="dataset shrink factor below the 1/1000 paper scale",
    )
    args = parser.parse_args()

    specs = whole_genome_specs()[: args.chromosomes]
    totals = {"SOAPsnp": 0.0, "GSNP_CPU": 0.0, "GSNP": 0.0}
    print(f"{'sequence':>10s} {'sites':>8s} {'SOAPsnp':>9s} "
          f"{'GSNP_CPU':>9s} {'GSNP':>7s} {'speedup':>8s} consistent")
    for spec in specs:
        small = replace(
            spec,
            n_sites=max(int(spec.n_sites * args.fraction), 2000),
            scale_factor=spec.scale_factor
            * spec.n_sites / max(int(spec.n_sites * args.fraction), 2000),
        )
        ds = generate_dataset(small)
        r_soap = SoapsnpPipeline(window_size=4000).run(ds)
        r_cpu = GsnpPipeline(window_size=ds.n_sites, mode="cpu").run(ds)
        r_gpu = GsnpPipeline(window_size=ds.n_sites, mode="gpu").run(ds)

        consistent = r_soap.table.equals(r_cpu.table) and r_soap.table.equals(
            r_gpu.table
        )
        t = {
            "SOAPsnp": extrapolate(r_soap.profile, small).total,
            "GSNP_CPU": extrapolate(r_cpu.profile, small).total,
            "GSNP": extrapolate(r_gpu.profile, small).total,
        }
        for k in totals:
            totals[k] += t[k]
        print(
            f"{spec.name:>10s} {small.n_sites:>8d} {t['SOAPsnp']:>9.0f} "
            f"{t['GSNP_CPU']:>9.0f} {t['GSNP']:>7.1f} "
            f"{t['SOAPsnp'] / t['GSNP']:>7.0f}x "
            f"{'yes' if consistent else 'NO!'}"
        )
        assert consistent

    print(
        f"\nmodeled full-scale totals over {len(specs)} sequences: "
        f"SOAPsnp {totals['SOAPsnp'] / 3600:.1f} h, "
        f"GSNP_CPU {totals['GSNP_CPU'] / 3600:.1f} h, "
        f"GSNP {totals['GSNP'] / 3600:.2f} h "
        f"({totals['SOAPsnp'] / totals['GSNP']:.0f}x)"
    )
    print("paper (all 24): ~3 days SOAPsnp vs ~2 hours GSNP (~40x)")


if __name__ == "__main__":
    main()
