"""Public API surface: exports, docstrings, version."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.align",
    "repro.api",
    "repro.bench",
    "repro.compress",
    "repro.core",
    "repro.exec",
    "repro.formats",
    "repro.gpusim",
    "repro.gpusim.primitives",
    "repro.seqsim",
    "repro.serve",
    "repro.soapsnp",
    "repro.sortnet",
    "repro.stats",
]


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for pkg_name in PACKAGES:
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.{name}"

    def test_all_sorted_for_readability(self):
        for pkg_name in PACKAGES:
            pkg = importlib.import_module(pkg_name)
            names = [n for n in getattr(pkg, "__all__", [])]
            assert names == sorted(names), pkg_name

    def test_headline_api_importable(self):
        from repro import (  # noqa: F401
            CH1_SPEC,
            CH21_SPEC,
            Device,
            GsnpDetector,
            GsnpPipeline,
            SoapsnpPipeline,
            detect_snps,
            generate_dataset,
            verify_engines,
        )


class TestDocumentation:
    def _public_members(self, module):
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if getattr(obj, "__module__", "").startswith("repro"):
                    yield name, obj

    def test_every_module_documented(self):
        for _, mod_name, _ in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            mod = importlib.import_module(mod_name)
            assert mod.__doc__, f"{mod_name} lacks a module docstring"

    def test_every_public_item_documented(self):
        undocumented = []
        for _, mod_name, _ in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            mod = importlib.import_module(mod_name)
            for name, obj in self._public_members(mod):
                if obj.__module__ != mod_name:
                    continue  # re-export; documented at its home
                if not inspect.getdoc(obj):
                    undocumented.append(f"{mod_name}.{name}")
        assert not undocumented, undocumented

    def test_public_classes_document_methods(self):
        """Public methods of headline classes carry docstrings."""
        from repro.core.detector import GsnpDetector
        from repro.core.pipeline import GsnpPipeline
        from repro.gpusim.device import Device
        from repro.gpusim.kernel import KernelContext

        for cls in (GsnpDetector, GsnpPipeline, Device, KernelContext):
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name}"
