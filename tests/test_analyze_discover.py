"""Shared kernel discovery: definitions, launch sites, and aliases.

Regression tests for the discovery contract gsnp-lint and gsnp-audit
both build on — naming convention, positional and keyword launch
arguments, and local alias chains — so the two analyzers can never
drift apart on what counts as a kernel.
"""

import ast
import textwrap

from repro.analyze import discover_kernels, iter_python_files


def _discover(src):
    return discover_kernels(ast.parse(textwrap.dedent(src)))


class TestNamingConvention:
    def test_kernel_suffix(self):
        found = _discover(
            """
            def scatter_kernel(ctx, out):
                pass

            def helper(x):
                pass
            """
        )
        assert found.kernel_names() == ["scatter_kernel"]

    def test_nested_defs_are_scanned(self):
        found = _discover(
            """
            def make():
                def inner_kernel(ctx, out):
                    pass
                return inner_kernel
            """
        )
        assert "inner_kernel" in found.kernel_names()


class TestLaunchSites:
    def test_positional_launch(self):
        found = _discover(
            """
            def body(ctx, out):
                pass

            def run(device, out):
                device.launch(body, 32, out)
            """
        )
        assert found.kernel_names() == ["body"]
        assert "body" in found.launched

    def test_keyword_launch(self):
        found = _discover(
            """
            def body(ctx, out):
                pass

            def run(device, out):
                device.launch(kernel=body, n_threads=32, args=(out,))
            """
        )
        assert found.kernel_names() == ["body"]

    def test_enqueue_fn_keyword(self):
        found = _discover(
            """
            def body(ctx, out):
                pass

            def run(stream, out):
                stream.enqueue(fn=body, n_threads=32, args=(out,))
            """
        )
        assert found.kernel_names() == ["body"]

    def test_enqueue_positional(self):
        found = _discover(
            """
            def body(ctx, out):
                pass

            def run(stream, out):
                stream.enqueue(body, 32, out)
            """
        )
        assert found.kernel_names() == ["body"]

    def test_unrelated_calls_ignored(self):
        found = _discover(
            """
            def body(ctx, out):
                pass

            def run(pool, out):
                pool.submit(body, out)
            """
        )
        assert found.kernels == []


class TestAliases:
    def test_local_alias(self):
        found = _discover(
            """
            def body(ctx, out):
                pass

            chosen = body

            def run(device, out):
                device.launch(chosen, 32, out)
            """
        )
        assert found.kernel_names() == ["body"]
        assert found.aliases["chosen"] == "body"

    def test_transitive_alias_chain(self):
        found = _discover(
            """
            def body(ctx, out):
                pass

            a = body
            b = a

            def run(device, out):
                device.launch(b, 32, out)
            """
        )
        assert found.kernel_names() == ["body"]

    def test_alias_cycle_terminates(self):
        found = _discover(
            """
            a = b
            b = a

            def run(device, out):
                device.launch(a, 32, out)
            """
        )
        # No matching def: nothing discovered, and resolution terminates.
        assert found.kernels == []

    def test_keyword_launch_through_alias(self):
        found = _discover(
            """
            def body(ctx, out):
                pass

            chosen = body

            def run(device, out):
                device.launch(n_threads=32, kernel=chosen)
            """
        )
        assert found.kernel_names() == ["body"]


class TestIterPythonFiles:
    def test_mixed_files_and_dirs(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.py").write_text("y = 2\n")
        (sub / "notes.txt").write_text("not python\n")
        lone = tmp_path / "c.py"
        lone.write_text("z = 3\n")

        files = list(iter_python_files([tmp_path / "sub", lone]))
        assert [f.name for f in files] == ["b.py", "c.py"]


class TestLintIntegration:
    def test_keyword_launched_kernel_is_linted(self):
        from repro.analyze import lint_source

        diags = lint_source(textwrap.dedent(
            """
            def body(ctx, arr):
                x = arr.data

            def run(device, arr):
                device.launch(kernel=body, n_threads=32, args=(arr,))
            """
        ), "t.py")
        assert [d.rule for d in diags] == ["GSNP101"]

    def test_aliased_kernel_is_linted(self):
        from repro.analyze import lint_source

        diags = lint_source(textwrap.dedent(
            """
            def body(ctx, arr):
                x = arr.data

            chosen = body

            def run(stream, arr):
                stream.enqueue(fn=chosen, n_threads=32, args=(arr,))
            """
        ), "t.py")
        assert [d.rule for d in diags] == ["GSNP101"]
