"""Posterior calling and the 17-column site summary."""

import numpy as np
import pytest

from repro.align.records import AlignmentBatch
from repro.constants import GENOTYPES
from repro.formats.cns import NO_BASE
from repro.formats.window import Window
from repro.seqsim.datasets import KnownSnpPrior
from repro.soapsnp import (
    CallingParams,
    call_posterior,
    extract_observations,
    is_snp_call,
    summarize_window,
    window_type_likely,
)


@pytest.fixture(scope="module")
def summary_setup(small_dataset, small_batch, small_pm_flat, small_penalty):
    params = CallingParams(read_len=small_batch.read_len)
    window = Window(start=0, end=small_dataset.n_sites, reads=small_batch)
    obs = extract_observations(window)
    tl = window_type_likely(obs, small_pm_flat, small_penalty)
    table = summarize_window(
        obs, 0, small_dataset.reference.codes, small_dataset.prior, tl,
        params, chrom=small_dataset.reference.name,
    )
    return small_dataset, obs, tl, table, params


class TestCallPosterior:
    def test_no_data_calls_hom_ref(self):
        params = CallingParams()
        tl = np.zeros((4, 10))
        ref = np.arange(4)
        rates = np.full(4, 0.001)
        g, q, _ = call_posterior(tl, ref, rates, params)
        for i in range(4):
            assert GENOTYPES[g[i]] == (i, i)

    def test_quality_capped(self):
        params = CallingParams()
        tl = np.zeros((1, 10))
        tl[0, 0] = 0.0
        tl[0, 1:] = -500.0  # overwhelming evidence for genotype 0
        g, q, _ = call_posterior(tl, np.array([0]), np.array([0.001]), params)
        assert q[0] == params.max_quality

    def test_ambiguous_evidence_low_quality(self):
        params = CallingParams()
        tl = np.full((1, 10), -5.0)  # all genotypes identical
        g, q, _ = call_posterior(tl, np.array([0]), np.array([0.5]), params)
        assert q[0] < 20

    def test_log_posterior_shape(self):
        params = CallingParams()
        tl = np.zeros((7, 10))
        _, _, lp = call_posterior(
            tl, np.zeros(7, dtype=int), np.full(7, 0.01), params
        )
        assert lp.shape == (7, 10)


class TestSummarizeWindow:
    def test_row_count_and_positions(self, summary_setup):
        ds, obs, tl, table, _ = summary_setup
        assert table.n_sites == ds.n_sites
        assert table.pos[0] == 1 and table.pos[-1] == ds.n_sites

    def test_validates(self, summary_setup):
        _, _, _, table, _ = summary_setup
        table.validate()

    def test_depth_equals_observation_count(self, summary_setup):
        ds, obs, _, table, _ = summary_setup
        depth = np.zeros(ds.n_sites, dtype=np.int64)
        np.add.at(depth, obs.site, 1)
        assert np.array_equal(table.depth, depth)

    def test_counts_consistent(self, summary_setup):
        _, _, _, table, _ = summary_setup
        assert np.all(table.count_uni_best <= table.count_all_best)
        assert np.all(table.count_all_best <= table.depth)

    def test_second_base_none_has_zero_stats(self, summary_setup):
        _, _, _, table, _ = summary_setup
        none = table.second_base == NO_BASE
        assert np.all(table.count_uni_second[none] == 0)
        assert np.all(table.avg_qual_second[none] == 0)

    def test_best_base_is_ref_at_empty_sites(self, summary_setup):
        _, _, _, table, _ = summary_setup
        empty = table.depth == 0
        if empty.any():
            assert np.array_equal(
                table.best_base[empty], table.ref_base[empty]
            )

    def test_known_snp_flag_matches_prior(self, summary_setup):
        ds, _, _, table, _ = summary_setup
        flagged = set((table.pos[table.known_snp == 1] - 1).tolist())
        assert flagged == set(ds.prior.positions.tolist())

    def test_rank_sum_default_one(self, summary_setup):
        _, _, _, table, _ = summary_setup
        no_second = table.count_uni_second == 0
        assert np.all(table.rank_sum[no_second] == 1.0)

    def test_copy_number_one_without_multihits(self, summary_setup):
        _, _, _, table, _ = summary_setup
        # Sites made only of unique reads have copy number exactly 1.
        pure = (table.depth > 0) & (table.copy_num > 0)
        assert np.all(table.copy_num[pure] >= 1.0)

    def test_calls_recover_planted_snps(self, summary_setup):
        ds, _, _, table, _ = summary_setup
        calls = set((table.pos[is_snp_call(table)] - 1).tolist())
        covered_truth = {
            int(p)
            for p in ds.diploid.snp_positions
            if table.depth[int(p)] >= 4
        }
        recall = len(calls & covered_truth) / max(len(covered_truth), 1)
        assert recall > 0.8

    def test_few_false_positives(self, summary_setup):
        ds, _, _, table, _ = summary_setup
        quality_calls = is_snp_call(table) & (table.quality >= 13)
        calls = set((table.pos[quality_calls] - 1).tolist())
        truth = set(ds.diploid.snp_positions.tolist())
        fp = len(calls - truth)
        assert fp <= max(2, len(calls) // 5)

    def test_avg_quality_bounds(self, summary_setup):
        _, _, _, table, _ = summary_setup
        assert table.avg_qual_best.max() < 64
        assert table.avg_qual_second.max() < 64


class TestIsSnpCall:
    def test_hom_ref_not_called(self):
        from repro.formats.cns import ResultTable

        t = ResultTable.empty("c")
        t.pos = np.array([1], dtype=np.int64)
        t.ref_base = np.array([2], dtype=np.uint8)
        t.genotype = np.array([GENOTYPES.index((2, 2))], dtype=np.uint8)
        assert not is_snp_call(t)[0]

    def test_het_called(self):
        from repro.formats.cns import ResultTable

        t = ResultTable.empty("c")
        t.pos = np.array([1], dtype=np.int64)
        t.ref_base = np.array([0], dtype=np.uint8)
        t.genotype = np.array([GENOTYPES.index((0, 2))], dtype=np.uint8)
        assert is_snp_call(t)[0]
