"""The unified pipeline API: Engine enum, registry, Pipeline protocol."""

import pytest

from repro.api import (
    Engine,
    EngineSpec,
    Pipeline,
    create_pipeline,
    effective_window,
    engine_names,
    get_engine_spec,
    register_engine,
    resolve_engine,
)
from repro.constants import DEFAULT_WINDOW_SOAPSNP
from repro.core.detector import GsnpDetector, detect_snps
from repro.core.pipeline import GsnpPipeline
from repro.soapsnp.pipeline import SoapsnpPipeline


class TestEngine:
    def test_enum_equals_legacy_string(self):
        assert Engine.GSNP == "gsnp"
        assert Engine.GSNP_CPU == "gsnp_cpu"
        assert Engine.SOAPSNP == "soapsnp"
        assert str(Engine.GSNP) == "gsnp"

    def test_resolve_accepts_both_spellings(self):
        assert resolve_engine("gsnp") is Engine.GSNP
        assert resolve_engine(Engine.SOAPSNP) is Engine.SOAPSNP

    def test_resolve_rejects_unknown_listing_registry(self):
        with pytest.raises(ValueError) as err:
            resolve_engine("cuda")
        for name in engine_names():
            assert repr(name) in str(err.value)

    def test_registry_lists_all_three(self):
        assert set(engine_names()) >= {"gsnp", "gsnp_cpu", "soapsnp"}


class TestRegistry:
    def test_specs_resolve(self):
        for name in engine_names():
            spec = get_engine_spec(name)
            assert spec.name == name
            assert spec.summary
            assert spec.label

    def test_soapsnp_window_cap(self):
        assert (
            effective_window("soapsnp", 1_000_000) == DEFAULT_WINDOW_SOAPSNP
        )
        assert effective_window("gsnp", 1_000_000) == 1_000_000
        pipe = create_pipeline("soapsnp", window_size=1_000_000)
        assert pipe.window_size == DEFAULT_WINDOW_SOAPSNP

    def test_create_pipeline_types(self):
        assert isinstance(create_pipeline(Engine.GSNP), GsnpPipeline)
        assert isinstance(create_pipeline(Engine.SOAPSNP), SoapsnpPipeline)
        assert create_pipeline(Engine.GSNP).mode == "gpu"
        assert create_pipeline(Engine.GSNP_CPU).mode == "cpu"

    def test_extension_engine_registration(self):
        name = "test_ext_engine"
        register_engine(EngineSpec(
            name=name,
            summary="registry extension for this test",
            factory=lambda params, window_size, variant, device:
                GsnpPipeline(window_size=window_size, mode="cpu"),
        ))
        try:
            assert name in engine_names()
            assert resolve_engine(name) == name  # no enum member: raw name
            pipe = create_pipeline(name, window_size=2000)
            assert pipe.window_size == 2000
        finally:
            from repro import api

            del api._REGISTRY[name]


class TestProtocol:
    def test_both_pipelines_satisfy_protocol(self):
        assert isinstance(GsnpPipeline(window_size=1000), Pipeline)
        assert isinstance(SoapsnpPipeline(window_size=1000), Pipeline)

    def test_protocol_dispatch_uniform(self, tiny_dataset):
        """One loop over the registry, zero per-engine branches."""
        tables = []
        for name in ("gsnp", "gsnp_cpu", "soapsnp"):
            pipe = create_pipeline(name, window_size=1000)
            calib = pipe.calibrate(tiny_dataset)
            result = pipe.run(tiny_dataset, calibration=calib)
            tables.append(result.table)
        assert tables[0].equals(tables[1])
        assert tables[0].equals(tables[2])


class TestDetectorApi:
    def test_detector_accepts_enum_and_string(self, tiny_dataset):
        a = GsnpDetector(engine=Engine.GSNP_CPU).run(tiny_dataset)
        b = GsnpDetector(engine="gsnp_cpu").run(tiny_dataset)
        assert a.table.equals(b.table)

    def test_detector_rejects_unknown(self):
        with pytest.raises(ValueError, match="valid engines are"):
            GsnpDetector(engine="nope")

    def test_detect_snps_accepts_enum(self, tiny_dataset):
        table, calls = detect_snps(tiny_dataset, engine=Engine.GSNP_CPU)
        assert table.n_sites == tiny_dataset.n_sites

    def test_from_files(self, tiny_dataset, tmp_path):
        from repro.align.records import AlignmentBatch
        from repro.formats.fasta import write_fasta
        from repro.formats.prior import write_prior
        from repro.formats.soap import write_soap

        fasta = tmp_path / "ref.fa"
        soap = tmp_path / "reads.soap"
        prior = tmp_path / "known.prior"
        write_fasta(fasta, [tiny_dataset.reference])
        write_soap(soap, AlignmentBatch.from_read_set(tiny_dataset.reads))
        write_prior(
            prior, tiny_dataset.reference.name, tiny_dataset.prior
        )

        det = GsnpDetector.from_files(
            fasta, soap, prior, engine="gsnp_cpu", window_size=1000
        )
        result = det.run()  # dataset bound by from_files
        direct = GsnpDetector(
            engine="gsnp_cpu", window_size=1000
        ).run(tiny_dataset)
        assert result.table.equals(direct.table)

    def test_run_without_dataset_raises(self):
        with pytest.raises(ValueError, match="no dataset"):
            GsnpDetector().run()
