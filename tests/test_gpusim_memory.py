"""Coalescing analysis and device arrays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.gpusim.memory import DeviceArray, count_transactions


class TestCountTransactions:
    def test_fully_coalesced_4byte(self):
        # 32 consecutive 4-byte words span exactly one 128-byte segment.
        assert count_transactions(np.arange(32), 4) == 1

    def test_fully_coalesced_8byte(self):
        # 32 consecutive 8-byte words span two segments.
        assert count_transactions(np.arange(32), 8) == 2

    def test_fully_scattered(self):
        # Strides of 128 bytes: each lane its own segment.
        assert count_transactions(np.arange(32) * 32, 4) == 32

    def test_same_address_merges(self):
        assert count_transactions(np.zeros(32, dtype=int), 4) == 1

    def test_two_warps(self):
        assert count_transactions(np.arange(64), 4) == 2

    def test_partial_warp_padded(self):
        # 10 active lanes in one warp, consecutive: one transaction.
        assert count_transactions(np.arange(10), 4) == 1

    def test_inactive_lanes_free(self):
        idx = np.arange(32)
        idx[16:] = -1
        assert count_transactions(idx, 4) == 1

    def test_all_inactive_warp(self):
        assert count_transactions(np.full(32, -1), 4) == 0

    def test_empty(self):
        assert count_transactions(np.empty(0, dtype=int), 4) == 0

    def test_stride_two_doubles_segments(self):
        # stride-2 4-byte: warp touches 256 bytes = 2 segments.
        assert count_transactions(np.arange(32) * 2, 4) == 2

    def test_byte_sized_elements(self):
        # 128 one-byte lanes over 4 warps within one segment each... each
        # warp of 32 bytes fits one segment, but warps don't share.
        assert count_transactions(np.arange(128), 1) == 4

    def test_custom_warp_and_segment(self):
        assert count_transactions(np.arange(16), 4, warp_size=16,
                                  segment_bytes=64) == 1

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                 max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, idx):
        """1 <= tx <= n for any all-active access pattern."""
        idx = np.asarray(idx)
        tx = count_transactions(idx, 4)
        assert 1 <= tx <= idx.size

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=32,
                 max_size=32)
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_bruteforce_single_warp(self, idx):
        idx = np.asarray(idx)
        expected = len({int(a) * 4 // 128 for a in idx})
        assert count_transactions(idx, 4) == expected


class TestDeviceArray:
    def test_properties(self):
        arr = DeviceArray("x", np.zeros((4, 5), dtype=np.float64))
        assert arr.shape == (4, 5)
        assert arr.size == 20
        assert arr.nbytes == 160
        assert arr.itemsize == 8

    def test_invalid_space_rejected(self):
        with pytest.raises(DeviceError):
            DeviceArray("x", np.zeros(1), space="texture")

    def test_freed_array_raises(self):
        arr = DeviceArray("x", np.zeros(4))
        arr._freed = True
        with pytest.raises(DeviceError):
            arr.require_live()

    def test_flat_view_shares_memory(self):
        arr = DeviceArray("x", np.zeros((2, 2)))
        arr.flat_view()[0] = 7.0
        assert arr.data[0, 0] == 7.0

    def test_copy_to_host_detached(self):
        arr = DeviceArray("x", np.zeros(3))
        h = arr.copy_to_host()
        h[0] = 1.0
        assert arr.data[0] == 0.0
