"""High-level detector API."""

import numpy as np
import pytest

from repro.core.detector import Accuracy, GsnpDetector, detect_snps


class TestDetector:
    @pytest.fixture(scope="class")
    def detector_result(self, small_dataset):
        det = GsnpDetector(engine="gsnp_cpu", min_quality=13)
        res = det.run(small_dataset)
        return det, res

    def test_run_returns_table(self, detector_result, small_dataset):
        _, res = detector_result
        assert res.table.n_sites == small_dataset.n_sites

    def test_calls_filtered_by_quality(self, detector_result):
        det, res = detector_result
        calls = det.calls(res.table)
        assert all(c.quality >= 13 for c in calls)

    def test_calls_have_metadata(self, detector_result, small_dataset):
        det, res = detector_result
        for c in det.calls(res.table):
            assert c.chrom == small_dataset.reference.name
            assert 1 <= c.pos <= small_dataset.n_sites

    def test_score_against_truth(self, detector_result, small_dataset):
        det, res = detector_result
        acc = det.score(res.table, small_dataset, min_quality=13)
        assert acc.recall > 0.6
        assert acc.precision > 0.6

    def test_all_engines_same_calls(self, small_dataset):
        tables = {}
        for engine in ("soapsnp", "gsnp_cpu", "gsnp"):
            det = GsnpDetector(engine=engine, window_size=2000)
            tables[engine] = det.run(small_dataset).table
        assert tables["soapsnp"].equals(tables["gsnp_cpu"])
        assert tables["soapsnp"].equals(tables["gsnp"])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            GsnpDetector(engine="fpga")

    def test_detect_snps_convenience(self, small_dataset):
        table, calls = detect_snps(
            small_dataset, engine="gsnp_cpu", min_quality=20,
            window_size=2000,
        )
        assert table.n_sites == small_dataset.n_sites
        assert isinstance(calls, list)


class TestAccuracy:
    def test_precision_recall(self):
        a = Accuracy(true_positives=8, false_positives=2, false_negatives=4)
        assert a.precision == pytest.approx(0.8)
        assert a.recall == pytest.approx(8 / 12)

    def test_degenerate_cases(self):
        a = Accuracy(0, 0, 0)
        assert a.precision == 1.0 and a.recall == 1.0
