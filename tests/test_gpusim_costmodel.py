"""Cost models: roofline arithmetic and the paper's bandwidth identities."""

import numpy as np
import pytest

from repro.constants import BASE_OCC_SIZE
from repro.gpusim.costmodel import (
    CpuCostModel,
    CpuEvents,
    DiskEvents,
    DiskModel,
    GpuCostModel,
)
from repro.gpusim.counters import KernelCounters
from repro.gpusim.spec import BGI_PLATFORM, CpuSpec, DiskSpec, GpuSpec


class TestGpuCostModel:
    def test_memory_time_prices_transactions(self):
        m = GpuCostModel()
        c = KernelCounters(g_load=1000)
        expected = 1000 * 128 / 82e9
        assert m.memory_time(c) == pytest.approx(expected)

    def test_roofline_takes_max(self):
        m = GpuCostModel()
        c = KernelCounters(inst_warp=10**9, g_load=1)
        assert m.kernel_time(c) == pytest.approx(m.instruction_time(c))
        c2 = KernelCounters(inst_warp=1, g_load=10**9)
        assert m.kernel_time(c2) == pytest.approx(m.memory_time(c2))

    def test_launch_overhead_added(self):
        m = GpuCostModel()
        c = KernelCounters(launches=100)
        assert m.kernel_time(c) == pytest.approx(100 * m.spec.launch_overhead)

    def test_random_access_effective_bandwidth_matches_measured(self):
        """Fully random 4-byte loads should land near the measured
        3.2 GB/s of the paper's M2050."""
        m = GpuCostModel()
        n = 10**6
        c = KernelCounters(g_load=n, g_load_bytes=4 * n)
        bw = c.g_load_bytes / m.memory_time(c)
        assert 2e9 < bw < 4e9

    def test_coalesced_effective_bandwidth_near_peak(self):
        m = GpuCostModel()
        n = 10**6  # segments, fully used
        c = KernelCounters(g_load=n, g_load_bytes=128 * n)
        bw = c.g_load_bytes / m.memory_time(c)
        assert bw == pytest.approx(82e9)

    def test_transfer_time(self):
        m = GpuCostModel()
        assert m.transfer_time(5_000_000_000) == pytest.approx(1.0)


class TestCpuCostModel:
    def test_formula1_paper_estimate(self):
        """Formula (1) with the paper's constants: Ch.1's dense scan is
        ~7700s, i.e. 65-70% of the measured 12267s likelihood time."""
        m = CpuCostModel()
        t = m.base_occ_scan_time(247_000_000, BASE_OCC_SIZE)
        assert 0.60 <= t / 12267 <= 0.70

    def test_recycle_estimate_share(self):
        m = CpuCostModel()
        t = m.base_occ_scan_time(247_000_000, BASE_OCC_SIZE)
        assert 0.85 <= t / 8214 <= 1.0

    def test_event_terms_additive(self):
        m = CpuCostModel()
        e = CpuEvents(
            seq_read_bytes=4_200_000_000,
            random_accesses=10**6,
            instructions=2_000_000_000,
            log_calls=10**6,
        )
        expected = 1.0 + 10**6 * 60e-9 + 1.0 + 10**6 * 30e-9
        assert m.time(e) == pytest.approx(expected)

    def test_events_merge(self):
        a = CpuEvents(seq_read_bytes=10, instructions=5)
        b = CpuEvents(seq_read_bytes=1, log_calls=2)
        a.merge(b)
        assert a.seq_read_bytes == 11 and a.log_calls == 2 and a.instructions == 5

    def test_events_scaled(self):
        e = CpuEvents(seq_read_bytes=10, random_accesses=3)
        s = e.scaled(1000)
        assert s.seq_read_bytes == 10_000 and s.random_accesses == 3000
        assert e.seq_read_bytes == 10  # original untouched


class TestDiskModel:
    def test_sequential_write(self):
        m = DiskModel()
        assert m.time(DiskEvents(write_bytes=90_000_000)) == pytest.approx(1.0)

    def test_buffered_read_faster(self):
        m = DiskModel()
        cold = m.time(DiskEvents(read_bytes=10**9))
        warm = m.time(DiskEvents(read_buffered_bytes=10**9))
        assert warm < cold

    def test_format_cost_dominates_small_writes(self):
        """The paper: output is dominated by conversion + disk; formatting
        17 GB at 20ns/byte is ~340s on top of ~190s disk."""
        m = DiskModel()
        e = DiskEvents(write_bytes=17 * 10**9, formatted_bytes=17 * 10**9)
        t = m.time(e)
        assert 450 <= t <= 650  # paper Table I: 550s

    def test_disk_events_scaled(self):
        e = DiskEvents(read_bytes=7, parsed_bytes=2)
        s = e.scaled(10)
        assert s.read_bytes == 70 and s.parsed_bytes == 20


class TestSpecs:
    def test_default_platform_matches_paper(self):
        assert BGI_PLATFORM.gpu.bw_coalesced == 82e9
        assert BGI_PLATFORM.gpu.bw_random == 3.2e9
        assert BGI_PLATFORM.cpu.bw_sequential == 4.2e9
        assert BGI_PLATFORM.disk.bw_sequential == 90e6

    def test_m2050_shape(self):
        g = GpuSpec()
        assert g.cores == 448 and g.global_mem_bytes == 3 * 1024**3
        assert g.shared_mem_per_block == 48 * 1024
        assert g.l2_bytes == 768 * 1024

    def test_specs_frozen(self):
        with pytest.raises(AttributeError):
            GpuSpec().cores = 1
        with pytest.raises(AttributeError):
            CpuSpec().cores = 1
        with pytest.raises(AttributeError):
            DiskSpec().bw_sequential = 1
