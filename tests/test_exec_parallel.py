"""Sharded parallel executor: planning, parity, retries, fallback.

The load-bearing guarantee (ISSUE acceptance): at any worker count, the
sharded executor's calls, compressed output and merged event counters are
identical to a serial run's — for all three engines.
"""

import pytest

from repro.align.records import AlignmentBatch
from repro.api import Engine, create_pipeline
from repro.core.detector import GsnpDetector
from repro.errors import PipelineError, ShardError
from repro.exec import (
    ExecConfig,
    SerialPool,
    align_shard_size,
    execute,
    plan_shards,
)
from repro.formats.soap import write_soap

WINDOW = 512
ENGINES = ("gsnp", "gsnp_cpu", "soapsnp")


def _counters(profile):
    """Event counters of a profile, excluding measured wall seconds."""
    out = {}
    for name, rec in profile.records.items():
        gpu = rec.gpu.as_dict() if hasattr(rec.gpu, "as_dict") else vars(rec.gpu)
        out[name] = {
            "cpu": dict(vars(rec.cpu)),
            "disk": dict(vars(rec.disk)),
            "gpu": dict(gpu),
            "transfer_bytes": rec.transfer_bytes,
            "fixed_seconds": rec.fixed_seconds,
        }
    return out


def _serial(engine, dataset, output_path=None):
    pipe = create_pipeline(engine, window_size=WINDOW)
    return pipe.run(dataset, output_path=output_path)


class TestPlanShards:
    def test_tiles_site_range(self):
        shards = plan_shards(10_000, 512, shard_size=2000, workers=2)
        assert shards[0].start == 0
        assert shards[-1].end == 10_000
        for prev, cur in zip(shards, shards[1:]):
            assert cur.start == prev.end
            assert cur.index == prev.index + 1

    def test_boundaries_window_aligned(self):
        shards = plan_shards(10_000, 512, shard_size=1000, workers=2)
        for s in shards[:-1]:
            assert s.start % 512 == 0 and s.end % 512 == 0

    def test_default_size_scales_with_workers(self):
        few = plan_shards(100_000, 512, workers=1)
        many = plan_shards(100_000, 512, workers=4)
        assert len(many) > len(few)
        assert len(few) >= 4  # ~4 shards per worker for load balancing

    def test_align_shard_size(self):
        assert align_shard_size(1000, 512) == 1024
        assert align_shard_size(512, 512) == 512
        with pytest.raises(PipelineError):
            align_shard_size(0, 512)

    def test_empty_range_rejected(self):
        with pytest.raises(PipelineError):
            plan_shards(0, 512)


class TestParity:
    """Bitwise identity with serial, all engines, 2 and 4 workers."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bitwise_identical(
        self, engine, workers, small_dataset, tmp_path
    ):
        serial_path = tmp_path / "serial.out"
        par_path = tmp_path / "par.out"
        serial = _serial(engine, small_dataset, output_path=serial_path)
        par = execute(
            small_dataset,
            engine,
            window_size=WINDOW,
            output_path=par_path,
            workers=workers,
        )
        assert par.table.equals(serial.table)
        assert getattr(par, "compressed_output", b"") == getattr(
            serial, "compressed_output", b""
        )
        assert par_path.read_bytes() == serial_path.read_bytes()
        assert par.output_bytes == serial.output_bytes
        assert _counters(par.profile) == _counters(serial.profile)

    def test_compressed_roundtrip(self, small_dataset, tmp_path):
        from repro.compress.reader import CompressedResultReader

        path = tmp_path / "calls.gsnp"
        par = execute(
            small_dataset, "gsnp", window_size=WINDOW,
            output_path=path, workers=2,
        )
        table = CompressedResultReader(path).read_all()
        assert table.equals(par.table)

    def test_streaming_soap_input(self, small_dataset, tmp_path):
        """ShardBatchReader-fed workers match the in-memory path."""
        soap = tmp_path / "reads.soap"
        write_soap(soap, AlignmentBatch.from_read_set(small_dataset.reads))
        serial = _serial("gsnp", small_dataset)
        par = execute(
            small_dataset, "gsnp", window_size=WINDOW,
            soap_path=soap, workers=2,
        )
        assert par.extras["exec"]["streaming"]
        assert par.table.equals(serial.table)
        assert par.compressed_output == serial.compressed_output
        assert _counters(par.profile) == _counters(serial.profile)

    def test_serial_fallback_identical(self, small_dataset):
        serial = _serial("gsnp_cpu", small_dataset)
        par = execute(
            small_dataset, "gsnp_cpu", window_size=WINDOW,
            workers=4, force_serial=True,
        )
        assert par.extras["exec"]["pool"] == "serial"
        assert par.table.equals(serial.table)
        assert _counters(par.profile) == _counters(serial.profile)

    def test_engine_enum_accepted(self, small_dataset):
        par = execute(
            small_dataset, Engine.GSNP_CPU, window_size=WINDOW, workers=2
        )
        assert par.table.equals(_serial("gsnp_cpu", small_dataset).table)

    def test_detector_workers_path(self, small_dataset):
        serial = GsnpDetector(
            engine="gsnp", window_size=WINDOW
        ).run(small_dataset)
        par = GsnpDetector(
            engine="gsnp", window_size=WINDOW, workers=2
        ).run(small_dataset)
        assert par.table.equals(serial.table)
        assert par.compressed_output == serial.compressed_output
        assert "exec" in par.extras

    def test_shard_metrics_reported(self, small_dataset):
        par = execute(
            small_dataset, "gsnp_cpu", window_size=WINDOW,
            workers=2, shard_size=1024,
        )
        shards = par.extras["shards"]
        assert len(shards) == 4  # 4000 sites / 1024-aligned shards
        assert [s["index"] for s in shards] == [0, 1, 2, 3]
        assert all(s["wall"] > 0 for s in shards)
        assert all(s["sites_per_second"] > 0 for s in shards)
        meta = par.extras["exec"]
        assert meta["workers"] == 2
        assert meta["n_shards"] == 4
        assert meta["wall"] > 0


class TestRetries:
    def test_injected_failure_retried(self, small_dataset):
        serial = _serial("gsnp_cpu", small_dataset)
        par = execute(
            small_dataset, "gsnp_cpu", window_size=WINDOW,
            workers=2, shard_size=1024,
            config=ExecConfig(inject_failures={1: 1}),
        )
        assert par.table.equals(serial.table)
        assert _counters(par.profile) == _counters(serial.profile)
        attempts = {
            s["index"]: s["attempts"] for s in par.extras["shards"]
        }
        assert attempts[1] == 2  # failed once, succeeded on retry
        assert attempts[0] == 1
        assert par.extras["exec"]["retries"] == 1

    def test_exhausted_retries_surface_shard_context(self, small_dataset):
        with pytest.raises(ShardError) as err:
            execute(
                small_dataset, "gsnp_cpu", window_size=WINDOW,
                workers=2, shard_size=1024, max_retries=1,
                inject_failures={2: 10},
            )
        assert err.value.shard_index == 2
        assert err.value.site_range == (2048, 3072)
        assert err.value.attempts == 2
        assert "shard 2" in str(err.value)

    def test_retry_in_serial_pool(self, small_dataset):
        par = execute(
            small_dataset, "gsnp_cpu", window_size=WINDOW,
            workers=1, shard_size=1024, inject_failures={0: 2},
        )
        serial = _serial("gsnp_cpu", small_dataset)
        assert par.table.equals(serial.table)
        attempts = {
            s["index"]: s["attempts"] for s in par.extras["shards"]
        }
        assert attempts[0] == 3


class TestPools:
    def test_serial_pool_interface(self):
        ran = []
        pool = SerialPool(initializer=lambda v: ran.append(v), initargs=(7,))
        assert ran == [7]
        h = pool.submit(lambda x: x * 2, 21)
        assert pool.wait_any([h]) == [h]
        assert h.outcome() == ("ok", 42)
        h2 = pool.submit(lambda x: 1 / x, 0)
        kind, exc = h2.outcome()
        assert kind == "err" and isinstance(exc, ZeroDivisionError)
        pool.shutdown()


@pytest.mark.tier2
class TestScaling:
    def test_parallel_scaling_consistent(self):
        from repro.bench.harness import exp_parallel_scaling

        rows = exp_parallel_scaling(
            "ch21-sim", fraction=0.2, workers=(1, 2, 4, 8)
        )
        assert all(r["consistent"] for r in rows.values())
        assert all(r["wall"] > 0 for r in rows.values())
