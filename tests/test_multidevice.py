"""Multi-device pool + heterogeneous work-stealing scheduler tests.

The contract under test: for any device count, any steal schedule, any
worker count, fusion on or off, sanitizer on or off, and any seeded
device failure, the merged output is bitwise identical to the serial
single-device run — the scheduler only ever changes *where* a shard
runs, never what it produces.
"""

import warnings

import numpy as np
import pytest

from repro.api import JobSpec, create_pipeline
from repro.errors import DeviceError
from repro.exec import execute, pool_stats
from repro.faults.degrade import DegradationWarning
from repro.faults.plan import FaultPlan, FaultSpec
from repro.gpusim.costmodel import (
    LaneUsage,
    PoolCostModel,
    predict_lane_rates,
    predict_split,
)
from repro.gpusim.pool import DevicePool, HostLink, acquire_device
from repro.gpusim.spec import HostLinkSpec
from repro.seqsim.datasets import DatasetSpec, generate_dataset

WINDOW = 800


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(DatasetSpec(
        name="multidev", n_sites=12_000, depth=6.0, coverage=0.95, seed=11,
    ))


@pytest.fixture(scope="module")
def serial(dataset):
    """The single-device serial oracle every pool run must match."""
    return create_pipeline(
        spec=JobSpec(engine="gsnp", window=WINDOW)
    ).run(dataset)


def _run(dataset, **kw):
    return execute(dataset, spec=JobSpec(engine="gsnp", window=WINDOW, **kw))


def _assert_parity(res, serial):
    assert res.table.equals(serial.table)
    assert res.compressed_output == serial.compressed_output


class TestParityMatrix:
    """devices x workers x fusion x steal, all bitwise identical."""

    @pytest.mark.parametrize("devices,cpu_steal,fusion,workers", [
        (2, False, False, 1),
        (2, False, True, 1),
        (2, True, False, 1),
        (2, True, True, 3),
        (4, False, True, 1),
        (4, True, False, 2),
    ])
    def test_pool_matches_serial(
        self, dataset, serial, devices, cpu_steal, fusion, workers
    ):
        res = _run(
            dataset, devices=devices, cpu_steal=cpu_steal,
            fusion=fusion, workers=workers,
        )
        _assert_parity(res, serial)
        h = res.extras["exec"]["hetero"]
        assert h["devices"] == devices
        assert h["cpu_steal"] is cpu_steal
        assert sum(h["initial_split"]) == res.extras["exec"]["n_shards"]
        assert len(h["per_device"]) == devices

    def test_sanitizer_on(self, dataset, serial):
        res = _run(dataset, devices=2, cpu_steal=True, sanitize=True)
        _assert_parity(res, serial)

    def test_cpu_lane_steals(self, dataset, serial):
        """The host lane starts with zero shards (the roofline predicts
        the modeled GPU far faster) so its first act is a steal."""
        res = _run(dataset, devices=2, cpu_steal=True)
        h = res.extras["exec"]["hetero"]
        assert h["initial_split"][-1] == 0
        assert h["steals"] >= 1
        _assert_parity(res, serial)

    def test_meta_accounting(self, dataset, serial):
        res = _run(dataset, devices=2, fusion=True)
        h = res.extras["exec"]["hetero"]
        assert h["pool_launches"] > 0
        assert h["link"]["h2d_bytes"] > 0
        assert h["link"]["serialized_seconds"] > 0
        assert h["modeled"]["makespan_seconds"] > 0
        assert len(h["lanes"]) == 2
        assert sum(l["shards"] for l in h["lanes"]) \
            == res.extras["exec"]["n_shards"]
        stats = pool_stats()
        assert stats["jobs"] >= 1
        assert stats["last"]["devices"] == 2


class TestDeviceFailure:
    """A lane dying mid-run degrades the ladder, never the bytes."""

    def test_one_device_dies(self, dataset, serial):
        plan = FaultPlan((FaultSpec(
            site="gpusim.device.fail", key=1, times=1, kind="alloc",
        ),))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = _run(dataset, devices=2, cpu_steal=True, faults=plan)
        _assert_parity(res, serial)
        h = res.extras["exec"]["hetero"]
        dead = [l["lane"] for l in h["lanes"] if l["dead"]]
        assert dead == ["gpu1"]
        rungs = [
            w for w in caught if issubclass(w.category, DegradationWarning)
        ]
        assert any("device-failed" in str(w.message) for w in rungs)
        # Survivors absorbed the dead lane's deque.
        survivors = [l for l in h["lanes"] if not l["dead"]]
        assert sum(l["shards"] for l in survivors) \
            == res.extras["exec"]["n_shards"] - sum(
                l["shards"] for l in h["lanes"] if l["dead"]
            )

    def test_error_kind_also_retires(self, dataset, serial):
        plan = FaultPlan((FaultSpec(
            site="gpusim.device.fail", key=0, times=1, kind="error",
        ),))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            res = _run(dataset, devices=2, faults=plan)
        _assert_parity(res, serial)
        assert [
            l["lane"]
            for l in res.extras["exec"]["hetero"]["lanes"] if l["dead"]
        ] == ["gpu0"]

    def test_all_devices_die_falls_back_to_host(self, dataset, serial):
        plan = FaultPlan(tuple(
            FaultSpec(site="gpusim.device.fail", key=k, times=1, kind="alloc")
            for k in (0, 1)
        ))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = _run(dataset, devices=2, faults=plan)
        _assert_parity(res, serial)
        h = res.extras["exec"]["hetero"]
        assert all(l["dead"] for l in h["lanes"] if l["kind"] == "gpu")
        # The coordinator's fallback host lane ran every leftover shard.
        fallback = [l for l in h["lanes"] if l["kind"] == "cpu"]
        assert sum(l["shards"] for l in fallback) \
            == res.extras["exec"]["n_shards"]
        assert any(
            "host-engine" in str(w.message) for w in caught
            if issubclass(w.category, DegradationWarning)
        )

    def test_shard_retry_rung_still_merges(self, dataset, serial):
        plan = FaultPlan((FaultSpec(
            site="exec.shard.error", key=2, times=1,
        ),))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = _run(dataset, devices=2, faults=plan)
        _assert_parity(res, serial)
        assert any(
            "shard-retry" in str(w.message) for w in caught
            if issubclass(w.category, DegradationWarning)
        )
        assert res.extras["exec"]["retries"] == 1


class TestResidencyKeying:
    """Two pool devices must never alias one table upload."""

    def _tables(self):
        pm = np.linspace(0.01, 1.0, 64 * 256 * 16)
        penalty = np.arange(256, dtype=np.int64)
        return pm, penalty

    def test_per_device_upload_and_key(self):
        from repro.core.likelihood import GsnpTables

        pool = DevicePool(2)
        pm, penalty = self._tables()
        d0, d1 = pool.device(0), pool.device(1)
        t0 = GsnpTables.load(d0, pm, penalty)
        t1 = GsnpTables.load(d1, pm, penalty)
        # Distinct uploads: each device moved its own copy over the link.
        assert d0.transfers.h2d_bytes > 0
        assert d1.transfers.h2d_bytes > 0
        assert t0.pm_dev is not t1.pm_dev
        # Same-device reload is a residency hit, cross-device never is.
        before = d0.transfers.h2d_bytes
        again = GsnpTables.load(d0, pm, penalty)
        assert again is t0
        assert d0.transfers.h2d_bytes == before
        # The resident keys embed the owning device's identity.
        summary = pool.resident_summary()
        for key, holders in summary.items():
            assert len(holders) == 1, (
                f"resident key {key!r} shared by devices {holders}"
            )
        pool.release()

    def test_acquire_device_standalone(self):
        dev = acquire_device(sanitize=True)
        assert dev.sanitizer is not None
        dev.sanitize_teardown(strict=True)


class TestCostModel:
    def test_predict_split_sums_and_orders(self):
        counts = predict_split(10, 4, False, 100.0, 1.0)
        assert sum(counts) == 10 and len(counts) == 4
        assert max(counts) - min(counts) <= 1
        counts = predict_split(9, 2, True, 100.0, 1.0)
        assert len(counts) == 3 and sum(counts) == 9
        # The slow CPU lane seeds empty; remainders go to GPU lanes.
        assert counts[-1] == 0

    def test_predict_split_validates(self):
        with pytest.raises(ValueError):
            predict_split(-1, 2, False, 1.0, 1.0)
        with pytest.raises(ValueError):
            predict_split(4, 0, False, 1.0, 1.0)
        with pytest.raises(ValueError):
            predict_split(4, 2, False, 0.0, 1.0)

    def test_predict_lane_rates_gpu_faster(self):
        gpu, cpu = predict_lane_rates(10_000, 10_000 * 10)
        assert gpu > cpu > 0

    def test_host_link_serializes(self):
        spec = HostLinkSpec(bandwidth=1e9, per_transfer_overhead=1e-6)
        link = HostLink(spec)
        link.charge(0, 500_000_000, "h2d")
        link.charge(1, 500_000_000, "d2h")
        link.note_launch(0)
        total = link.total()
        assert total.total_bytes == 1_000_000_000
        assert total.total_count == 2
        assert total.launches == 1
        assert link.serialized_seconds() == pytest.approx(1.0 + 2e-6)
        with pytest.raises(DeviceError):
            link.charge(0, 1, "sideways")

    def test_pool_makespan(self):
        model = PoolCostModel(HostLinkSpec(
            bandwidth=1e9, per_transfer_overhead=0.0,
        ))
        lanes = [
            LaneUsage(compute_seconds=2.0, transfer_bytes=10**9,
                      transfer_count=1),
            LaneUsage(compute_seconds=3.0, transfer_bytes=10**9,
                      transfer_count=1),
        ]
        # max(compute) + serialized link of both lanes' bytes.
        assert model.makespan(lanes) == pytest.approx(3.0 + 2.0)
        assert model.makespan([]) == 0.0


class TestSpecValidation:
    def test_devices_require_gsnp_engine(self, dataset):
        with pytest.raises(ValueError):
            JobSpec(engine="soapsnp", devices=2).validate()
        with pytest.raises(ValueError):
            JobSpec(engine="gsnp_cpu", cpu_steal=True).validate()

    def test_streaming_rejected(self, dataset, tmp_path):
        with pytest.raises(ValueError, match="soap_path"):
            execute(
                dataset,
                spec=JobSpec(engine="gsnp", window=WINDOW, devices=2),
                soap_path=str(tmp_path / "reads.soap"),
            )
