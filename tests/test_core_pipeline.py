"""GSNP pipeline: three-engine consistency, compression, accounting."""

import numpy as np
import pytest

from repro.bench.events import COMPONENTS
from repro.compress.columnar import decode_table
from repro.core.pipeline import GsnpPipeline
from repro.errors import PipelineError
from repro.soapsnp import SoapsnpPipeline


@pytest.fixture(scope="module")
def three_results(small_dataset):
    soap = SoapsnpPipeline(window_size=1500).run(small_dataset)
    cpu = GsnpPipeline(window_size=2000, mode="cpu").run(small_dataset)
    gpu = GsnpPipeline(window_size=2000, mode="gpu").run(small_dataset)
    return soap, cpu, gpu


class TestConsistency:
    """The paper's headline correctness claim: GSNP produces exactly the
    same result as SOAPsnp (§IV-G) — here across all three engines and
    regardless of window boundaries."""

    def test_gsnp_cpu_equals_soapsnp(self, three_results):
        soap, cpu, _ = three_results
        assert cpu.table.equals(soap.table)

    def test_gsnp_gpu_equals_soapsnp(self, three_results):
        soap, _, gpu = three_results
        assert gpu.table.equals(soap.table)

    def test_window_size_invariance_gpu(self, three_results, small_dataset):
        _, _, gpu = three_results
        other = GsnpPipeline(window_size=901, mode="gpu").run(small_dataset)
        assert other.table.equals(gpu.table)

    def test_window_size_invariance_cpu(self, three_results, small_dataset):
        _, cpu, _ = three_results
        other = GsnpPipeline(window_size=450, mode="cpu").run(small_dataset)
        assert other.table.equals(cpu.table)


class TestCompressedOutput:
    def test_decodes_back_to_table(self, three_results):
        _, _, gpu = three_results
        offset = 0
        tables = []
        while offset < len(gpu.compressed_output):
            t, offset = decode_table(gpu.compressed_output, offset)
            tables.append(t)
        full = tables[0]
        for t in tables[1:]:
            full = full.concat(t)
        assert full.equals(gpu.table)

    def test_compressed_smaller_than_text(self, three_results):
        soap, _, gpu = three_results
        assert gpu.output_bytes < soap.output_bytes / 5

    def test_temp_input_smaller_than_raw(self, three_results):
        _, _, gpu = three_results
        assert gpu.temp_input_bytes < gpu.extras["input_bytes"] / 2

    def test_output_file_written(self, small_dataset, tmp_path):
        path = tmp_path / "out.gsnp"
        res = GsnpPipeline(window_size=2000, mode="gpu").run(
            small_dataset, output_path=path
        )
        assert path.read_bytes() == res.compressed_output


class TestAccounting:
    def test_all_components_present(self, three_results):
        for res in three_results[1:]:
            for c in COMPONENTS:
                assert c in res.profile.records, c

    def test_gpu_recycle_negligible(self, three_results):
        """Table IV: recycle collapses from thousands of seconds to ~3s."""
        soap, _, gpu = three_results
        b_soap = soap.profile.breakdown()
        b_gpu = gpu.profile.breakdown()
        assert b_gpu["recycle"] < b_soap["recycle"] / 100

    def test_gpu_likelihood_much_faster(self, three_results):
        soap, _, gpu = three_results
        assert (
            gpu.profile.breakdown()["likelihood"]
            < soap.profile.breakdown()["likelihood"] / 20
        )

    def test_overall_modeled_speedup(self, three_results, small_dataset):
        """End-to-end modeled speedup lands in a broad 40x-ish band at
        full scale (paper: 42-50x); the GSNP fixed score-table cost only
        amortizes at scale, so extrapolate before comparing."""
        soap, _, gpu = three_results
        factor = 247_000_000 / small_dataset.n_sites
        speedup = (
            soap.profile.scaled(factor).total_modeled()
            / gpu.profile.scaled(factor).total_modeled()
        )
        assert speedup > 20

    def test_sparse_cpu_likelihood_speedup(self, three_results):
        """Fig 5: GSNP_CPU beats SOAPsnp by ~4-5x on likelihood."""
        soap, cpu, _ = three_results
        ratio = (
            soap.profile.breakdown()["likelihood"]
            / cpu.profile.breakdown()["likelihood"]
        )
        assert 2 < ratio < 12

    def test_gpu_transfer_bytes_recorded(self, three_results):
        _, _, gpu = three_results
        total_xfer = sum(
            r.transfer_bytes for r in gpu.profile.records.values()
        )
        assert total_xfer > 0

    def test_gpu_memory_tracked(self, three_results):
        _, _, gpu = three_results
        assert gpu.extras["peak_gpu_bytes"] > 0
        # Must fit the M2050's 3 GB.
        assert gpu.extras["peak_gpu_bytes"] < 3 * 1024**3

    def test_sort_stats_per_window(self, three_results, small_dataset):
        _, _, gpu = three_results
        assert len(gpu.sort_stats) == -(-small_dataset.n_sites // 2000)


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(PipelineError):
            GsnpPipeline(mode="tpu")
