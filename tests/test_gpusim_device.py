"""Device allocation, transfers, and launch validation."""

import numpy as np
import pytest

from repro.errors import AllocationError, DeviceError, KernelError
from repro.gpusim.device import Device
from repro.gpusim.spec import GpuSpec


def _noop_kernel(ctx):
    ctx.instr(1)


class TestAllocation:
    def test_alloc_zero_initialized(self, device):
        arr = device.alloc(100, np.float64, "buf")
        assert arr.data.sum() == 0.0
        assert device.global_used == 800

    def test_free_returns_memory(self, device):
        arr = device.alloc(100, np.float64)
        device.free(arr)
        assert device.global_used == 0

    def test_double_free_rejected(self, device):
        arr = device.alloc(10, np.uint8)
        device.free(arr)
        with pytest.raises(DeviceError, match="double free"):
            device.free(arr)

    def test_use_after_free_rejected(self, device):
        arr = device.alloc(10, np.uint8)
        device.free(arr)
        with pytest.raises(DeviceError, match="freed"):
            arr.flat_view()

    def test_global_memory_limit_enforced(self):
        dev = Device(spec=GpuSpec(global_mem_bytes=1024))
        with pytest.raises(AllocationError, match="global memory overflow"):
            dev.alloc(2048, np.uint8)

    def test_peak_tracks_high_water_mark(self, device):
        a = device.alloc(1000, np.uint8)
        device.free(a)
        device.alloc(10, np.uint8)
        assert device.peak_global_used == 1000

    def test_constant_memory_limit(self, device):
        big = np.zeros(device.spec.constant_mem_bytes + 1, dtype=np.uint8)
        with pytest.raises(AllocationError, match="constant"):
            device.to_constant(big, "too_big")

    def test_constant_memory_fits_log_table(self, device):
        # The 64-entry log table of Section IV-G trivially fits.
        table = np.log10(np.arange(1, 65, dtype=np.float64))
        arr = device.to_constant(table, "log_table")
        assert arr.space == "constant"


class TestTransfers:
    def test_h2d_accounted(self, device):
        host = np.arange(1000, dtype=np.int32)
        device.to_device(host, "x")
        assert device.transfers.h2d_bytes == 4000
        assert device.transfers.h2d_count == 1

    def test_d2h_accounted(self, device):
        arr = device.to_device(np.arange(10, dtype=np.int64))
        out = device.from_device(arr)
        assert device.transfers.d2h_bytes == 80
        assert np.array_equal(out, np.arange(10))

    def test_to_device_copies(self, device):
        host = np.zeros(4)
        arr = device.to_device(host)
        host[0] = 5.0
        assert arr.data[0] == 0.0

    def test_reset_counters(self, device):
        device.to_device(np.zeros(10))
        device.launch(_noop_kernel, 32)
        device.reset_counters()
        assert device.transfers.h2d_bytes == 0
        assert device.counters.total().inst_warp == 0


class TestLaunch:
    def test_counters_accumulate_by_name(self, device):
        device.launch(_noop_kernel, 32, name="k")
        device.launch(_noop_kernel, 32, name="k")
        c = device.counters.get("k")
        assert c.launches == 2
        assert c.inst_warp == 2

    def test_default_name_is_function_name(self, device):
        device.launch(_noop_kernel, 32)
        assert "_noop_kernel" in device.counters.entries

    def test_negative_threads_rejected(self, device):
        with pytest.raises(DeviceError):
            device.launch(_noop_kernel, -1)

    def test_block_size_must_be_warp_multiple(self, device):
        with pytest.raises(DeviceError, match="block_size"):
            device.launch(_noop_kernel, 32, block_size=48)

    def test_shared_memory_request_limit(self, device):
        with pytest.raises(DeviceError, match="shared memory"):
            device.launch(
                _noop_kernel, 32, shared_bytes=device.spec.shared_mem_per_block + 1
            )

    def test_kernel_return_value_passed_through(self, device):
        def k(ctx, x):
            return x * 2

        assert device.launch(k, 32, 21) == 42

    def test_zero_thread_launch(self, device):
        device.launch(_noop_kernel, 0, name="empty")
        assert device.counters.get("empty").inst_warp == 0
