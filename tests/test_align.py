"""Aligner substrate: k-mer index, pigeonhole alignment, batch records."""

import numpy as np
import pytest

from repro.align import Aligner, AlignmentBatch, KmerIndex, encode_kmers
from repro.constants import COMPLEMENT_CODE
from repro.seqsim import simulate_diploid, synthesize_reference


@pytest.fixture(scope="module")
def reference():
    return synthesize_reference("chrA", 20_000, seed=31)


@pytest.fixture(scope="module")
def aligner(reference):
    return Aligner(reference, seed_len=13, max_mismatches=2)


class TestKmerEncoding:
    def test_encode_values(self):
        codes = np.array([0, 1, 2, 3], dtype=np.uint8)  # ACGT
        keys = encode_kmers(codes, 2)
        # AC=0b0001=1, CG=0b0110=6, GT=0b1011=11
        assert list(keys) == [1, 6, 11]

    def test_short_sequence_empty(self):
        assert encode_kmers(np.zeros(3, dtype=np.uint8), 5).size == 0

    def test_index_lookup(self, reference):
        idx = KmerIndex.build(reference, 13)
        key = int(encode_kmers(reference.codes[100:113], 13)[0])
        assert 100 in idx.lookup(key).tolist()

    def test_lookup_missing_returns_empty(self, reference):
        idx = KmerIndex.build(reference, 13)
        # A key guaranteed absent: 4^13 is out of the 2-bit packing range.
        assert idx.lookup(-1).size == 0


class TestAlignRead:
    def test_exact_forward_read(self, reference, aligner):
        read = reference.codes[500:600]
        alns = aligner.align_read(read)
        best = alns[0]
        assert best.pos == 500 and best.strand == 0 and best.mismatches == 0

    def test_exact_reverse_read(self, reference, aligner):
        read = COMPLEMENT_CODE[reference.codes[700:800][::-1]]
        alns = aligner.align_read(read)
        best = alns[0]
        assert best.pos == 700 and best.strand == 1 and best.mismatches == 0

    def test_read_with_mismatches(self, reference, aligner):
        read = reference.codes[1000:1100].copy()
        read[10] = (read[10] + 1) % 4
        read[60] = (read[60] + 2) % 4
        alns = aligner.align_read(read)
        assert alns[0].pos == 1000 and alns[0].mismatches == 2

    def test_too_many_mismatches_not_found(self, reference, aligner):
        read = reference.codes[2000:2100].copy()
        for j in (5, 30, 55, 80):
            read[j] = (read[j] + 1) % 4
        hits = [a for a in aligner.align_read(read) if a.pos == 2000]
        assert not hits

    def test_random_read_usually_unaligned(self, aligner, rng):
        read = rng.integers(0, 4, 100).astype(np.uint8)
        # A random 100-mer almost surely matches nowhere.
        assert len(aligner.align_read(read)) == 0

    def test_max_mismatch_zero(self, reference):
        strict = Aligner(reference, max_mismatches=0)
        read = reference.codes[300:400].copy()
        assert strict.align_read(read)[0].mismatches == 0
        read[50] = (read[50] + 1) % 4
        assert all(a.pos != 300 for a in strict.align_read(read))


class TestAlignBatch:
    def test_recovers_simulated_positions(self, reference):
        d = simulate_diploid(reference, snp_rate=0.0, seed=32)
        from repro.seqsim import simulate_reads

        rs = simulate_reads(d, depth=2.0, read_len=100, seed=33,
                            multihit_fraction=0.0)
        aligner = Aligner(reference, max_mismatches=2)
        # Reconstruct machine-orientation reads for alignment.
        from repro.seqsim.reads import reverse_complement_view

        reads = np.empty_like(rs.bases)
        quals = np.empty_like(rs.quals)
        for i in range(rs.n_reads):
            reads[i], quals[i] = reverse_complement_view(rs, i)
        batch = aligner.align_batch(reads, quals)
        # Most reads (those with <=2 errors) align back to their origin.
        recovered = 0
        aligned_pos = {}
        for i in range(batch.n_reads):
            aligned_pos.setdefault(int(batch.pos[i]), 0)
        truth = set(rs.pos.tolist())
        matches = sum(1 for p in batch.pos if int(p) in truth)
        assert batch.n_reads >= 0.8 * rs.n_reads
        assert matches >= 0.95 * batch.n_reads

    def test_batch_output_sorted(self, reference, aligner, rng):
        starts = rng.integers(0, reference.length - 100, 30)
        reads = np.stack([reference.codes[s : s + 100] for s in starts])
        quals = np.full_like(reads, 30)
        batch = aligner.align_batch(reads, quals)
        assert np.all(np.diff(batch.pos) >= 0)

    def test_shape_mismatch_rejected(self, aligner):
        with pytest.raises(ValueError):
            aligner.align_batch(
                np.zeros((2, 10), dtype=np.uint8),
                np.zeros((3, 10), dtype=np.uint8),
            )

    def test_reverse_reads_stored_forward(self, reference, aligner):
        fwd = reference.codes[900:1000]
        rev_read = COMPLEMENT_CODE[fwd[::-1]]
        quals = np.full((1, 100), 30, dtype=np.uint8)
        batch = aligner.align_batch(rev_read[None, :], quals)
        assert batch.n_reads == 1
        assert batch.strand[0] == 1
        assert np.array_equal(batch.bases[0], fwd)


class TestAlignmentBatch:
    def test_from_read_set(self, reference):
        d = simulate_diploid(reference, seed=40)
        from repro.seqsim import simulate_reads

        rs = simulate_reads(d, depth=3.0, seed=41)
        batch = AlignmentBatch.from_read_set(rs)
        assert batch.n_reads == rs.n_reads
        assert batch.chrom == reference.name

    def test_slice_and_select(self):
        batch = AlignmentBatch(
            chrom="c", read_len=4,
            pos=np.arange(10, dtype=np.int64),
            strand=np.zeros(10, dtype=np.uint8),
            hits=np.ones(10, dtype=np.uint8),
            bases=np.zeros((10, 4), dtype=np.uint8),
            quals=np.zeros((10, 4), dtype=np.uint8),
        )
        assert batch.slice(2, 5).n_reads == 3
        sel = batch.select(batch.pos % 2 == 0)
        assert sel.n_reads == 5

    def test_concat(self):
        e = AlignmentBatch.empty("c", 4)
        b = AlignmentBatch(
            chrom="c", read_len=4,
            pos=np.array([1], dtype=np.int64),
            strand=np.zeros(1, dtype=np.uint8),
            hits=np.ones(1, dtype=np.uint8),
            bases=np.zeros((1, 4), dtype=np.uint8),
            quals=np.zeros((1, 4), dtype=np.uint8),
        )
        assert e.concat(b).n_reads == 1

    def test_concat_read_len_mismatch(self):
        a = AlignmentBatch.empty("c", 4)
        b = AlignmentBatch.empty("c", 8)
        with pytest.raises(ValueError):
            a.concat(b)
