"""Accuracy sweep: precision/recall/F1 and genotype concordance."""

import numpy as np
import pytest

from repro.bench.accuracy import OperatingPoint, best_f1, quality_sweep
from repro.soapsnp import SoapsnpPipeline


@pytest.fixture(scope="module")
def sweep(small_dataset):
    table = SoapsnpPipeline(window_size=4000).run(small_dataset).table
    return quality_sweep(table, small_dataset), small_dataset


class TestOperatingPoint:
    def test_metrics(self):
        p = OperatingPoint(13, 8, 2, 4, 7)
        assert p.precision == pytest.approx(0.8)
        assert p.recall == pytest.approx(8 / 12)
        assert p.f1 == pytest.approx(2 * 0.8 * (8 / 12) / (0.8 + 8 / 12))
        assert p.genotype_concordance == pytest.approx(7 / 8)

    def test_degenerate(self):
        p = OperatingPoint(0, 0, 0, 0, 0)
        assert p.precision == 1.0 and p.recall == 1.0 and p.f1 == 2 * 1 / 2
        assert p.genotype_concordance == 1.0


class TestQualitySweep:
    def test_monotone_tradeoff(self, sweep):
        """Raising the threshold never increases recall and (weakly)
        cleans precision at the top end."""
        points, _ = sweep
        recalls = [p.recall for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
        tps = [p.true_positives for p in points]
        assert all(a >= b for a, b in zip(tps, tps[1:]))

    def test_reasonable_operating_point_exists(self, sweep):
        points, _ = sweep
        best = best_f1(points)
        assert best.f1 > 0.75
        assert best.precision > 0.7
        assert best.recall > 0.6

    def test_genotype_concordance_high(self, sweep):
        """Called variants at q>=13 carry the right genotype."""
        points, _ = sweep
        q13 = next(p for p in points if p.min_quality == 13)
        assert q13.genotype_concordance > 0.8

    def test_thresholds_preserved(self, sweep):
        points, _ = sweep
        assert [p.min_quality for p in points] == [0, 5, 13, 20, 30, 50]

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            best_f1([])

    def test_min_depth_excludes_invisible_truth(self, small_dataset):
        table = SoapsnpPipeline(window_size=4000).run(small_dataset).table
        strict = quality_sweep(table, small_dataset, thresholds=(0,),
                               min_depth=1)[0]
        loose = quality_sweep(table, small_dataset, thresholds=(0,),
                              min_depth=0)[0]
        assert loose.false_negatives >= strict.false_negatives

    def test_identical_across_engines(self, small_dataset):
        from repro.core.pipeline import GsnpPipeline

        t1 = SoapsnpPipeline(window_size=4000).run(small_dataset).table
        t2 = GsnpPipeline(window_size=2000, mode="gpu").run(
            small_dataset
        ).table
        s1 = quality_sweep(t1, small_dataset)
        s2 = quality_sweep(t2, small_dataset)
        assert s1 == s2
