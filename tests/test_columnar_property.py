"""Property-based container roundtrips on adversarial random tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import decode_table, encode_table
from repro.constants import GENOTYPES
from repro.formats.cns import NO_BASE, ResultTable, format_rows, parse_rows


def _random_table(rng, n, chrom="chrP"):
    """A random-but-domain-valid table (quantized floats, ordered pos)."""
    second = rng.integers(0, 5, n).astype(np.uint8)
    none = second == NO_BASE
    return ResultTable(
        chrom=chrom,
        pos=1 + np.arange(n, dtype=np.int64),
        ref_base=rng.integers(0, 4, n).astype(np.uint8),
        genotype=rng.integers(0, 10, n).astype(np.uint8),
        quality=rng.integers(0, 100, n).astype(np.uint8),
        best_base=rng.integers(0, 4, n).astype(np.uint8),
        avg_qual_best=rng.integers(0, 64, n).astype(np.uint8),
        count_uni_best=rng.integers(0, 300, n).astype(np.uint16),
        count_all_best=rng.integers(0, 300, n).astype(np.uint16),
        second_base=second,
        avg_qual_second=np.where(none, 0, rng.integers(0, 64, n)).astype(
            np.uint8
        ),
        count_uni_second=np.where(none, 0, rng.integers(0, 99, n)).astype(
            np.uint16
        ),
        count_all_second=np.where(none, 0, rng.integers(0, 99, n)).astype(
            np.uint16
        ),
        depth=rng.integers(0, 500, n).astype(np.uint16),
        rank_sum=np.round(rng.random(n), 2).astype(np.float32),
        copy_num=np.round(rng.random(n) * 9, 2).astype(np.float32),
        known_snp=rng.integers(0, 2, n).astype(np.uint8),
    )


class TestContainerProperty:
    @given(n=st.integers(1, 400), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_container_roundtrip(self, n, seed):
        table = _random_table(np.random.default_rng(seed), n)
        decoded, offset = decode_table(encode_table(table))
        assert decoded.equals(table)

    @given(n=st.integers(1, 150), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_text_roundtrip(self, n, seed):
        table = _random_table(np.random.default_rng(seed), n)
        assert parse_rows(format_rows(table)).equals(table)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_worst_case_no_runs_still_lossless(self, seed):
        """Maximum-entropy columns (no runs, all distinct-ish) must stay
        lossless even if compression gains vanish."""
        rng = np.random.default_rng(seed)
        table = _random_table(rng, 256)
        table.quality = np.arange(256).astype(np.uint8) % 100
        table.depth = rng.permutation(256).astype(np.uint16)
        decoded, _ = decode_table(encode_table(table))
        assert decoded.equals(table)

    def test_all_genotypes_and_bases_covered(self):
        """One row per genotype x ref-base combination survives."""
        n = 40
        table = _random_table(np.random.default_rng(0), n)
        table.genotype = (np.arange(n) % 10).astype(np.uint8)
        table.ref_base = (np.arange(n) % 4).astype(np.uint8)
        decoded, _ = decode_table(encode_table(table))
        assert decoded.equals(table)
        assert parse_rows(format_rows(table)).equals(table)
