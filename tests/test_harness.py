"""Bench harness: fraction scaling, caching, cheap experiment drivers."""

import numpy as np
import pytest

from repro.bench.harness import (
    bench_dataset,
    bench_spec,
    exp_fig4b,
    exp_fig7a,
    exp_table2,
)
from repro.seqsim.datasets import CH1_SPEC, CH21_SPEC


class TestBenchSpec:
    def test_fraction_shrinks_but_extrapolates_to_same_scale(self):
        for frac in (0.1, 0.5, 1.0):
            spec = bench_spec("ch1-sim", frac)
            full = spec.n_sites * spec.scale_factor
            assert full == pytest.approx(
                CH1_SPEC.n_sites * CH1_SPEC.scale_factor, rel=1e-6
            )

    def test_floor_at_2000_sites(self):
        spec = bench_spec("ch21-sim", 0.001)
        assert spec.n_sites == 2000

    def test_preserves_depth_and_coverage(self):
        spec = bench_spec("ch21-sim", 0.3)
        assert spec.depth == CH21_SPEC.depth
        assert spec.coverage == CH21_SPEC.coverage

    def test_dataset_cache_returns_same_object(self):
        a = bench_dataset("ch21-sim", 0.1)
        b = bench_dataset("ch21-sim", 0.1)
        assert a is b


class TestCheapExperiments:
    def test_table2_summary_keys(self):
        data = exp_table2(0.1)
        for name in ("ch1-sim", "ch21-sim"):
            s = data[name]
            for key in ("sites", "depth", "coverage", "reads",
                        "input_bytes"):
                assert key in s

    def test_fig4b_histogram_complete(self):
        data = exp_fig4b("ch21-sim", 0.1)
        assert sum(data["histogram"].values()) == pytest.approx(100.0)
        assert data["nonzero_pct"] < 0.1

    def test_fig7a_throughput_structure(self):
        data = exp_fig7a(sizes=(8, 32), n_arrays=128)
        assert set(data) == {8, 32}
        for v in data.values():
            assert v["gpu_batch_bitonic"] > 0
            assert v["gpu_seq_radix"] > 0
            assert v["cpu_parallel"] > 0
