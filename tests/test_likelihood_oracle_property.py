"""Property-based oracle test: vectorized engine == literal Algorithm 1.

Hypothesis drives randomized per-site observation multisets (including
duplicate (coord, strand) cells that trigger the dependency adjustment)
through both the quadruple-loop reference and the vectorized engine and
through the GSNP GPU kernel, demanding bitwise equality everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import N_GENOTYPES
from repro.core.base_word import pack_words
from repro.core.likelihood import (
    OPTIMIZED,
    GsnpTables,
    gsnp_likelihood_comp,
    gsnp_likelihood_sort,
)
from repro.gpusim.device import Device
from repro.soapsnp.likelihood import (
    likelihood_site_reference,
    window_type_likely,
)
from repro.soapsnp.observe import Observations
from repro.soapsnp.p_matrix import flatten_p_matrix, theoretical_p_matrix
from repro.stats.tables import dependency_penalty_table

_PM = theoretical_p_matrix()
_PM_FLAT = flatten_p_matrix(_PM)
_PENALTY = dependency_penalty_table()


def _make_observations(rng, n_sites, n_obs, read_len=32):
    """Random counted observations, canonically sorted."""
    site = rng.integers(0, n_sites, n_obs).astype(np.int64)
    base = rng.integers(0, 4, n_obs).astype(np.uint8)
    score = rng.integers(0, 41, n_obs).astype(np.uint8)
    coord = rng.integers(0, read_len, n_obs).astype(np.uint8)
    strand = rng.integers(0, 2, n_obs).astype(np.uint8)
    order = np.lexsort((strand, coord, 63 - score.astype(np.int16), base,
                        site))
    site, base, score, coord, strand = (
        site[order], base[order], score[order], coord[order], strand[order]
    )
    ones = np.ones(n_obs, dtype=np.uint8)
    return Observations(
        n_sites=n_sites, site=site, base=base, score=score, coord=coord,
        strand=strand, hits=ones, unique=ones.astype(bool),
        counted=ones.astype(bool),
        arrival=rng.permutation(n_obs).astype(np.int64),
    )


class TestOracleProperty:
    @given(
        seed=st.integers(0, 2**31),
        n_obs=st.integers(1, 150),
        n_sites=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_engine_equals_reference(self, seed, n_obs, n_sites):
        rng = np.random.default_rng(seed)
        obs = _make_observations(rng, n_sites, n_obs)
        tl = window_type_likely(obs, _PM_FLAT, _PENALTY)
        from repro.soapsnp.base_occ import build_base_occ_site

        for s in range(n_sites):
            occ = build_base_occ_site(obs, s)
            ref = likelihood_site_reference(occ, _PM, _PENALTY, read_len=32)
            assert np.array_equal(ref, tl[s]), f"site {s}"

    @given(
        seed=st.integers(0, 2**31),
        n_obs=st.integers(1, 200),
        n_sites=st.integers(1, 12),
    )
    @settings(max_examples=15, deadline=None)
    def test_gpu_kernel_equals_engine(self, seed, n_obs, n_sites):
        rng = np.random.default_rng(seed)
        obs = _make_observations(rng, n_sites, n_obs)
        tl_ref = window_type_likely(obs, _PM_FLAT, _PENALTY)
        device = Device()
        tables = GsnpTables.load(device, _PM_FLAT, _PENALTY)
        words = pack_words(
            obs.base[obs.counted], obs.score[obs.counted],
            obs.coord[obs.counted], obs.strand[obs.counted],
        )
        counts = np.bincount(obs.site[obs.counted], minlength=n_sites)
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        # Shuffle words within sites (arrival disorder), then sort on GPU.
        shuffled = words.copy()
        for s in range(n_sites):
            seg = slice(offsets[s], offsets[s + 1])
            shuffled[seg] = rng.permutation(shuffled[seg])
        wsorted, _ = gsnp_likelihood_sort(device, shuffled, offsets)
        tl = gsnp_likelihood_comp(device, wsorted, offsets, tables, OPTIMIZED)
        assert np.array_equal(tl, tl_ref)

    def test_duplicate_heavy_site(self):
        """All observations identical: maximal dependency penalties."""
        n = 40
        ones = np.ones(n, dtype=np.uint8)
        obs = Observations(
            n_sites=1,
            site=np.zeros(n, dtype=np.int64),
            base=np.full(n, 2, dtype=np.uint8),
            score=np.full(n, 30, dtype=np.uint8),
            coord=np.full(n, 5, dtype=np.uint8),
            strand=np.zeros(n, dtype=np.uint8),
            hits=ones, unique=ones.astype(bool), counted=ones.astype(bool),
            arrival=np.arange(n, dtype=np.int64),
        )
        from repro.soapsnp.base_occ import build_base_occ_site

        tl = window_type_likely(obs, _PM_FLAT, _PENALTY)
        ref = likelihood_site_reference(
            build_base_occ_site(obs, 0), _PM, _PENALTY, read_len=32
        )
        assert np.array_equal(ref, tl[0])
        # Penalties floor the quality at 0 so each extra duplicate adds
        # progressively weaker (but nonzero) evidence.
        assert tl[0].max() < 0.0

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_likelihood_order_invariance_of_multiset(self, seed):
        """The engine's result depends only on the canonical multiset, not
        on how hypothesis happened to generate it."""
        rng = np.random.default_rng(seed)
        obs = _make_observations(rng, 3, 60)
        tl1 = window_type_likely(obs, _PM_FLAT, _PENALTY)
        # Rebuild the same multiset from a shuffled copy.
        perm = rng.permutation(obs.n_obs)
        order = np.lexsort(
            (obs.strand[perm], obs.coord[perm],
             63 - obs.score[perm].astype(np.int16), obs.base[perm],
             obs.site[perm])
        )
        idx = perm[order]
        obs2 = Observations(
            n_sites=obs.n_sites, site=obs.site[idx], base=obs.base[idx],
            score=obs.score[idx], coord=obs.coord[idx],
            strand=obs.strand[idx], hits=obs.hits[idx],
            unique=obs.unique[idx], counted=obs.counted[idx],
            arrival=np.arange(obs.n_obs, dtype=np.int64),
        )
        tl2 = window_type_likely(obs2, _PM_FLAT, _PENALTY)
        assert np.array_equal(tl1, tl2)
