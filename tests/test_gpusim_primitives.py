"""GPU primitives: reduce, scan, radix sort, unique, binary search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.gpusim.device import Device
from repro.gpusim.memory import DeviceArray
from repro.gpusim.primitives import (
    device_binary_search,
    device_exclusive_scan,
    device_radix_sort,
    device_reduce,
    device_unique,
    segmented_reduce,
    sequential_radix_sort_batches,
)


class TestReduce:
    def test_sum(self, device):
        arr = device.to_device(np.arange(1234, dtype=np.int64))
        assert device_reduce(device, arr) == 1234 * 1233 // 2

    def test_max_min(self, device, rng):
        data = rng.integers(-1000, 1000, 501)
        arr = device.to_device(data)
        assert device_reduce(device, arr, "max") == data.max()
        arr2 = device.to_device(data)
        assert device_reduce(device, arr2, "min") == data.min()

    def test_single_element(self, device):
        arr = device.to_device(np.array([42], dtype=np.int64))
        assert device_reduce(device, arr) == 42

    def test_empty_rejected(self, device):
        arr = device.alloc(0, np.int64)
        with pytest.raises(KernelError):
            device_reduce(device, arr)

    def test_unknown_op_rejected(self, device):
        arr = device.to_device(np.arange(4))
        with pytest.raises(KernelError):
            device_reduce(device, arr, "xor")

    def test_input_unmodified(self, device):
        data = np.arange(100, dtype=np.int64)
        arr = device.to_device(data)
        device_reduce(device, arr)
        assert np.array_equal(arr.data, data)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy(self, values):
        device = Device()
        arr = device.to_device(np.asarray(values, dtype=np.int64))
        assert device_reduce(device, arr) == sum(values)


class TestSegmentedReduce:
    def test_basic_segments(self, device):
        values = device.to_device(np.arange(10, dtype=np.float64))
        offsets = device.to_device(np.array([0, 3, 3, 10], dtype=np.int64))
        out = segmented_reduce(device, values, offsets)
        assert np.allclose(out.data, [0 + 1 + 2, 0.0, sum(range(3, 10))])

    def test_empty_segments_zero(self, device):
        values = device.to_device(np.arange(4, dtype=np.float64))
        offsets = device.to_device(np.array([0, 0, 0, 4], dtype=np.int64))
        out = segmented_reduce(device, values, offsets)
        assert np.allclose(out.data, [0, 0, 6])


class TestScan:
    def test_exclusive_semantics(self, device):
        arr = device.to_device(np.arange(1, 9, dtype=np.int64))
        out = device_exclusive_scan(device, arr)
        assert np.array_equal(out.data, [0, 1, 3, 6, 10, 15, 21, 28])

    def test_non_power_of_two(self, device, rng):
        data = rng.integers(0, 50, 1000)
        arr = device.to_device(data)
        out = device_exclusive_scan(device, arr)
        expected = np.concatenate([[0], np.cumsum(data)[:-1]])
        assert np.array_equal(out.data, expected)

    def test_input_unmodified(self, device):
        data = np.arange(37, dtype=np.int64)
        arr = device.to_device(data)
        device_exclusive_scan(device, arr)
        assert np.array_equal(arr.data, data)

    def test_single_element(self, device):
        arr = device.to_device(np.array([9], dtype=np.int64))
        out = device_exclusive_scan(device, arr)
        assert np.array_equal(out.data, [0])

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_matches_cumsum(self, values):
        device = Device()
        data = np.asarray(values, dtype=np.int64)
        out = device_exclusive_scan(device, device.to_device(data))
        assert np.array_equal(out.data, np.cumsum(data) - data)


class TestRadixSort:
    def test_sorts_random_uint32(self, device, rng):
        data = rng.integers(0, 2**32, 5000, dtype=np.uint32)
        out = device_radix_sort(device, device.to_device(data))
        assert np.array_equal(out.data, np.sort(data))

    def test_requires_unsigned(self, device):
        arr = device.to_device(np.arange(4, dtype=np.int32))
        with pytest.raises(KernelError, match="unsigned"):
            device_radix_sort(device, arr)

    def test_uint8_single_pass_domain(self, device, rng):
        data = rng.integers(0, 256, 777, dtype=np.uint8)
        out = device_radix_sort(device, device.to_device(data))
        assert np.array_equal(out.data, np.sort(data))

    def test_scatter_is_uncoalesced(self, device, rng):
        data = rng.integers(0, 2**32, 4096, dtype=np.uint32)
        device_radix_sort(device, device.to_device(data))
        c = device.counters.get("radix_scatter")
        # Random scatter: transactions comparable to element count.
        assert c.g_store > 4096 * 4 * 0.5  # 4 passes, >50% scattered

    def test_sequential_batches_sorted(self, device, rng):
        batch = rng.integers(0, 1000, (10, 16)).astype(np.uint32)
        lengths = rng.integers(0, 17, 10)
        out = sequential_radix_sort_batches(device, batch, lengths)
        for i in range(10):
            m = lengths[i]
            assert np.array_equal(out[i, :m], np.sort(batch[i, :m]))
            assert np.array_equal(out[i, m:], batch[i, m:])


class TestUnique:
    def test_distinct_values(self, device, rng):
        data = np.sort(rng.integers(0, 40, 500)).astype(np.uint32)
        out = device_unique(device, device.to_device(data))
        assert np.array_equal(out.data, np.unique(data))

    def test_all_same(self, device):
        data = np.full(100, 7, dtype=np.uint32)
        out = device_unique(device, device.to_device(data))
        assert np.array_equal(out.data, [7])

    def test_all_distinct(self, device):
        data = np.arange(64, dtype=np.uint32)
        out = device_unique(device, device.to_device(data))
        assert np.array_equal(out.data, data)

    def test_unsorted_rejected(self, device):
        arr = device.to_device(np.array([3, 1, 2], dtype=np.uint32))
        with pytest.raises(KernelError, match="sorted"):
            device_unique(device, arr)


class TestBinarySearch:
    def test_finds_all_present(self, device, rng):
        hay_data = np.unique(rng.integers(0, 10_000, 300)).astype(np.int64)
        needles_data = rng.choice(hay_data, 100)
        hay = device.to_device(hay_data)
        needles = device.to_device(needles_data)
        out = device_binary_search(device, needles, hay)
        assert np.array_equal(hay_data[out.data], needles_data)

    def test_insertion_points_for_absent(self, device):
        hay = device.to_device(np.array([10, 20, 30], dtype=np.int64))
        needles = device.to_device(np.array([5, 15, 35], dtype=np.int64))
        out = device_binary_search(device, needles, hay)
        assert np.array_equal(out.data, [0, 1, 3])

    def test_empty_haystack_rejected(self, device):
        hay = device.alloc(0, np.int64)
        needles = device.to_device(np.array([1], dtype=np.int64))
        with pytest.raises(KernelError):
            device_binary_search(device, needles, hay)

    def test_constant_memory_dictionary_uses_cache(self, device):
        hay = device.to_constant(np.arange(16, dtype=np.int64))
        needles = device.to_device(np.arange(16, dtype=np.int64))
        device_binary_search(device, needles, hay)
        c = device.counters.get("binary_search")
        assert c.c_load > 0
