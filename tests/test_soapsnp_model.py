"""Calling parameters, priors, and the calibrated p_matrix."""

import numpy as np
import pytest

from repro.constants import GENOTYPES, N_BASES
from repro.soapsnp import (
    CallingParams,
    allele_weights,
    build_p_matrix,
    calibration_counts,
    genotype_log_priors,
    p_matrix_index,
    theoretical_p_matrix,
)
from repro.soapsnp.p_matrix import flatten_p_matrix


class TestCallingParams:
    def test_defaults_valid(self):
        CallingParams()

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            CallingParams(het_fraction=0.5, hom_fraction=0.5, other_fraction=0.5)

    def test_read_len_bounds(self):
        with pytest.raises(ValueError):
            CallingParams(read_len=0)
        with pytest.raises(ValueError):
            CallingParams(read_len=300)

    def test_penalty_table_from_dependency(self):
        p = CallingParams(pcr_dependency=0.5)
        assert p.penalty_table()[1] == 3


class TestAlleleWeights:
    def test_sum_to_one_excluding_ref(self):
        for r in range(N_BASES):
            w = allele_weights(r, titv=4.0)
            assert w[r] == 0.0
            assert w.sum() == pytest.approx(1.0)

    def test_transition_favored(self):
        w = allele_weights(0, titv=4.0)  # ref A; transition partner G=2
        assert w[2] == pytest.approx(4.0 / 6.0)
        assert w[1] == pytest.approx(1.0 / 6.0)


class TestGenotypePriors:
    def test_priors_sum_to_one(self):
        params = CallingParams()
        ref = np.arange(4)
        rates = np.full(4, 0.01)
        lp = genotype_log_priors(ref, rates, params)
        totals = np.power(10.0, lp).sum(axis=1)
        assert np.allclose(totals, 1.0)

    def test_hom_ref_dominates(self):
        params = CallingParams()
        lp = genotype_log_priors(np.array([2]), np.array([0.001]), params)
        hom_ref = GENOTYPES.index((2, 2))
        assert lp[0].argmax() == hom_ref

    def test_known_snp_rate_raises_het_prior(self):
        params = CallingParams()
        low = genotype_log_priors(np.array([0]), np.array([0.001]), params)
        high = genotype_log_priors(np.array([0]), np.array([0.3]), params)
        het_ag = GENOTYPES.index((0, 2))
        assert high[0, het_ag] > low[0, het_ag]

    def test_transition_het_beats_transversion_het(self):
        params = CallingParams(titv=4.0)
        lp = genotype_log_priors(np.array([0]), np.array([0.01]), params)
        assert lp[0, GENOTYPES.index((0, 2))] > lp[0, GENOTYPES.index((0, 1))]


class TestTheoreticalPMatrix:
    def test_rows_are_distributions(self):
        t = theoretical_p_matrix()
        assert np.allclose(t.sum(axis=3), 1.0)

    def test_high_quality_confident(self):
        t = theoretical_p_matrix()
        assert t[40, 0, 1, 1] >= 0.9999
        assert t[40, 0, 1, 0] < 1e-4

    def test_quality_zero_uniform(self):
        t = theoretical_p_matrix()
        assert t[0, 0, 0, 0] == pytest.approx(0.25)


class TestCalibration:
    def test_counts_shape_and_mass(self, small_batch, small_dataset):
        c = calibration_counts(small_batch, small_dataset.reference)
        uniq = small_batch.hits == 1
        assert c.sum() == int(uniq.sum()) * small_batch.read_len

    def test_counts_concentrate_on_diagonal(self, small_batch, small_dataset):
        c = calibration_counts(small_batch, small_dataset.reference)
        total = c.sum()
        diag = sum(c[:, :, a, a].sum() for a in range(4))
        assert diag / total > 0.95  # ~2% errors + SNPs

    def test_p_matrix_rows_are_distributions(self, small_pm_flat):
        pm = small_pm_flat.reshape(64, 256, 4, 4)
        assert np.allclose(pm.sum(axis=3), 1.0)

    def test_p_matrix_between_theory_and_data(
        self, small_batch, small_dataset, small_params
    ):
        pm = build_p_matrix(small_batch, small_dataset.reference, small_params)
        # Cells with no data fall back to the theoretical model.
        theory = theoretical_p_matrix()
        # Coordinates beyond the read length have no observations at all.
        assert np.allclose(pm[:, 150], theory[:, 150])

    def test_index_layout_matches_flatten(self, small_pm_flat):
        pm = small_pm_flat.reshape(64, 256, 4, 4)
        rng = np.random.default_rng(0)
        q = rng.integers(0, 64, 50)
        c = rng.integers(0, 256, 50)
        a = rng.integers(0, 4, 50)
        b = rng.integers(0, 4, 50)
        flat = small_pm_flat[p_matrix_index(q, c, a, b)]
        assert np.array_equal(flat, pm[q, c, a, b])

    def test_flatten_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            flatten_p_matrix(np.zeros((4, 4)))

    def test_empty_batch(self, small_dataset):
        from repro.align.records import AlignmentBatch

        empty = AlignmentBatch.empty("x", 100)
        c = calibration_counts(empty, small_dataset.reference)
        assert c.sum() == 0
