"""17-column container codec, alignment compression, gzip baseline, reader."""

import numpy as np
import pytest

from repro.align.records import AlignmentBatch
from repro.compress import (
    CompressedResultReader,
    decode_alignments,
    decode_table,
    encode_alignments,
    encode_table,
    gzip_compress,
    gzip_decompress,
)
from repro.errors import CodecError
from repro.formats.cns import format_rows
from repro.formats.soap import soap_line_bytes
from repro.gpusim.device import Device
from repro.soapsnp import SoapsnpPipeline
from repro.soapsnp.posterior import is_snp_call


@pytest.fixture(scope="module")
def result(small_dataset):
    return SoapsnpPipeline(window_size=2000).run(small_dataset)


class TestTableCodec:
    def test_roundtrip_exact(self, result):
        blob = encode_table(result.table)
        table, offset = decode_table(blob)
        assert offset == len(blob)
        assert table.equals(result.table)

    def test_gpu_encoding_byte_identical(self, result):
        device = Device()
        assert encode_table(result.table, device=device) == encode_table(
            result.table
        )

    def test_compression_ratio_vs_text(self, result):
        """Fig 9a: customized compression ~14-16x smaller than text
        (accept >8x on synthetic data)."""
        text = format_rows(result.table)
        blob = encode_table(result.table)
        assert len(text) / len(blob) > 8

    def test_beats_gzip(self, result):
        """Fig 9a: gzip output ~1.5x larger than GSNP's."""
        text = format_rows(result.table)
        gz, _ = gzip_compress(text)
        blob = encode_table(result.table)
        assert len(gz) / len(blob) > 1.1

    def test_bad_magic_rejected(self, result):
        blob = bytearray(encode_table(result.table))
        blob[0] ^= 0xFF
        with pytest.raises(CodecError):
            decode_table(bytes(blob))

    def test_nonconsecutive_positions_rejected(self, result):
        import dataclasses

        bad = result.table.concat(result.table)
        with pytest.raises(CodecError):
            encode_table(bad)

    def test_empty_window(self):
        from repro.formats.cns import ResultTable

        empty = ResultTable.empty("chrE")
        blob = encode_table(empty)
        table, _ = decode_table(blob)
        assert table.n_sites == 0

    def test_multiblock_stream(self, result):
        blob = encode_table(result.table) * 3
        offset, count = 0, 0
        while offset < len(blob):
            t, offset = decode_table(blob, offset)
            count += 1
        assert count == 3


class TestAlignmentCodec:
    def test_roundtrip(self, small_batch):
        blob = encode_alignments(small_batch)
        back = decode_alignments(blob)
        assert back.chrom == small_batch.chrom
        for f in ("pos", "strand", "hits", "bases", "quals"):
            assert np.array_equal(getattr(back, f), getattr(small_batch, f))

    def test_ratio_about_one_third(self, small_batch):
        """Fig 10b: compressed temp input ~1/3 of the original."""
        raw = small_batch.n_reads * soap_line_bytes(small_batch.read_len)
        blob = encode_alignments(small_batch)
        assert len(blob) < raw / 2.5

    def test_bad_magic(self, small_batch):
        blob = bytearray(encode_alignments(small_batch))
        blob[0] ^= 1
        with pytest.raises(CodecError):
            decode_alignments(bytes(blob))


class TestGzipBaseline:
    def test_roundtrip(self, result):
        text = format_rows(result.table)
        gz, cs = gzip_compress(text)
        back, ds = gzip_decompress(gz)
        assert back == text
        assert cs.ratio > 1.0
        assert ds.input_bytes == len(gz)

    def test_stats_throughput(self):
        blob, stats = gzip_compress(b"x" * 100_000)
        assert stats.throughput > 0


class TestReader:
    @pytest.fixture(scope="class")
    def compressed_file(self, result, tmp_path_factory):
        path = tmp_path_factory.mktemp("cr") / "out.gsnp"
        # Two window blocks.
        n = result.table.n_sites
        from dataclasses import fields

        def half(lo, hi):
            kwargs = {"chrom": result.table.chrom}
            for f in fields(result.table):
                if f.name != "chrom":
                    kwargs[f.name] = getattr(result.table, f.name)[lo:hi]
            from repro.formats.cns import ResultTable

            return ResultTable(**kwargs)

        blob = encode_table(half(0, n // 2)) + encode_table(half(n // 2, n))
        path.write_bytes(blob)
        return path

    def test_iterates_blocks(self, compressed_file):
        reader = CompressedResultReader(compressed_file)
        assert len(list(reader)) == 2

    def test_read_all_equals_original(self, compressed_file, result):
        reader = CompressedResultReader(compressed_file)
        assert reader.read_all().equals(result.table)

    def test_query_range(self, compressed_file, result):
        reader = CompressedResultReader(compressed_file)
        sub = reader.query_range(100, 200)
        assert sub.n_sites == 100
        assert sub.pos[0] == 100 and sub.pos[-1] == 199

    def test_query_range_across_blocks(self, compressed_file, result):
        n = result.table.n_sites
        reader = CompressedResultReader(compressed_file)
        sub = reader.query_range(n // 2 - 10, n // 2 + 10)
        assert sub.n_sites == 20

    def test_query_snps(self, compressed_file, result):
        reader = CompressedResultReader(compressed_file)
        snps = reader.query_snps()
        assert snps.n_sites == int(is_snp_call(result.table).sum())

    def test_empty_range_raises(self, compressed_file, result):
        reader = CompressedResultReader(compressed_file)
        with pytest.raises(CodecError):
            reader.query_range(10**9, 10**9 + 5)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "e.gsnp"
        p.write_bytes(b"")
        with pytest.raises(CodecError):
            CompressedResultReader(p)
