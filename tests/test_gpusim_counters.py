"""Counter bookkeeping: merge, normalization, book totals."""

import pytest

from repro.gpusim.counters import CounterBook, KernelCounters


class TestKernelCounters:
    def test_pw_normalization(self):
        c = KernelCounters(inst_warp=140, s_load_warp=28, num_sms=14)
        assert c.inst_pw == pytest.approx(10.0)
        assert c.s_load_pw == pytest.approx(2.0)

    def test_merge_sums_everything(self):
        a = KernelCounters(
            launches=1, inst_warp=10, g_load=5, g_store=3,
            g_load_bytes=100, g_store_bytes=60, s_load_warp=2,
            s_store_warp=1, c_load=7,
        )
        b = KernelCounters(
            launches=2, inst_warp=1, g_load=1, g_store=1,
            g_load_bytes=1, g_store_bytes=1, s_load_warp=1,
            s_store_warp=1, c_load=1,
        )
        a.merge(b)
        assert a.launches == 3
        assert a.inst_warp == 11
        assert a.g_load == 6 and a.g_store == 4
        assert a.g_load_bytes == 101 and a.g_store_bytes == 61
        assert a.s_load_warp == 3 and a.s_store_warp == 2
        assert a.c_load == 8

    def test_as_dict_table3_fields(self):
        d = KernelCounters().as_dict()
        assert set(d) == {
            "inst_pw", "g_load", "g_store", "s_load_pw", "s_store_pw"
        }


class TestCounterBook:
    def test_get_creates_named_entry(self):
        book = CounterBook(num_sms=14)
        c = book.get("k1")
        assert c.name == "k1" and c.num_sms == 14
        assert book.get("k1") is c

    def test_total_sums_entries(self):
        book = CounterBook()
        book.get("a").g_load = 5
        book.get("b").g_load = 7
        assert book.total().g_load == 12

    def test_reset(self):
        book = CounterBook()
        book.get("a").g_load = 5
        book.reset()
        assert book.total().g_load == 0
        assert not book.entries


class TestReportRendering:
    def test_emit_table_aligns(self, capsys):
        from repro.bench.report import emit_table

        emit_table(
            "T", ["col_a", "b"], [("x", 1.0), ("longer", 123456.0)],
            note="n",
        )
        out = capsys.readouterr().out
        assert "=== T ===" in out
        assert "note: n" in out
        assert "1.23e+05" in out or "123456" in out

    def test_emit_to_report_file(self, tmp_path, monkeypatch, capsys):
        from repro.bench.report import emit

        target = tmp_path / "report.txt"
        monkeypatch.setenv("REPRO_REPORT_FILE", str(target))
        emit("hello-line")
        assert "hello-line" in target.read_text()

    def test_float_formatting(self):
        from repro.bench.report import _fmt

        assert _fmt(0) == "0"
        assert _fmt(0.005) == "0.005"
        assert _fmt(12.345) == "12.35" or _fmt(12.345) == "12.34"
        assert _fmt("txt") == "txt"
