"""Throughput engine: residency, prefetch and fast paths never change results.

The window-pipelined engine (persistent device tables, double-buffered
streaming, simulator fast paths) is a pure wall-clock optimization: every
toggle combination must produce bitwise-identical tables, compressed
output and per-phase event counters.  These tests pin that invariant at
every layer — sharded executor, serial pipeline, transaction counter —
plus the once-per-worker residency guarantee and the lint integration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import lint_source
from repro.api import create_pipeline
from repro.core.prefetch import OutputDrain, prefetched_windows
from repro.core.score_table import new_p_build_count, reset_new_p_cache
from repro.exec import execute
from repro.formats.stream import PrefetchIterator
from repro.gpusim.device import Device
from repro.gpusim.memory import (
    _count_transactions_reference,
    count_transactions,
    fast_paths_enabled,
    set_fast_paths,
)

WINDOW = 512


def _counters(profile):
    """Event counters of a profile, excluding measured wall seconds."""
    out = {}
    for name, rec in profile.records.items():
        gpu = rec.gpu.as_dict() if hasattr(rec.gpu, "as_dict") else vars(rec.gpu)
        out[name] = {
            "cpu": dict(vars(rec.cpu)),
            "disk": dict(vars(rec.disk)),
            "gpu": dict(gpu),
            "transfer_bytes": rec.transfer_bytes,
            "fixed_seconds": rec.fixed_seconds,
        }
    return out


class TestTogglesParity:
    """Caching + prefetch on vs off: bitwise identical at 1/2/4 workers."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_on_vs_off(self, workers, small_dataset, tmp_path):
        on_path = tmp_path / "on.gsnp"
        off_path = tmp_path / "off.gsnp"
        on = execute(
            small_dataset, "gsnp", window_size=WINDOW,
            output_path=on_path, workers=workers,
            prefetch=True, cache=True,
        )
        off = execute(
            small_dataset, "gsnp", window_size=WINDOW,
            output_path=off_path, workers=workers,
            prefetch=False, cache=False,
        )
        assert on.table.equals(off.table)
        assert on.compressed_output == off.compressed_output
        assert on_path.read_bytes() == off_path.read_bytes()
        assert _counters(on.profile) == _counters(off.profile)

    def test_serial_pipeline_on_vs_off(self, small_dataset, tmp_path):
        on_pipe = create_pipeline(
            "gsnp", window_size=WINDOW, prefetch=True, cache=True
        )
        off_pipe = create_pipeline(
            "gsnp", window_size=WINDOW, prefetch=False, cache=False
        )
        on_path = tmp_path / "on.gsnp"
        off_path = tmp_path / "off.gsnp"
        try:
            on = on_pipe.run(small_dataset, output_path=on_path)
            # A second run on the cached pipeline hits residency and must
            # still match the fresh uncached run bit for bit.
            on2 = on_pipe.run(small_dataset, output_path=on_path)
            off = off_pipe.run(small_dataset, output_path=off_path)
        finally:
            on_pipe.release_cache()
        assert on.table.equals(off.table)
        assert on2.table.equals(off.table)
        assert on.compressed_output == off.compressed_output
        assert on2.compressed_output == off.compressed_output
        assert on_path.read_bytes() == off_path.read_bytes()
        assert _counters(on.profile) == _counters(off.profile)
        assert _counters(on2.profile) == _counters(off.profile)

    def test_fast_paths_off_matches_on(self, small_dataset):
        """The simulator fast paths change wall clock only, not counters."""
        fast = create_pipeline("gsnp", window_size=WINDOW).run(small_dataset)
        assert fast_paths_enabled()
        set_fast_paths(False)
        try:
            slow = create_pipeline("gsnp", window_size=WINDOW).run(
                small_dataset
            )
        finally:
            set_fast_paths(True)
        assert fast.table.equals(slow.table)
        assert fast.compressed_output == slow.compressed_output
        assert _counters(fast.profile) == _counters(slow.profile)


class TestResidency:
    """Score tables are built and uploaded exactly once per worker."""

    def _upload_counter(self, monkeypatch):
        counts = {"new_p_matrix": 0}
        orig = Device.to_device

        def counting(self, host, name="anon", space="global"):
            if name == "new_p_matrix":
                counts["new_p_matrix"] += 1
            return orig(self, host, name, space)

        monkeypatch.setattr(Device, "to_device", counting)
        return counts

    def test_uploaded_once_per_worker(self, small_dataset, monkeypatch):
        counts = self._upload_counter(monkeypatch)
        reset_new_p_cache()
        # force_serial keeps all 4 shards in-process: one worker state,
        # one pipeline, one upload — despite four shard runs.
        execute(
            small_dataset, "gsnp", window_size=WINDOW,
            workers=2, shard_size=1024, force_serial=True,
            prefetch=True, cache=True,
        )
        assert counts["new_p_matrix"] == 1
        assert new_p_build_count() == 1

    def test_cache_off_uploads_per_shard(self, small_dataset, monkeypatch):
        counts = self._upload_counter(monkeypatch)
        reset_new_p_cache()
        execute(
            small_dataset, "gsnp", window_size=WINDOW,
            workers=2, shard_size=1024, force_serial=True,
            prefetch=True, cache=False,
        )
        assert counts["new_p_matrix"] == 4  # one per shard
        assert new_p_build_count() == 1  # host-side build still memoized

    def test_release_cache_frees_resident_tables(self, small_dataset):
        pipe = create_pipeline("gsnp", window_size=WINDOW, cache=True)
        pipe.run(small_dataset)
        device = pipe._cached_device
        assert device is not None and len(device.resident) == 1
        pipe.release_cache()
        assert len(device.resident) == 0
        assert pipe._cached_device is None


def _oracle(indices, itemsize, warp_size, segment_bytes=128):
    """Brute-force per-warp set-of-touched-segments."""
    idx = np.asarray(indices).ravel()
    total = 0
    for w0 in range(0, idx.size, warp_size):
        segs = set()
        for i in idx[w0:w0 + warp_size]:
            if i >= 0:
                segs.add((int(i) * itemsize) // segment_bytes)
        total += len(segs)
    return total


class TestTransactionFastPaths:
    """Fast transaction engines vs the reference vs the brute oracle."""

    @settings(max_examples=150, deadline=None)
    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1, max_size=300,
        ),
        itemsize=st.sampled_from([1, 4, 8]),
        warp_size=st.sampled_from([8, 32]),
    )
    def test_all_live_hint_matches_oracle(self, indices, itemsize, warp_size):
        idx = np.array(indices, dtype=np.int64)
        got = count_transactions(
            idx, itemsize, warp_size=warp_size, all_live=True
        )
        assert got == _oracle(idx, itemsize, warp_size)
        assert got == _count_transactions_reference(
            idx, itemsize, warp_size, 128
        )

    @settings(max_examples=150, deadline=None)
    @given(
        indices=st.lists(
            st.integers(min_value=-1, max_value=5000),
            min_size=0, max_size=300,
        ),
        itemsize=st.sampled_from([1, 2, 4, 8]),
        warp_size=st.sampled_from([4, 8, 32]),
    )
    def test_fast_engine_matches_reference(self, indices, itemsize, warp_size):
        idx = np.array(indices, dtype=np.int64)
        fast = count_transactions(idx, itemsize, warp_size=warp_size)
        assert fast == _count_transactions_reference(
            idx, itemsize, warp_size, 128
        )
        assert fast == _oracle(idx, itemsize, warp_size)

    @settings(max_examples=100, deadline=None)
    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=20_000),
            min_size=1, max_size=400,
        ),
        descending=st.booleans(),
        itemsize=st.sampled_from([2, 4]),
    )
    def test_monotonic_patterns(self, indices, descending, itemsize):
        idx = np.sort(np.array(indices, dtype=np.int64))
        if descending:
            idx = idx[::-1].copy()
        got = count_transactions(idx, itemsize, all_live=True)
        assert got == _oracle(idx, itemsize, 32)

    def test_toggle_off_identical(self):
        """set_fast_paths(False) routes to the reference: same answers."""
        rng = np.random.default_rng(7)
        cases = [
            rng.integers(-1, 4000, size=int(rng.integers(1, 300)))
            for _ in range(40)
        ]
        fast = [count_transactions(c, 4) for c in cases]
        assert fast_paths_enabled()
        set_fast_paths(False)
        try:
            assert not fast_paths_enabled()
            slow = [count_transactions(c, 4) for c in cases]
        finally:
            set_fast_paths(True)
        assert fast == slow
        assert fast == [_oracle(c, 4, 32) for c in cases]

    def test_memo_survives_repeat_queries(self):
        idx = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int64)
        first = count_transactions(idx, 4, warp_size=4)
        again = count_transactions(idx, 4, warp_size=4)
        assert first == again == _oracle(idx, 4, 4)


class TestPrefetchPrimitives:
    def test_prefetched_windows_disabled_is_passthrough(self):
        src = [1, 2, 3]
        assert prefetched_windows(src, enabled=False) is src

    def test_prefetch_preserves_order(self):
        items = list(range(100))
        assert list(prefetched_windows(iter(items), enabled=True)) == items

    def test_prefetch_reraises_producer_error(self):
        def boom():
            yield 1
            raise ValueError("decode failed")

        it = iter(PrefetchIterator(boom(), depth=2))
        assert next(it) == 1
        with pytest.raises(ValueError, match="decode failed"):
            next(it)

    def test_output_drain_writes_in_order(self, tmp_path):
        path = tmp_path / "out.bin"
        drain = OutputDrain(path)
        blobs = [bytes([i]) * (i + 1) for i in range(20)]
        for blob in blobs:
            drain.submit(blob)
        drain.close()
        assert path.read_bytes() == b"".join(blobs)

    def test_output_drain_reraises_write_error(self, tmp_path):
        drain = OutputDrain(tmp_path)  # a directory: open() fails
        drain.submit(b"data")
        with pytest.raises(OSError):
            drain.close()


class TestLintEnqueueDiscovery:
    """Kernels launched via DeviceStream.enqueue are linted like any other."""

    def test_enqueue_launched_kernel_is_discovered(self):
        diags = lint_source(
            "def body(ctx, out):\n"
            "    x = out.data\n"
            "\n"
            "def run(stream, out):\n"
            "    stream.enqueue(body, 32, out)\n",
            "test.py",
        )
        assert "GSNP101" in [d.rule for d in diags]
