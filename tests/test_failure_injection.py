"""Failure injection: corrupted inputs must fail loudly, never silently.

A production caller that mis-parses its input corrupts downstream science;
every decoder in the package raises a typed error on malformed bytes
instead of returning garbage.
"""

import numpy as np
import pytest

from repro.compress import (
    decode_alignments,
    decode_table,
    dict_decode,
    encode_alignments,
    encode_table,
    rle_dict_decode,
    rle_dict_encode,
    sparse_decode,
    sparse_encode,
    unpack_bits,
)
from repro.errors import CodecError, FormatError
from repro.formats import read_fastq, read_soap
from repro.soapsnp import SoapsnpPipeline


@pytest.fixture(scope="module")
def table_blob(small_dataset):
    table = SoapsnpPipeline(window_size=2000).run(small_dataset).table
    return encode_table(table), table


class TestCorruptedContainers:
    def test_truncated_table_blob(self, table_blob):
        blob, _ = table_blob
        with pytest.raises((CodecError, Exception)):
            decode_table(blob[: len(blob) // 2])

    def test_flipped_magic(self, table_blob):
        blob, _ = table_blob
        bad = b"XXXXXX" + blob[6:]
        with pytest.raises(CodecError, match="magic"):
            decode_table(bad)

    def test_bitflip_in_payload_detected_or_changed(self, table_blob):
        """A payload bit flip either raises or produces a different table
        — it must never silently reproduce the original."""
        blob, table = table_blob
        bad = bytearray(blob)
        bad[len(bad) // 2] ^= 0x40
        try:
            decoded, _ = decode_table(bytes(bad))
        except (CodecError, ValueError, IndexError, KeyError):
            return
        assert not decoded.equals(table)

    def test_truncated_alignment_blob(self, small_batch):
        blob = encode_alignments(small_batch)
        with pytest.raises(Exception):
            decode_alignments(blob[:100])

    def test_wrong_alignment_magic(self, small_batch):
        blob = encode_alignments(small_batch)
        with pytest.raises(CodecError, match="magic"):
            decode_alignments(b"NOTGSN" + blob[6:])


class TestCorruptedPrimitives:
    def test_dict_index_out_of_range(self):
        import struct

        from repro.compress import dict_encode

        blob = bytearray(dict_encode(np.array([5, 6], dtype=np.uint8)))
        # Widen the declared index width and saturate the payload so the
        # decoded indices overflow the 2-entry dictionary.
        count, tag, dict_size, width = struct.unpack_from("<IBHB", blob, 0)
        struct.pack_into("<IBHB", blob, 0, count, tag, dict_size, 2)
        blob[-1] = 0xFF
        with pytest.raises(CodecError, match="index out of range"):
            dict_decode(bytes(blob))

    def test_unpack_bits_underflow(self):
        with pytest.raises(CodecError, match="too short"):
            unpack_bits(b"\xff", 7, 10)

    def test_rle_dict_garbage(self):
        with pytest.raises(CodecError):
            rle_dict_decode(b"\x00" * 4)

    def test_rle_dict_declared_sizes_lie(self):
        import struct

        good = rle_dict_encode(np.array([1, 1, 2], dtype=np.uint8))
        bad = struct.pack("<II", 10_000, 10_000) + good[8:]
        with pytest.raises(Exception):
            rle_dict_decode(bad)

    def test_sparse_truncated(self):
        blob = sparse_encode(np.array([0, 0, 5], dtype=np.uint8), 0)
        with pytest.raises(Exception):
            sparse_decode(blob[:10])


class TestCorruptedTextFormats:
    def test_soap_quality_out_of_range(self, tmp_path):
        p = tmp_path / "bad.soap"
        # Quality char beyond Phred 63 (ASCII 33+64=97='a' is invalid).
        p.write_text("r\tACGT\tzzzz\t1\t4\t+\tchr\t1\n")
        with pytest.raises(FormatError, match="quality"):
            read_soap(p)

    def test_soap_invalid_base(self, tmp_path):
        p = tmp_path / "bad.soap"
        p.write_text("r\tACGX\t!!!!\t1\t4\t+\tchr\t1\n")
        with pytest.raises(FormatError, match="base"):
            read_soap(p)

    def test_fastq_missing_plus(self, tmp_path):
        p = tmp_path / "bad.fq"
        p.write_text("@r0\nACGT\n-\n!!!!\n")
        with pytest.raises(FormatError, match="'\\+'"):
            read_fastq(p)

    def test_fastq_ragged_records(self, tmp_path):
        p = tmp_path / "bad.fq"
        p.write_text("@r0\nACGT\n+\n!!!!\n@r1\nACGT\n")
        with pytest.raises(FormatError, match="multiple of 4"):
            read_fastq(p)

    def test_fastq_mixed_lengths(self, tmp_path):
        p = tmp_path / "bad.fq"
        p.write_text("@r0\nACGT\n+\n!!!!\n@r1\nACG\n+\n!!!\n")
        with pytest.raises(FormatError, match="mixed"):
            read_fastq(p)

    def test_fastq_empty(self, tmp_path):
        p = tmp_path / "e.fq"
        p.write_text("")
        with pytest.raises(FormatError, match="empty"):
            read_fastq(p)
