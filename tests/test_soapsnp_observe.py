"""Observation extraction: canonical order, uniqueness, the 255 cap."""

import numpy as np
import pytest

from repro.align.records import AlignmentBatch
from repro.formats.window import Window, WindowReader
from repro.soapsnp.base_occ import (
    build_base_occ,
    build_base_occ_site,
    nonzero_counts,
    sparsity_histogram,
)
from repro.soapsnp.observe import extract_observations


class TestExtraction:
    def test_observation_count(self, small_obs, small_batch, small_dataset):
        # Single window over everything: every read base is one observation.
        assert small_obs.n_obs == small_batch.n_reads * small_batch.read_len

    def test_canonical_order_within_site(self, small_obs):
        o = small_obs
        # Composite canonical key must be non-decreasing.
        key = (
            o.site.astype(np.int64) << 20
            | o.base.astype(np.int64) << 18
            | (63 - o.score.astype(np.int64)) << 12
            | o.coord.astype(np.int64) << 2
            | o.strand.astype(np.int64)
        )
        assert np.all(np.diff(key) >= 0)

    def test_unique_flag_matches_hits(self, small_obs):
        assert np.array_equal(small_obs.unique, small_obs.hits == 1)

    def test_counted_subset_of_unique(self, small_obs):
        assert np.all(small_obs.counted <= small_obs.unique)

    def test_no_cap_hit_at_realistic_depth(self, small_obs):
        assert np.array_equal(small_obs.counted, small_obs.unique)

    def test_arrival_is_permutation(self, small_obs):
        a = np.sort(small_obs.arrival)
        assert np.array_equal(a, np.arange(small_obs.n_obs))

    def test_empty_window(self, small_batch):
        w = Window(start=0, end=10, reads=AlignmentBatch.empty("x", 100))
        obs = extract_observations(w)
        assert obs.n_obs == 0
        sel, offsets = obs.counted_offsets()
        assert offsets.size == 11 and offsets[-1] == 0

    def test_window_restriction(self, small_dataset, small_batch):
        reader = WindowReader(small_batch, small_dataset.n_sites, 500)
        windows = list(reader)
        total = sum(extract_observations(w).n_obs for w in windows)
        # Every aligned base lands in exactly one window.
        assert total == small_batch.n_reads * small_batch.read_len
        for w in windows:
            obs = extract_observations(w)
            if obs.n_obs:
                assert obs.site.min() >= 0
                assert obs.site.max() < w.n_sites

    def test_coord_is_machine_cycle(self, small_dataset, small_batch):
        w = Window(start=0, end=small_dataset.n_sites, reads=small_batch)
        obs = extract_observations(w)
        # Reverse-strand observations at the read's first forward offset
        # must carry machine cycle read_len-1 somewhere; check bounds.
        assert obs.coord.max() < small_batch.read_len

    def test_offsets_partition_counted(self, small_obs):
        sel, offsets = small_obs.counted_offsets()
        assert offsets[-1] == sel.size
        assert np.all(np.diff(offsets) >= 0)
        # Every selected observation's site matches its segment.
        site_of = np.repeat(
            np.arange(small_obs.n_sites), np.diff(offsets)
        )
        assert np.array_equal(small_obs.site[sel], site_of)


class TestCap255:
    def _window_with_duplicates(self, copies):
        """Many identical reads stacking the same cell."""
        n = copies
        batch = AlignmentBatch(
            chrom="c", read_len=4,
            pos=np.zeros(n, dtype=np.int64),
            strand=np.zeros(n, dtype=np.uint8),
            hits=np.ones(n, dtype=np.uint8),
            bases=np.tile(np.array([0, 1, 2, 3], dtype=np.uint8), (n, 1)),
            quals=np.full((n, 4), 30, dtype=np.uint8),
        )
        return Window(start=0, end=4, reads=batch)

    def test_under_cap_all_counted(self):
        obs = extract_observations(self._window_with_duplicates(200))
        assert obs.counted.sum() == 200 * 4

    def test_over_cap_drops_extras(self):
        obs = extract_observations(self._window_with_duplicates(300))
        # Each of the 4 cells capped at 255.
        assert obs.counted.sum() == 255 * 4
        assert obs.unique.sum() == 300 * 4


class TestBaseOcc:
    def test_dense_matrix_counts(self, small_obs):
        occ = build_base_occ(small_obs)
        assert occ.sum() == small_obs.counted.sum()

    def test_single_site_view_consistent(self, small_obs):
        occ = build_base_occ(small_obs)
        for s in (0, 100, 2000):
            site_occ = build_base_occ_site(small_obs, s)
            assert np.array_equal(site_occ.reshape(-1), occ[s])

    def test_nonzero_counts_match_dense(self, small_obs):
        nnz = nonzero_counts(small_obs)
        occ = build_base_occ(small_obs)
        assert np.array_equal(nnz, (occ > 0).sum(axis=1))

    def test_sparsity_is_paper_regime(self, small_obs):
        """Fig 4b: non-zero share of base_occ ~0.01-0.1%."""
        nnz = nonzero_counts(small_obs)
        pct = 100.0 * nnz.mean() / 131072
        assert 0.001 < pct < 0.1

    def test_sparsity_histogram_sums_to_100(self, small_obs):
        hist = sparsity_histogram(nonzero_counts(small_obs))
        assert sum(hist.values()) == pytest.approx(100.0)

    def test_histogram_mass_in_tens_bucket(self, small_obs):
        """Most sites have tens of non-zeros (Fig 4b)."""
        nnz = nonzero_counts(small_obs)
        assert ((nnz >= 1) & (nnz <= 64)).mean() > 0.5
