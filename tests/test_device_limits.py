"""Hardware-constraint behavior: the 3 GB M2050 limit and window sizing."""

import numpy as np
import pytest

from repro.core.pipeline import GsnpPipeline
from repro.errors import AllocationError
from repro.gpusim.device import Device
from repro.gpusim.spec import GpuSpec


class TestDeviceMemoryPressure:
    def test_pipeline_fails_cleanly_on_tiny_device(self, small_dataset):
        """A device too small for the score tables must raise, not hang or
        corrupt — mirrors cudaMalloc failure on an undersized card."""
        tiny = Device(spec=GpuSpec(global_mem_bytes=4 * 1024 * 1024))
        pipe = GsnpPipeline(window_size=2000, mode="gpu", device=tiny)
        with pytest.raises(AllocationError):
            pipe.run(small_dataset)

    def test_pipeline_fits_m2050(self, small_dataset):
        """The paper's window sizes were chosen so GSNP uses ~1.5 GB of
        the M2050's 3 GB; our scaled windows stay far below that."""
        res = GsnpPipeline(window_size=4000, mode="gpu").run(small_dataset)
        assert res.extras["peak_gpu_bytes"] < GpuSpec().global_mem_bytes / 2

    def test_smaller_windows_use_less_gpu_memory(self, small_dataset):
        big = GsnpPipeline(window_size=4000, mode="gpu").run(small_dataset)
        small = GsnpPipeline(window_size=500, mode="gpu").run(small_dataset)
        assert (
            small.extras["peak_gpu_bytes"] <= big.extras["peak_gpu_bytes"]
        )
        assert small.table.equals(big.table)

    def test_disable_enforcement_allows_oversubscription(self, small_dataset):
        loose = Device(
            spec=GpuSpec(global_mem_bytes=1024), enforce_memory=False
        )
        pipe = GsnpPipeline(window_size=2000, mode="gpu", device=loose)
        res = pipe.run(small_dataset)  # no raise
        assert res.table.n_sites == small_dataset.n_sites


class TestScoreTableResidency:
    def test_tables_live_in_global_and_constant(self, small_pm_flat,
                                                small_penalty):
        from repro.core.likelihood import GsnpTables

        device = Device()
        tables = GsnpTables.load(device, small_pm_flat, small_penalty)
        assert tables.pm_dev.space == "global"
        assert tables.newp_dev.space == "global"
        # The log/penalty table is the paper's constant-memory resident.
        assert tables.penalty_dev.space == "constant"
        assert device.constant_used >= small_penalty.nbytes

    def test_new_p_matrix_transfer_accounted(self, small_pm_flat,
                                             small_penalty):
        from repro.core.likelihood import GsnpTables

        device = Device()
        GsnpTables.load(device, small_pm_flat, small_penalty)
        # p_matrix + new_p_matrix shipped over PCIe.
        expected = small_pm_flat.nbytes * (1 + 10 / 4)
        assert device.transfers.h2d_bytes >= expected
