"""SOAPsnp pipeline: window invariance, event accounting, accuracy."""

import numpy as np
import pytest

from repro.bench.events import COMPONENTS
from repro.soapsnp import SoapsnpPipeline, is_snp_call


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return SoapsnpPipeline(window_size=1000, collect_nnz=True).run(
            small_dataset
        )

    def test_covers_every_site(self, result, small_dataset):
        assert result.table.n_sites == small_dataset.n_sites

    def test_window_size_invariance(self, result, small_dataset):
        """Results must not depend on the windowing (§VI: performance is
        window-dependent, output is not)."""
        other = SoapsnpPipeline(window_size=777).run(small_dataset)
        assert other.table.equals(result.table)

    def test_all_components_recorded(self, result):
        for c in COMPONENTS:
            assert c in result.profile.records, c

    def test_likelihood_dominated_by_dense_scan(self, result, small_dataset):
        """Table I shape: likelihood and recycle dominate the modeled
        time because of the dense base_occ representation."""
        b = result.profile.breakdown()
        assert b["likelihood"] > b["counting"]
        assert b["likelihood"] > b["output"]
        assert b["recycle"] > b["posterior"]

    def test_dense_scan_bytes_match_formula1(self, result, small_dataset):
        rec = result.profile.records["likelihood"]
        assert rec.cpu.seq_read_bytes == small_dataset.n_sites * 131072

    def test_output_bytes_positive_and_text(self, result):
        assert result.output_bytes > result.table.n_sites * 30

    def test_nnz_collected(self, result, small_dataset):
        assert result.nnz.size == small_dataset.n_sites

    def test_output_file_written(self, small_dataset, tmp_path):
        path = tmp_path / "out.cns"
        res = SoapsnpPipeline(window_size=2000).run(
            small_dataset, output_path=path
        )
        assert path.stat().st_size == res.output_bytes

    def test_accuracy_on_planted_snps(self, result, small_dataset):
        calls = set(
            (result.table.pos[is_snp_call(result.table)] - 1).tolist()
        )
        truth = {
            int(p)
            for p in small_dataset.diploid.snp_positions
            if result.table.depth[int(p)] >= 4
        }
        assert len(calls & truth) / max(len(truth), 1) > 0.8

    def test_p_matrix_attached(self, result):
        assert result.p_matrix.shape == (64, 256, 4, 4)

    def test_wall_times_recorded(self, result):
        assert result.profile.total_wall() > 0
