"""gsnp-audit: static dataflow proofs over the kernel IR.

Covers the IR extraction layer (ops, masks, barrier regions, ctx-method
aliases), the affine-in-tid abstract interpretation (coalesced / strided
/ gather / unproven verdicts), the whole-kernel checks (GSNP202 static
races, GSNP203 uninit reads, GSNP204 missing barriers, GSNP205 honesty),
the runtime calibration cross-check, and the acceptance gates: the
repo's own kernels audit with zero errors and zero unproven ops, and
every proven coalescing verdict agrees with the simulator's transaction
counters.
"""

import ast
import textwrap

import pytest

from repro.analyze.calibrate import run_calibration, transaction_bound
from repro.analyze.dataflow import (
    AFFINE,
    DATADEP,
    VERDICT_COALESCED,
    VERDICT_GATHER,
    VERDICT_STRIDED,
    VERDICT_UNPROVEN,
    affine,
    audit_source,
    classify,
    datadep,
    join,
    tidperm,
    uniform,
    unknown,
)
from repro.analyze.ir import extract_module_ir


def _audit(src):
    return audit_source(textwrap.dedent(src), "test.py")


def _verdicts(src):
    return {(v.line, v.kind): v for v in _audit(src).verdicts}


def _errors(src):
    return [d for d in _audit(src).diagnostics if d.severity == "error"]


def _ir(src):
    return extract_module_ir(ast.parse(textwrap.dedent(src)), "test.py")


class TestIRExtraction:
    def test_ops_masks_and_regions(self):
        kirs = _ir(
            """
            def k_kernel(ctx, src, dst, n):
                active = ctx.tid < n
                v = ctx.gload(src, ctx.tid, active=active)
                ctx.syncthreads()
                ctx.gstore(dst, ctx.tid, v, active=None)
            """
        )
        assert len(kirs) == 1
        kir = kirs[0]
        assert kir.name == "k_kernel"
        assert kir.params == ["src", "dst", "n"]
        assert kir.n_barriers == 1
        mem = kir.mem_ops()
        assert [op.kind for op in mem] == ["gload", "gstore"]
        load, store = mem
        assert not load.mask.is_full and load.mask.text == "active"
        assert store.mask.is_full
        # The barrier separates the two ops into distinct regions.
        assert load.region == 0 and store.region == 1

    def test_ctx_method_alias(self):
        kirs = _ir(
            """
            def k_kernel(ctx, buf, fast):
                probe = ctx.cload if fast else ctx.gload
                v = probe(buf, ctx.tid, None)
            """
        )
        ops = kirs[0].mem_ops()
        assert len(ops) == 1
        assert ops[0].alias_of == "probe"

    def test_loop_and_branch_tracking(self):
        kirs = _ir(
            """
            def k_kernel(ctx, buf, n):
                for step in range(n):
                    ctx.gstore(buf, ctx.tid, step, active=None)
                    ctx.syncthreads()
            """
        )
        op = kirs[0].mem_ops()[0]
        assert op.loop_id is not None
        assert op.loop_has_barrier

    def test_index_text_is_source(self):
        kirs = _ir(
            """
            def k_kernel(ctx, buf):
                v = ctx.gload(buf, ctx.tid * 4 + 1, active=None)
            """
        )
        assert kirs[0].mem_ops()[0].index_text == "ctx.tid * 4 + 1"


class TestLattice:
    def test_classify_table(self):
        assert classify(affine(1, 0)) == (VERDICT_COALESCED, 1)
        assert classify(affine(-1, 7)) == (VERDICT_COALESCED, 1)
        assert classify(uniform(3)) == (VERDICT_COALESCED, 0)
        assert classify(affine(4, 0)) == (VERDICT_STRIDED, 4)
        assert classify(affine(None, None)) == (VERDICT_STRIDED, None)
        assert classify(tidperm("x"))[0] == VERDICT_GATHER
        assert classify(datadep("x"))[0] == VERDICT_GATHER
        assert classify(unknown("x"))[0] == VERDICT_UNPROVEN

    def test_join_merges_control_flow(self):
        a, b = affine(1, 0), affine(1, 4)
        j = join(a, b)
        assert j.kind == AFFINE and j.stride == 1 and j.offset is None
        assert join(affine(1, 0), affine(2, 0)).stride is None
        assert join(uniform(1), datadep("d")).kind == DATADEP

    def test_coalesced_and_strided_verdicts(self):
        v = _verdicts(
            """
            def k_kernel(ctx, src, dst):
                a = ctx.gload(src, ctx.tid, active=None)
                b = ctx.gload(src, ctx.tid * 4, active=None)
                ctx.gstore(dst, ctx.tid + 8, a + b, active=None)
            """
        )
        assert v[(3, "gload")].verdict == VERDICT_COALESCED
        assert v[(4, "gload")].verdict == VERDICT_STRIDED
        assert v[(4, "gload")].stride == 4
        assert v[(5, "gstore")].verdict == VERDICT_COALESCED

    def test_data_dependent_gather(self):
        v = _verdicts(
            """
            def k_kernel(ctx, idx, src, dst):
                j = ctx.gload(idx, ctx.tid, active=None)
                val = ctx.gload(src, j, active=None)
                ctx.gstore(dst, ctx.tid, val, active=None)
            """
        )
        assert v[(4, "gload")].verdict == VERDICT_GATHER
        assert "idx" in v[(4, "gload")].detail

    def test_clamped_neighbor_load(self):
        v = _verdicts(
            """
            import numpy as np

            def k_kernel(ctx, src, dst, n: int):
                j = np.minimum(ctx.tid + 1, n - 1)
                v = ctx.gload(src, j, active=None)
                ctx.gstore(dst, ctx.tid, v, active=None)
            """
        )
        assert v[(6, "gload")].verdict == VERDICT_COALESCED
        assert v[(6, "gload")].clamped

    def test_loop_carried_rebinding_degrades(self):
        # After one iteration `lo` is np.where-selected (data-dependent);
        # the two-pass fixpoint must classify `mid` as a gather, not take
        # the first-iteration affine value.
        v = _verdicts(
            """
            import numpy as np

            def k_kernel(ctx, table, out, steps):
                lo = ctx.tid * 0
                for _ in range(steps):
                    mid = lo + 1
                    probe = ctx.gload(table, mid, active=None)
                    lo = np.where(probe > 0, mid, lo)
            """
        )
        assert v[(8, "gload")].verdict == VERDICT_GATHER

    def test_unproven_is_said_out_loud(self):
        audit = _audit(
            """
            def k_kernel(ctx, buf):
                idx = mystery()
                v = ctx.gload(buf, idx, active=None)
            """
        )
        assert audit.verdicts[0].verdict == VERDICT_UNPROVEN
        assert [d.rule for d in audit.diagnostics
                if d.severity == "error"] == ["GSNP205"]


class TestStaticRaces:
    def test_raw_race_fires(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf):
                v = ctx.gload(buf, ctx.tid + 1, active=None)
                ctx.gstore(buf, ctx.tid, v, active=None)
            """
        )
        assert [d.rule for d in errs] == ["GSNP202"]

    def test_barrier_between_is_clean(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf):
                v = ctx.gload(buf, ctx.tid + 1, active=None)
                ctx.syncthreads()
                ctx.gstore(buf, ctx.tid, v, active=None)
            """
        )
        assert errs == []

    def test_broadcast_store_self_race(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf):
                ctx.gstore(buf, 0, ctx.tid, active=None)
            """
        )
        assert [d.rule for d in errs] == ["GSNP202"]

    def test_atomic_broadcast_is_clean(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf):
                ctx.gatomic_add(buf, 0, 1, active=None)
            """
        )
        assert errs == []

    def test_disjoint_lanes_are_clean(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf):
                v = ctx.gload(buf, ctx.tid, active=None)
                ctx.gstore(buf, ctx.tid, v + 1, active=None)
            """
        )
        assert errs == []

    def test_cross_iteration_race_in_barrier_free_loop(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf, steps):
                for _ in range(steps):
                    v = ctx.gload(buf, ctx.tid + 1, active=None)
                    ctx.gstore(buf, ctx.tid, v, active=None)
            """
        )
        assert "GSNP202" in {d.rule for d in errs}

    def test_loop_with_barrier_between_is_clean(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf, steps):
                for _ in range(steps):
                    v = ctx.gload(buf, ctx.tid + 1, active=None)
                    ctx.syncthreads()
                    ctx.gstore(buf, ctx.tid, v, active=None)
                    ctx.syncthreads()
            """
        )
        assert errs == []


class TestMissingBarrier:
    def test_masked_store_then_full_load_fires(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf, n):
                active = ctx.tid < n
                ctx.gstore(buf, ctx.tid, ctx.tid, active=active)
                v = ctx.gload(buf, ctx.tid + 1, active=None)
            """
        )
        assert [d.rule for d in errs] == ["GSNP204"]

    def test_same_lane_readback_is_clean(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf, n):
                active = ctx.tid < n
                ctx.gstore(buf, ctx.tid, ctx.tid, active=active)
                v = ctx.gload(buf, ctx.tid, active=None)
            """
        )
        assert errs == []

    def test_barrier_resolves_hazard(self):
        errs = _errors(
            """
            def k_kernel(ctx, buf, n):
                active = ctx.tid < n
                ctx.gstore(buf, ctx.tid, ctx.tid, active=active)
                ctx.syncthreads()
                v = ctx.gload(buf, ctx.tid + 1, active=None)
            """
        )
        assert errs == []


class TestUninitReads:
    def test_load_from_uninit_alloc_fires(self):
        errs = _errors(
            """
            scratch = device.alloc(64, init=False)

            def k_kernel(ctx, buf):
                v = ctx.gload(buf, ctx.tid, active=None)

            device.launch(k_kernel, 64, scratch)
            """
        )
        assert [d.rule for d in errs] == ["GSNP203"]

    def test_store_before_load_is_clean(self):
        errs = _errors(
            """
            scratch = device.alloc(64, init=False)

            def k_kernel(ctx, buf):
                ctx.gstore(buf, ctx.tid, 0, active=None)
                v = ctx.gload(buf, ctx.tid, active=None)

            device.launch(k_kernel, 64, scratch)
            """
        )
        assert errs == []

    def test_initialized_alloc_is_clean(self):
        errs = _errors(
            """
            scratch = device.alloc(64)

            def k_kernel(ctx, buf):
                v = ctx.gload(buf, ctx.tid, active=None)

            device.launch(k_kernel, 64, scratch)
            """
        )
        assert errs == []

    def test_keyword_launch_binding(self):
        errs = _errors(
            """
            scratch = device.alloc(64, init=False)

            def k_kernel(ctx, buf):
                v = ctx.gload(buf, ctx.tid, active=None)

            device.launch(k_kernel, 64, buf=scratch)
            """
        )
        assert [d.rule for d in errs] == ["GSNP203"]


class TestSuppression:
    def test_audit_rules_are_suppressible(self):
        audit = _audit(
            """
            def k_kernel(ctx, buf):
                idx = mystery()
                v = ctx.gload(buf, idx, active=None)  # gsnp-lint: disable=GSNP205
            """
        )
        assert all(d.rule != "GSNP205" for d in audit.diagnostics)

    def test_note_verdicts_are_suppressible(self):
        audit = _audit(
            """
            def k_kernel(ctx, buf):
                v = ctx.gload(buf, ctx.tid, active=None)  # gsnp-lint: disable=GSNP201
            """
        )
        assert audit.diagnostics == []
        # The verdict itself survives; only the note is filtered.
        assert len(audit.verdicts) == 1


class TestCalibration:
    def test_transaction_bound_table(self):
        # Broadcast: one segment per warp regardless of geometry.
        assert transaction_bound(0, 32, 4, 128) == 1
        # Unit stride, 4-byte elems: 124 bytes span -> 1 segment + slack.
        assert transaction_bound(1, 32, 4, 128) == 2
        # Stride 2 doubles the span.
        assert transaction_bound(2, 32, 4, 128) == 3

    def test_probe_replay_agrees(self):
        report = run_calibration(
            ["src/repro"], workloads=False, probes=True
        )
        assert report.ok
        assert report.checked > 0
        assert report.agreements == report.checked
        assert report.mismatches == []

    def test_full_calibration_covers_every_coalesced_op(self):
        """Acceptance gate: 100% agreement AND 100% coverage — every op
        the audit proved coalesced is exercised by the tier-1 replay and
        stays within its transaction bound."""
        report = run_calibration(["src/repro"], n_sites=300)
        assert report.ok
        assert report.observed_ops == report.coalesced_ops
        assert report.unobserved == []


class TestInTreeGates:
    """The audit's headline acceptance criteria on the repo's own kernels."""

    @pytest.fixture(scope="class")
    def audits(self):
        from repro.analyze import audit_paths

        return audit_paths(["src/repro"])

    def test_zero_errors(self, audits):
        errs = [
            d for m in audits for d in m.diagnostics
            if d.severity == "error"
        ]
        assert errs == []

    def test_zero_unproven(self, audits):
        unproven = [
            v for m in audits for v in m.verdicts
            if v.verdict == VERDICT_UNPROVEN
        ]
        assert unproven == []

    def test_every_mem_op_classified(self, audits):
        counts = {}
        for m in audits:
            for v in m.verdicts:
                counts[v.verdict] = counts.get(v.verdict, 0) + 1
        total = sum(counts.values())
        ops = sum(
            len(k.ir.mem_ops()) for m in audits for k in m.kernels
        )
        assert total == ops > 0
        assert counts.get(VERDICT_COALESCED, 0) > 0
        assert counts.get(VERDICT_STRIDED, 0) > 0


class TestCLI:
    def test_exit_zero_on_clean_tree(self, capsys):
        from repro.cli import main_audit

        assert main_audit(["src/repro/gpusim/primitives/reduce.py"]) == 0
        err = capsys.readouterr().err
        assert "audited" in err and "unproven" in err

    def test_exit_one_on_error(self, tmp_path, capsys):
        from repro.cli import main_audit

        (tmp_path / "bad.py").write_text(textwrap.dedent(
            """
            def k_kernel(ctx, buf):
                idx = mystery()
                v = ctx.gload(buf, idx, active=None)
            """
        ))
        assert main_audit([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "GSNP205" in out

    def test_json_format_carries_verdicts(self, capsys):
        import json

        from repro.cli import main_audit

        assert main_audit([
            "src/repro/gpusim/primitives/reduce.py", "--format", "json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "gsnp-audit"
        assert doc["kernels"] == 2
        assert doc["verdicts"]["coalesced"] > 0
        assert all("verdict" in op for op in doc["ops"])

    def test_verbose_prints_notes(self, capsys):
        from repro.cli import main_audit

        assert main_audit([
            "src/repro/gpusim/primitives/reduce.py", "--verbose",
        ]) == 0
        out = capsys.readouterr().out
        assert "GSNP201" in out and "note:" in out

    def test_list_rules(self, capsys):
        from repro.cli import main_audit

        assert main_audit(["x", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("GSNP201", "GSNP202", "GSNP203", "GSNP204", "GSNP205"):
            assert rid in out
