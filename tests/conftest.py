"""Shared fixtures: small simulated datasets and derived pipeline inputs.

Session-scoped because dataset generation and p_matrix calibration are the
expensive parts; tests treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.records import AlignmentBatch
from repro.formats.window import Window, WindowReader
from repro.gpusim.device import Device
from repro.seqsim.datasets import DatasetSpec, generate_dataset
from repro.soapsnp.model import CallingParams
from repro.soapsnp.observe import extract_observations
from repro.soapsnp.p_matrix import build_p_matrix, flatten_p_matrix


@pytest.fixture(scope="session")
def small_dataset():
    """~4k sites, depth 12, full pipeline-speed friendly."""
    spec = DatasetSpec(
        name="chrTest", n_sites=4000, depth=12.0, coverage=0.9, seed=101
    )
    return generate_dataset(spec)


@pytest.fixture(scope="session")
def tiny_dataset():
    """~800 sites for expensive per-site oracle comparisons."""
    spec = DatasetSpec(
        name="chrTiny", n_sites=800, depth=14.0, coverage=1.0, seed=202
    )
    return generate_dataset(spec)


@pytest.fixture(scope="session")
def small_batch(small_dataset):
    return AlignmentBatch.from_read_set(small_dataset.reads)


@pytest.fixture(scope="session")
def small_params(small_batch):
    return CallingParams(read_len=small_batch.read_len)


@pytest.fixture(scope="session")
def small_pm_flat(small_dataset, small_batch, small_params):
    pm = build_p_matrix(small_batch, small_dataset.reference, small_params)
    return flatten_p_matrix(pm)


@pytest.fixture(scope="session")
def small_penalty(small_params):
    return small_params.penalty_table()


@pytest.fixture(scope="session")
def small_window(small_dataset, small_batch):
    return Window(
        start=0, end=small_dataset.n_sites, reads=small_batch
    )


@pytest.fixture(scope="session")
def small_obs(small_window):
    return extract_observations(small_window)


@pytest.fixture()
def device():
    return Device()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)
