"""Cohort-batched multi-sample calling: parity, residency, resume.

The load-bearing invariant: every member of an S-sample cohort produces
output *bitwise identical* to its own solo serial run sharing the pooled
calibration — under any combination of fusion, worker count, device
count, sanitizer, and crash/resume schedule.  The batching is pure
amortization (one input pass, one resident table set, one sample-major
launch chain); it must never be visible in the bytes.
"""

import warnings
from dataclasses import replace

import pytest

from repro.align.records import AlignmentBatch
from repro.api import JobSpec, create_pipeline
from repro.core.cohort import cohort_output_path, pooled_batch
from repro.core.detector import GsnpDetector
from repro.errors import PipelineError, ShardError
from repro.exec import execute, plan_shards
from repro.faults import DegradationWarning, FaultPlan, FaultSpec
from repro.seqsim.datasets import DatasetSpec, generate_dataset
from repro.seqsim.reads import simulate_reads

WINDOW = 512
SEED = 77


@pytest.fixture(scope="module")
def ds():
    return generate_dataset(DatasetSpec(
        name="cohort-t", n_sites=3000, depth=8.0, coverage=0.9,
        read_len=40, seed=SEED,
    ))


@pytest.fixture(scope="module")
def batches(ds):
    """Four cohort members: the dataset's own reads plus three fresh
    sequencing runs of the same individual (distinct seeds)."""
    out = [AlignmentBatch.from_read_set(ds.reads)]
    for i in range(1, 4):
        rs = simulate_reads(
            ds.diploid, depth=8.0, coverage=0.9, read_len=40,
            seed=SEED * 7 + 3 + 1000 * i,
        )
        out.append(AlignmentBatch.from_read_set(rs))
    return out


@pytest.fixture(scope="module")
def cals(ds, batches):
    """Pooled calibration per cohort size (deterministic: any path that
    recalibrates over the same pooled reads reproduces these exactly)."""
    out = {}
    for s in (1, 2, 4):
        pipe = create_pipeline(spec=JobSpec(engine="gsnp", window=WINDOW))
        out[s] = pipe.calibrate(ds, reads=pooled_batch(batches[:s]))
        if hasattr(pipe, "release_cache"):
            pipe.release_cache()
    return out


@pytest.fixture(scope="module")
def solo(ds, batches, cals):
    """The parity oracle: per cohort size, each sample's solo serial
    non-fused run with the pooled calibration -> (table, bytes)."""
    out = {}
    for s, cal in cals.items():
        runs = []
        for batch in batches[:s]:
            pipe = create_pipeline(
                spec=JobSpec(engine="gsnp", window=WINDOW, fusion=False)
            )
            res = pipe.run(ds, calibration=cal, reads=batch)
            if hasattr(pipe, "release_cache"):
                pipe.release_cache()
            runs.append((res.table, res.compressed_output))
        out[s] = runs
    return out


def _assert_parity(cohort_res, oracle, ctx):
    assert cohort_res.n_samples == len(oracle), ctx
    for si, (table, blob) in enumerate(oracle):
        sres = cohort_res.sample_result(si)
        assert sres.table.equals(table), (ctx, si)
        assert sres.compressed_output == blob, (ctx, si)


class TestBitwiseParity:
    @pytest.mark.parametrize("s", [1, 2, 4])
    @pytest.mark.parametrize("fusion", [False, True])
    def test_serial_cohort_matches_solo_runs(
        self, s, fusion, ds, batches, cals, solo
    ):
        pipe = create_pipeline(
            spec=JobSpec(engine="gsnp", window=WINDOW, fusion=fusion)
        )
        res = pipe.run_cohort(ds, batches[:s], calibration=cals[s])
        if hasattr(pipe, "release_cache"):
            pipe.release_cache()
        _assert_parity(res, solo[s], (s, fusion))

    @pytest.mark.parametrize("s", [1, 2, 4])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_sharded_cohort_matches_solo_runs(
        self, s, workers, ds, batches, solo
    ):
        res = execute(
            ds,
            spec=JobSpec(
                engine="gsnp", window=WINDOW, fusion=True,
                workers=workers, shard_size=1024,
            ),
            sample_reads=batches[:s],
            force_serial=True,
        )
        _assert_parity(res, solo[s], (s, workers))
        assert res.extras["exec"]["samples"] == s

    def test_multidevice_cohort_matches_solo_runs(self, ds, batches, solo):
        res = execute(
            ds,
            spec=JobSpec(
                engine="gsnp", window=WINDOW, fusion=True, devices=2,
            ),
            sample_reads=batches[:4],
        )
        _assert_parity(res, solo[4], "devices=2")

    def test_sanitized_cohort_matches_solo_runs(self, ds, batches, solo):
        det = GsnpDetector(
            engine="gsnp", window_size=WINDOW, fusion=True, sanitize=True,
        )
        det.sample_batches = batches[:4]
        res = det.run(ds)
        _assert_parity(res, solo[4], "sanitize")

    def test_output_files_per_sample(self, ds, batches, solo, tmp_path):
        out = tmp_path / "cohort.cns"
        pipe = create_pipeline(
            spec=JobSpec(engine="gsnp", window=WINDOW, fusion=True)
        )
        paths = [cohort_output_path(out, i) for i in range(4)]
        pipe.run_cohort(ds, batches[:4], output_paths=paths)
        if hasattr(pipe, "release_cache"):
            pipe.release_cache()
        assert paths[0] == out
        assert paths[2].name == "cohort.cns.s2"
        for si, (_, blob) in enumerate(solo[4]):
            assert paths[si].read_bytes() == blob, si


class TestResidency:
    def test_cohort_uploads_tables_once(self, ds, batches, cals):
        """Satellite regression: an S=4 fused cohort run performs exactly
        one score-table upload — the residency key is the calibration
        fingerprint, never the sample."""
        pipe = create_pipeline(
            spec=JobSpec(engine="gsnp", window=WINDOW, fusion=True,
                         cache=True)
        )
        res = pipe.run_cohort(ds, batches[:4], calibration=cals[4])
        device = res.extras["device"]
        assert device is not None
        assert device.resident.misses == 1
        # A second cohort run with the same calibration re-uses the
        # resident set: still one upload ever.
        pipe.run_cohort(ds, batches[:4], calibration=cals[4])
        assert device.resident.misses == 1
        assert device.resident.hits >= 1
        pipe.release_cache()

    def test_solo_runs_share_pooled_tables(self, ds, batches, cals):
        """Four solo runs under one pooled calibration hit the same
        resident entry: the cache key is sample-independent."""
        pipe = create_pipeline(
            spec=JobSpec(engine="gsnp", window=WINDOW, cache=True)
        )
        for batch in batches[:4]:
            res = pipe.run(ds, calibration=cals[4], reads=batch)
        device = res.extras["device"]
        assert device.resident.misses == 1
        assert device.resident.hits == 3
        pipe.release_cache()


class TestCrashResume:
    def test_crashed_shard_resumes_to_identical_bytes(
        self, ds, batches, solo, tmp_path
    ):
        shards = plan_shards(ds.n_sites, WINDOW, 1024, 2)
        poison = FaultPlan([
            FaultSpec(site="exec.shard.error", key=len(shards) - 1,
                      times=99),
        ])
        out = tmp_path / "cohort.cns"
        jdir = tmp_path / "journal"
        base = JobSpec(
            engine="gsnp", window=WINDOW, fusion=True, workers=2,
            shard_size=1024, journal=str(jdir),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            with pytest.raises(ShardError):
                execute(
                    ds, spec=replace(base, faults=poison),
                    sample_reads=batches[:2], output_path=out,
                    force_serial=True, max_retries=0,
                )
            assert not out.exists()  # crash-safe: no partial file
            committed = len(list(jdir.rglob("shard-*.pkl")))
            assert committed > 0
            res = execute(
                ds, spec=replace(base, resume=True),
                sample_reads=batches[:2], output_path=out,
                force_serial=True,
            )
        assert res.extras["exec"]["resumed"] == committed
        for si, (_, blob) in enumerate(solo[2]):
            assert cohort_output_path(out, si).read_bytes() == blob, si

    def test_cohort_journal_never_splices_into_solo(self, cals):
        from repro.faults import run_fingerprint

        kw = dict(
            engine="gsnp", window_size=WINDOW, variant_name="optimized",
            n_sites=3000, shard_bounds=[(0, 1024)], calibration=cals[4],
        )
        assert run_fingerprint(**kw) != run_fingerprint(**kw, n_samples=4)
        assert run_fingerprint(**kw) == run_fingerprint(**kw, n_samples=1)


class TestSpecAndHelpers:
    def test_jobspec_samples_round_trips_on_the_wire(self):
        spec = JobSpec(engine="gsnp", samples=["a.soap", "b.soap"])
        assert spec.samples == ("a.soap", "b.soap")
        assert spec.is_cohort and spec.n_samples == 3
        back = JobSpec.from_wire(spec.to_wire())
        assert back.samples == spec.samples

    def test_cohort_requires_gsnp_engine(self):
        with pytest.raises(ValueError, match="cohort"):
            JobSpec(engine="soapsnp", samples=("a.soap",)).validate()

    def test_pooled_batch_rejects_mixed_read_lengths(self, ds):
        a = AlignmentBatch.from_read_set(ds.reads)
        b = AlignmentBatch.from_read_set(simulate_reads(
            ds.diploid, depth=2.0, coverage=0.5, read_len=36, seed=9,
        ))
        with pytest.raises(PipelineError, match="read length"):
            pooled_batch([a, b])
        with pytest.raises(PipelineError, match="at least one"):
            pooled_batch([])

    def test_pooled_batch_is_position_sorted(self, batches):
        import numpy as np

        pooled = pooled_batch(batches[:4])
        assert pooled.n_reads == sum(b.n_reads for b in batches[:4])
        assert np.all(np.diff(pooled.pos) >= 0)

    def test_empty_cohort_rejected(self, ds):
        pipe = create_pipeline(spec=JobSpec(engine="gsnp", window=WINDOW))
        with pytest.raises(PipelineError, match="at least one"):
            pipe.run_cohort(ds, [])
