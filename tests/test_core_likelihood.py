"""GSNP likelihood kernels: the consistency property and counter shapes."""

import numpy as np
import pytest

from repro.core.base_word import words_from_observations
from repro.core.counting import gsnp_counting
from repro.core.likelihood import (
    ALL_VARIANTS,
    BASELINE,
    OPTIMIZED,
    WITH_SHARED,
    WITH_TABLE,
    GsnpTables,
    gsnp_likelihood_comp,
    gsnp_likelihood_sort,
)
from repro.gpusim.costmodel import GpuCostModel
from repro.gpusim.device import Device
from repro.soapsnp.likelihood import window_type_likely


@pytest.fixture(scope="module")
def kernel_setup(small_obs, small_pm_flat, small_penalty):
    device = Device()
    tables = GsnpTables.load(device, small_pm_flat, small_penalty)
    words, offsets = words_from_observations(small_obs, arrival_order=True)
    wsorted, stats = gsnp_likelihood_sort(device, words, offsets)
    ref = window_type_likely(small_obs, small_pm_flat, small_penalty)
    return device, tables, words, wsorted, offsets, stats, ref


class TestSort:
    def test_restores_canonical_order(self, kernel_setup, small_obs):
        device, tables, words, wsorted, offsets, stats, ref = kernel_setup
        canonical, _ = words_from_observations(small_obs, arrival_order=False)
        assert np.array_equal(wsorted, canonical)

    def test_multipass_stats(self, kernel_setup):
        _, _, _, _, _, stats, _ = kernel_setup
        assert stats.passes <= 6
        assert stats.real_elements > 0

    def test_counters_recorded(self, kernel_setup):
        device = kernel_setup[0]
        sort_kernels = [
            k for k in device.counters.entries if "likelihood_sort" in k
        ]
        assert sort_kernels


class TestConsistency:
    """§IV-G: every GPU variant equals the dense CPU algorithm bitwise."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.name)
    def test_variant_bitwise_equal(self, kernel_setup, variant):
        device, tables, _, wsorted, offsets, _, ref = kernel_setup
        tl = gsnp_likelihood_comp(
            device, wsorted, offsets, tables, variant,
            kernel_name=f"test_comp_{variant.name}",
        )
        assert np.array_equal(tl, ref)

    def test_unsorted_words_give_wrong_answer(self, kernel_setup):
        """The sort is load-bearing: feeding arrival-order words changes
        dep_count sequencing and hence the result."""
        device, tables, words, wsorted, offsets, _, ref = kernel_setup
        if np.array_equal(words, wsorted):
            pytest.skip("arrival order happened to be canonical")
        tl = gsnp_likelihood_comp(
            device, words, offsets, tables, OPTIMIZED,
            kernel_name="test_comp_unsorted",
        )
        assert not np.array_equal(tl, ref)


class TestCounterShapes:
    """Table III orderings: shared removes type_likely traffic, the table
    halves score loads and removes logs."""

    @pytest.fixture(scope="class")
    def counters(self, small_obs, small_pm_flat, small_penalty):
        out = {}
        for variant in ALL_VARIANTS:
            device = Device()
            tables = GsnpTables.load(device, small_pm_flat, small_penalty)
            words, offsets = words_from_observations(small_obs)
            wsorted, _ = gsnp_likelihood_sort(device, words, offsets)
            device.reset_counters()
            gsnp_likelihood_comp(device, wsorted, offsets, tables, variant)
            out[variant.name] = device.counters.total()
        return out

    def test_gload_ordering(self, counters):
        g = {k: c.g_load for k, c in counters.items()}
        assert g["optimized"] < g["w_shared"]
        assert g["optimized"] < g["w_new_table"]
        assert g["w_shared"] < g["baseline"]
        assert g["w_new_table"] < g["baseline"]

    def test_gload_ratios_near_paper(self, counters):
        """Paper Table III: 0.70 / 0.64 / 0.36 of baseline."""
        base = counters["baseline"].g_load
        assert 0.5 < counters["w_shared"].g_load / base < 0.85
        assert 0.5 < counters["w_new_table"].g_load / base < 0.85
        assert 0.25 < counters["optimized"].g_load / base < 0.5

    def test_shared_variants_use_shared_memory(self, counters):
        assert counters["w_shared"].s_load_warp > 0
        assert counters["optimized"].s_store_warp > 0
        assert counters["baseline"].s_load_warp == 0
        assert counters["w_new_table"].s_load_warp == 0

    def test_shared_removes_global_stores(self, counters):
        assert counters["w_shared"].g_store < counters["baseline"].g_store
        assert counters["optimized"].g_store < counters["w_new_table"].g_store

    def test_instructions_reduced_by_table(self, counters):
        assert counters["w_new_table"].inst_warp < counters["baseline"].inst_warp
        assert counters["optimized"].inst_warp < counters["w_shared"].inst_warp

    def test_optimized_fastest_in_model(self, counters):
        model = GpuCostModel()
        times = {k: model.kernel_time(c) for k, c in counters.items()}
        assert times["optimized"] == min(times.values())
        assert times["baseline"] == max(times.values())

    def test_fig8_speedup_band(self, counters):
        """Fig 8: optimized ~2.4x faster than baseline (we accept 1.5-4x)."""
        model = GpuCostModel()
        ratio = model.kernel_time(counters["baseline"]) / model.kernel_time(
            counters["optimized"]
        )
        assert 1.5 < ratio < 4.5


class TestCountingKernel:
    def test_matches_host_construction(self, small_obs):
        device = Device()
        words_dev, offsets_dev = gsnp_counting(device, small_obs)
        words_host, offsets_host = words_from_observations(
            small_obs, arrival_order=True
        )
        assert np.array_equal(offsets_dev, offsets_host)
        assert np.array_equal(words_dev, words_host)

    def test_kernels_launched(self, small_obs):
        device = Device()
        gsnp_counting(device, small_obs)
        assert "counting_histogram" in device.counters.entries
        assert "counting_scatter" in device.counters.entries

    def test_empty_observations(self):
        from repro.align.records import AlignmentBatch
        from repro.formats.window import Window
        from repro.soapsnp.observe import extract_observations

        w = Window(start=0, end=5, reads=AlignmentBatch.empty("x", 10))
        obs = extract_observations(w)
        device = Device()
        words, offsets = gsnp_counting(device, obs)
        assert words.size == 0
        assert offsets.size == 6
