"""Bit layouts and lookup tables in repro.constants."""

import numpy as np
import pytest

from repro import constants as C


class TestAlphabet:
    def test_base_roundtrip(self):
        for i, b in enumerate(C.BASES):
            assert C.BASE_TO_CODE[b] == i
            assert C.CODE_TO_BASE[i] == b

    def test_complement_is_involution(self):
        comp = C.COMPLEMENT_CODE
        assert np.array_equal(comp[comp], np.arange(4))

    def test_complement_pairs(self):
        # A<->T, C<->G
        assert C.COMPLEMENT_CODE[C.BASE_TO_CODE["A"]] == C.BASE_TO_CODE["T"]
        assert C.COMPLEMENT_CODE[C.BASE_TO_CODE["C"]] == C.BASE_TO_CODE["G"]


class TestBaseWordLayout:
    def test_fields_do_not_overlap(self):
        masks = [C.STRAND_MASK, C.COORD_MASK, C.SCORE_MASK, C.BASE_MASK]
        for i, a in enumerate(masks):
            for b in masks[i + 1 :]:
                assert a & b == 0

    def test_fields_cover_17_bits(self):
        combined = C.STRAND_MASK | C.COORD_MASK | C.SCORE_MASK | C.BASE_MASK
        assert combined == (1 << 17) - 1

    def test_paper_example_word(self):
        # Figure 3: word = 1<<15 | 16<<9 | 10<<1 | 1
        word = 1 << C.BASE_SHIFT | 16 << C.SCORE_SHIFT | 10 << C.COORD_SHIFT | 1
        assert word == (1 << 15 | 16 << 9 | 10 << 1 | 1)

    def test_field_capacity(self):
        assert (C.SCORE_MASK >> C.SCORE_SHIFT) == C.N_SCORES - 1
        assert (C.COORD_MASK >> C.COORD_SHIFT) == C.MAX_READ_LEN - 1
        assert (C.BASE_MASK >> C.BASE_SHIFT) == C.N_BASES - 1

    def test_sentinel_sorts_after_all_words(self):
        max_word = C.BASE_MASK | C.SCORE_MASK | C.COORD_MASK | C.STRAND_MASK
        assert C.BASE_WORD_SENTINEL > max_word


class TestGenotypes:
    def test_ten_unordered_genotypes(self):
        assert C.N_GENOTYPES == 10
        assert len(set(C.GENOTYPES)) == 10

    def test_ordering_matches_algorithm1_loops(self):
        expected = []
        for a1 in range(4):
            for a2 in range(a1, 4):
                expected.append((a1, a2))
        assert list(C.GENOTYPES) == expected

    def test_dense_to_compact_inverse(self):
        for gi, (a1, a2) in enumerate(C.GENOTYPES):
            assert C.DENSE_TO_COMPACT[a1 << 2 | a2] == gi

    def test_dense_to_compact_marks_invalid_slots(self):
        # a1 > a2 slots are never used.
        assert C.DENSE_TO_COMPACT[1 << 2 | 0] == -1

    def test_iupac_codes_unique(self):
        codes = list(C.GENOTYPE_IUPAC.values())
        assert len(codes) == len(set(codes)) == 10

    def test_iupac_homozygotes_are_plain_bases(self):
        for i in range(4):
            assert C.GENOTYPE_IUPAC[(i, i)] == C.BASES[i]

    def test_iupac_inverse(self):
        for g, c in C.GENOTYPE_IUPAC.items():
            assert C.IUPAC_GENOTYPE[c] == g

    def test_transitions_symmetric(self):
        for a, b in C.TRANSITIONS:
            assert (b, a) in C.TRANSITIONS


class TestMatrixGeometry:
    def test_base_occ_size(self):
        assert C.BASE_OCC_SIZE == 131072  # the paper's 4*64*256*2

    def test_p_matrix_size(self):
        assert C.P_MATRIX_SIZE == 64 * 256 * 4 * 4

    def test_new_p_matrix_is_ten_p_matrix_entries_per_cell(self):
        assert C.NEW_P_MATRIX_SIZE == 64 * 256 * 4 * 10

    def test_multipass_bounds_from_paper(self):
        assert C.MULTIPASS_BOUNDS == (1, 8, 16, 32, 64)

    def test_output_column_count(self):
        assert C.N_OUTPUT_COLUMNS == 17
