"""Chaos layer: deterministic fault injection, checkpoint/resume, ladder.

The load-bearing invariant: a run under any supported fault schedule
either produces output *bitwise identical* to a fault-free run, or fails
with a typed :class:`~repro.errors.GsnpError` — never a partial or
corrupt result file.
"""

import pickle
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    AllocationError,
    FormatError,
    GsnpError,
    InjectedFault,
    ShardError,
)
from repro.exec import execute, plan_shards
from repro.faults import (
    SITES,
    DegradationWarning,
    FaultPlan,
    FaultSpec,
    ShardJournal,
    atomic_output,
    fault_plan,
    fault_point,
    install_plan,
    run_fingerprint,
)

WINDOW = 512


def _run(dataset, output, engine="gsnp_cpu", **kwargs):
    """Sharded run, in-process by default (deterministic, no process
    pool); the ``gpusim.device.alloc`` site needs ``engine="gsnp"``."""
    kwargs.setdefault("force_serial", True)
    kwargs.setdefault("workers", 2)
    return execute(
        dataset, engine, window_size=WINDOW, output_path=output,
        shard_size=1024, **kwargs
    )


@pytest.fixture(scope="module")
def baseline(small_dataset, tmp_path_factory):
    """Fault-free sharded reference run: (result, output bytes)."""
    out = tmp_path_factory.mktemp("base") / "base.out"
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradationWarning)
        res = _run(small_dataset, out)
    return res, out.read_bytes()


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="not.a.site")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="exec.shard.error", kind="explode")

    def test_fault_point_rejects_unregistered_site(self):
        with pytest.raises(ValueError, match="unregistered"):
            fault_point("some.other.site")

    def test_no_plan_is_noop(self):
        install_plan(None)
        assert fault_point("exec.shard.error", key=0, value=b"x") == b"x"

    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(7, n_shards=4)
        b = FaultPlan.generate(7, n_shards=4)
        assert a.specs == b.specs
        assert a.specs != FaultPlan.generate(8, n_shards=4).specs

    def test_fires_exactly_times_then_stops(self):
        plan = FaultPlan([FaultSpec(site="gpusim.device.alloc", kind="alloc",
                                    times=2)])
        with fault_plan(plan):
            for _ in range(2):
                with pytest.raises(AllocationError):
                    fault_point("gpusim.device.alloc", key="buf")
            fault_point("gpusim.device.alloc", key="buf")  # third hit: clean
        assert len(plan.fired) == 2

    def test_exec_sites_fire_by_attempt_not_hit_count(self):
        plan = FaultPlan([FaultSpec(site="exec.shard.error", key=3, times=2)])
        with fault_plan(plan):
            # Attempt 0 and 1 fire no matter how often they're polled...
            with plan.scope(shard=3, attempt=0):
                with pytest.raises(InjectedFault):
                    fault_point("exec.shard.error", key=3)
                with pytest.raises(InjectedFault):
                    fault_point("exec.shard.error", key=3)
            # ...and attempt 2 is past the schedule.
            with plan.scope(shard=3, attempt=2):
                fault_point("exec.shard.error", key=3)

    def test_truncate_transforms_value(self):
        plan = FaultPlan([FaultSpec(site="formats.soap.record",
                                    kind="truncate", arg=0.5)])
        with fault_plan(plan):
            assert fault_point(
                "formats.soap.record", key=1, value=b"abcdefgh"
            ) == b"abcd"
            # One-shot: the next record passes through untouched.
            assert fault_point(
                "formats.soap.record", key=2, value=b"abcdefgh"
            ) == b"abcdefgh"

    def test_plan_pickles_across_process_boundary(self):
        plan = FaultPlan.generate(3, n_shards=4)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
        assert clone.parent_pid == plan.parent_pid
        with clone.scope(shard=1):
            assert clone.ambient == {"shard": 1}

    def test_degraded_scope_suppresses_alloc_faults(self):
        plan = FaultPlan([FaultSpec(site="gpusim.device.alloc", kind="alloc",
                                    times=5)])
        with fault_plan(plan):
            with pytest.raises(AllocationError):
                fault_point("gpusim.device.alloc", key="buf")
            with plan.scope(degraded=True):
                fault_point("gpusim.device.alloc", key="buf")

    def test_registry_documents_every_site(self):
        for site, doc in SITES.items():
            assert doc


class TestFaultedExecutionParity:
    """Faulted runs are absorbed and stay bitwise identical."""

    def test_transient_shard_errors(self, small_dataset, baseline, tmp_path):
        base_res, base_bytes = baseline
        plan = FaultPlan([
            FaultSpec(site="exec.shard.error", key=0, times=2),
            FaultSpec(site="exec.shard.error", key=2, times=1),
        ])
        out = tmp_path / "chaos.out"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            res = _run(small_dataset, out, faults=plan)
        assert out.read_bytes() == base_bytes
        assert res.table.equals(base_res.table)
        assert res.extras["exec"]["retries"] == 3

    def test_alloc_fault_takes_degraded_rung(self, small_dataset, tmp_path):
        # The device site needs the simulated-GPU engine; compare against
        # its own fault-free run.
        base_out = tmp_path / "alloc-base.out"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            _run(small_dataset, base_out, engine="gsnp")
        plan = FaultPlan([
            FaultSpec(site="gpusim.device.alloc", kind="alloc", key=1),
        ])
        out = tmp_path / "alloc.out"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DegradationWarning)
            _run(small_dataset, out, engine="gsnp", faults=plan)
        rungs = [w.message.rung for w in caught
                 if isinstance(w.message, DegradationWarning)]
        assert "device-degraded" in rungs
        assert out.read_bytes() == base_out.read_bytes()

    def test_worker_crash_in_process_pool(
        self, small_dataset, baseline, tmp_path
    ):
        _, base_bytes = baseline
        plan = FaultPlan([
            FaultSpec(site="exec.worker.crash", kind="crash", key=1),
        ])
        out = tmp_path / "crash.out"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            res = _run(
                small_dataset, out, faults=plan,
                force_serial=False, workers=2,
            )
        assert out.read_bytes() == base_bytes
        assert res.extras["exec"]["retries"] >= 1

    def test_exhausted_budget_chains_cause(self, small_dataset, tmp_path):
        plan = FaultPlan([FaultSpec(site="exec.shard.error", key=1,
                                    times=99)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            with pytest.raises(ShardError) as err:
                _run(small_dataset, tmp_path / "dead.out", faults=plan,
                     max_retries=1)
        assert err.value.shard_index == 1
        assert isinstance(err.value.__cause__, InjectedFault)
        assert not (tmp_path / "dead.out").exists()

    def test_shard_deadline_recovers_stalled_shard(
        self, small_dataset, baseline, tmp_path
    ):
        _, base_bytes = baseline
        plan = FaultPlan([
            FaultSpec(site="exec.shard.slow", kind="slow", key=0, times=1,
                      arg=30.0),
        ])
        out = tmp_path / "slow.out"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            res = _run(
                small_dataset, out, faults=plan,
                force_serial=False, workers=2, shard_timeout=2.0,
            )
        assert out.read_bytes() == base_bytes
        assert res.extras["exec"]["retries"] >= 1


class TestCheckpointResume:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_resume_after_mid_run_failure(
        self, workers, small_dataset, baseline, tmp_path
    ):
        _, base_bytes = baseline
        shards = plan_shards(small_dataset.n_sites, WINDOW, 1024, workers)
        poison = FaultPlan([
            FaultSpec(site="exec.shard.error", key=len(shards) - 1,
                      times=99),
        ])
        out = tmp_path / "resume.out"
        jdir = tmp_path / "journal"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            with pytest.raises(ShardError):
                _run(small_dataset, out, faults=poison, workers=workers,
                     journal_dir=str(jdir), max_retries=0)
            assert not out.exists()  # crash-safe: no partial file
            committed = len(list(jdir.rglob("shard-*.pkl")))
            assert committed > 0
            res = _run(small_dataset, out, workers=workers,
                       journal_dir=str(jdir), resume=True)
        assert res.extras["exec"]["resumed"] == committed
        assert out.read_bytes() == base_bytes

    def test_resume_without_journal_recomputes(
        self, small_dataset, baseline, tmp_path
    ):
        _, base_bytes = baseline
        out = tmp_path / "cold.out"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            res = _run(small_dataset, out,
                       journal_dir=str(tmp_path / "j"), resume=True)
        assert res.extras["exec"]["resumed"] == 0
        assert out.read_bytes() == base_bytes

    def test_torn_journal_entry_is_a_miss(self, tmp_path):
        journal = ShardJournal(tmp_path / "j", "fp00")
        shards = plan_shards(2048, WINDOW, 1024, 1)
        journal._entry_path(shards[0].index).write_bytes(
            b"torn garbage, no digest header"
        )
        assert journal.load(shards) == {}

    def test_fingerprint_sensitivity(self, small_dataset):
        from types import SimpleNamespace

        import numpy as np

        cal = SimpleNamespace(
            pm_flat=np.arange(8, dtype=np.float64),
            penalty=np.arange(4, dtype=np.float64),
            total_reads=100,
        )
        shards = plan_shards(small_dataset.n_sites, WINDOW, 1024, 2)
        bounds = [(s.start, s.end) for s in shards]
        a = run_fingerprint("gsnp_cpu", WINDOW, "opt", 4096, bounds, cal)
        b = run_fingerprint("gsnp_cpu", WINDOW, "opt", 4096, bounds[:-1],
                            cal)
        c = run_fingerprint("gsnp", WINDOW, "opt", 4096, bounds, cal)
        assert len({a, b, c}) == 3


class TestAtomicOutput:
    def test_clean_exit_commits(self, tmp_path):
        p = tmp_path / "out.bin"
        with atomic_output(p) as f:
            f.write(b"payload")
        assert p.read_bytes() == b"payload"
        assert not list(tmp_path.glob("*.part"))

    def test_error_leaves_no_file(self, tmp_path):
        p = tmp_path / "out.bin"
        with pytest.raises(RuntimeError):
            with atomic_output(p) as f:
                f.write(b"half a result")
                raise RuntimeError("killed mid-write")
        assert not p.exists()
        assert not list(tmp_path.glob("*.part"))


class TestDegradationLadder:
    def test_pool_fallback_names_the_cause(self, monkeypatch):
        import repro.exec.pool as pool_mod

        def broken(*a, **k):
            raise OSError("no semaphores on this platform")

        monkeypatch.setattr(pool_mod, "ProcessPool", broken)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DegradationWarning)
            pool = pool_mod.make_pool(4)
        assert pool.kind == "serial"
        msgs = [w.message for w in caught
                if isinstance(w.message, DegradationWarning)]
        assert len(msgs) == 1
        assert msgs[0].rung == "pool-serial-fallback"
        assert "no semaphores" in str(msgs[0])

    def test_value_error_still_propagates(self, monkeypatch):
        # Only OSError/ImportError mean "no multiprocessing here";
        # programming errors must not be eaten by the fallback.
        import repro.exec.pool as pool_mod

        def broken(*a, **k):
            raise ValueError("bad workers count")

        monkeypatch.setattr(pool_mod, "ProcessPool", broken)
        with pytest.raises(ValueError):
            pool_mod.make_pool(4)

    def test_quarantine_collects_coordinates(self, tmp_path):
        from repro.align.records import AlignmentBatch
        from repro.formats.soap import read_soap, write_soap
        from repro.seqsim.datasets import DatasetSpec, generate_dataset

        ds = generate_dataset(DatasetSpec(
            name="chrQ", n_sites=600, depth=6.0, coverage=0.9, seed=11,
        ))
        soap = tmp_path / "q.soap"
        write_soap(soap, AlignmentBatch.from_read_set(ds.reads))
        lines = soap.read_bytes().splitlines(keepends=True)
        lines[1] = b"only\ttwo\n"
        soap.write_bytes(b"".join(lines))

        # Without a quarantine file the error carries coordinates...
        with pytest.raises(FormatError, match=rf"{soap}:2:"):
            read_soap(soap)
        # ...with one, the record is skipped and logged with them.
        qpath = tmp_path / "quarantine.txt"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DegradationWarning)
            batch = read_soap(soap, quarantine=qpath)
        assert batch.n_reads == len(lines) - 1
        assert f"{soap}:2:" in qpath.read_text()
        rungs = [w.message.rung for w in caught
                 if isinstance(w.message, DegradationWarning)]
        assert rungs == ["record-quarantine"]


class TestFaultScheduleProperty:
    """Any generated schedule: identical bytes or a typed GsnpError."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        extra_times=st.integers(min_value=0, max_value=5),
    )
    def test_complete_or_absent(
        self, seed, extra_times, small_dataset, baseline, tmp_path
    ):
        _, base_bytes = baseline
        n_shards = len(plan_shards(small_dataset.n_sites, WINDOW, 1024, 2))
        plan = FaultPlan.generate(
            seed, n_shards,
            sites=("exec.shard.error", "exec.worker.crash",
                   "gpusim.device.alloc"),
        )
        if extra_times:
            plan = plan.with_spec(FaultSpec(
                site="exec.shard.error", key=seed % n_shards,
                times=extra_times,
            ))
        out = tmp_path / f"prop-{seed}-{extra_times}.out"
        if out.exists():
            out.unlink()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradationWarning)
                _run(small_dataset, out, faults=plan)
        except GsnpError:
            # Typed failure: crash-safety says no partial file either.
            assert not out.exists()
        else:
            assert out.read_bytes() == base_bytes
