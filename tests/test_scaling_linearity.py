"""The extrapolation premise: event counts scale linearly in sites.

The full-scale modeled numbers rest on one assumption — that every event
count the pipelines record grows linearly with dataset size at fixed
depth/coverage.  These tests measure it directly by running the same spec
at two sizes and comparing count ratios to the size ratio.
"""

import numpy as np
import pytest

from repro.core.pipeline import GsnpPipeline
from repro.seqsim import DatasetSpec, generate_dataset
from repro.soapsnp import SoapsnpPipeline


def _dataset(n_sites, seed=313):
    return generate_dataset(
        DatasetSpec(name="chrL", n_sites=n_sites, depth=10.0, coverage=0.9,
                    seed=seed)
    )


@pytest.fixture(scope="module")
def two_scales():
    small = _dataset(2000)
    large = _dataset(8000)
    return small, large


class TestSoapsnpLinearity:
    def test_cpu_event_counts_scale(self, two_scales):
        small, large = two_scales
        rs = SoapsnpPipeline(window_size=1000).run(small).profile
        rl = SoapsnpPipeline(window_size=1000).run(large).profile
        ratio = large.n_sites / small.n_sites
        for comp in ("likelihood", "recycle", "counting"):
            s = rs.records[comp].cpu
            l = rl.records[comp].cpu
            for field in ("seq_read_bytes", "seq_write_bytes",
                          "random_accesses", "instructions", "log_calls"):
                sv, lv = getattr(s, field), getattr(l, field)
                if sv == 0:
                    assert lv == 0
                else:
                    assert lv / sv == pytest.approx(ratio, rel=0.25), (
                        comp, field
                    )

    def test_output_bytes_scale(self, two_scales):
        small, large = two_scales
        bs = SoapsnpPipeline(window_size=1000).run(small).output_bytes
        bl = SoapsnpPipeline(window_size=1000).run(large).output_bytes
        assert bl / bs == pytest.approx(4.0, rel=0.15)


class TestGsnpLinearity:
    def test_gpu_transactions_scale(self, two_scales):
        small, large = two_scales
        rs = GsnpPipeline(window_size=1000, mode="gpu").run(small).profile
        rl = GsnpPipeline(window_size=1000, mode="gpu").run(large).profile
        ratio = large.n_sites / small.n_sites
        for comp in ("likelihood", "counting"):
            s, l = rs.records[comp].gpu, rl.records[comp].gpu
            assert l.g_load / s.g_load == pytest.approx(ratio, rel=0.3), comp
            assert l.inst_warp / s.inst_warp == pytest.approx(
                ratio, rel=0.3
            ), comp

    def test_launches_scale_with_window_count(self, two_scales):
        small, large = two_scales
        rs = GsnpPipeline(window_size=1000, mode="gpu").run(small).profile
        rl = GsnpPipeline(window_size=1000, mode="gpu").run(large).profile
        ls = sum(r.gpu.launches for r in rs.records.values())
        ll = sum(r.gpu.launches for r in rl.records.values())
        assert ll / ls == pytest.approx(4.0, rel=0.3)

    def test_compressed_output_scales(self, two_scales):
        small, large = two_scales
        bs = GsnpPipeline(window_size=1000, mode="gpu").run(small).output_bytes
        bl = GsnpPipeline(window_size=1000, mode="gpu").run(large).output_bytes
        assert bl / bs == pytest.approx(4.0, rel=0.25)
