"""Multipass sort edge cases: empty buckets, depth-1 windows, oversized
top bucket.

These are the degenerate window shapes the ragged-megabatch launcher can
produce when it re-buckets sort sizes across windows — a size class can
end up empty for a whole megabatch, an entire window can be depth <= 1,
and a single long site can push the open-ended top bucket past the last
pass-width bound.
"""

import numpy as np

from repro.gpusim.device import Device
from repro.sortnet.bitonic import next_pow2
from repro.sortnet.multipass import (
    MULTIPASS_BOUNDS,
    multipass_sort,
    size_class_of,
)


def _segments(lengths, seed=11):
    lengths = np.asarray(lengths, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 2**17, offsets[-1]).astype(np.uint32)
    return words, offsets


def _check_all_sorted(out, words, offsets):
    for i in range(offsets.size - 1):
        s, e = offsets[i], offsets[i + 1]
        assert np.array_equal(out[s:e], np.sort(words[s:e]))


class TestEmptyBucket:
    def test_empty_middle_buckets_launch_nothing(self):
        # Lengths land only in classes 1 (<=8) and 5 (>64); classes
        # 2..4 are empty and must contribute no pass and no launch.
        words, offsets = _segments([3, 5, 80, 2, 70])
        device = Device()
        out, stats = multipass_sort(words, offsets, device=device)
        _check_all_sorted(out, words, offsets)
        assert stats.passes == 2
        widths = [w for w, _ in stats.per_pass]
        assert widths == [8, next_pow2(80)]
        names = set(device.counters.entries)
        assert not any(f"likelihood_sort_c{ci}" in n
                       for n in names for ci in (2, 3, 4))

    def test_no_sites_at_all(self):
        words, offsets = _segments([])
        out, stats = multipass_sort(words, offsets)
        assert out.size == 0
        assert stats.passes == 0 and stats.real_elements == 0


class TestDepthOneWindow:
    def test_all_sites_depth_le_1_zero_launches(self):
        # Every per-site array is size 0 or 1 — already sorted; the
        # class-0 fast path must skip the device entirely.
        words, offsets = _segments([1, 0, 1, 1, 0, 1])
        device = Device()
        out, stats = multipass_sort(words, offsets, device=device)
        assert np.array_equal(out, words)
        assert stats.passes == 0
        assert device.counters.total().launches == 0
        # The untouched singletons still count as padded work done.
        assert stats.padded_elements == int(
            (np.diff(offsets) <= 1).sum()
        )


class TestOversizedTopBucket:
    def test_largest_bucket_exceeds_last_bound(self):
        # One site of depth 100 > bounds[-1] = 64: the open-ended top
        # bucket must widen its pass to next_pow2(100) = 128, not clamp
        # to the last bound.
        assert MULTIPASS_BOUNDS[-1] == 64
        lengths = [4, 100, 7]
        words, offsets = _segments(lengths)
        assert size_class_of(np.array([100]))[0] == len(MULTIPASS_BOUNDS)
        out, stats = multipass_sort(words, offsets, device=Device())
        _check_all_sorted(out, words, offsets)
        widths = dict((w, r) for w, r in stats.per_pass)
        assert widths[128] == 1  # the single oversized site
        assert 8 in widths  # the two small sites share the <=8 pass

    def test_single_window_single_oversized_site(self):
        words, offsets = _segments([130])
        out, stats = multipass_sort(words, offsets)
        _check_all_sorted(out, words, offsets)
        assert stats.per_pass == [(next_pow2(130), 1)]
        assert stats.padded_elements == next_pow2(130)
