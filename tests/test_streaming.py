"""Streaming SOAP reader: equivalence with the in-memory reader."""

import numpy as np
import pytest

from repro.align.records import AlignmentBatch
from repro.errors import FormatError, PipelineError
from repro.formats.soap import write_soap
from repro.formats.stream import StreamingSoapReader
from repro.formats.window import WindowReader
from repro.soapsnp import SoapsnpPipeline
from repro.soapsnp.observe import extract_observations


@pytest.fixture(scope="module")
def soap_file(small_dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("stream") / "aln.soap"
    write_soap(path, AlignmentBatch.from_read_set(small_dataset.reads))
    return path


class TestEquivalence:
    @pytest.mark.parametrize("window_size", [500, 1024, 4000])
    def test_same_windows_as_memory_reader(
        self, soap_file, small_dataset, window_size
    ):
        batch = AlignmentBatch.from_read_set(small_dataset.reads)
        mem = list(WindowReader(batch, small_dataset.n_sites, window_size))
        streamed = list(
            StreamingSoapReader(
                soap_file, small_dataset.n_sites, window_size
            )
        )
        assert len(streamed) == len(mem)
        for sm, me in zip(streamed, mem):
            assert (sm.start, sm.end) == (me.start, me.end)
            assert sm.reads.n_reads == me.reads.n_reads
            assert np.array_equal(sm.reads.pos, me.reads.pos)
            assert np.array_equal(sm.reads.bases, me.reads.bases)
            assert np.array_equal(sm.reads.quals, me.reads.quals)
            assert np.array_equal(sm.reads.strand, me.reads.strand)
            assert np.array_equal(sm.reads.hits, me.reads.hits)

    def test_same_observations_hence_same_calls(
        self, soap_file, small_dataset
    ):
        """Windows from the stream feed the same counting path."""
        streamed = list(
            StreamingSoapReader(soap_file, small_dataset.n_sites, 1000)
        )
        batch = AlignmentBatch.from_read_set(small_dataset.reads)
        mem = list(WindowReader(batch, small_dataset.n_sites, 1000))
        for sw, mw in zip(streamed, mem):
            so = extract_observations(sw)
            mo = extract_observations(mw)
            assert np.array_equal(so.site, mo.site)
            assert np.array_equal(so.score, mo.score)

    def test_bytes_read_counted(self, soap_file, small_dataset):
        reader = StreamingSoapReader(soap_file, small_dataset.n_sites, 2000)
        list(reader)
        assert reader.bytes_read == soap_file.stat().st_size

    def test_chrom_inferred_from_file(self, soap_file, small_dataset):
        reader = StreamingSoapReader(soap_file, small_dataset.n_sites, 2000)
        w = next(iter(reader))
        assert w.reads.chrom == small_dataset.reference.name


class TestValidation:
    def test_unsorted_file_rejected(self, tmp_path):
        p = tmp_path / "bad.soap"
        p.write_text(
            "r0\tACGT\t!!!!\t1\t4\t+\tc\t100\n"
            "r1\tACGT\t!!!!\t1\t4\t+\tc\t50\n"
        )
        with pytest.raises(FormatError, match="sorted"):
            list(StreamingSoapReader(p, 200, 100))

    def test_read_past_reference_rejected(self, tmp_path):
        p = tmp_path / "bad.soap"
        p.write_text("r0\tACGT\t!!!!\t1\t4\t+\tc\t99\n")
        with pytest.raises(PipelineError, match="past"):
            list(StreamingSoapReader(p, 100, 50))

    def test_invalid_window_size(self, soap_file):
        with pytest.raises(PipelineError):
            StreamingSoapReader(soap_file, 100, 0)

    def test_empty_windows_before_first_read(self, tmp_path):
        p = tmp_path / "sparse.soap"
        p.write_text("r0\tACGT\t!!!!\t1\t4\t+\tc\t901\n")
        windows = list(StreamingSoapReader(p, 1000, 100))
        assert len(windows) == 10
        assert all(w.reads.n_reads == 0 for w in windows[:9])
        assert windows[9].reads.n_reads == 1
