"""KernelContext semantics: gather/scatter, masking, counter attribution."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.gpusim.device import Device


class TestGload:
    def test_gather_values(self, device):
        arr = device.to_device(np.arange(100, dtype=np.int64) * 3)

        def k(ctx):
            return ctx.gload(arr, ctx.tid * 2)

        out = device.launch(k, 50)
        assert np.array_equal(out, np.arange(50) * 6)

    def test_inactive_lanes_get_fill(self, device):
        arr = device.to_device(np.arange(10, dtype=np.int64))

        def k(ctx):
            return ctx.gload(arr, ctx.tid, active=ctx.tid < 3, fill=-7)

        out = device.launch(k, 8)
        assert np.array_equal(out[:3], [0, 1, 2])
        assert np.all(out[3:] == -7)

    def test_coalesced_load_counts_one_transaction_per_warp(self, device):
        arr = device.to_device(np.arange(64, dtype=np.int32))

        def k(ctx):
            ctx.gload(arr, ctx.tid)

        device.launch(k, 64, name="seq")
        assert device.counters.get("seq").g_load == 2  # 2 warps x 1 segment

    def test_scattered_load_counts_many_transactions(self, device):
        arr = device.to_device(np.zeros(32 * 64, dtype=np.int32))

        def k(ctx):
            ctx.gload(arr, ctx.tid * 64)  # 256-byte stride

        device.launch(k, 32, name="scat")
        assert device.counters.get("scat").g_load == 32

    def test_useful_bytes_tracked(self, device):
        arr = device.to_device(np.arange(32, dtype=np.float64))

        def k(ctx):
            ctx.gload(arr, ctx.tid)

        device.launch(k, 32, name="b")
        assert device.counters.get("b").g_load_bytes == 32 * 8

    def test_out_of_bounds_raises(self, device):
        arr = device.to_device(np.zeros(4, dtype=np.int64))

        def k(ctx):
            ctx.gload(arr, ctx.tid + 100)

        with pytest.raises(KernelError, match="out-of-bounds"):
            device.launch(k, 4)

    def test_wrong_lane_count_raises(self, device):
        arr = device.to_device(np.zeros(64, dtype=np.int64))

        def k(ctx):
            ctx.gload(arr, np.arange(3))

        with pytest.raises(KernelError, match="lanes"):
            device.launch(k, 8)

    def test_constant_space_rejected_for_gload(self, device):
        arr = device.to_constant(np.zeros(4, dtype=np.int64))

        def k(ctx):
            ctx.gload(arr, ctx.tid % 4)

        with pytest.raises(KernelError, match="space"):
            device.launch(k, 8)


class TestGstore:
    def test_scatter_values(self, device):
        arr = device.alloc(10, np.int64)

        def k(ctx):
            ctx.gstore(arr, ctx.tid, ctx.tid * 5)

        device.launch(k, 10)
        assert np.array_equal(arr.data, np.arange(10) * 5)

    def test_masked_lanes_do_not_write(self, device):
        arr = device.alloc(10, np.int64)

        def k(ctx):
            ctx.gstore(arr, ctx.tid, 9, active=ctx.tid % 2 == 0)

        device.launch(k, 10)
        assert np.array_equal(arr.data[::2], np.full(5, 9))
        assert np.array_equal(arr.data[1::2], np.zeros(5))

    def test_conflicting_writes_last_lane_wins(self, device):
        arr = device.alloc(1, np.int64)

        def k(ctx):
            ctx.gstore(arr, np.zeros(ctx.n_threads, dtype=int), ctx.tid)

        device.launch(k, 32)
        assert arr.data[0] == 31

    def test_scalar_value_broadcast(self, device):
        arr = device.alloc(8, np.int64)

        def k(ctx):
            ctx.gstore(arr, ctx.tid, 3)

        device.launch(k, 8)
        assert np.all(arr.data == 3)


class TestAtomicAdd:
    def test_colliding_adds_all_land(self, device):
        arr = device.alloc(4, np.int64)

        def k(ctx):
            ctx.gatomic_add(arr, ctx.tid % 4, 1)

        device.launch(k, 128)
        assert np.array_equal(arr.data, np.full(4, 32))

    def test_atomic_counts_load_and_store(self, device):
        arr = device.alloc(32, np.int64)

        def k(ctx):
            ctx.gatomic_add(arr, ctx.tid, 1)

        device.launch(k, 32, name="at")
        c = device.counters.get("at")
        assert c.g_load == c.g_store > 0


class TestConstantLoad:
    def test_cload_values(self, device):
        table = device.to_constant(np.arange(16, dtype=np.int32) * 2)

        def k(ctx):
            return ctx.cload(table, ctx.tid % 16)

        out = device.launch(k, 32)
        assert np.array_equal(out, (np.arange(32) % 16) * 2)

    def test_cload_does_not_touch_global_counters(self, device):
        table = device.to_constant(np.arange(8, dtype=np.int32))

        def k(ctx):
            ctx.cload(table, ctx.tid % 8)

        device.launch(k, 32, name="c")
        counters = device.counters.get("c")
        assert counters.g_load == 0
        assert counters.c_load == 32

    def test_cload_rejects_global_array(self, device):
        arr = device.to_device(np.zeros(4, dtype=np.int32))

        def k(ctx):
            ctx.cload(arr, ctx.tid % 4)

        with pytest.raises(KernelError, match="space"):
            device.launch(k, 4)


class TestInstructionAccounting:
    def test_instr_counts_per_warp(self, device):
        def k(ctx):
            ctx.instr(5)

        device.launch(k, 96, name="i")  # 3 warps
        assert device.counters.get("i").inst_warp == 15

    def test_partially_active_warp_still_issues(self, device):
        def k(ctx):
            ctx.instr(1, active=ctx.tid == 0)

        device.launch(k, 64, name="d")  # only warp 0 has an active lane
        assert device.counters.get("d").inst_warp == 1

    def test_note_shared(self, device):
        def k(ctx):
            ctx.note_shared(loads=2, stores=1)

        device.launch(k, 64, name="s")
        c = device.counters.get("s")
        assert c.s_load_warp == 4 and c.s_store_warp == 2

    def test_n_warps_ceil_division(self, device):
        def k(ctx):
            assert ctx.n_warps == 3

        device.launch(k, 65)
