"""File formats: FASTA, SOAP, prior, CNS table, windowed reader."""

import numpy as np
import pytest

from repro.align.records import AlignmentBatch
from repro.errors import FormatError, PipelineError
from repro.formats import (
    NO_BASE,
    ResultTable,
    Window,
    WindowReader,
    format_rows,
    parse_rows,
    read_cns,
    read_fasta,
    read_prior,
    read_soap,
    write_cns,
    write_fasta,
    write_prior,
    write_soap,
)
from repro.seqsim import generate_dataset, DatasetSpec, synthesize_reference
from repro.seqsim.datasets import KnownSnpPrior


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        DatasetSpec(name="chrF", n_sites=3000, depth=8, coverage=0.9, seed=55)
    )


class TestFasta:
    def test_roundtrip(self, tmp_path):
        refs = [synthesize_reference(f"chr{i}", 777, seed=i) for i in (1, 2)]
        path = tmp_path / "x.fa"
        nbytes = write_fasta(path, refs)
        assert nbytes == path.stat().st_size
        back = read_fasta(path)
        assert len(back) == 2
        for a, b in zip(refs, back):
            assert a.name == b.name
            assert np.array_equal(a.codes, b.codes)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "e.fa"
        p.write_text("")
        with pytest.raises(FormatError):
            read_fasta(p)

    def test_data_before_header_rejected(self, tmp_path):
        p = tmp_path / "bad.fa"
        p.write_text("ACGT\n>x\nACGT\n")
        with pytest.raises(FormatError):
            read_fasta(p)


class TestSoap:
    def test_roundtrip(self, tmp_path, dataset):
        batch = AlignmentBatch.from_read_set(dataset.reads)
        path = tmp_path / "x.soap"
        nbytes = write_soap(path, batch)
        assert nbytes == path.stat().st_size
        back = read_soap(path)
        assert back.chrom == batch.chrom
        assert np.array_equal(back.pos, batch.pos)
        assert np.array_equal(back.strand, batch.strand)
        assert np.array_equal(back.hits, batch.hits)
        assert np.array_equal(back.bases, batch.bases)
        assert np.array_equal(back.quals, batch.quals)

    def test_bad_field_count(self, tmp_path):
        p = tmp_path / "bad.soap"
        p.write_text("only\tthree\tfields\n")
        with pytest.raises(FormatError, match="8 fields"):
            read_soap(p)

    def test_bad_strand(self, tmp_path):
        p = tmp_path / "bad.soap"
        p.write_text("r\tACGT\t!!!!\t1\t4\t*\tchr\t1\n")
        with pytest.raises(FormatError, match="strand"):
            read_soap(p)

    def test_length_mismatch(self, tmp_path):
        p = tmp_path / "bad.soap"
        p.write_text("r\tACGT\t!!!!\t1\t5\t+\tchr\t1\n")
        with pytest.raises(FormatError, match="length"):
            read_soap(p)

    def test_empty_rejected(self, tmp_path):
        p = tmp_path / "e.soap"
        p.write_text("")
        with pytest.raises(FormatError, match="empty"):
            read_soap(p)


class TestPrior:
    def test_roundtrip(self, tmp_path, dataset):
        path = tmp_path / "x.prior"
        write_prior(path, "chrF", dataset.prior)
        back = read_prior(path, chrom="chrF")
        assert np.array_equal(back.positions, dataset.prior.positions)
        assert np.allclose(back.rates, dataset.prior.rates, atol=1e-6)

    def test_chrom_filter(self, tmp_path):
        p = tmp_path / "x.prior"
        p.write_text("chrA\t5\t0.1\nchrB\t9\t0.2\n")
        got = read_prior(p, chrom="chrB")
        assert got.n_sites == 1 and got.positions[0] == 8

    def test_rate_out_of_range(self, tmp_path):
        p = tmp_path / "x.prior"
        p.write_text("chrA\t5\t1.5\n")
        with pytest.raises(FormatError):
            read_prior(p)


def _toy_table(n=5):
    rng = np.random.default_rng(0)
    return ResultTable(
        chrom="chrT",
        pos=np.arange(1, n + 1, dtype=np.int64),
        ref_base=rng.integers(0, 4, n).astype(np.uint8),
        genotype=rng.integers(0, 10, n).astype(np.uint8),
        quality=rng.integers(0, 99, n).astype(np.uint8),
        best_base=rng.integers(0, 4, n).astype(np.uint8),
        avg_qual_best=rng.integers(0, 40, n).astype(np.uint8),
        count_uni_best=rng.integers(0, 30, n).astype(np.uint16),
        count_all_best=rng.integers(0, 30, n).astype(np.uint16),
        second_base=np.full(n, NO_BASE, dtype=np.uint8),
        avg_qual_second=np.zeros(n, dtype=np.uint8),
        count_uni_second=np.zeros(n, dtype=np.uint16),
        count_all_second=np.zeros(n, dtype=np.uint16),
        depth=rng.integers(0, 40, n).astype(np.uint16),
        rank_sum=np.round(rng.random(n), 2).astype(np.float32),
        copy_num=np.round(rng.random(n) * 3, 2).astype(np.float32),
        known_snp=rng.integers(0, 2, n).astype(np.uint8),
    )


class TestResultTable:
    def test_text_roundtrip(self):
        table = _toy_table(50)
        back = parse_rows(format_rows(table))
        assert back.equals(table)

    def test_file_roundtrip(self, tmp_path):
        table = _toy_table(20)
        path = tmp_path / "x.cns"
        write_cns(path, table)
        assert read_cns(path).equals(table)

    def test_seventeen_columns(self):
        table = _toy_table(3)
        line = format_rows(table).decode().splitlines()[0]
        assert len(line.split("\t")) == 17

    def test_append_mode(self, tmp_path):
        table = _toy_table(4)
        path = tmp_path / "x.cns"
        write_cns(path, table)
        write_cns(path, table, append=True)
        assert read_cns(path).n_sites == 8

    def test_validate_catches_shape(self):
        table = _toy_table(5)
        table.depth = table.depth[:3]
        with pytest.raises(ValueError):
            table.validate()

    def test_validate_catches_bad_genotype(self):
        table = _toy_table(5)
        table.genotype[0] = 11
        with pytest.raises(ValueError):
            table.validate()

    def test_equals_detects_difference(self):
        a, b = _toy_table(5), _toy_table(5)
        assert a.equals(b)
        b.quality[2] += 1
        assert not a.equals(b)

    def test_concat(self):
        a, b = _toy_table(3), _toy_table(4)
        assert a.concat(b).n_sites == 7

    def test_bad_column_count_rejected(self):
        with pytest.raises(FormatError):
            parse_rows(b"a\tb\tc\n")

    def test_empty_table(self):
        t = ResultTable.empty("chrE")
        assert t.n_sites == 0
        t.validate()


class TestWindowReader:
    def test_window_count(self, dataset):
        batch = AlignmentBatch.from_read_set(dataset.reads)
        reader = WindowReader(batch, dataset.n_sites, 1000)
        assert reader.n_windows == 3
        windows = list(reader)
        assert [w.start for w in windows] == [0, 1000, 2000]
        assert windows[-1].end == dataset.n_sites

    def test_every_read_delivered_to_its_windows(self, dataset):
        batch = AlignmentBatch.from_read_set(dataset.reads)
        reader = WindowReader(batch, dataset.n_sites, 700)
        seen = 0
        for w in reader:
            r = w.reads
            # Each delivered read overlaps the window.
            assert np.all(r.pos < w.end)
            assert np.all(r.pos + r.read_len > w.start)
            seen += r.n_reads
        # Boundary-spanning reads are delivered twice, so seen >= total.
        assert seen >= batch.n_reads

    def test_single_window_covers_everything(self, dataset):
        batch = AlignmentBatch.from_read_set(dataset.reads)
        reader = WindowReader(batch, dataset.n_sites, dataset.n_sites)
        (w,) = list(reader)
        assert w.reads.n_reads == batch.n_reads

    def test_invalid_window_size(self, dataset):
        batch = AlignmentBatch.from_read_set(dataset.reads)
        with pytest.raises(PipelineError):
            WindowReader(batch, dataset.n_sites, 0)

    def test_reads_past_reference_rejected(self):
        batch = AlignmentBatch(
            chrom="c", read_len=10,
            pos=np.array([95], dtype=np.int64),
            strand=np.zeros(1, dtype=np.uint8),
            hits=np.ones(1, dtype=np.uint8),
            bases=np.zeros((1, 10), dtype=np.uint8),
            quals=np.zeros((1, 10), dtype=np.uint8),
        )
        with pytest.raises(PipelineError):
            WindowReader(batch, 100, 50)
