"""Cross-module integration: files on disk, engines, properties at random.

These tests exercise the same seams a downstream user would: write the
three input files, read them back, call with every engine, compress,
decompress, and compare against planted truth — including under
hypothesis-randomized dataset parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DatasetSpec,
    GsnpDetector,
    GsnpPipeline,
    SoapsnpPipeline,
    generate_dataset,
)
from repro.align.records import AlignmentBatch
from repro.compress import CompressedResultReader
from repro.formats import (
    read_cns,
    read_fasta,
    read_fastq,
    read_prior,
    read_soap,
    write_fasta,
    write_fastq,
    write_prior,
    write_soap,
)
from repro.seqsim.datasets import SimulatedDataset
from repro.seqsim.reads import ReadSet, reverse_complement_view


class TestFileRoundtripPipeline:
    """Dataset -> files -> parse -> call == in-memory call."""

    @pytest.fixture(scope="class")
    def file_dataset(self, small_dataset, tmp_path_factory):
        d = tmp_path_factory.mktemp("files")
        batch = AlignmentBatch.from_read_set(small_dataset.reads)
        write_fasta(d / "ref.fa", [small_dataset.reference])
        write_soap(d / "aln.soap", batch)
        write_prior(d / "known.prior", small_dataset.reference.name,
                    small_dataset.prior)
        ref = read_fasta(d / "ref.fa")[0]
        aln = read_soap(d / "aln.soap")
        prior = read_prior(d / "known.prior")
        rebuilt = SimulatedDataset(
            spec=small_dataset.spec,
            reference=ref,
            diploid=small_dataset.diploid,
            reads=ReadSet(
                chrom=aln.chrom, read_len=aln.read_len, pos=aln.pos,
                strand=aln.strand, hits=aln.hits, bases=aln.bases,
                quals=aln.quals,
            ),
            prior=prior,
        )
        return rebuilt

    def test_file_path_equals_memory_path(self, file_dataset, small_dataset):
        mem = GsnpPipeline(window_size=2000, mode="cpu").run(small_dataset)
        file = GsnpPipeline(window_size=2000, mode="cpu").run(file_dataset)
        assert file.table.equals(mem.table)

    def test_text_output_reparses_identically(
        self, small_dataset, tmp_path
    ):
        path = tmp_path / "out.cns"
        res = SoapsnpPipeline(window_size=2000).run(
            small_dataset, output_path=path
        )
        assert read_cns(path).equals(res.table)

    def test_compressed_output_reader_matches_text(
        self, small_dataset, tmp_path
    ):
        gsnp_path = tmp_path / "out.gsnp"
        res = GsnpPipeline(window_size=1700, mode="gpu").run(
            small_dataset, output_path=gsnp_path
        )
        reader = CompressedResultReader(gsnp_path)
        assert reader.read_all().equals(res.table)


class TestFastqLoop:
    def test_machine_reads_roundtrip(self, small_dataset, tmp_path):
        rs = small_dataset.reads
        n = min(rs.n_reads, 50)
        reads = np.empty((n, rs.read_len), dtype=np.uint8)
        quals = np.empty_like(reads)
        for i in range(n):
            reads[i], quals[i] = reverse_complement_view(rs, i)
        path = tmp_path / "reads.fq"
        nbytes = write_fastq(path, reads, quals)
        assert nbytes == path.stat().st_size
        b, q, names = read_fastq(path)
        assert np.array_equal(b, reads)
        assert np.array_equal(q, quals)
        assert len(names) == n

    def test_fastq_to_calls_via_aligner(self, tmp_path):
        """The full upstream path: FASTQ -> aligner -> caller."""
        from repro.align import Aligner

        ds = generate_dataset(
            DatasetSpec(name="chrFQ", n_sites=6000, depth=10.0,
                        coverage=1.0, multihit_fraction=0.0, seed=61)
        )
        rs = ds.reads
        reads = np.empty_like(rs.bases)
        quals = np.empty_like(rs.quals)
        for i in range(rs.n_reads):
            reads[i], quals[i] = reverse_complement_view(rs, i)
        path = tmp_path / "r.fq"
        write_fastq(path, reads, quals)
        b, q, _ = read_fastq(path)
        batch = Aligner(ds.reference, max_mismatches=3).align_batch(b, q)
        assert batch.n_reads > 0.7 * rs.n_reads
        aligned_ds = SimulatedDataset(
            spec=ds.spec, reference=ds.reference, diploid=ds.diploid,
            reads=ReadSet(
                chrom=batch.chrom, read_len=batch.read_len, pos=batch.pos,
                strand=batch.strand, hits=batch.hits, bases=batch.bases,
                quals=batch.quals,
            ),
            prior=ds.prior,
        )
        det = GsnpDetector(engine="gsnp_cpu", min_quality=13)
        res = det.run(aligned_ds)
        acc = det.score(res.table, aligned_ds, min_quality=13)
        assert acc.precision > 0.7


class TestRandomizedConsistency:
    """The §IV-G property under randomized dataset parameters."""

    @given(
        depth=st.floats(3.0, 20.0),
        coverage=st.floats(0.5, 1.0),
        snp_rate=st.floats(1e-4, 5e-3),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_three_engines_bitwise_equal(self, depth, coverage, snp_rate, seed):
        ds = generate_dataset(
            DatasetSpec(
                name="chrH", n_sites=1500, depth=depth, coverage=coverage,
                snp_rate=snp_rate, seed=seed,
            )
        )
        soap = SoapsnpPipeline(window_size=600).run(ds).table
        cpu = GsnpPipeline(window_size=700, mode="cpu").run(ds).table
        gpu = GsnpPipeline(window_size=800, mode="gpu").run(ds).table
        assert soap.equals(cpu)
        assert soap.equals(gpu)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_compression_lossless_random_datasets(self, seed):
        from repro.compress import decode_table, encode_table

        ds = generate_dataset(
            DatasetSpec(name="chrZ", n_sites=1200, depth=8.0, coverage=0.8,
                        seed=seed)
        )
        table = SoapsnpPipeline(window_size=1200).run(ds).table
        decoded, _ = decode_table(encode_table(table))
        assert decoded.equals(table)


class TestExtremeDatasets:
    def test_zero_depth_dataset(self):
        """A dataset with (almost) no reads: every site calls hom-ref."""
        ds = generate_dataset(
            DatasetSpec(name="chrE", n_sites=2000, depth=0.1, coverage=0.9,
                        seed=71)
        )
        res = GsnpPipeline(window_size=2000, mode="cpu").run(ds)
        from repro.soapsnp.posterior import is_snp_call

        assert res.table.n_sites == 2000
        uncovered = res.table.depth == 0
        assert not is_snp_call(res.table)[uncovered].any()

    def test_very_high_depth(self):
        ds = generate_dataset(
            DatasetSpec(name="chrD", n_sites=500, depth=60.0, coverage=1.0,
                        seed=72)
        )
        soap = SoapsnpPipeline(window_size=500).run(ds).table
        gpu = GsnpPipeline(window_size=500, mode="gpu").run(ds).table
        assert soap.equals(gpu)

    def test_no_snps_planted(self):
        ds = generate_dataset(
            DatasetSpec(name="chrN", n_sites=2000, depth=10.0, coverage=0.9,
                        snp_rate=0.0, seed=73)
        )
        det = GsnpDetector(engine="gsnp_cpu", min_quality=20)
        res = det.run(ds)
        # Few high-quality false positives on a monomorphic genome.
        assert len(det.calls(res.table)) <= 2

    def test_single_site_window(self, small_dataset):
        res = GsnpPipeline(window_size=1, mode="cpu").run(small_dataset)
        ref = SoapsnpPipeline(window_size=4000).run(small_dataset)
        assert res.table.equals(ref.table)
