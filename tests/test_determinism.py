"""Run-to-run determinism: same seed, byte-identical artifacts.

Reproducibility is the whole point of a reproduction package: every
artifact — dataset, calls, text output, compressed output — must be a pure
function of the spec and seed.
"""

import numpy as np
import pytest

from repro import DatasetSpec, GsnpPipeline, generate_dataset
from repro.compress import encode_table
from repro.formats.cns import format_rows
from repro.soapsnp import SoapsnpPipeline

SPEC = DatasetSpec(
    name="chrDet", n_sites=3000, depth=9.0, coverage=0.85, seed=424
)


class TestDeterminism:
    def test_dataset_generation_deterministic(self):
        a, b = generate_dataset(SPEC), generate_dataset(SPEC)
        assert np.array_equal(a.reference.codes, b.reference.codes)
        assert np.array_equal(a.reads.bases, b.reads.bases)
        assert np.array_equal(a.reads.quals, b.reads.quals)
        assert np.array_equal(a.diploid.snp_positions, b.diploid.snp_positions)
        assert np.array_equal(a.prior.rates, b.prior.rates)

    def test_call_tables_bit_identical_across_runs(self):
        a = SoapsnpPipeline(window_size=1000).run(generate_dataset(SPEC))
        b = SoapsnpPipeline(window_size=1000).run(generate_dataset(SPEC))
        assert a.table.equals(b.table)

    def test_text_bytes_identical(self):
        ds = generate_dataset(SPEC)
        t1 = format_rows(SoapsnpPipeline(window_size=1000).run(ds).table)
        t2 = format_rows(SoapsnpPipeline(window_size=1500).run(ds).table)
        assert t1 == t2

    def test_compressed_bytes_identical(self):
        ds = generate_dataset(SPEC)
        a = GsnpPipeline(window_size=3000, mode="gpu").run(ds)
        b = GsnpPipeline(window_size=3000, mode="gpu").run(ds)
        assert a.compressed_output == b.compressed_output

    def test_gpu_counters_deterministic(self):
        ds = generate_dataset(SPEC)
        a = GsnpPipeline(window_size=3000, mode="gpu").run(ds)
        b = GsnpPipeline(window_size=3000, mode="gpu").run(ds)
        ca = a.extras["device"].counters.total()
        cb = b.extras["device"].counters.total()
        assert ca.g_load == cb.g_load
        assert ca.inst_warp == cb.inst_warp
        assert ca.s_load_warp == cb.s_load_warp

    def test_seed_changes_output(self):
        other = DatasetSpec(
            name="chrDet", n_sites=3000, depth=9.0, coverage=0.85, seed=425
        )
        a = generate_dataset(SPEC)
        b = generate_dataset(other)
        assert not np.array_equal(a.reads.bases, b.reads.bases)

    def test_canonical_encoding_stable(self):
        """The compressed container bytes are a stable format: pin a CRC
        so accidental format changes are caught."""
        import zlib

        ds = generate_dataset(SPEC)
        blob = encode_table(SoapsnpPipeline(window_size=3000).run(ds).table)
        crc = zlib.crc32(blob)
        # Re-encode: identical CRC within the session.
        blob2 = encode_table(SoapsnpPipeline(window_size=3000).run(ds).table)
        assert zlib.crc32(blob2) == crc
