"""FASTQ format: roundtrips and domain checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import read_fastq, write_fastq


class TestRoundtrip:
    def test_basic(self, tmp_path, rng):
        reads = rng.integers(0, 4, (20, 36)).astype(np.uint8)
        quals = rng.integers(0, 41, (20, 36)).astype(np.uint8)
        p = tmp_path / "x.fq"
        write_fastq(p, reads, quals)
        b, q, names = read_fastq(p)
        assert np.array_equal(b, reads)
        assert np.array_equal(q, quals)
        assert names[0] == "read_0"

    def test_name_prefix(self, tmp_path, rng):
        reads = rng.integers(0, 4, (2, 8)).astype(np.uint8)
        quals = rng.integers(0, 41, (2, 8)).astype(np.uint8)
        p = tmp_path / "x.fq"
        write_fastq(p, reads, quals, name_prefix="lane3")
        _, _, names = read_fastq(p)
        assert names == ["lane3_0", "lane3_1"]

    def test_byte_count(self, tmp_path, rng):
        reads = rng.integers(0, 4, (5, 10)).astype(np.uint8)
        quals = rng.integers(0, 41, (5, 10)).astype(np.uint8)
        p = tmp_path / "x.fq"
        n = write_fastq(p, reads, quals)
        assert n == p.stat().st_size

    @given(
        n=st.integers(1, 40), m=st.integers(1, 30),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip(self, n, m, seed):
        import tempfile
        from pathlib import Path

        rng = np.random.default_rng(seed)
        reads = rng.integers(0, 4, (n, m)).astype(np.uint8)
        quals = rng.integers(0, 64, (n, m)).astype(np.uint8)
        with tempfile.TemporaryDirectory() as d:
            p = Path(d) / "x.fq"
            write_fastq(p, reads, quals)
            b, q, _ = read_fastq(p)
        assert np.array_equal(b, reads) and np.array_equal(q, quals)


class TestValidation:
    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            write_fastq(
                tmp_path / "x.fq",
                np.zeros((2, 4), dtype=np.uint8),
                np.zeros((2, 5), dtype=np.uint8),
            )

    def test_1d_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            write_fastq(
                tmp_path / "x.fq",
                np.zeros(4, dtype=np.uint8),
                np.zeros(4, dtype=np.uint8),
            )

    def test_missing_at_header(self, tmp_path):
        p = tmp_path / "bad.fq"
        p.write_text("r0\nACGT\n+\n!!!!\n")
        with pytest.raises(FormatError, match="'@'"):
            read_fastq(p)
