"""Likelihood: literal Algorithm 1 oracle vs the vectorized canonical engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.records import AlignmentBatch
from repro.constants import N_GENOTYPES
from repro.formats.window import Window
from repro.soapsnp import (
    adjust_scores,
    build_base_occ_site,
    direct_contributions,
    extract_observations,
    likelihood_site_reference,
    nonzero_counts,
    occurrence_ordinals,
    sequential_site_sums,
    window_type_likely,
)
from repro.soapsnp.likelihood import adjust_score_scalar
from repro.stats.tables import dependency_penalty_table


@pytest.fixture(scope="module")
def tiny_setup(tiny_dataset):
    from repro.soapsnp.model import CallingParams
    from repro.soapsnp.p_matrix import build_p_matrix, flatten_p_matrix

    batch = AlignmentBatch.from_read_set(tiny_dataset.reads)
    params = CallingParams(read_len=batch.read_len)
    pm = build_p_matrix(batch, tiny_dataset.reference, params)
    pm_flat = flatten_p_matrix(pm)
    penalty = params.penalty_table()
    window = Window(start=0, end=tiny_dataset.n_sites, reads=batch)
    obs = extract_observations(window)
    return tiny_dataset, obs, pm, pm_flat, penalty


class TestAdjust:
    def test_first_observation_unchanged(self):
        pen = dependency_penalty_table()
        assert adjust_score_scalar(30, 1, pen) == 30

    def test_duplicates_penalized(self):
        pen = dependency_penalty_table()
        assert adjust_score_scalar(30, 2, pen) == 27
        assert adjust_score_scalar(30, 3, pen) == 24

    def test_floor_at_zero(self):
        pen = dependency_penalty_table()
        assert adjust_score_scalar(2, 5, pen) == 0

    def test_vectorized_matches_scalar(self):
        pen = dependency_penalty_table()
        scores = np.array([30, 30, 2, 40])
        ordinals = np.array([0, 1, 4, 63])
        got = adjust_scores(scores, ordinals, pen)
        expected = [
            adjust_score_scalar(int(s), int(o) + 1, pen)
            for s, o in zip(scores, ordinals)
        ]
        assert np.array_equal(got, expected)

    def test_ordinal_beyond_table_clamped(self):
        pen = dependency_penalty_table(max_count=4)
        got = adjust_scores(np.array([40]), np.array([100]), pen)
        assert got[0] == max(0, 40 - pen[3])


class TestOccurrenceOrdinals:
    def test_simple_groups(self):
        site = np.array([0, 0, 0, 1])
        base = np.array([0, 0, 1, 0])
        coord = np.array([5, 5, 5, 5])
        strand = np.array([0, 0, 0, 0])
        # First two share (site, base, coord, strand).
        got = occurrence_ordinals(site, base, coord, strand)
        assert list(got) == [0, 1, 0, 0]

    def test_order_within_group_follows_input(self):
        site = np.zeros(4, dtype=np.int64)
        base = np.zeros(4, dtype=np.int64)
        coord = np.array([7, 3, 7, 7])
        strand = np.zeros(4, dtype=np.int64)
        got = occurrence_ordinals(site, base, coord, strand)
        assert list(got) == [0, 0, 1, 2]

    def test_strand_separates_groups(self):
        site = np.zeros(2, dtype=np.int64)
        base = np.zeros(2, dtype=np.int64)
        coord = np.array([5, 5])
        strand = np.array([0, 1])
        assert list(occurrence_ordinals(site, base, coord, strand)) == [0, 0]

    def test_empty(self):
        e = np.empty(0, dtype=np.int64)
        assert occurrence_ordinals(e, e, e, e).size == 0

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_counts_duplicates(self, seed):
        rng = np.random.default_rng(seed)
        n = 200
        site = np.sort(rng.integers(0, 10, n))
        base = rng.integers(0, 4, n)
        coord = rng.integers(0, 8, n)
        strand = rng.integers(0, 2, n)
        got = occurrence_ordinals(site, base, coord, strand)
        # Brute force: ordinal = #prior elements with the same key.
        seen = {}
        for i in range(n):
            k = (site[i], base[i], coord[i], strand[i])
            assert got[i] == seen.get(k, 0)
            seen[k] = seen.get(k, 0) + 1


class TestEngineVsOracle:
    """The central correctness property: the vectorized engine equals the
    literal Algorithm 1 loop bit for bit."""

    def test_bitwise_equal_on_busy_sites(self, tiny_setup):
        ds, obs, pm, pm_flat, penalty = tiny_setup
        tl = window_type_likely(obs, pm_flat, penalty)
        nnz = nonzero_counts(obs)
        # The 8 busiest sites plus 4 random ones.
        sites = list(np.argsort(nnz)[-8:]) + [3, 17, 100, 400]
        for s in sites:
            occ = build_base_occ_site(obs, int(s))
            ref = likelihood_site_reference(
                occ, pm, penalty, read_len=ds.reads.read_len
            )
            assert np.array_equal(ref, tl[s]), f"site {s} diverged"

    def test_empty_site_zero_likelihood(self, tiny_setup):
        ds, obs, pm, pm_flat, penalty = tiny_setup
        tl = window_type_likely(obs, pm_flat, penalty)
        nnz = nonzero_counts(obs)
        empty_sites = np.nonzero(nnz == 0)[0]
        if empty_sites.size:
            assert np.all(tl[empty_sites] == 0.0)

    def test_likelihoods_nonpositive(self, tiny_setup):
        _, obs, _, pm_flat, penalty = tiny_setup
        tl = window_type_likely(obs, pm_flat, penalty)
        assert np.all(tl <= 0.0)

    def test_hom_truth_gets_best_likelihood_mostly(self, tiny_setup):
        """Sanity: at high-depth clean sites, the true genotype should win
        the likelihood (before priors)."""
        ds, obs, _, pm_flat, penalty = tiny_setup
        tl = window_type_likely(obs, pm_flat, penalty)
        nnz = nonzero_counts(obs)
        busy = np.nonzero(nnz >= 20)[0][:100]
        correct = 0
        from repro.constants import GENOTYPES

        for s in busy:
            truth = ds.diploid.genotype_at(int(s))
            if GENOTYPES.index(truth) == int(tl[s].argmax()):
                correct += 1
        assert correct / max(len(busy), 1) > 0.9


class TestSequentialSiteSums:
    def test_matches_python_sum_order(self, rng):
        m, n_sites = 500, 37
        site_lengths = rng.multinomial(m, np.ones(n_sites) / n_sites)
        offsets = np.concatenate([[0], np.cumsum(site_lengths)]).astype(np.int64)
        contrib = rng.standard_normal((m, N_GENOTYPES))
        got = sequential_site_sums(contrib, offsets)
        for s in range(n_sites):
            acc = np.zeros(N_GENOTYPES)
            for j in range(offsets[s], offsets[s + 1]):
                acc += contrib[j]
            assert np.array_equal(got[s], acc)

    def test_empty(self):
        out = sequential_site_sums(
            np.empty((0, N_GENOTYPES)), np.zeros(4, dtype=np.int64)
        )
        assert out.shape == (3, N_GENOTYPES)
        assert np.all(out == 0)


class TestDirectContributions:
    def test_shape_and_finite(self, tiny_setup):
        _, obs, _, pm_flat, penalty = tiny_setup
        sel, _ = obs.counted_offsets()
        q = np.full(sel.size, 30, dtype=np.int64)
        out = direct_contributions(
            pm_flat, q, obs.coord[sel], obs.base[sel]
        )
        assert out.shape == (sel.size, N_GENOTYPES)
        assert np.all(np.isfinite(out))

    def test_matching_genotype_scores_best(self, tiny_setup):
        _, _, _, pm_flat, _ = tiny_setup
        from repro.constants import GENOTYPES

        # Single high-quality A observation: genotypes containing A win.
        out = direct_contributions(
            pm_flat,
            np.array([38]),
            np.array([0]),
            np.array([0]),
        )[0]
        aa = GENOTYPES.index((0, 0))
        tt = GENOTYPES.index((3, 3))
        assert out[aa] > out[tt]
