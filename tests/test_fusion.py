"""Ragged-megabatch kernel fusion: parity, launch reduction, traffic.

The fused path must be invisible in the output: ResultTable rows and
compressed bytes bitwise identical to the per-window launch chain under
every toggle combination (fusion x prefetch x cache x workers x
sanitizer), while launching strictly fewer kernels and moving strictly
fewer global-memory bytes through the likelihood/posterior stage.
"""

import numpy as np
import pytest

from repro.align.records import AlignmentBatch
from repro.api import create_pipeline
from repro.core.detector import GsnpDetector
from repro.core.fused import merge_observations
from repro.core.counting import gsnp_counting
from repro.formats.window import WindowReader
from repro.gpusim.device import Device
from repro.gpusim.launchplan import (
    LaunchPlan,
    LaunchTally,
    build_launch_plan,
    chunk_windows,
)
from repro.seqsim.datasets import DatasetSpec, generate_dataset
from repro.soapsnp.observe import extract_observations


@pytest.fixture(scope="module")
def ds():
    return generate_dataset(DatasetSpec(
        name="fusion-t", n_sites=1600, depth=6.0, coverage=0.92,
        read_len=40, seed=31,
    ))


def _run(ds, **kw):
    pipe = create_pipeline("gsnp", window_size=256, **kw)
    res = pipe.run(ds)
    if hasattr(pipe, "release_cache"):
        pipe.release_cache()
    return res


class TestBitwiseParity:
    def test_fusion_toggle_matrix(self, ds):
        base = _run(ds, prefetch=False, cache=False, fusion=False)
        for prefetch in (False, True):
            for cache in (False, True):
                res = _run(ds, prefetch=prefetch, cache=cache, fusion=True)
                assert res.table.equals(base.table), (prefetch, cache)
                assert res.compressed_output == base.compressed_output, (
                    prefetch, cache,
                )

    def test_small_megabatch_still_identical(self, ds):
        base = _run(ds, prefetch=False, cache=False, fusion=False)
        for mb in (1, 2, 3):
            res = _run(
                ds, prefetch=False, cache=False, fusion=True, megabatch=mb
            )
            assert res.table.equals(base.table), mb
            assert res.compressed_output == base.compressed_output, mb

    def test_workers_parity(self, ds):
        serial = GsnpDetector(window_size=256, prefetch=False,
                              cache=False, fusion=False).run(ds)
        for workers in (1, 2):
            det = GsnpDetector(
                window_size=256, workers=workers, shard_size=600,
                fusion=True,
            )
            res = det.run(ds)
            assert res.table.equals(serial.table), workers
            assert res.compressed_output == serial.compressed_output

    def test_sanitizer_clean_with_fusion(self, ds):
        det = GsnpDetector(window_size=256, sanitize=True, fusion=True,
                           cache=False)
        res = det.run(ds)  # strict teardown inside run()
        assert res.table.n_sites == ds.n_sites


class TestLaunchReduction:
    def test_fused_launches_strictly_lower(self, ds):
        unfused = _run(ds, prefetch=False, cache=False, fusion=False)
        fused = _run(ds, prefetch=False, cache=False, fusion=True)
        n0 = unfused.extras["device"].counters.total().launches
        n1 = fused.extras["device"].counters.total().launches
        assert n1 < n0
        # ~megabatch windows collapse into one launch chain; even this
        # small dataset must show a clear multiple.
        assert n0 / n1 > 2.0

    def test_fusion_extras_reported(self, ds):
        res = _run(ds, prefetch=False, cache=False, fusion=True)
        info = res.extras["fusion"]
        assert info["launches"] > 0
        assert info["megabatches"] >= 1
        stages = info["stages"]
        assert "counting" in stages and "output_compress" in stages
        assert sum(s["launches"] for s in stages.values()) == info["launches"]

    def test_fused_kernel_moves_fewer_global_bytes(self, ds):
        # The fused likelihood+posterior keeps per-site genotype
        # likelihoods in shared memory: the full type_likely store+load
        # round trip (n_sites * 10 genotypes * 8 bytes each way)
        # disappears from the global-traffic counters.
        unfused = _run(ds, prefetch=False, cache=False, fusion=False)
        fused = _run(ds, prefetch=False, cache=False, fusion=True)

        def lp_bytes(res):
            tot_load = tot_store = 0
            for name, c in res.extras["device"].counters.entries.items():
                if "likelihood_comp" in name or "posterior" in name:
                    tot_load += c.g_load_bytes
                    tot_store += c.g_store_bytes
            return tot_load, tot_store

        u_load, u_store = lp_bytes(unfused)
        f_load, f_store = lp_bytes(fused)
        # Only covered sites pass through the comp kernel (depth-0 rows
        # stay zero), so the vanished store is covered * 10 * 8 bytes;
        # the posterior's vanished read spans every site's row.
        covered = int((unfused.table.depth > 0).sum())
        assert u_store - f_store >= covered * 10 * 8
        assert u_load - f_load >= ds.n_sites * 10 * 8


class TestLaunchPlan:
    def test_plan_layout(self):
        class W:  # minimal stand-in with the fields the plan reads
            def __init__(self, start, end):
                self.start, self.end = start, end
                self.n_sites = end - start

        windows = [W(0, 100), W(100, 250), W(250, 260)]
        plan = build_launch_plan(windows, [40, 90, 3])
        assert plan.n_windows == 3
        assert plan.n_sites == 260 and plan.n_obs == 133
        assert list(plan.site_offsets) == [0, 100, 250, 260]
        segids = plan.site_window()
        assert segids.size == 260
        assert segids[0] == 0 and segids[99] == 0
        assert segids[100] == 1 and segids[255] == 2
        assert plan.segments[1].site_offset == 100
        assert plan.segments[1].obs_offset == 40
        assert plan.segments[2].site_slice == slice(250, 260)

    def test_chunk_windows(self):
        groups = list(chunk_windows(iter(range(7)), 3))
        assert groups == [[0, 1, 2], [3, 4, 5], [6]]
        with pytest.raises(ValueError):
            list(chunk_windows(iter(range(3)), 0))

    def test_tally_measures_device_launches(self):
        device = Device()
        tally = LaunchTally()
        arr = device.alloc((64,), np.float64, "t")

        def noop_kernel(ctx, out, n):
            ctx.instr(1)

        with tally.measure(device, "stage_a", windows=4):
            device.launch(noop_kernel, 64, arr, 64, name="noop")
            device.launch(noop_kernel, 64, arr, 64, name="noop")
        device.free(arr)
        assert tally.total_launches() == 2
        s = tally.summary()["stage_a"]
        assert s == {"launches": 2, "windows": 4, "batches": 1}


class TestMergedCounting:
    def test_merge_equals_per_window_concat(self, ds):
        reads = AlignmentBatch.from_read_set(ds.reads)
        reader = WindowReader(reads, ds.n_sites, 256)
        windows = list(reader)
        obs_list = [extract_observations(w) for w in windows]
        plan = build_launch_plan(windows, [o.n_obs for o in obs_list])
        merged = merge_observations(obs_list, plan)
        assert merged.n_sites == ds.n_sites
        assert merged.n_obs == sum(o.n_obs for o in obs_list)

        words_m, offsets_m = gsnp_counting(Device(), merged)
        # Per-window counting, then concatenate: must be bitwise equal.
        parts, off_parts, base = [], [0], 0
        for w, o in zip(windows, obs_list):
            ww, wo = gsnp_counting(Device(), o)
            parts.append(ww)
            off_parts.extend((wo[1:] + base).tolist())
            base += ww.size
        assert np.array_equal(words_m, np.concatenate(parts))
        assert np.array_equal(offsets_m, np.array(off_parts))
