"""Direct checks of quantitative claims made in the paper's prose.

Each test quotes the claim it verifies.  These complement the benchmark
assertions: they run at test speed on the shared fixtures and pin the
*analytical* statements (formulas, sizes, ratios) rather than modeled
timings.
"""

import numpy as np
import pytest

from repro.constants import (
    BASE_OCC_SIZE,
    MULTIPASS_BOUNDS,
    N_GENOTYPES,
    NEW_P_MATRIX_SIZE,
    P_MATRIX_SIZE,
)
from repro.gpusim.costmodel import CpuCostModel
from repro.gpusim.spec import GpuSpec


class TestSection2Claims:
    def test_error_rate_regime(self):
        """'Second generation DNA sequencing produces ... reads ... with
        an error rate of around 2%.'"""
        from repro.seqsim import QualityModel

        rate = QualityModel().expected_error_rate(100)
        assert 0.002 < rate < 0.05


class TestSection4Claims:
    def test_base_occ_dimensions(self):
        """'a matrix ... with four dimensions (4 x 64 x 256 x 2)' storing
        '131,072' elements per site."""
        assert BASE_OCC_SIZE == 4 * 64 * 256 * 2 == 131072

    def test_formula2_nonzero_bound(self):
        """Formula (2): p_nonzero = X / |base_occ|; 'a common sequencing
        depth is less than 100X, thus the non-zero percentage is up to
        around 0.08%.'"""
        for depth in (10, 50, 100):
            p = depth / BASE_OCC_SIZE * 100
            assert p <= 0.08 or depth == 100
        assert 100 / BASE_OCC_SIZE * 100 == pytest.approx(0.0763, abs=1e-3)

    def test_measured_sparsity_obeys_formula2(self, small_obs):
        from repro.soapsnp import nonzero_counts

        nnz = nonzero_counts(small_obs)
        depth = small_obs.n_obs / small_obs.n_sites
        bound = depth / BASE_OCC_SIZE
        assert nnz.mean() / BASE_OCC_SIZE <= bound * 1.05

    def test_ten_genotype_combinations(self):
        """'the number of combinations of the two allele types ... is only
        ten.'"""
        assert N_GENOTYPES == 10

    def test_likely_update_count_per_base(self):
        """'likely_update is performed ten times for each aligned base' —
        one trillion invocations for a human genome (3e9 sites x ~30X)."""
        invocations = 3e9 * 30 * 10
        assert invocations == pytest.approx(9e11, rel=0.2)  # ~one trillion

    def test_new_p_matrix_ten_times_larger(self):
        """'The size of the new score table ... is ten times larger.'"""
        assert NEW_P_MATRIX_SIZE == P_MATRIX_SIZE * 10 // 4

    def test_new_p_matrix_fits_gpu_memory(self):
        """'80 MB ... still affordable for the GPU' (3 GB M2050)."""
        assert NEW_P_MATRIX_SIZE * 8 < GpuSpec().global_mem_bytes * 0.1

    def test_p_matrix_too_big_for_shared_or_constant(self):
        """'The matrix ... can be stored in neither shared memory nor
        constant memory.'"""
        spec = GpuSpec()
        nbytes = P_MATRIX_SIZE * 8
        assert nbytes > spec.shared_mem_per_block
        assert nbytes > spec.constant_mem_bytes
        assert nbytes > spec.l2_bytes  # 'L1/L2 caches may not help'

    def test_multipass_classes_are_the_papers_six(self):
        """'The multipass adopts six passes, which are for array size
        [0,1], (1,8], (8,16], (16,32], (32,64], and larger than 64.'"""
        assert len(MULTIPASS_BOUNDS) + 1 == 6
        assert MULTIPASS_BOUNDS == (1, 8, 16, 32, 64)

    def test_twenty_shared_accesses_per_base(self):
        """'There are ten reads and ten writes on type_likely for each
        aligned base.'"""
        from repro.core.base_word import words_from_observations
        from repro.core.likelihood import (
            OPTIMIZED,
            GsnpTables,
            gsnp_likelihood_comp,
            gsnp_likelihood_sort,
        )
        from repro.gpusim.device import Device
        from repro.seqsim import DatasetSpec, generate_dataset
        from repro.soapsnp import (
            CallingParams,
            build_p_matrix,
            extract_observations,
            flatten_p_matrix,
        )
        from repro.align.records import AlignmentBatch
        from repro.formats.window import Window

        ds = generate_dataset(
            DatasetSpec(name="c", n_sites=600, depth=10, coverage=1.0,
                        seed=91)
        )
        reads = AlignmentBatch.from_read_set(ds.reads)
        params = CallingParams(read_len=reads.read_len)
        pmf = flatten_p_matrix(build_p_matrix(reads, ds.reference, params))
        obs = extract_observations(
            Window(start=0, end=ds.n_sites, reads=reads)
        )
        device = Device()
        tables = GsnpTables.load(device, pmf, params.penalty_table())
        words, offsets = words_from_observations(obs)
        wsorted, _ = gsnp_likelihood_sort(device, words, offsets)
        device.reset_counters()
        gsnp_likelihood_comp(device, wsorted, offsets, tables, OPTIMIZED)
        total = device.counters.total()
        m = words.size
        # ~10 shared loads + ~10 shared stores per counted base (in
        # per-warp units: / warp_size).
        per_base = (total.s_load_warp + total.s_store_warp) * 32 / m
        assert 15 < per_base < 25


class TestSection5Claims:
    def test_output_larger_than_input(self, small_dataset):
        """'Outputing is more expensive than inputing due to the larger
        size (around 50% larger).'"""
        from repro.formats.soap import soap_line_bytes
        from repro.soapsnp import SoapsnpPipeline

        res = SoapsnpPipeline(window_size=4000).run(small_dataset)
        input_bytes = (
            small_dataset.reads.n_reads
            * soap_line_bytes(small_dataset.reads.read_len)
        )
        # Text output per covered genome is larger than the alignment
        # input at comparable scale (paper: 17 GB out vs 12 GB in).
        assert res.output_bytes > input_bytes

    def test_quality_columns_few_distinct_values(self, small_dataset):
        """'the number of distinct values is fewer than 100' for the six
        quality-related columns."""
        from repro.compress.columnar import RLE_DICT_COLUMNS, _quantize100
        from repro.soapsnp import SoapsnpPipeline

        table = SoapsnpPipeline(window_size=4000).run(small_dataset).table
        for name in ("quality", "avg_qual_best", "depth"):
            col = getattr(table, name)
            assert np.unique(col).size < 110, name

    def test_consecutive_repeats_exist(self, small_dataset):
        """'there are usually around tens of repeats for consecutive
        sites' — we require mean run length > 1.5 on quality columns."""
        from repro.compress import mean_run_length
        from repro.soapsnp import SoapsnpPipeline

        table = SoapsnpPipeline(window_size=4000).run(small_dataset).table
        assert mean_run_length(table.depth) > 1.5
        assert mean_run_length(table.rank_sum) > 1.5


class TestSection6Claims:
    def test_formula1_explains_most_of_likelihood(self):
        """'the estimated time is around 70% of the measured likelihood
        calculation time' (Ch.1, full scale)."""
        m = CpuCostModel()
        est = m.base_occ_scan_time(247_000_000, BASE_OCC_SIZE)
        assert 0.55 < est / 12267 < 0.75

    def test_window_memory_claim(self):
        """'when the window size is set to 128,000 ... both the GPU and
        CPU memory consumption are less than 1 GB' — our per-window GPU
        footprint scales to well under 1 GB at that window size."""
        from repro.bench.harness import gsnp_result

        res = gsnp_result("ch21-sim", "gpu", 0.25)
        per_site = res.extras["peak_gpu_bytes"] / res.table.n_sites
        assert per_site * 128_000 < 1 * 1024**3
