"""Sequencing simulation: reference, diploid, quality, reads, datasets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import COMPLEMENT_CODE
from repro.seqsim import (
    CH1_SPEC,
    CH21_SPEC,
    DatasetSpec,
    QualityModel,
    covered_blocks,
    dataset_summary,
    generate_dataset,
    simulate_diploid,
    simulate_reads,
    synthesize_reference,
    whole_genome_specs,
)
from repro.seqsim.datasets import HG_CHROM_MBP, KnownSnpPrior
from repro.seqsim.reads import reverse_complement_view
from repro.seqsim.reference import Reference


class TestReference:
    def test_length_and_codes(self):
        ref = synthesize_reference("x", 10_000, seed=1)
        assert ref.length == 10_000
        assert ref.codes.max() <= 3

    def test_gc_content_respected(self):
        ref = synthesize_reference("x", 200_000, gc_content=0.41, seed=2)
        gc = np.isin(ref.codes, [1, 2]).mean()
        assert abs(gc - 0.41) < 0.01

    def test_deterministic_by_seed(self):
        a = synthesize_reference("x", 1000, seed=7)
        b = synthesize_reference("x", 1000, seed=7)
        assert np.array_equal(a.codes, b.codes)

    def test_string_roundtrip(self):
        ref = synthesize_reference("x", 500, seed=3)
        back = Reference.from_string("x", ref.to_string())
        assert np.array_equal(back.codes, ref.codes)

    def test_invalid_char_rejected(self):
        with pytest.raises(ValueError):
            Reference.from_string("x", "ACGX")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            synthesize_reference("x", 0)
        with pytest.raises(ValueError):
            synthesize_reference("x", 10, gc_content=1.5)


class TestDiploid:
    @pytest.fixture(scope="class")
    def diploid(self):
        ref = synthesize_reference("x", 50_000, seed=4)
        return simulate_diploid(ref, snp_rate=2e-3, seed=5)

    def test_snp_count_near_rate(self, diploid):
        assert 60 <= diploid.n_snps <= 140  # 100 expected

    def test_haplotypes_differ_only_at_snps(self, diploid):
        ref = diploid.reference.codes
        diff1 = np.nonzero(diploid.hap1 != ref)[0]
        diff2 = np.nonzero(diploid.hap2 != ref)[0]
        snps = set(diploid.snp_positions.tolist())
        assert set(diff1.tolist()) <= snps
        assert set(diff2.tolist()) <= snps

    def test_genotypes_ordered(self, diploid):
        g = diploid.snp_genotypes
        assert np.all(g[:, 0] <= g[:, 1])

    def test_every_snp_alters_some_haplotype(self, diploid):
        ref = diploid.reference.codes
        for p in diploid.snp_positions:
            assert (
                diploid.hap1[p] != ref[p] or diploid.hap2[p] != ref[p]
            )

    def test_genotype_at_matches_haplotypes(self, diploid):
        for p in diploid.snp_positions[:20]:
            a1, a2 = diploid.genotype_at(int(p))
            hap = sorted([int(diploid.hap1[p]), int(diploid.hap2[p])])
            assert [a1, a2] == hap

    def test_genotype_at_non_snp_is_hom_ref(self, diploid):
        p = 0
        while p in set(diploid.snp_positions.tolist()):
            p += 1
        r = int(diploid.reference.codes[p])
        assert diploid.genotype_at(p) == (r, r)

    def test_transition_bias(self):
        ref = synthesize_reference("x", 200_000, seed=6)
        d = simulate_diploid(ref, snp_rate=5e-3, titv=4.0, seed=7)
        transitions = 0
        for p, (a1, a2) in zip(d.snp_positions, d.snp_genotypes):
            r = ref.codes[p]
            alt = a2 if a1 == r else a1
            if {int(r), int(alt)} in ({0, 2}, {1, 3}):
                transitions += 1
        # titv=4 -> ~2/3 transitions among alts.
        assert transitions / d.n_snps > 0.5

    def test_invalid_rates_rejected(self):
        ref = synthesize_reference("x", 100, seed=1)
        with pytest.raises(ValueError):
            simulate_diploid(ref, snp_rate=1.5)
        with pytest.raises(ValueError):
            simulate_diploid(ref, het_fraction=-0.1)


class TestQualityModel:
    def test_scores_in_range(self, rng):
        qm = QualityModel()
        q = qm.sample(100, 100, rng)
        assert q.min() >= qm.min_q and q.max() <= qm.max_q

    def test_decay_along_read(self, rng):
        qm = QualityModel()
        q = qm.sample(3000, 100, rng)
        assert q[:, :10].mean() > q[:, -10:].mean() + 5

    def test_quality_runs_exist(self, rng):
        """Binned qualities plateau (the RLE-DICT prerequisite)."""
        qm = QualityModel()
        q = qm.sample(200, 100, rng)
        changes = (np.diff(q.astype(int), axis=1) != 0).mean()
        assert changes < 0.5  # average run length > 2

    def test_error_rate_second_generation(self):
        """~2% error rate regime of second-generation sequencing."""
        qm = QualityModel()
        assert 0.002 < qm.expected_error_rate(100) < 0.05

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            QualityModel(min_q=10, max_q=5)
        with pytest.raises(ValueError):
            QualityModel(max_q=64)

    def test_read_len_one(self, rng):
        q = QualityModel().sample(5, 1, rng)
        assert q.shape == (5, 1)


class TestCoveredBlocks:
    def test_full_coverage_single_block(self, rng):
        blocks = covered_blocks(1000, 1.0, 100, 50, rng)
        assert np.array_equal(blocks, [[0, 1000]])

    def test_partial_coverage_fraction(self, rng):
        blocks = covered_blocks(100_000, 0.7, 2000, 100, rng)
        covered = (blocks[:, 1] - blocks[:, 0]).sum()
        assert abs(covered / 100_000 - 0.7) < 0.05

    def test_invalid_coverage(self, rng):
        with pytest.raises(ValueError):
            covered_blocks(1000, 0.0, 100, 50, rng)


class TestReads:
    @pytest.fixture(scope="class")
    def setup(self):
        ref = synthesize_reference("x", 30_000, seed=8)
        d = simulate_diploid(ref, seed=9)
        rs = simulate_reads(d, depth=10.0, coverage=0.8, read_len=100, seed=10)
        return d, rs

    def test_depth_matches(self, setup):
        d, rs = setup
        depth = rs.n_reads * rs.read_len / d.reference.length
        assert abs(depth - 10.0) < 0.5

    def test_sorted_by_position(self, setup):
        _, rs = setup
        assert np.all(np.diff(rs.pos) >= 0)

    def test_reads_fit_reference(self, setup):
        d, rs = setup
        assert rs.pos.min() >= 0
        assert rs.pos.max() + rs.read_len <= d.reference.length

    def test_error_rate_low(self, setup):
        d, rs = setup
        idx = rs.pos[:, None] + np.arange(rs.read_len)[None, :]
        ref_matches = (rs.bases == d.hap1[idx]) | (rs.bases == d.hap2[idx])
        assert ref_matches.mean() > 0.95

    def test_both_strands_present(self, setup):
        _, rs = setup
        assert 0.4 < rs.strand.mean() < 0.6

    def test_multihit_fraction(self, setup):
        _, rs = setup
        assert 0.02 < (rs.hits > 1).mean() < 0.10

    def test_validate_catches_bad_scores(self, setup):
        _, rs = setup
        bad = rs.quals.copy()
        bad[0, 0] = 80
        import dataclasses

        broken = dataclasses.replace(rs, quals=bad)
        with pytest.raises(ValueError):
            broken.validate()

    def test_machine_cycle_orientation(self, setup):
        _, rs = setup
        mc = rs.machine_cycle()
        fwd = rs.strand == 0
        assert np.all(mc[fwd][:, 0] == 0)
        assert np.all(mc[~fwd][:, 0] == rs.read_len - 1)

    def test_reverse_complement_view(self, setup):
        _, rs = setup
        rev = np.nonzero(rs.strand == 1)[0]
        i = int(rev[0])
        b, q = reverse_complement_view(rs, i)
        assert np.array_equal(b, COMPLEMENT_CODE[rs.bases[i][::-1]])
        assert np.array_equal(q, rs.quals[i][::-1])

    def test_read_len_longer_than_reference_rejected(self):
        ref = synthesize_reference("x", 50, seed=1)
        d = simulate_diploid(ref, seed=1)
        with pytest.raises(ValueError):
            simulate_reads(d, depth=5, read_len=100)


class TestDatasets:
    def test_table2_ch21_replica(self):
        ds = generate_dataset(CH21_SPEC)
        s = dataset_summary(ds)
        assert s["sites"] == 47_000
        assert abs(s["depth"] - 9.6) < 0.3
        assert abs(s["coverage"] - 0.68) < 0.04

    def test_table2_specs_match_paper(self):
        assert CH1_SPEC.n_sites == 247_000 and CH1_SPEC.depth == 11.0
        assert CH21_SPEC.coverage == 0.68

    def test_whole_genome_24_sequences(self):
        specs = whole_genome_specs()
        assert len(specs) == 24
        assert len(HG_CHROM_MBP) == 24
        names = {s.name for s in specs}
        assert "chr1-sim" in names and "chrY-sim" in names

    def test_prior_contains_mostly_real_snps(self):
        ds = generate_dataset(
            DatasetSpec(name="t", n_sites=60_000, depth=8, coverage=0.9,
                        snp_rate=2e-3, seed=77)
        )
        planted = set(ds.diploid.snp_positions.tolist())
        known = set(ds.prior.positions.tolist())
        overlap = len(known & planted) / max(len(known), 1)
        assert overlap > 0.5  # known SNPs plus decoys

    def test_prior_rate_lookup(self):
        prior = KnownSnpPrior(
            positions=np.array([10, 20], dtype=np.int64),
            rates=np.array([0.3, 0.4]),
        )
        out = prior.rate_at(np.array([5, 10, 20, 30]), novel_rate=0.001)
        assert np.allclose(out, [0.001, 0.3, 0.4, 0.001])

    def test_prior_rate_lookup_empty(self):
        prior = KnownSnpPrior(
            positions=np.empty(0, dtype=np.int64),
            rates=np.empty(0, dtype=np.float64),
        )
        out = prior.rate_at(np.array([1, 2]), novel_rate=0.01)
        assert np.allclose(out, 0.01)

    def test_generation_deterministic(self):
        spec = DatasetSpec(name="t", n_sites=5000, depth=5, coverage=0.9, seed=3)
        a = generate_dataset(spec)
        b = generate_dataset(spec)
        assert np.array_equal(a.reads.bases, b.reads.bases)
        assert np.array_equal(a.prior.positions, b.prior.positions)
