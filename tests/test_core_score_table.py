"""new_p_matrix: layout, bitwise equality with the direct path."""

import numpy as np
import pytest

from repro.constants import GENOTYPES, NEW_P_MATRIX_SIZE
from repro.core.score_table import (
    build_new_p_matrix,
    new_p_index,
    table_contributions,
)
from repro.soapsnp.likelihood import direct_contributions


@pytest.fixture(scope="module")
def newp(small_pm_flat):
    return build_new_p_matrix(small_pm_flat.reshape(64, 256, 4, 4))


class TestBuild:
    def test_size_is_ten_x(self, newp, small_pm_flat):
        assert newp.size == NEW_P_MATRIX_SIZE
        assert newp.size == small_pm_flat.size * 10 // 4

    def test_memory_footprint_ratio(self, newp, small_pm_flat):
        """The paper: 8 MB -> 80 MB (10x); ours preserves the ratio."""
        assert newp.nbytes == small_pm_flat.nbytes * 10 // 4

    def test_entries_match_algorithm2(self, newp, small_pm_flat, rng):
        """new_p[(q<<10|c<<2|b)*10+i] == log10(.5 p[a1] + .5 p[a2])."""
        pm = small_pm_flat.reshape(64, 256, 4, 4)
        for _ in range(200):
            q = int(rng.integers(0, 64))
            c = int(rng.integers(0, 256))
            b = int(rng.integers(0, 4))
            i = int(rng.integers(0, 10))
            a1, a2 = GENOTYPES[i]
            expected = np.log10(0.5 * pm[q, c, a1, b] + 0.5 * pm[q, c, a2, b])
            got = newp[new_p_index(q, c, b, i)]
            assert got == expected  # bitwise

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            build_new_p_matrix(np.zeros((2, 2)))

    def test_all_entries_nonpositive(self, newp):
        assert np.all(newp <= 0.0)


class TestTableVsDirect:
    def test_bitwise_identical_contributions(self, newp, small_pm_flat, rng):
        """Algorithm 3 lookups == Algorithm 2 evaluations, bit for bit —
        the §IV-G consistency mechanism."""
        m = 5000
        q = rng.integers(0, 64, m)
        c = rng.integers(0, 256, m)
        b = rng.integers(0, 4, m)
        via_table = table_contributions(newp, q, c, b)
        via_direct = direct_contributions(small_pm_flat, q, c, b)
        assert np.array_equal(via_table, via_direct)

    def test_index_vectorized_matches_scalar(self, rng):
        q = rng.integers(0, 64, 20)
        c = rng.integers(0, 256, 20)
        b = rng.integers(0, 4, 20)
        for i in range(10):
            vec = new_p_index(q, c, b, i)
            for j in range(20):
                scalar = ((int(q[j]) << 10) | (int(c[j]) << 2) | int(b[j])) * 10 + i
                assert vec[j] == scalar
