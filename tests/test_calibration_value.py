"""Does cal_p_matrix earn its keep?  Calibration vs pure theory.

SOAPsnp spends a full pass over the input to calibrate ``p_matrix``; these
tests verify the calibrated matrix reflects the data (error rates per
cycle) and that the calling machinery works with either matrix — the
calibration is a refinement, not a crutch.
"""

import numpy as np
import pytest

from repro.align.records import AlignmentBatch
from repro.soapsnp import (
    CallingParams,
    build_p_matrix,
    theoretical_p_matrix,
)


class TestCalibrationReflectsData:
    def test_observed_cells_deviate_from_theory(
        self, small_batch, small_dataset, small_params
    ):
        """Heavily observed cells move away from the smoothing prior."""
        pm = build_p_matrix(small_batch, small_dataset.reference, small_params)
        th = theoretical_p_matrix()
        # Within the observed score range and read length, some cells must
        # differ measurably from theory (real data is not the ideal model).
        window = pm[10:40, :100] - th[10:40, :100]
        assert np.abs(window).max() > 1e-3

    def test_unobserved_cells_stay_theoretical(
        self, small_batch, small_dataset, small_params
    ):
        pm = build_p_matrix(small_batch, small_dataset.reference, small_params)
        th = theoretical_p_matrix()
        # Coordinates beyond the 100 bp reads are never observed.
        assert np.allclose(pm[:, 120:], th[:, 120:])

    def test_error_mass_tracks_quality(self, small_batch, small_dataset,
                                       small_params):
        """Lower reported quality -> more off-diagonal probability mass."""
        pm = build_p_matrix(small_batch, small_dataset.reference, small_params)
        def err_mass(q):
            cell = pm[q, 10]
            return 1.0 - np.trace(cell) / 4.0
        assert err_mass(15) > err_mass(38)

    def test_pseudo_count_controls_blend(self, small_batch, small_dataset):
        heavy = CallingParams(read_len=100, calibration_pseudo=1e9)
        pm = build_p_matrix(small_batch, small_dataset.reference, heavy)
        assert np.allclose(pm, theoretical_p_matrix(), atol=1e-6)


class TestTheoryOnlyCalling:
    def test_calling_works_with_theoretical_matrix(self, small_dataset):
        """The pipeline machinery is calibration-agnostic: swapping in the
        pure Phred model still recovers planted SNPs."""
        from repro.formats.window import Window
        from repro.soapsnp import (
            extract_observations,
            is_snp_call,
            summarize_window,
            window_type_likely,
        )
        from repro.soapsnp.p_matrix import flatten_p_matrix

        params = CallingParams(read_len=100)
        reads = AlignmentBatch.from_read_set(small_dataset.reads)
        obs = extract_observations(
            Window(start=0, end=small_dataset.n_sites, reads=reads)
        )
        tl = window_type_likely(
            obs, flatten_p_matrix(theoretical_p_matrix()),
            params.penalty_table(),
        )
        table = summarize_window(
            obs, 0, small_dataset.reference.codes, small_dataset.prior, tl,
            params, chrom="c",
        )
        calls = set((table.pos[is_snp_call(table)] - 1).tolist())
        truth = {
            int(p) for p in small_dataset.diploid.snp_positions
            if table.depth[int(p)] >= 4
        }
        assert len(calls & truth) / max(len(truth), 1) > 0.7


class TestCostModelDiagnostics:
    def test_effective_bandwidth(self):
        from repro.gpusim.costmodel import GpuCostModel
        from repro.gpusim.counters import KernelCounters

        m = GpuCostModel()
        c = KernelCounters(g_load=1000, g_load_bytes=128_000)
        bw = m.effective_bandwidth(c)
        assert bw == pytest.approx(82e9, rel=0.01)
        assert m.effective_bandwidth(KernelCounters()) == 0.0

    def test_shared_time_term(self):
        from repro.gpusim.costmodel import GpuCostModel
        from repro.gpusim.counters import KernelCounters

        m = GpuCostModel()
        c = KernelCounters(s_load_warp=10**9)
        assert m.shared_time(c) > 0
        # Shared traffic alone can dominate the roofline.
        assert m.kernel_time(c) == pytest.approx(m.shared_time(c))

    def test_soap_line_bytes_reasonable(self):
        from repro.formats.soap import soap_line_bytes

        assert 200 <= soap_line_bytes(100) <= 300

    def test_launch_with_shared_request(self, device):
        def k(ctx):
            ctx.instr(1)

        device.launch(k, 32, shared_bytes=1024)  # within 48 KB: fine
