"""RLE-DICT two-level codec, CPU and GPU paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    dict_encode,
    dict_encode_gpu,
    rle_dict_decode,
    rle_dict_encode,
    rle_dict_encode_gpu,
)
from repro.errors import CodecError
from repro.gpusim.device import Device


def _runny_column(rng, n=5000, n_values=40, mean_run=12):
    n_runs = max(n // mean_run, 1)
    values = rng.integers(0, n_values, n_runs).astype(np.uint8)
    lengths = rng.integers(1, 2 * mean_run, n_runs)
    return np.repeat(values, lengths)[:n]


class TestCpu:
    def test_roundtrip(self, rng):
        col = _runny_column(rng)
        assert np.array_equal(rle_dict_decode(rle_dict_encode(col)), col)

    def test_empty(self):
        col = np.empty(0, dtype=np.uint8)
        out = rle_dict_decode(rle_dict_encode(col))
        assert out.size == 0

    def test_compresses_quality_like_columns(self, rng):
        """The paper's six quality columns: <100 distinct values, runs of
        ~tens — RLE-DICT should get well under 2 bits/element."""
        col = _runny_column(rng, n=50_000, n_values=80, mean_run=15)
        blob = rle_dict_encode(col)
        assert len(blob) * 8 / col.size < 2.0

    def test_beats_dict_alone_on_runny_data(self, rng):
        col = _runny_column(rng, n=20_000, mean_run=20)
        assert len(rle_dict_encode(col)) < len(dict_encode(col))

    def test_uint16_values(self, rng):
        col = np.repeat(
            rng.integers(0, 900, 100).astype(np.uint16),
            rng.integers(1, 30, 100),
        )
        assert np.array_equal(rle_dict_decode(rle_dict_encode(col)), col)

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            rle_dict_decode(b"\x00\x00")

    @given(st.lists(st.integers(0, 30), min_size=0, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        col = np.asarray(values, dtype=np.uint8)
        assert np.array_equal(rle_dict_decode(rle_dict_encode(col)), col)


class TestGpu:
    def test_byte_identical_to_cpu(self, rng):
        col = _runny_column(rng, n=3000)
        device = Device()
        assert rle_dict_encode_gpu(device, col) == rle_dict_encode(col)

    def test_uses_paper_primitives(self, rng):
        """RLE via reduction; DICT via sort + unique + binary search."""
        col = _runny_column(rng, n=2000)
        device = Device()
        rle_dict_encode_gpu(device, col)
        kernels = set(device.counters.entries)
        assert "rle_flag" in kernels
        assert "reduce_pass" in kernels
        assert "radix_histogram" in kernels
        assert "unique_compact" in kernels
        assert "binary_search" in kernels

    def test_dict_gpu_byte_identical(self, rng):
        for dtype in (np.uint8, np.uint16, np.float32):
            v = rng.integers(0, 50, 1000).astype(dtype)
            device = Device()
            assert dict_encode_gpu(device, v) == dict_encode(v)

    def test_small_dictionary_in_constant_memory(self, rng):
        col = rng.integers(0, 20, 1000).astype(np.uint8)
        device = Device()
        dict_encode_gpu(device, col)
        c = device.counters.get("binary_search")
        assert c.c_load > 0  # probes hit the constant cache

    def test_gpu_empty(self):
        device = Device()
        col = np.empty(0, dtype=np.uint8)
        assert rle_dict_encode_gpu(device, col) == rle_dict_encode(col)

    def test_float_column_gpu(self, rng):
        col = np.repeat(
            np.round(rng.random(50), 2).astype(np.float32),
            rng.integers(1, 20, 50),
        )
        device = Device()
        assert rle_dict_encode_gpu(device, col) == rle_dict_encode(col)
