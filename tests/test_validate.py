"""Cross-engine verification harness."""

import numpy as np
import pytest

from repro.validate import VerificationReport, verify_engines


class TestVerifyEngines:
    @pytest.fixture(scope="class")
    def report(self, small_dataset):
        return verify_engines(
            small_dataset, window_sizes=(900, 2048)
        )

    def test_all_checks_pass(self, report):
        assert report.passed, report.summary()

    def test_covers_variants_and_compression(self, report):
        names = [n for n, _ in report.checks]
        assert any("baseline" in n for n in names)
        assert any("optimized" in n for n in names)
        assert any("compression" in n for n in names)
        assert any("window" in n for n in names)

    def test_summary_format(self, report):
        s = report.summary()
        assert "ALL CHECKS PASSED" in s
        assert s.count("PASS") >= len(report.checks)

    def test_report_detects_failure(self):
        r = VerificationReport()
        r.record("a", True)
        r.record("b", False)
        assert not r.passed
        assert "FAIL" in r.summary()
        assert "FAILURES PRESENT" in r.summary()

    def test_minimal_options(self, tiny_dataset):
        r = verify_engines(
            tiny_dataset,
            window_sizes=(400,),
            check_variants=False,
            check_compression=False,
        )
        assert r.passed
        assert len(r.checks) == 2  # just the two engine comparisons
