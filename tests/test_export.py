"""CSV export of experiment data (gsnp-bench)."""

import csv

import pytest

from repro.bench.export import export_all
from repro.cli import main_bench


class TestExportAll:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        files = export_all(
            out, fraction=0.05,
            include=("table2", "fig4b", "fig5", "fig7a"),
        )
        return out, files

    def test_files_written(self, exported):
        out, files = exported
        names = {f.name for f in files}
        assert "table2.csv" in names
        assert "fig4b_ch1-sim.csv" in names
        assert "fig5_ch21-sim.csv" in names
        assert "fig7a.csv" in names

    def test_csv_parses_with_header(self, exported):
        out, files = exported
        for f in files:
            with open(f) as fh:
                rows = list(csv.reader(fh))
            assert len(rows) >= 2, f.name
            assert all(len(r) == len(rows[0]) for r in rows), f.name

    def test_fig5_orderings_in_csv(self, exported):
        out, _ = exported
        with open(out / "fig5_ch1-sim.csv") as fh:
            rows = {r[0]: float(r[1]) for r in list(csv.reader(fh))[1:]}
        assert rows["GSNP"] < rows["GSNP_CPU"] < rows["SOAPsnp"]

    def test_cli_entry_point(self, tmp_path):
        rc = main_bench(
            ["-o", str(tmp_path / "r"), "--fraction", "0.05",
             "--only", "table2"]
        )
        assert rc == 0
        assert (tmp_path / "r" / "table2.csv").exists()
