"""gsnp-serve and the JobSpec API: parity, caching, quotas, recovery.

The load-bearing guarantees (ISSUE acceptance):

* jobs served by the resident daemon — including concurrent ones — are
  bitwise identical to a one-shot ``gsnp-call`` over the same inputs;
* a repeated job hits the cross-job caches (calibration fingerprint and
  device score-table residency), visible in ``/stats``;
* per-tenant admission quotas reject at submit time;
* a daemon killed mid-job resumes it on restart from the ledger + shard
  journal and still produces bitwise-identical output;
* :class:`repro.api.JobSpec` round-trips CLI args -> spec -> wire ->
  spec, and the legacy kwarg spellings keep working via a deprecation
  shim that ``gsnp-lint`` GSNP108 flags.
"""

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.analyze.lint import lint_source
from repro.api import JobSpec, create_pipeline
from repro.cli import main_call
from repro.exec import execute, release_resident, resident_stats
from repro.faults.plan import FaultPlan, FaultSpec
from repro.serve import (
    GsnpServer,
    ServeClient,
    ServeConfig,
    wait_for_server,
)

WINDOW = 400
SITES = 1200


@pytest.fixture(scope="module")
def serve_inputs():
    """Simulated input files, plus one-shot CLI reference bytes."""
    root = Path(tempfile.mkdtemp(prefix="gsnp-serve-test-"))
    from repro.align.records import AlignmentBatch
    from repro.formats.fasta import write_fasta
    from repro.formats.prior import write_prior
    from repro.formats.soap import write_soap
    from repro.seqsim.datasets import DatasetSpec, generate_dataset

    ds = generate_dataset(DatasetSpec(
        name="chrServe", n_sites=SITES, depth=8.0, coverage=0.9,
        read_len=60, seed=11,
    ))
    fasta, soap, prior = (
        str(root / "d.fa"), str(root / "d.soap"), str(root / "d.prior")
    )
    write_fasta(fasta, [ds.reference])
    write_soap(soap, AlignmentBatch.from_read_set(ds.reads))
    write_prior(prior, ds.reference.name, ds.prior)
    ref = root / "ref.cns"
    assert main_call([
        fasta, soap, "--prior", prior,
        "--window", str(WINDOW), "-o", str(ref),
    ]) == 0
    yield {
        "root": root, "fasta": fasta, "soap": soap, "prior": prior,
        "ref_bytes": ref.read_bytes(),
    }
    shutil.rmtree(root, ignore_errors=True)


def _spec(inputs, output=None, **kwargs) -> JobSpec:
    return JobSpec(
        fasta=inputs["fasta"], soap=inputs["soap"], prior=inputs["prior"],
        window=WINDOW, output=output, **kwargs,
    )


@pytest.fixture
def server_factory():
    """Build in-process daemons on short temp sockets; cleans up after."""
    servers, dirs = [], []

    def make(**overrides):
        root = Path(tempfile.mkdtemp(prefix="gsnp-srv-"))
        dirs.append(root)
        cfg = dict(
            socket_path=str(root / "s.sock"),
            state_dir=str(root / "state"),
            workers=1,
            max_queued=16,
        )
        cfg.update(overrides)
        server = GsnpServer(ServeConfig(**cfg))
        server.start()
        assert wait_for_server(cfg["socket_path"], timeout=10.0)
        servers.append(server)
        return server, ServeClient(cfg["socket_path"])

    yield make
    for server in servers:
        server.shutdown(drain=False)
        server.close()
    release_resident()
    for root in dirs:
        shutil.rmtree(root, ignore_errors=True)


class TestJobSpecApi:
    def test_cli_to_spec_to_wire_roundtrip(self):
        p = argparse.ArgumentParser()
        JobSpec.add_cli_args(p)
        args = p.parse_args([
            "a.fa", "a.soap", "--prior", "a.prior", "--engine", "gsnp_cpu",
            "--window", "1000", "--workers", "3", "--shard-size", "500",
            "--no-prefetch", "--no-cache", "--fusion", "--megabatch", "4",
            "--compressed", "--min-quality", "20", "--variant", "optimized",
        ])
        spec = JobSpec.from_cli_args(args)
        assert spec.engine == "gsnp_cpu"
        assert spec.window == 1000
        assert spec.workers == 3 and spec.shard_size == 500
        assert spec.prefetch is False and spec.cache is False
        assert spec.fusion is True and spec.megabatch == 4
        assert spec.compressed is True and spec.min_quality == 20
        assert JobSpec.from_wire(spec.to_wire()) == spec

    def test_wire_faults_roundtrip(self):
        plan = FaultPlan(
            (FaultSpec(site="exec.shard.slow", kind="slow", key=1,
                       times=2, arg=0.5),),
            seed=7,
        )
        spec = JobSpec(fasta="a", soap="b", faults=plan)
        back = JobSpec.from_wire(spec.to_wire())
        # FaultPlan has no __eq__; compare the wire forms and contents.
        assert back.to_wire() == spec.to_wire()
        assert back.faults.specs == plan.specs
        assert back.faults.seed == plan.seed

    def test_wire_rejects_unknown_fields_and_versions(self):
        wire = JobSpec().to_wire()
        with pytest.raises(ValueError, match="unknown JobSpec field"):
            JobSpec.from_wire({**wire, "windw": 5})
        with pytest.raises(ValueError, match="wire version"):
            JobSpec.from_wire({**wire, "version": 99})

    def test_validate_rejects_incoherent_specs(self):
        with pytest.raises(ValueError, match="journal"):
            JobSpec(resume=True).validate()
        with pytest.raises(ValueError, match="sanitize"):
            JobSpec(sanitize=True, workers=2).validate()
        with pytest.raises(ValueError, match="workers"):
            JobSpec(workers=0).validate()
        with pytest.raises(ValueError, match="inputs"):
            JobSpec().validate(require_inputs=True)

    def test_normalized_gives_serial_journal_shards(self):
        spec = JobSpec(window=512, journal="j").normalized()
        assert spec.shard_size == 512
        assert JobSpec(window=512).normalized().shard_size is None


class TestDeprecationShim:
    def test_create_pipeline_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="spec=JobSpec"):
            pipe = create_pipeline("gsnp", window_size=512)
        assert pipe.window_size == 512

    def test_create_pipeline_spec_plus_legacy_is_an_error(self):
        with pytest.raises(ValueError, match="does not combine"):
            create_pipeline(spec=JobSpec(), window_size=512)

    def test_execute_legacy_kwargs_warn(self, small_dataset):
        with pytest.warns(DeprecationWarning, match="spec=JobSpec"):
            res = execute(small_dataset, "gsnp", window_size=512, workers=2)
        assert res.table.n_sites == small_dataset.n_sites

    def test_unexposed_toggle_warns_instead_of_silent_drop(self):
        with pytest.warns(RuntimeWarning, match="does not expose"):
            create_pipeline(spec=JobSpec(engine="soapsnp", fusion=True))


class TestLintLegacyKwargs:
    def test_flags_legacy_call_sites(self):
        src = (
            "pipe = create_pipeline('gsnp', window_size=512, cache=False)\n"
            "cfg = ExecConfig(workers=4, journal_dir='j')\n"
            "res = execute(ds, 'gsnp', workers=2)\n"
        )
        diags = [d for d in lint_source(src) if d.rule == "GSNP108"]
        assert len(diags) == 3

    def test_spec_call_sites_are_clean(self):
        src = (
            "pipe = create_pipeline(spec=JobSpec(window=512))\n"
            "res = execute(ds, spec=spec, resident=True)\n"
        )
        assert not [d for d in lint_source(src) if d.rule == "GSNP108"]

    def test_suppression_comment(self):
        src = (
            "cfg = ExecConfig(workers=4)"
            "  # gsnp-lint: disable=GSNP108\n"
        )
        assert not [d for d in lint_source(src) if d.rule == "GSNP108"]


class TestServeParity:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_concurrent_jobs_match_one_shot_cli(
        self, serve_inputs, server_factory, n_jobs
    ):
        server, client = server_factory(workers=max(2, n_jobs))
        root = serve_inputs["root"]
        outs = [root / f"par-{n_jobs}-{i}.cns" for i in range(n_jobs)]
        results = [None] * n_jobs

        def run(i):
            results[i] = client.submit(
                _spec(serve_inputs, output=str(outs[i])), tenant=f"t{i}"
            )

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(n_jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        for i, r in enumerate(results):
            assert r is not None and r.status == "done", (i, r and r.error)
            assert outs[i].read_bytes() == serve_inputs["ref_bytes"]

    def test_inline_job_streams_identical_bytes(
        self, serve_inputs, server_factory
    ):
        server, client = server_factory()
        r = client.submit(_spec(serve_inputs))
        assert r.status == "done"
        assert r.output == serve_inputs["ref_bytes"]
        assert "sites" in r.summary


class TestResidentCaches:
    def test_repeated_job_hits_calibration_and_tables(
        self, serve_inputs, server_factory
    ):
        server, client = server_factory(workers=1)
        out = serve_inputs["root"] / "cache.cns"
        first = client.submit(_spec(serve_inputs, output=str(out)))
        assert first.status == "done"
        stats0 = client.stats()
        second = client.submit(_spec(serve_inputs, output=str(out)))
        assert second.status == "done"
        stats1 = client.stats()
        cal0 = stats0["runner"]["calibration"]
        cal1 = stats1["runner"]["calibration"]
        assert cal1["hits"] > cal0["hits"]
        assert cal1["misses"] == cal0["misses"]
        assert stats1["runner"]["datasets"]["hits"] > 0
        # Same worker thread, same resident pipeline: the repeat job's
        # score-table upload is a residency hit, not a re-upload.
        assert (
            stats1["resident"]["table_hits"]
            > stats0["resident"]["table_hits"]
        )
        assert out.read_bytes() == serve_inputs["ref_bytes"]


class TestAdmission:
    def test_tenant_quota_rejects_at_submit(
        self, serve_inputs, server_factory
    ):
        server, client = server_factory(workers=1, tenant_quota=1)
        stall = FaultPlan((FaultSpec(
            site="exec.shard.slow", kind="slow", key=0, times=1, arg=0.75,
        ),))
        out1 = serve_inputs["root"] / "q1.cns"
        r1 = client.submit(
            _spec(serve_inputs, output=str(out1), faults=stall),
            tenant="alpha", wait=False,
        )
        assert r1.status == "accepted"
        over = client.submit(_spec(serve_inputs), tenant="alpha", wait=False)
        assert over.status == "rejected" and over.code == "quota"
        other = client.submit(_spec(serve_inputs), tenant="beta")
        assert other.status == "done"
        done = client.wait(r1.job_id)
        assert done.status == "done"
        assert out1.read_bytes() == serve_inputs["ref_bytes"]
        assert client.stats()["scheduler"]["rejected"] == 1

    def test_invalid_specs_rejected_with_code(
        self, serve_inputs, server_factory
    ):
        server, client = server_factory()
        missing = client.submit(JobSpec())
        assert missing.status == "rejected" and missing.code == "invalid"
        journaled = client.submit(_spec(serve_inputs, journal="/tmp/x"))
        assert journaled.status == "rejected"
        assert journaled.code == "invalid"
        assert "daemon" in journaled.error


class TestCrashRecovery:
    def _daemon_argv(self, sock, state):
        code = (
            "import sys; from repro.cli import main_serve; "
            f"sys.exit(main_serve(['--socket', {str(sock)!r}, "
            f"'--state-dir', {str(state)!r}, '--workers', '1']))"
        )
        return [sys.executable, "-c", code]

    def _env(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_kill_mid_job_restart_resumes_bitwise(self, serve_inputs):
        root = Path(tempfile.mkdtemp(prefix="gsnp-kill-"))
        sock, state = root / "s.sock", root / "state"
        out = root / "recovered.cns"
        proc = subprocess.Popen(
            self._daemon_argv(sock, state), env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            assert wait_for_server(str(sock), timeout=30.0)
            client = ServeClient(str(sock))
            # Stall shard 1 long enough to guarantee the kill lands
            # mid-job, after shard 0 has committed to the journal.
            stall = FaultPlan((FaultSpec(
                site="exec.shard.slow", kind="slow", key=1, times=1, arg=3.0,
            ),))
            r = client.submit(
                _spec(serve_inputs, output=str(out), faults=stall),
                wait=False,
            )
            assert r.status == "accepted"
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if list(state.glob("journal/**/shard-*.pkl")):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("no shard committed before the kill")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            assert not out.exists()  # output is atomic: all or nothing

            proc = subprocess.Popen(
                self._daemon_argv(sock, state), env=self._env(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            assert wait_for_server(str(sock), timeout=30.0)
            client = ServeClient(str(sock))
            stats = client.stats()
            assert r.job_id in stats["recovered_jobs"]
            done = client.wait(r.job_id)
            assert done.status == "done", done.error
            assert done.events[-1]["recovered"] is True
            assert out.read_bytes() == serve_inputs["ref_bytes"]
            # The calibration store survived the kill: the resumed run
            # skipped the input pass via a disk hit.
            cal = client.stats()["runner"]["calibration"]
            assert cal["hits_disk"] >= 1
            client.shutdown(drain=True)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            shutil.rmtree(root, ignore_errors=True)


class TestServeStats:
    def test_ping_and_stats_shape(self, serve_inputs, server_factory):
        server, client = server_factory()
        pong = client.ping()
        assert pong["event"] == "pong" and pong["accepting"] is True
        stats = client.stats()
        for key in ("scheduler", "runner", "resident", "recovered_jobs"):
            assert key in stats
        assert stats["scheduler"]["submitted"] == 0
        assert resident_stats()["pipelines"] >= 0
