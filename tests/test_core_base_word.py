"""Sparse base_word representation: packing, canonical keys, segments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import CANONICAL_SORT_MASK
from repro.core.base_word import (
    canonical_keys,
    decode_keys,
    extract_words,
    pack_words,
    words_from_observations,
)


class TestPackExtract:
    def test_paper_example(self):
        # Figure 3: base=1, score=16, coord=10, strand=1.
        w = pack_words(
            np.array([1]), np.array([16]), np.array([10]), np.array([1])
        )
        assert w[0] == (1 << 15 | 16 << 9 | 10 << 1 | 1)

    def test_roundtrip_corners(self):
        base = np.array([0, 3, 1, 2])
        score = np.array([0, 63, 17, 40])
        coord = np.array([0, 255, 99, 1])
        strand = np.array([0, 1, 1, 0])
        b, s, c, t = extract_words(pack_words(base, score, coord, strand))
        assert np.array_equal(b, base)
        assert np.array_equal(s, score)
        assert np.array_equal(c, coord)
        assert np.array_equal(t, strand)

    @given(
        st.integers(0, 3), st.integers(0, 63), st.integers(0, 255),
        st.integers(0, 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, base, score, coord, strand):
        w = pack_words(
            np.array([base]), np.array([score]), np.array([coord]),
            np.array([strand]),
        )
        b, s, c, t = extract_words(w)
        assert (b[0], s[0], c[0], t[0]) == (base, score, coord, strand)

    def test_dtype_uint32(self):
        w = pack_words(np.array([3]), np.array([63]), np.array([255]),
                       np.array([1]))
        assert w.dtype == np.uint32


class TestCanonicalKeys:
    def test_involution(self, rng):
        words = rng.integers(0, 1 << 17, 1000).astype(np.uint32)
        assert np.array_equal(decode_keys(canonical_keys(words)), words)

    def test_ascending_key_sort_gives_canonical_order(self, rng):
        n = 2000
        base = rng.integers(0, 4, n)
        score = rng.integers(0, 64, n)
        coord = rng.integers(0, 256, n)
        strand = rng.integers(0, 2, n)
        words = pack_words(base, score, coord, strand)
        order = np.argsort(canonical_keys(words), kind="stable")
        b, s, c, t = (base[order], score[order], coord[order], strand[order])
        # Canonical: base asc, score DESC, coord asc, strand asc.
        key = (
            b.astype(np.int64) << 20
            | (63 - s.astype(np.int64)) << 12
            | c.astype(np.int64) << 2
            | t.astype(np.int64)
        )
        assert np.all(np.diff(key) >= 0)

    def test_mask_is_score_field(self):
        assert CANONICAL_SORT_MASK == 0x3F << 9


class TestWordsFromObservations:
    def test_segments_match_counted(self, small_obs):
        words, offsets = words_from_observations(small_obs)
        assert words.size == int(small_obs.counted.sum())
        assert offsets[-1] == words.size
        assert offsets.size == small_obs.n_sites + 1

    def test_arrival_order_differs_from_canonical(self, small_obs):
        arr, off = words_from_observations(small_obs, arrival_order=True)
        can, off2 = words_from_observations(small_obs, arrival_order=False)
        assert np.array_equal(off, off2)
        assert not np.array_equal(arr, can)  # the sort has work to do

    def test_same_multiset_per_site(self, small_obs):
        arr, off = words_from_observations(small_obs, arrival_order=True)
        can, _ = words_from_observations(small_obs, arrival_order=False)
        for s in range(0, small_obs.n_sites, 157):
            a = np.sort(arr[off[s] : off[s + 1]])
            c = np.sort(can[off[s] : off[s + 1]])
            assert np.array_equal(a, c)

    def test_canonical_flag_yields_sorted_keys(self, small_obs):
        can, off = words_from_observations(small_obs, arrival_order=False)
        keys = canonical_keys(can)
        for s in range(0, small_obs.n_sites, 211):
            seg = keys[off[s] : off[s + 1]]
            assert np.all(np.diff(seg.astype(np.int64)) >= 0)
