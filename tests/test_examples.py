"""Smoke tests: the shipped examples must run end to end.

The heavyweight sweeps (whole-genome, aligner) are exercised with reduced
arguments; the rest run as shipped.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "variant calls" in out
        assert "precision=" in out

    def test_compressed_results_workflow(self):
        out = _run("compressed_results_workflow.py")
        assert "sequential scan" in out
        assert "SNP rows" in out

    def test_gpu_kernel_profiling(self):
        out = _run("gpu_kernel_profiling.py")
        assert "bitwise identical" in out
        assert "optimized" in out

    def test_whole_genome_reduced(self):
        out = _run("whole_genome_calling.py", "--chromosomes", "2",
                   "--fraction", "0.03")
        assert "modeled full-scale totals" in out
        assert "NO!" not in out

    def test_streaming_bigfile(self):
        out = _run("streaming_bigfile.py")
        assert "streamed" in out
        assert "SNP rows" in out

    def test_examples_exist_and_documented(self):
        scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
        assert len(scripts) >= 3
        for p in EXAMPLES.glob("*.py"):
            head = p.read_text().split("\n", 3)
            assert '"""' in head[1] or '"""' in head[2], p.name
