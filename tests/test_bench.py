"""Bench infrastructure: phase records, scaling, extrapolation, reports."""

import numpy as np
import pytest

from repro.bench.events import COMPONENTS, PhaseRecord, RunProfile
from repro.bench.report import ratio_str
from repro.bench.scale import TABLE1_PAPER, TABLE4_PAPER, extrapolate
from repro.gpusim.costmodel import CpuEvents, DiskEvents
from repro.gpusim.counters import KernelCounters
from repro.seqsim.datasets import CH21_SPEC


class TestPhaseRecord:
    def test_modeled_time_additive(self):
        rec = PhaseRecord(name="x")
        rec.cpu.seq_read_bytes = 4_200_000_000  # 1s
        rec.disk.write_bytes = 90_000_000  # 1s
        assert rec.modeled_time() == pytest.approx(2.0, rel=1e-6)

    def test_scaled_multiplies_counts(self):
        rec = PhaseRecord(name="x")
        rec.cpu.instructions = 100
        rec.disk.read_bytes = 7
        rec.transfer_bytes = 3
        rec.gpu.g_load = 11
        rec.gpu.launches = 2
        s = rec.scaled(10)
        assert s.cpu.instructions == 1000
        assert s.disk.read_bytes == 70
        assert s.transfer_bytes == 30
        assert s.gpu.g_load == 110
        # Launches scale too: same window size -> factor-times more windows.
        assert s.gpu.launches == 20

    def test_merge(self):
        a = PhaseRecord(name="x")
        a.cpu.instructions = 5
        b = PhaseRecord(name="x")
        b.cpu.instructions = 7
        b.wall = 1.5
        a.merge(b)
        assert a.cpu.instructions == 12 and a.wall == 1.5

    def test_gpu_time_included_when_launched(self):
        rec = PhaseRecord(name="x")
        rec.gpu.launches = 1
        rec.gpu.g_load = 10**6
        assert rec.modeled_time() > 0


class TestRunProfile:
    def test_phase_created_on_demand(self):
        p = RunProfile(pipeline="t")
        p.phase("likelihood").cpu.instructions = 1
        assert "likelihood" in p.records

    def test_breakdown_ordered_by_components(self):
        p = RunProfile(pipeline="t")
        for c in reversed(COMPONENTS):
            p.phase(c).cpu.instructions = 10**9
        assert list(p.breakdown().keys()) == list(COMPONENTS)

    def test_total_is_sum(self):
        p = RunProfile(pipeline="t")
        p.phase("a").cpu.instructions = 2 * 10**9  # 1s
        p.phase("b").disk.write_bytes = 90 * 10**6  # 1s
        assert p.total_modeled() == pytest.approx(2.0, rel=1e-6)


class TestExtrapolation:
    def test_scaling_linear(self):
        p = RunProfile(pipeline="t")
        p.phase("likelihood").cpu.seq_read_bytes = 4_200_000
        fs = extrapolate(p, CH21_SPEC)  # factor 1000
        assert fs.components["likelihood"] == pytest.approx(1.0, rel=1e-3)
        assert fs.scale_factor == 1000

    def test_paper_tables_complete(self):
        for t in (TABLE1_PAPER, TABLE4_PAPER):
            for ds in ("ch1-sim", "ch21-sim"):
                for c in COMPONENTS:
                    assert c in t[ds]
                assert "total" in t[ds]

    def test_paper_speedup_is_about_42_to_50(self):
        for ds in ("ch1-sim", "ch21-sim"):
            sp = TABLE1_PAPER[ds]["total"] / TABLE4_PAPER[ds]["total"]
            assert 40 < sp < 55


class TestReport:
    def test_ratio_str(self):
        assert ratio_str(2.0, 1.0) == "2.00x"
        assert ratio_str(0.0, 1.0) == "n/a"


class TestEndToEndCalibration:
    """Full-scale modeled totals must land near the paper's Tables I/IV —
    the quantitative core of the reproduction."""

    @pytest.fixture(scope="class")
    def ch21(self):
        from repro.bench.harness import (
            bench_spec,
            gsnp_result,
            soapsnp_result,
        )

        spec = bench_spec("ch21-sim", 0.25)
        soap = extrapolate(
            soapsnp_result("ch21-sim", 0.25).profile, spec
        )
        gsnp = extrapolate(
            gsnp_result("ch21-sim", "gpu", 0.25).profile, spec
        )
        return soap, gsnp

    def test_soapsnp_total_within_2x(self, ch21):
        soap, _ = ch21
        paper = TABLE1_PAPER["ch21-sim"]["total"]
        assert 0.5 < soap.total / paper < 2.0

    def test_gsnp_total_within_2x(self, ch21):
        _, gsnp = ch21
        paper = TABLE4_PAPER["ch21-sim"]["total"]
        assert 0.5 < gsnp.total / paper < 2.0

    def test_speedup_shape(self, ch21):
        """Paper: ~50x end-to-end for Ch.21 — we require >25x."""
        soap, gsnp = ch21
        assert soap.total / gsnp.total > 25

    def test_likelihood_dominates_soapsnp(self, ch21):
        soap, _ = ch21
        assert soap.components["likelihood"] == max(soap.components.values())

    def test_recycle_negligible_in_gsnp(self, ch21):
        _, gsnp = ch21
        assert gsnp.components["recycle"] < 0.05 * gsnp.total
