"""Runtime kernel sanitizer: races, hazards, uninit reads, leaks.

Each test launches a deliberately broken kernel under
``Device(sanitize=True)`` and checks the violation is caught with an
actionable, lane-addressed report — plus the negative space: the same
kernels pass once fixed, and a full end-to-end detector run is bitwise
identical with the sanitizer on.
"""

import numpy as np
import pytest

from repro.analyze import SanitizerIssue
from repro.core.pipeline import GsnpPipeline
from repro.errors import DeviceError, SanitizerError
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import Device


@pytest.fixture
def dev():
    return Device(sanitize=True)


def _launch(device, kernel, n, *args, **kw):
    return device.launch(kernel, n, *args, **kw)


class TestWriteWriteRace:
    def test_duplicate_indices_in_one_gstore(self, dev):
        out = dev.alloc(8, np.int64, "out")

        def racy_kernel(ctx, out):
            # Every lane stores to slot tid // 2: lanes 0,1 collide, etc.
            ctx.gstore(out, ctx.tid // 2, ctx.tid, active=None)

        with pytest.raises(SanitizerError) as ei:
            _launch(dev, racy_kernel, 8, out)
        msg = str(ei.value)
        assert "write-write-race" in msg
        assert "racy_kernel" in msg
        # The report names both colliding lanes of a sample element.
        assert "lane" in msg and "warp" in msg
        assert "gatomic_add" in msg  # actionable suggestion

    def test_race_report_spans_warps(self, dev):
        n = 64  # two warps
        out = dev.alloc(n, np.int64, "out")

        def cross_warp_kernel(ctx, out):
            # Lane i of warp 0 collides with lane i of warp 1.
            ctx.gstore(out, ctx.tid % 32, ctx.tid, active=None)

        with pytest.raises(SanitizerError) as ei:
            _launch(dev, cross_warp_kernel, n, out)
        assert "warp 0" in str(ei.value) and "warp 1" in str(ei.value)

    def test_conflict_across_gstore_calls(self, dev):
        out = dev.alloc(8, np.int64, "out")

        def double_store_kernel(ctx, out):
            ctx.gstore(out, ctx.tid, ctx.tid, active=None)
            # Second store hits slots owned by *other* lanes: unsynchronized
            # WW conflict even though each individual call is race-free.
            ctx.gstore(out, (ctx.tid + 1) % 8, ctx.tid, active=None)

        with pytest.raises(SanitizerError, match="write-write"):
            _launch(dev, double_store_kernel, 8, out)

    def test_disjoint_stores_pass(self, dev):
        out = dev.alloc(16, np.int64, "out")

        def clean_kernel(ctx, out):
            ctx.gstore(out, ctx.tid, ctx.tid, active=None)
            ctx.gstore(out, ctx.tid + 8, ctx.tid, active=ctx.tid < 8)

        _launch(dev, clean_kernel, 8, out)

    def test_masked_lanes_do_not_race(self, dev):
        out = dev.alloc(8, np.int64, "out")

        def masked_kernel(ctx, out):
            # All lanes target slot 0, but only lane 3 is live.
            ctx.gstore(out, np.zeros_like(ctx.tid), ctx.tid, active=ctx.tid == 3)

        _launch(dev, masked_kernel, 8, out)


class TestRawHazard:
    def test_read_after_other_lanes_write(self, dev):
        buf = dev.alloc(8, np.int64, "buf")

        def hazard_kernel(ctx, buf):
            ctx.gstore(buf, ctx.tid, ctx.tid * 10, active=None)
            # Neighbour exchange without a barrier: lane t reads the slot
            # lane t+1 just wrote.
            ctx.gload(buf, (ctx.tid + 1) % 8, active=None)

        with pytest.raises(SanitizerError) as ei:
            _launch(dev, hazard_kernel, 8, buf)
        msg = str(ei.value)
        assert "raw-hazard" in msg
        assert "syncthreads" in msg  # suggests the fix

    def test_syncthreads_clears_hazard(self, dev):
        buf = dev.alloc(8, np.int64, "buf")

        def fixed_kernel(ctx, buf):
            ctx.gstore(buf, ctx.tid, ctx.tid * 10, active=None)
            ctx.syncthreads()
            ctx.gload(buf, (ctx.tid + 1) % 8, active=None)

        _launch(dev, fixed_kernel, 8, buf)

    def test_own_write_readback_is_fine(self, dev):
        buf = dev.alloc(8, np.int64, "buf")

        def self_kernel(ctx, buf):
            ctx.gstore(buf, ctx.tid, ctx.tid, active=None)
            ctx.gload(buf, ctx.tid, active=None)  # same lane: ordered

        _launch(dev, self_kernel, 8, buf)


class TestMixedStoreAtomic:
    def test_gstore_then_atomic(self, dev):
        out = dev.alloc(8, np.int64, "out")

        def mixed_kernel(ctx, out):
            ctx.gstore(out, ctx.tid, ctx.tid, active=None)
            ctx.gatomic_add(out, ctx.tid, 1, active=None)

        with pytest.raises(SanitizerError, match="mixed-store-atomic"):
            _launch(dev, mixed_kernel, 8, out)

    def test_atomic_then_gstore(self, dev):
        out = dev.alloc(8, np.int64, "out")

        def mixed_kernel(ctx, out):
            ctx.gatomic_add(out, ctx.tid, 1, active=None)
            ctx.gstore(out, ctx.tid, ctx.tid, active=None)

        with pytest.raises(SanitizerError, match="mixed-store-atomic"):
            _launch(dev, mixed_kernel, 8, out)

    def test_atomic_histogram_passes(self, dev):
        hist = dev.alloc(4, np.int64, "hist")

        def hist_kernel(ctx, hist):
            ctx.gatomic_add(hist, ctx.tid % 4, 1, active=None)

        _launch(dev, hist_kernel, 32, hist)
        assert np.array_equal(hist.data, np.full(4, 8))

    def test_mixing_rule_survives_barrier(self, dev):
        out = dev.alloc(8, np.int64, "out")

        def mixed_kernel(ctx, out):
            ctx.gstore(out, ctx.tid, ctx.tid, active=None)
            ctx.syncthreads()  # establishes ordering but not access mode
            ctx.gatomic_add(out, ctx.tid, 1, active=None)

        with pytest.raises(SanitizerError, match="mixed-store-atomic"):
            _launch(dev, mixed_kernel, 8, out)


class TestUninitRead:
    def test_read_of_raw_alloc(self, dev):
        raw = dev.alloc(8, np.int64, "raw", init=False)

        def reader_kernel(ctx, raw):
            ctx.gload(raw, ctx.tid, active=None)

        with pytest.raises(SanitizerError) as ei:
            _launch(dev, reader_kernel, 8, raw)
        msg = str(ei.value)
        assert "uninit-read" in msg and "'raw'" in msg
        assert "element 0" in msg  # points at a concrete element

    def test_partial_coverage_detected(self, dev):
        raw = dev.alloc(8, np.int64, "raw", init=False)

        def half_kernel(ctx, raw):
            ctx.gstore(raw, ctx.tid, ctx.tid, active=ctx.tid < 4)

        def full_reader_kernel(ctx, raw):
            ctx.gload(raw, ctx.tid, active=None)

        _launch(dev, half_kernel, 8, raw)
        with pytest.raises(SanitizerError, match="uninit-read"):
            _launch(dev, full_reader_kernel, 8, raw)

    def test_zeroed_alloc_reads_clean(self, dev):
        buf = dev.alloc(8, np.int64, "buf")  # init=True default

        def reader_kernel(ctx, buf):
            ctx.gload(buf, ctx.tid, active=None)

        _launch(dev, reader_kernel, 8, buf)

    def test_host_staging_initializes(self, dev):
        raw = dev.alloc(8, np.int64, "raw", init=False)
        raw.data[:] = 5  # host staging marks the array initialized

        def reader_kernel(ctx, raw):
            ctx.gload(raw, ctx.tid, active=None)

        _launch(dev, reader_kernel, 8, raw)

    def test_sanitized_results_match_plain(self):
        """The deterministic-zeros guarantee: init=False changes reporting,
        never values."""
        plain, san = Device(), Device(sanitize=True)
        outs = []
        for d in (plain, san):
            src = d.to_device(np.arange(8, dtype=np.int64), "src")
            dst = d.alloc(8, np.int64, "dst", init=False)

            def copy_kernel(ctx, src, dst):
                v = ctx.gload(src, ctx.tid, active=None)
                ctx.gstore(dst, ctx.tid, v * 3, active=None)

            d.launch(copy_kernel, 8, src, dst)
            outs.append(dst.data.copy())
        assert np.array_equal(outs[0], outs[1])


class TestTeardown:
    def test_unfreed_and_never_read_reported(self, dev):
        leaked = dev.alloc(8, np.int64, "leaked")
        dead = dev.alloc(8, np.int64, "dead")

        def writer_kernel(ctx, dead):
            ctx.gstore(dead, ctx.tid, ctx.tid, active=None)

        _launch(dev, writer_kernel, 8, dead)
        dev.free(dead)
        issues = dev.sanitize_teardown()
        kinds = {(i.kind, i.array) for i in issues}
        assert ("leak-unfreed", "leaked") in kinds
        assert ("leak-never-read", "dead") in kinds
        dev.free(leaked)

    def test_strict_raises_with_issue_list(self, dev):
        dev.alloc(8, np.int64, "leaked")
        with pytest.raises(SanitizerError) as ei:
            dev.sanitize_teardown(strict=True)
        assert all(isinstance(i, SanitizerIssue) for i in ei.value.issues)
        assert any(i.kind == "leak-unfreed" for i in ei.value.issues)

    def test_clean_device_is_clean(self, dev):
        buf = dev.alloc(8, np.int64, "buf")

        def writer_kernel(ctx, buf):
            ctx.gstore(buf, ctx.tid, ctx.tid, active=None)

        _launch(dev, writer_kernel, 8, buf)
        _ = buf.data  # host readback
        dev.free(buf)
        assert dev.sanitize_teardown(strict=True) == []

    def test_mark_consumed_suppresses_never_read(self, dev):
        modeled = dev.alloc(8, np.int64, "modeled")
        modeled.mark_consumed()

        def writer_kernel(ctx, modeled):
            ctx.gstore(modeled, ctx.tid, ctx.tid, active=None)

        _launch(dev, writer_kernel, 8, modeled)
        dev.free(modeled)
        assert dev.sanitize_teardown(strict=True) == []


class TestClampVsMask:
    """The satellite fix: a clamped gather keeps out-of-range lanes live
    (wasting transactions and hiding bugs); masking them is both cheaper
    and sanitizer-clean."""

    def test_clamped_gather_reads_uninit_tail(self, dev):
        src = dev.alloc(8, np.int64, "src", init=False)

        def stage_kernel(ctx, src):
            ctx.gstore(src, ctx.tid, ctx.tid, active=ctx.tid < 6)

        def clamped_kernel(ctx, src):
            # Lanes 6..7 clamp onto the last element instead of going
            # inactive — the pattern the likelihood kernel used to have.
            idx = np.minimum(ctx.tid, src.size - 1)
            ctx.gload(src, idx, active=None)

        def masked_kernel(ctx, src):
            ctx.gload(src, ctx.tid, active=ctx.tid < 6)

        _launch(dev, stage_kernel, 8, src)
        with pytest.raises(SanitizerError, match="uninit-read"):
            _launch(dev, clamped_kernel, 8, src)
        _launch(dev, masked_kernel, 8, src)  # masked version is clean


class TestCountersMergeGuard:
    def test_mismatched_num_sms_raises(self):
        a = KernelCounters(name="k", num_sms=14)
        a.launches = 1
        a.g_load = 10
        b = KernelCounters(name="k", num_sms=16)
        b.launches = 1
        with pytest.raises(DeviceError, match="num_sms"):
            a.merge(b)

    def test_empty_accumulator_adopts_spec(self):
        a = KernelCounters(name="k", num_sms=14)
        b = KernelCounters(name="k", num_sms=16)
        b.launches = 1
        b.g_load = 4
        a.merge(b)
        assert a.num_sms == 16
        assert a.g_load == 4

    def test_empty_other_is_ignored(self):
        a = KernelCounters(name="k", num_sms=14)
        a.launches = 1
        a.merge(KernelCounters(name="k", num_sms=16))
        assert a.num_sms == 14


class TestEndToEnd:
    def test_pipeline_bitwise_identical_under_sanitizer(self, small_dataset):
        plain = GsnpPipeline(window_size=2000, mode="gpu").run(small_dataset)
        dev = Device(sanitize=True)
        san = GsnpPipeline(window_size=2000, mode="gpu", device=dev).run(
            small_dataset
        )
        assert san.table.equals(plain.table)
        assert dev.sanitize_teardown(strict=True) == []

    def test_counters_identical_under_sanitizer(self, small_dataset):
        dev_plain, dev_san = Device(), Device(sanitize=True)
        GsnpPipeline(window_size=2000, mode="gpu", device=dev_plain).run(
            small_dataset
        )
        GsnpPipeline(window_size=2000, mode="gpu", device=dev_san).run(
            small_dataset
        )
        plain_counts = {
            name: (k.launches, k.g_load, k.g_store, k.inst_warp, k.c_load)
            for name, k in dev_plain.counters.entries.items()
        }
        san_counts = {
            name: (k.launches, k.g_load, k.g_store, k.inst_warp, k.c_load)
            for name, k in dev_san.counters.entries.items()
        }
        assert plain_counts == san_counts

    def test_detector_sanitize_flag(self, small_dataset):
        from repro.core.detector import GsnpDetector

        det = GsnpDetector(engine="gsnp", window_size=2000, sanitize=True)
        plain = GsnpDetector(engine="gsnp", window_size=2000)
        assert det.run(small_dataset).table.equals(
            plain.run(small_dataset).table
        )

    def test_detector_sanitize_rejects_sharded(self, small_dataset):
        from repro.core.detector import GsnpDetector

        det = GsnpDetector(engine="gsnp", workers=2, sanitize=True)
        with pytest.raises(ValueError, match="serial"):
            det.run(small_dataset)
