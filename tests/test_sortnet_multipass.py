"""Multipass sorting: the three Figure-7b strategies and the batch primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import BASE_WORD_SENTINEL
from repro.errors import KernelError
from repro.gpusim.device import Device
from repro.sortnet.batch import batch_sort, pad_rows
from repro.sortnet.cpu_sort import (
    ParallelCpuSortModel,
    quicksort_batch,
    quicksort_per_site,
)
from repro.sortnet.multipass import (
    multipass_sort,
    nonequal_sort,
    singlepass_sort,
    size_class_of,
)


def _random_segments(rng, n_sites=300, max_len=120):
    lengths = rng.integers(0, max_len, n_sites)
    # Realistic skew: most sites small.
    small = rng.random(n_sites) < 0.7
    lengths[small] = rng.integers(0, 12, int(small.sum()))
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    words = rng.integers(0, 2**17, offsets[-1]).astype(np.uint32)
    return words, offsets


def _check_all_sorted(out, words, offsets):
    for i in range(offsets.size - 1):
        s, e = offsets[i], offsets[i + 1]
        assert np.array_equal(out[s:e], np.sort(words[s:e]))


class TestSizeClasses:
    def test_paper_buckets(self):
        lengths = np.array([0, 1, 2, 8, 9, 16, 17, 32, 33, 64, 65, 1000])
        classes = size_class_of(lengths)
        assert list(classes) == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5]


class TestStrategiesAgree:
    @pytest.mark.parametrize(
        "fn", [multipass_sort, singlepass_sort, nonequal_sort]
    )
    def test_sorts_everything_cpu(self, fn, rng):
        words, offsets = _random_segments(rng)
        out, stats = fn(words, offsets)
        _check_all_sorted(out, words, offsets)
        assert stats.real_elements == words.size

    @pytest.mark.parametrize(
        "fn", [multipass_sort, singlepass_sort, nonequal_sort]
    )
    def test_sorts_everything_device(self, fn, rng):
        words, offsets = _random_segments(rng, n_sites=80)
        out, _ = fn(words, offsets, device=Device())
        _check_all_sorted(out, words, offsets)

    def test_strategies_identical_results(self, rng):
        words, offsets = _random_segments(rng)
        outs = [fn(words, offsets)[0]
                for fn in (multipass_sort, singlepass_sort, nonequal_sort)]
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])

    def test_multipass_pads_less_than_singlepass(self, rng):
        words, offsets = _random_segments(rng, n_sites=1000)
        _, mp = multipass_sort(words, offsets)
        _, sp = singlepass_sort(words, offsets)
        assert mp.padded_elements < sp.padded_elements
        assert mp.padding_ratio < sp.padding_ratio

    def test_multipass_fewer_compare_exchanges_than_nonequal(self, rng):
        words, offsets = _random_segments(rng, n_sites=1000)
        _, mp = multipass_sort(words, offsets)
        _, ne = nonequal_sort(words, offsets)
        assert mp.compare_exchanges <= ne.compare_exchanges

    def test_multipass_runs_at_most_six_passes(self, rng):
        words, offsets = _random_segments(rng, n_sites=500)
        _, stats = multipass_sort(words, offsets)
        assert stats.passes <= 6

    def test_empty_input(self):
        words = np.empty(0, dtype=np.uint32)
        offsets = np.zeros(1, dtype=np.int64)
        for fn in (multipass_sort, singlepass_sort, nonequal_sort):
            out, stats = fn(words, offsets)
            assert out.size == 0

    def test_all_singletons_no_work(self):
        words = np.arange(50, dtype=np.uint32)
        offsets = np.arange(51, dtype=np.int64)
        out, stats = multipass_sort(words, offsets)
        assert np.array_equal(out, words)
        assert stats.compare_exchanges == 0

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_multipass_sorts(self, seed):
        r = np.random.default_rng(seed)
        words, offsets = _random_segments(r, n_sites=60, max_len=70)
        out, _ = multipass_sort(words, offsets)
        _check_all_sorted(out, words, offsets)


class TestPadRows:
    def test_gathers_and_pads(self):
        rows = np.array([5, 4, 9, 8, 7], dtype=np.uint32)
        lengths = np.array([2, 3])
        offsets = np.array([0, 2])
        batch = pad_rows(rows, lengths, 4, BASE_WORD_SENTINEL, offsets)
        assert np.array_equal(batch[0, :2], [5, 4])
        assert np.all(batch[0, 2:] == BASE_WORD_SENTINEL)
        assert np.array_equal(batch[1, :3], [9, 8, 7])

    def test_too_long_row_rejected(self):
        with pytest.raises(KernelError):
            pad_rows(
                np.arange(8, dtype=np.uint32),
                np.array([8]),
                4,
                BASE_WORD_SENTINEL,
                np.array([0]),
            )

    def test_empty(self):
        batch = pad_rows(
            np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.int64),
            4, BASE_WORD_SENTINEL, np.empty(0, dtype=np.int64),
        )
        assert batch.shape == (0, 4)


class TestBatchSortDevice:
    def test_shared_memory_counters(self, rng):
        device = Device()
        batch = rng.integers(0, 100, (64, 32)).astype(np.uint32)
        batch_sort(device, batch, name="bs")
        c = device.counters.get("bs")
        assert c.s_load_warp > 0 and c.s_store_warp > 0
        assert c.g_load > 0 and c.g_store > 0

    def test_rejects_non_pow2(self, rng):
        with pytest.raises(KernelError):
            batch_sort(Device(), rng.integers(0, 9, (4, 6)).astype(np.uint32))

    def test_width_one_copy(self):
        device = Device()
        batch = np.array([[3], [1]], dtype=np.uint32)
        out = batch_sort(device, batch)
        assert np.array_equal(out, batch)


class TestCpuSort:
    def test_quicksort_per_site(self, rng):
        words, offsets = _random_segments(rng, n_sites=100)
        out = quicksort_per_site(words, offsets)
        _check_all_sorted(out, words, offsets)

    def test_quicksort_batch(self, rng):
        batch = rng.integers(0, 50, (20, 16)).astype(np.uint32)
        lengths = rng.integers(0, 17, 20)
        out = quicksort_batch(batch, lengths)
        for i in range(20):
            m = lengths[i]
            assert np.array_equal(out[i, :m], np.sort(batch[i, :m]))

    def test_parallel_model_throughput_decreases_with_size(self):
        m = ParallelCpuSortModel()
        assert m.throughput(1000, 8) > m.throughput(1000, 256)

    def test_parallel_model_scales_with_threads(self):
        fast = ParallelCpuSortModel(threads=16)
        slow = ParallelCpuSortModel(threads=1)
        assert fast.time(1000, 64) < slow.time(1000, 64)
