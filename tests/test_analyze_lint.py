"""gsnp-lint: static enforcement of the SIMT kernel discipline.

Seeds each rule's violation into synthetic kernel source and checks the
diagnostic lands on the right file:line with the right rule id — plus
kernel discovery, suppression comments, rule filtering, the CLI exit
codes, and the acceptance gate that the repo's own kernels lint clean.
"""

import textwrap

import pytest

from repro.analyze import Diagnostic, RULES, lint_paths, lint_source
from repro.cli import main_lint


def _lint(src):
    return lint_source(textwrap.dedent(src), "test.py")


class TestKernelDiscovery:
    def test_suffix_named_function_is_a_kernel(self):
        diags = _lint(
            """
            def scatter_kernel(ctx, out):
                x = out.data
            """
        )
        assert [d.rule for d in diags] == ["GSNP101"]

    def test_launch_argument_is_a_kernel(self):
        diags = _lint(
            """
            def body(ctx, out):
                x = out.data

            def run(device, out):
                device.launch(body, 32, out)
            """
        )
        assert [d.rule for d in diags] == ["GSNP101"]
        assert "body" in diags[0].message

    def test_host_code_is_not_linted(self):
        diags = _lint(
            """
            import numpy as np

            def stage(device, host):
                arr = device.to_device(host)
                print(arr.data, np.log(host))
                for x in arr.data:
                    pass
            """
        )
        assert diags == []


class TestRules:
    def test_gsnp101_data_access(self):
        diags = _lint(
            """
            def bad_kernel(ctx, arr):
                v = arr.data[0]
            """
        )
        assert diags[0].rule == "GSNP101"
        assert diags[0].line == 3
        assert "transaction counting" in diags[0].message

    def test_gsnp101_flat_view(self):
        diags = _lint(
            """
            def bad_kernel(ctx, arr):
                v = arr.flat_view()
            """
        )
        assert [d.rule for d in diags] == ["GSNP101"]

    def test_gsnp102_module_log(self):
        diags = _lint(
            """
            import numpy as np

            def bad_kernel(ctx, arr, out):
                v = ctx.gload(arr, ctx.tid)
                w = np.log10(v)
            """
        )
        assert [d.rule for d in diags] == ["GSNP102"]
        assert diags[0].line == 6
        assert "log_table" in diags[0].message

    def test_gsnp102_bare_log(self):
        diags = _lint(
            """
            from math import log

            def bad_kernel(ctx, v):
                return log(v)
            """
        )
        assert [d.rule for d in diags] == ["GSNP102"]

    def test_gsnp103_loop_over_tid(self):
        diags = _lint(
            """
            def bad_kernel(ctx, arr):
                for t in ctx.tid:
                    pass
            """
        )
        assert [d.rule for d in diags] == ["GSNP103"]
        assert diags[0].line == 3

    def test_gsnp103_range_n_threads(self):
        diags = _lint(
            """
            def bad_kernel(ctx, arr):
                for t in range(ctx.n_threads):
                    pass
            """
        )
        assert [d.rule for d in diags] == ["GSNP103"]

    def test_gsnp103_lockstep_width_loop_is_fine(self):
        diags = _lint(
            """
            def good_kernel(ctx, arr, width, lens):
                for j in range(width):
                    active = j < lens
            """
        )
        assert diags == []

    def test_gsnp104_dropped_mask(self):
        diags = _lint(
            """
            def bad_kernel(ctx, out, n):
                active = ctx.tid < n
                v = ctx.gload(out, ctx.tid, active=active)
                ctx.gstore(out, ctx.tid, v)
            """
        )
        assert [d.rule for d in diags] == ["GSNP104"]
        assert diags[0].line == 5
        assert "'active'" in diags[0].message

    def test_gsnp104_explicit_none_suppresses(self):
        diags = _lint(
            """
            def good_kernel(ctx, out, n):
                active = ctx.tid < n
                v = ctx.gload(out, ctx.tid, active=active)
                ctx.gstore(out, ctx.tid, v, active=None)
            """
        )
        assert diags == []

    def test_gsnp104_no_mask_in_scope_is_fine(self):
        diags = _lint(
            """
            def good_kernel(ctx, out):
                ctx.gstore(out, ctx.tid, ctx.tid)
            """
        )
        assert diags == []

    def test_gsnp104_tracks_custom_mask_names(self):
        diags = _lint(
            """
            def bad_kernel(ctx, out, flags, n):
                emit = ctx.tid < n
                v = ctx.gload(flags, ctx.tid, active=emit)
                ctx.gatomic_add(out, v, 1)
            """
        )
        assert [d.rule for d in diags] == ["GSNP104"]
        assert "'emit'" in diags[0].message

    def test_gsnp105_fancy_index(self):
        diags = _lint(
            """
            def bad_kernel(ctx, src, out):
                v = ctx.gload(src, ctx.tid, active=None)
                out[ctx.tid] = v
            """
        )
        assert [d.rule for d in diags] == ["GSNP105"]
        assert diags[0].line == 4
        assert "'out'" in diags[0].message

    def test_gsnp105_annotation_marks_device_array(self):
        diags = _lint(
            """
            def bad_kernel(ctx, table: DeviceArray):
                v = table[0]
            """
        )
        assert [d.rule for d in diags] == ["GSNP105"]

    def test_gsnp105_plain_numpy_param_is_fine(self):
        diags = _lint(
            """
            def good_kernel(ctx, acc, out):
                v = ctx.gload(out, ctx.tid, active=None)
                acc[:, 0] = v
            """
        )
        assert diags == []

    def test_gsnp100_syntax_error(self):
        diags = lint_source("def broken(:\n", "bad.py")
        assert [d.rule for d in diags] == ["GSNP100"]

    def test_five_distinct_rules_in_one_kernel(self):
        diags = _lint(
            """
            import numpy as np

            def awful_kernel(ctx, arr, out, n):
                active = ctx.tid < n
                raw = arr.data
                v = np.log(raw)
                for t in ctx.tid:
                    pass
                ctx.gstore(out, ctx.tid, v)
                out[0] = 1.0
            """
        )
        assert {d.rule for d in diags} == {
            "GSNP101", "GSNP102", "GSNP103", "GSNP104", "GSNP105"
        }
        # Every diagnostic is addressable: real line, 1-based column.
        assert all(d.line > 1 and d.col >= 1 for d in diags)


class TestSuppression:
    def test_line_comment_suppresses_by_id(self):
        diags = _lint(
            """
            def ok_kernel(ctx, arr):
                v = arr.data  # gsnp-lint: disable=GSNP101
            """
        )
        assert diags == []

    def test_line_comment_suppresses_by_name(self):
        diags = _lint(
            """
            def ok_kernel(ctx, arr):
                v = arr.data  # gsnp-lint: disable=kernel-data-access
            """
        )
        assert diags == []

    def test_suppression_is_rule_specific(self):
        diags = _lint(
            """
            import numpy as np

            def bad_kernel(ctx, arr):
                v = np.log(arr.data)  # gsnp-lint: disable=GSNP102
            """
        )
        assert [d.rule for d in diags] == ["GSNP101"]

    def test_disable_all(self):
        diags = _lint(
            """
            import numpy as np

            def ok_kernel(ctx, arr):
                v = np.log(arr.data)  # gsnp-lint: disable=all
            """
        )
        assert diags == []


class TestPathsAndFilters:
    @pytest.fixture
    def tree(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "def a_kernel(ctx, arr):\n    return arr.data\n"
        )
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.py").write_text(
            "import numpy as np\n"
            "def b_kernel(ctx, v):\n    return np.log(v)\n"
        )
        return tmp_path

    def test_directory_recursion(self, tree):
        diags = lint_paths([tree])
        assert {d.rule for d in diags} == {"GSNP101", "GSNP102"}
        assert {d.path.endswith("a.py") for d in diags} == {True, False}

    def test_select(self, tree):
        diags = lint_paths([tree], select=["GSNP102"])
        assert [d.rule for d in diags] == ["GSNP102"]

    def test_ignore_by_name(self, tree):
        diags = lint_paths([tree], ignore=["kernel-log-call"])
        assert [d.rule for d in diags] == ["GSNP101"]

    def test_unknown_rule_raises(self, tree):
        with pytest.raises(ValueError, match="GSNP999"):
            lint_paths([tree], select=["GSNP999"])

    def test_cli_exit_codes(self, tree, capsys):
        assert main_lint([str(tree)]) == 1
        out = capsys.readouterr().out
        assert "GSNP101" in out and "a.py" in out
        assert main_lint([str(tree), "--select", "GSNP104"]) == 0

    def test_repo_kernels_lint_clean(self):
        """The acceptance gate: the repo's own kernel code passes."""
        assert lint_paths(["src/repro"]) == []


class TestGsnp106FaultSites:
    """Fault injection must go through the chaos registry."""

    def test_computed_site_flagged(self):
        diags = _lint(
            """
            from repro.faults.plan import fault_point
            site = "exec." + "shard.error"
            fault_point(site, key=1)
            """
        )
        assert [d.rule for d in diags] == ["GSNP106"]
        assert "string literal" in diags[0].message

    def test_unregistered_literal_site_flagged(self):
        diags = _lint(
            """
            from repro.faults.plan import fault_point
            fault_point("formats.vcf.record", key=1)
            """
        )
        assert [d.rule for d in diags] == ["GSNP106"]
        assert "formats.vcf.record" in diags[0].message

    def test_registered_site_is_fine(self):
        diags = _lint(
            """
            from repro.faults.plan import fault_point
            fault_point("exec.shard.error", key=1)
            fault_point(site="gpusim.device.alloc", key="buf")
            """
        )
        assert diags == []

    def test_adhoc_fault_flag_flagged(self):
        diags = _lint(
            """
            FAULT_CRASH = True
            def f():
                if FAULT_CRASH:
                    raise RuntimeError
            """
        )
        assert [d.rule for d in diags] == ["GSNP106"]
        assert "FAULT_CRASH" in diags[0].message

    def test_environment_switch_flagged(self):
        diags = _lint(
            """
            import os
            a = os.environ.get("GSNP_CHAOS")
            b = os.environ["FAULT_MODE"]
            c = os.getenv("INJECT_ALLOC")
            """
        )
        assert [d.rule for d in diags] == ["GSNP106"] * 3

    def test_lowercase_plumbing_is_fine(self):
        diags = _lint(
            """
            import os
            def run(config, inject_failures=None):
                if config.faults:
                    pass
                if inject_failures:
                    pass
                return os.environ.get("HOME")
            """
        )
        assert diags == []

    def test_suppression_comment_works(self):
        diags = _lint(
            """
            import os
            x = os.getenv("FAULT_LEGACY")  # gsnp-lint: disable=GSNP106
            """
        )
        assert diags == []


class TestGsnp107FusableInWindowLoop:
    """Fusable launchers belong in the megabatch plan, not per-window loops."""

    def test_fusable_call_in_window_loop_flagged(self):
        diags = _lint(
            """
            from repro.core.counting import gsnp_counting
            def run(device, windows):
                for window in windows:
                    obs = extract(window)
                    gsnp_counting(device, obs)
            """
        )
        assert [d.rule for d in diags] == ["GSNP107"]
        assert "gsnp_counting" in diags[0].message

    def test_bare_name_iterable_flagged(self):
        diags = _lint(
            """
            def run(device, windows):
                for w in windows:
                    gsnp_posterior(device, w)
            """
        )
        assert [d.rule for d in diags] == ["GSNP107"]

    def test_chunked_iterable_is_fine(self):
        # A Call iterable (e.g. chunk_windows) is the megabatch pattern
        # itself — only raw per-window iteration is flagged.
        diags = _lint(
            """
            def run(device, windows):
                for group in chunk_windows(windows, 16):
                    gsnp_counting(device, group)
            """
        )
        assert diags == []

    def test_non_window_loop_is_fine(self):
        diags = _lint(
            """
            def run(device, shards):
                for shard in shards:
                    gsnp_counting(device, shard)
            """
        )
        assert diags == []

    def test_non_fusable_call_is_fine(self):
        diags = _lint(
            """
            def run(device, windows):
                for window in windows:
                    obs = extract_observations(window)
            """
        )
        assert diags == []

    def test_suppression_comment_works(self):
        diags = _lint(
            """
            def run(device, windows):
                for window in windows:
                    gsnp_recycle(device, 1, 2)  # gsnp-lint: disable=GSNP107
            """
        )
        assert diags == []


class TestGsnp111PerSampleLauncherLoop:
    """Fusable launchers belong in the sample-major cohort plan, not
    per-sample Python loops."""

    def test_fusable_call_in_sample_loop_flagged(self):
        diags = _lint(
            """
            def run(device, samples):
                for sample in samples:
                    gsnp_counting(device, sample)
            """
        )
        assert [d.rule for d in diags] == ["GSNP111"]
        assert "gsnp_counting" in diags[0].message
        assert "build_cohort_plan" in diags[0].message

    def test_cohort_iterable_flagged(self):
        diags = _lint(
            """
            def run(device, cohort_batches):
                for b in cohort_batches:
                    gsnp_posterior(device, b)
            """
        )
        assert [d.rule for d in diags] == ["GSNP111"]

    def test_non_launcher_sample_loop_is_fine(self):
        diags = _lint(
            """
            def run(samples):
                for sample in samples:
                    process(sample)
            """
        )
        assert diags == []

    def test_non_sample_loop_is_fine(self):
        diags = _lint(
            """
            def run(device, shards):
                for shard in shards:
                    gsnp_counting(device, shard)
            """
        )
        assert diags == []

    def test_suppression_comment_works(self):
        diags = _lint(
            """
            def run(device, samples):
                for sample in samples:
                    gsnp_recycle(device, 1, 2)  # gsnp-lint: disable=GSNP111
            """
        )
        assert diags == []


class TestGsnp109Rationale:
    """Suppressions must say why (opt-in via require_rationale)."""

    def _lint(self, src):
        return lint_source(
            textwrap.dedent(src), "test.py", require_rationale=True
        )

    def test_bare_suppression_fires(self):
        diags = self._lint(
            """
            def k_kernel(ctx, arr):
                v = arr.data  # gsnp-lint: disable=GSNP101
            """
        )
        assert [d.rule for d in diags] == ["GSNP109"]
        assert diags[0].line == 3

    def test_same_line_rationale_is_fine(self):
        diags = self._lint(
            """
            def k_kernel(ctx, arr):
                v = arr.data  # gsnp-lint: disable=GSNP101 (host-side debug dump)
            """
        )
        assert diags == []

    def test_nearby_comment_rationale_is_fine(self):
        diags = self._lint(
            """
            def k_kernel(ctx, arr):
                # Reads the staging copy before upload, not device memory.
                v = arr.data  # gsnp-lint: disable=GSNP101
            """
        )
        assert diags == []

    def test_short_rationale_still_fires(self):
        diags = self._lint(
            """
            def k_kernel(ctx, arr):
                # ok
                v = arr.data  # gsnp-lint: disable=GSNP101
            """
        )
        assert [d.rule for d in diags] == ["GSNP109"]

    def test_off_by_default(self):
        diags = _lint(
            """
            def k_kernel(ctx, arr):
                v = arr.data  # gsnp-lint: disable=GSNP101
            """
        )
        assert diags == []

    def test_repo_suppressions_carry_rationale(self):
        """CI gate: in-tree suppressions all explain themselves."""
        assert lint_paths(["src/repro"], require_rationale=True) == []


# One (fire, suppress) source pair per rule id.  The fire source produces
# at least one diagnostic with the rule; the suppress source is the same
# violation with a `# gsnp-lint: disable=` directive on the flagged line.
_RULE_CASES = {
    "GSNP100": (
        "def broken(:\n",
        "def broken(:  # gsnp-lint: disable=GSNP100\n",
    ),
    "GSNP101": (
        """
        def k_kernel(ctx, arr):
            v = arr.data
        """,
        """
        def k_kernel(ctx, arr):
            v = arr.data  # gsnp-lint: disable=GSNP101
        """,
    ),
    "GSNP102": (
        """
        import numpy as np
        def k_kernel(ctx, v):
            return np.log(v)
        """,
        """
        import numpy as np
        def k_kernel(ctx, v):
            return np.log(v)  # gsnp-lint: disable=GSNP102
        """,
    ),
    "GSNP103": (
        """
        def k_kernel(ctx, arr):
            for t in ctx.tid:
                pass
        """,
        """
        def k_kernel(ctx, arr):
            for t in ctx.tid:  # gsnp-lint: disable=GSNP103
                pass
        """,
    ),
    "GSNP104": (
        """
        def k_kernel(ctx, out, n):
            active = ctx.tid < n
            ctx.gstore(out, ctx.tid, 1)
        """,
        """
        def k_kernel(ctx, out, n):
            active = ctx.tid < n
            ctx.gstore(out, ctx.tid, 1)  # gsnp-lint: disable=GSNP104
        """,
    ),
    "GSNP105": (
        """
        def k_kernel(ctx, out):
            v = ctx.gload(out, ctx.tid, active=None)
            out[ctx.tid] = v
        """,
        """
        def k_kernel(ctx, out):
            v = ctx.gload(out, ctx.tid, active=None)
            out[ctx.tid] = v  # gsnp-lint: disable=GSNP105
        """,
    ),
    "GSNP106": (
        """
        from repro.faults.plan import fault_point
        fault_point("not.a.site", key=1)
        """,
        """
        from repro.faults.plan import fault_point
        fault_point("not.a.site", key=1)  # gsnp-lint: disable=GSNP106
        """,
    ),
    "GSNP107": (
        """
        def run(device, windows):
            for window in windows:
                gsnp_counting(device, window)
        """,
        """
        def run(device, windows):
            for window in windows:
                gsnp_counting(device, window)  # gsnp-lint: disable=GSNP107
        """,
    ),
    "GSNP108": (
        """
        p = create_pipeline(window_size=512, fusion=True)
        """,
        """
        p = create_pipeline(window_size=512, fusion=True)  # gsnp-lint: disable=GSNP108
        """,
    ),
    "GSNP109": (
        """
        def k_kernel(ctx, arr):
            v = arr.data  # gsnp-lint: disable=GSNP101
        """,
        """
        def k_kernel(ctx, arr):
            v = arr.data  # gsnp-lint: disable=GSNP101,GSNP109
        """,
    ),
    "GSNP110": (
        """
        from repro.gpusim.device import Device
        device = Device(sanitize=True)
        """,
        """
        from repro.gpusim.device import Device
        device = Device(sanitize=True)  # gsnp-lint: disable=GSNP110
        """,
    ),
    "GSNP111": (
        """
        def run(device, samples):
            for sample in samples:
                gsnp_counting(device, sample)
        """,
        """
        def run(device, samples):
            for sample in samples:
                gsnp_counting(device, sample)  # gsnp-lint: disable=GSNP111
        """,
    ),
    "GSNP201": (
        """
        def k_kernel(ctx, buf):
            v = ctx.gload(buf, ctx.tid, active=None)
        """,
        """
        def k_kernel(ctx, buf):
            v = ctx.gload(buf, ctx.tid, active=None)  # gsnp-lint: disable=GSNP201
        """,
    ),
    "GSNP202": (
        """
        def k_kernel(ctx, buf):
            v = ctx.gload(buf, ctx.tid + 1, active=None)
            ctx.gstore(buf, ctx.tid, v, active=None)
        """,
        """
        def k_kernel(ctx, buf):
            v = ctx.gload(buf, ctx.tid + 1, active=None)
            ctx.gstore(buf, ctx.tid, v, active=None)  # gsnp-lint: disable=GSNP202
        """,
    ),
    "GSNP203": (
        """
        scratch = device.alloc(64, init=False)

        def k_kernel(ctx, buf):
            v = ctx.gload(buf, ctx.tid, active=None)

        device.launch(k_kernel, 64, scratch)
        """,
        """
        scratch = device.alloc(64, init=False)

        def k_kernel(ctx, buf):
            v = ctx.gload(buf, ctx.tid, active=None)  # gsnp-lint: disable=GSNP203

        device.launch(k_kernel, 64, scratch)
        """,
    ),
    "GSNP204": (
        """
        def k_kernel(ctx, buf, n):
            active = ctx.tid < n
            ctx.gstore(buf, ctx.tid, ctx.tid, active=active)
            v = ctx.gload(buf, ctx.tid + 1, active=None)
        """,
        """
        def k_kernel(ctx, buf, n):
            active = ctx.tid < n
            ctx.gstore(buf, ctx.tid, ctx.tid, active=active)
            v = ctx.gload(buf, ctx.tid + 1, active=None)  # gsnp-lint: disable=GSNP204
        """,
    ),
    "GSNP205": (
        """
        def k_kernel(ctx, buf):
            idx = mystery()
            v = ctx.gload(buf, idx, active=None)
        """,
        """
        def k_kernel(ctx, buf):
            idx = mystery()
            v = ctx.gload(buf, idx, active=None)  # gsnp-lint: disable=GSNP205
        """,
    ),
}


def _rules_fired(rule, src):
    """Run the tool that owns ``rule`` and return the fired rule ids."""
    from repro.analyze.dataflow import audit_source
    from repro.analyze.lint import AUDIT_RULES

    src = textwrap.dedent(src)
    if rule in AUDIT_RULES:
        return {d.rule for d in audit_source(src, "test.py").diagnostics}
    return {
        d.rule
        for d in lint_source(src, "test.py", require_rationale=True)
    }


class TestEveryRuleFiresAndSuppresses:
    """Each registered rule has a witnessed fire case and a working
    suppression — the registry can't grow decorative entries."""

    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_rule_fires(self, rule):
        fire_src, _ = _RULE_CASES[rule]
        assert rule in _rules_fired(rule, fire_src)

    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_rule_suppresses(self, rule):
        _, suppress_src = _RULE_CASES[rule]
        assert rule not in _rules_fired(rule, suppress_src)

    def test_every_rule_has_a_case(self):
        assert set(_RULE_CASES) == set(RULES)


class TestDiagnostic:
    def test_format_is_file_line_col(self):
        d = Diagnostic(path="x.py", line=3, col=5,
                       rule="GSNP101", message="m")
        assert d.format() == "x.py:3:5: GSNP101 [kernel-data-access] m"

    def test_note_severity_format(self):
        d = Diagnostic(path="x.py", line=3, col=5, rule="GSNP201",
                       message="m", severity="note")
        assert d.format() == (
            "x.py:3:5: note: GSNP201 [access-pattern-verdict] m"
        )

    def test_to_dict_roundtrips_fields(self):
        d = Diagnostic(path="x.py", line=3, col=5,
                       rule="GSNP101", message="m")
        assert d.to_dict() == {
            "path": "x.py", "line": 3, "col": 5, "rule": "GSNP101",
            "name": "kernel-data-access", "severity": "error",
            "message": "m",
        }

    def test_rule_table_complete(self):
        assert set(RULES) == {
            "GSNP100", "GSNP101", "GSNP102", "GSNP103", "GSNP104",
            "GSNP105", "GSNP106", "GSNP107", "GSNP108", "GSNP109",
            "GSNP110", "GSNP111",
            "GSNP201", "GSNP202", "GSNP203", "GSNP204", "GSNP205",
        }


class TestOutputFormats:
    @pytest.fixture
    def diags(self):
        return [
            Diagnostic(path="a.py", line=2, col=3, rule="GSNP101",
                       message="bad access"),
            Diagnostic(path="a.py", line=5, col=1, rule="GSNP201",
                       message="is coalesced", severity="note"),
        ]

    def test_json_document(self, diags):
        import json

        from repro.analyze import render_diagnostics

        doc = json.loads(
            render_diagnostics(diags, "json", tool="gsnp-lint",
                               extra={"kernels": 2})
        )
        assert doc["tool"] == "gsnp-lint"
        assert doc["kernels"] == 2
        assert doc["count"] == 1  # notes don't count as problems
        assert [d["rule"] for d in doc["diagnostics"]] == [
            "GSNP101", "GSNP201"
        ]

    def test_github_annotations(self, diags):
        from repro.analyze import render_diagnostics

        lines = render_diagnostics(diags, "github").splitlines()
        assert lines[0].startswith(
            "::error file=a.py,line=2,col=3,title=GSNP101"
        )
        assert lines[1].startswith("::notice file=a.py,line=5")

    def test_github_escapes_newlines(self):
        from repro.analyze import render_diagnostics

        d = Diagnostic(path="a.py", line=1, col=1, rule="GSNP101",
                       message="two\nlines % done")
        out = render_diagnostics([d], "github")
        assert "\n" not in out
        assert "two%0Alines %25 done" in out

    def test_unknown_format_raises(self, diags):
        from repro.analyze import render_diagnostics

        with pytest.raises(ValueError, match="sarif"):
            render_diagnostics(diags, "sarif")

    def test_cli_format_flags(self, tmp_path, capsys):
        import json

        (tmp_path / "a.py").write_text(
            "def a_kernel(ctx, arr):\n    return arr.data\n"
        )
        assert main_lint([str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert main_lint([str(tmp_path), "--format", "github"]) == 1
        assert capsys.readouterr().out.startswith("::error ")
