"""Host-side log tables and the rank-sum test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.stats import (
    dependency_penalty_table,
    error_to_phred,
    log10_table,
    phred_to_error,
    rank_sum_pvalue,
    rank_sum_statistic,
)


class TestLogTable:
    def test_values(self):
        t = log10_table(64)
        assert t[0] == 0.0
        assert t[10] == pytest.approx(1.0)
        assert t[1] == 0.0

    def test_default_size_matches_score_range(self):
        assert log10_table().size == 64

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            log10_table(0)


class TestPenaltyTable:
    def test_first_observation_unpenalized(self):
        t = dependency_penalty_table()
        assert t[0] == 0

    def test_default_three_phred_per_duplicate(self):
        t = dependency_penalty_table(pcr_dependency=0.5)
        assert t[1] == 3  # 10*log10(2) ~ 3.01
        assert t[2] == 6

    def test_monotone_nondecreasing(self):
        t = dependency_penalty_table()
        assert np.all(np.diff(t) >= 0)

    def test_no_dependency_no_penalty(self):
        t = dependency_penalty_table(pcr_dependency=1.0)
        assert np.all(t == 0)

    def test_invalid_coefficient(self):
        with pytest.raises(ValueError):
            dependency_penalty_table(pcr_dependency=0.0)
        with pytest.raises(ValueError):
            dependency_penalty_table(pcr_dependency=1.5)

    def test_integer_dtype(self):
        assert dependency_penalty_table().dtype == np.int32


class TestPhredConversions:
    def test_roundtrip(self):
        q = np.array([10, 20, 30])
        assert np.array_equal(error_to_phred(phred_to_error(q)), q)

    def test_q10_is_ten_percent(self):
        assert phred_to_error(10) == pytest.approx(0.1)

    def test_cap(self):
        assert error_to_phred(1e-30, cap=99) == 99


class TestRankSum:
    def test_identical_samples_high_pvalue(self):
        x = np.array([30, 31, 32, 33] * 5)
        assert rank_sum_pvalue(x, x) > 0.9

    def test_separated_samples_low_pvalue(self):
        x = np.full(15, 38.0)
        y = np.full(15, 5.0)
        assert rank_sum_pvalue(x, y) < 0.01

    def test_empty_sample_degenerate(self):
        assert rank_sum_pvalue(np.array([]), np.array([1.0])) == 1.0
        assert rank_sum_statistic(np.array([]), np.array([1.0])) == 0.0

    def test_all_tied_degenerate(self):
        x = np.full(5, 7.0)
        assert rank_sum_pvalue(x, x) == 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 40, 12).astype(float)
        y = rng.integers(0, 40, 8).astype(float)
        assert rank_sum_pvalue(x, y) == pytest.approx(rank_sum_pvalue(y, x))

    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_matches_scipy(self, seed):
        """Tie-corrected normal approximation equals scipy.ranksums
        (scipy uses the same approximation without tie correction, so
        compare on tie-free samples)."""
        rng = np.random.default_rng(seed)
        x = rng.permutation(100)[:12].astype(float)
        y = rng.permutation(100)[60:75].astype(float) + 0.5
        ours = rank_sum_pvalue(x, y)
        theirs = sps.ranksums(x, y).pvalue
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_pvalue_bounds(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            x = rng.integers(0, 41, rng.integers(1, 20)).astype(float)
            y = rng.integers(0, 41, rng.integers(1, 20)).astype(float)
            p = rank_sum_pvalue(x, y)
            assert 0.0 <= p <= 1.0
