"""Property test: count_transactions vs a brute-force per-warp oracle.

The vectorized sentinel-segment algorithm in
:func:`repro.gpusim.memory.count_transactions` underpins every
coalescing-dependent number in the reproduction, so it is checked here
against the obvious O(n) definition: split lanes into warps, collect the
set of 128-byte segments the live lanes of each warp touch, sum the set
sizes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.memory import count_transactions


def oracle(indices, itemsize, warp_size, segment_bytes):
    """Per-warp set-of-touched-segments, one warp at a time."""
    idx = np.asarray(indices).ravel()
    total = 0
    for w0 in range(0, idx.size, warp_size):
        segs = set()
        for i in idx[w0:w0 + warp_size]:
            if i >= 0:  # negative index = inactive lane, no transaction
                segs.add((int(i) * itemsize) // segment_bytes)
        total += len(segs)
    return total


indices_st = st.lists(
    st.integers(min_value=-1, max_value=10_000), min_size=0, max_size=300
)


@settings(max_examples=200, deadline=None)
@given(
    indices=indices_st,
    itemsize=st.sampled_from([1, 2, 4, 8]),
    warp_size=st.sampled_from([4, 8, 16, 32]),
    segment_bytes=st.sampled_from([32, 64, 128]),
)
def test_matches_oracle(indices, itemsize, warp_size, segment_bytes):
    idx = np.array(indices, dtype=np.int64)
    got = count_transactions(
        idx, itemsize, warp_size=warp_size, segment_bytes=segment_bytes
    )
    assert got == oracle(idx, itemsize, warp_size, segment_bytes)


@settings(max_examples=100, deadline=None)
@given(
    data=st.data(),
    n=st.integers(min_value=1, max_value=256),
    warp_size=st.sampled_from([8, 32]),
)
def test_masked_lanes_free(data, n, warp_size):
    """Deactivating lanes can only remove transactions, never add them."""
    idx = np.array(
        data.draw(st.lists(
            st.integers(min_value=0, max_value=5000), min_size=n, max_size=n
        )),
        dtype=np.int64,
    )
    mask = np.array(
        data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    )
    masked = np.where(mask, idx, -1)
    full = count_transactions(idx, 4, warp_size=warp_size)
    part = count_transactions(masked, 4, warp_size=warp_size)
    assert part <= full
    assert part == oracle(masked, 4, warp_size, 128)


def test_paper_coalescing_extremes():
    """The Section VI-A endpoints: a fully coalesced warp costs 1
    transaction, a fully scattered warp costs 32."""
    coalesced = np.arange(32, dtype=np.int64)
    scattered = np.arange(32, dtype=np.int64) * 32  # 128B apart at 4B items
    assert count_transactions(coalesced, 4) == 1
    assert count_transactions(scattered, 4) == 32
