"""Bitonic network schedule and vectorized batch sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sortnet.bitonic import (
    bitonic_sort_batch,
    bitonic_steps,
    compare_exchange_count,
    compare_exchange_indices,
    n_steps,
    next_pow2,
)


class TestNextPow2:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (8, 8), (9, 16), (100, 128), (256, 256)],
    )
    def test_values(self, n, expected):
        assert next_pow2(n) == expected


class TestSchedule:
    def test_step_count_formula(self):
        for m in (2, 4, 8, 64, 256):
            lg = int(np.log2(m))
            assert n_steps(m) == lg * (lg + 1) // 2
            assert len(list(bitonic_steps(m))) == n_steps(m)

    def test_non_pow2_rejected(self):
        with pytest.raises(ValueError):
            list(bitonic_steps(6))

    def test_each_step_covers_half_the_positions(self):
        for k, j in bitonic_steps(16):
            i, partner, asc = compare_exchange_indices(16, k, j)
            assert i.size == 8
            assert np.all(partner > i)
            assert np.all((i ^ j) == partner)

    def test_compare_exchange_count(self):
        assert compare_exchange_count(8) == n_steps(8) * 4


class TestBatchSort:
    def test_sorts_each_row(self, rng):
        batch = rng.integers(0, 1000, (40, 32)).astype(np.uint32)
        out = bitonic_sort_batch(batch.copy())
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_in_place(self, rng):
        batch = rng.integers(0, 9, (4, 8)).astype(np.int64)
        out = bitonic_sort_batch(batch)
        assert out is batch

    def test_width_one_noop(self):
        batch = np.array([[3], [1]])
        assert np.array_equal(bitonic_sort_batch(batch.copy()), batch)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            bitonic_sort_batch(np.arange(8))

    def test_sentinel_padding_stays_at_end(self, rng):
        batch = rng.integers(0, 100, (10, 16)).astype(np.uint32)
        batch[:, 12:] = np.uint32(0xFFFFFFFF)
        out = bitonic_sort_batch(batch.copy())
        assert np.all(out[:, 12:] == 0xFFFFFFFF)
        assert np.array_equal(out[:, :12], np.sort(batch[:, :12], axis=1))

    def test_signed_and_float_dtypes(self, rng):
        for dtype in (np.int64, np.float64):
            batch = rng.standard_normal((8, 16)).astype(dtype)
            out = bitonic_sort_batch(batch.copy())
            assert np.array_equal(out, np.sort(batch, axis=1))

    @given(
        st.integers(0, 5),  # log2 width
        st.integers(1, 30),  # rows
        st.integers(0, 2**31),  # seed
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equals_npsort(self, logw, rows, seed):
        m = 2**logw
        r = np.random.default_rng(seed)
        batch = r.integers(0, 2**17, (rows, m)).astype(np.uint32)
        out = bitonic_sort_batch(batch.copy())
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_duplicates_preserved(self):
        batch = np.array([[5, 5, 1, 1, 5, 1, 1, 5]], dtype=np.int64)
        out = bitonic_sort_batch(batch.copy())
        assert np.array_equal(out[0], [1, 1, 1, 1, 5, 5, 5, 5])
