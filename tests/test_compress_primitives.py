"""Compression primitives: bitpack, RLE, DICT, two-bit, sparse, delta."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    bits_needed,
    delta_decode,
    delta_encode,
    dict_decode,
    dict_encode,
    mean_run_length,
    pack_bits,
    rle_decode,
    rle_encode,
    sparse_decode,
    sparse_encode,
    twobit_decode,
    twobit_encode,
    unpack_bits,
)
from repro.compress.sparse import exception_decode, exception_encode
from repro.errors import CodecError


class TestBitpack:
    @pytest.mark.parametrize("max_v,bits", [(0, 1), (1, 1), (2, 2), (255, 8),
                                            (256, 9), (1023, 10)])
    def test_bits_needed(self, max_v, bits):
        assert bits_needed(max_v) == bits

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            bits_needed(-1)

    def test_roundtrip_basic(self):
        v = np.array([0, 1, 2, 3, 7, 5])
        data = pack_bits(v, 3)
        assert np.array_equal(unpack_bits(data, 3, 6), v)

    def test_packed_size(self):
        # 100 values x 3 bits = 300 bits = 38 bytes.
        assert len(pack_bits(np.zeros(100, dtype=int), 3)) == 38

    def test_overflow_rejected(self):
        with pytest.raises(CodecError):
            pack_bits(np.array([8]), 3)

    def test_truncated_payload_rejected(self):
        with pytest.raises(CodecError):
            unpack_bits(b"\x00", 8, 100)

    @given(
        st.lists(st.integers(0, 2**16 - 1), min_size=0, max_size=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        v = np.asarray(values, dtype=np.uint64)
        width = bits_needed(int(v.max()) if v.size else 0)
        assert np.array_equal(unpack_bits(pack_bits(v, width), width, v.size), v)


class TestRle:
    def test_encode_runs(self):
        v, l = rle_encode(np.array([5, 5, 5, 2, 2, 9]))
        assert list(v) == [5, 2, 9]
        assert list(l) == [3, 2, 1]

    def test_empty(self):
        v, l = rle_encode(np.empty(0, dtype=np.uint8))
        assert v.size == 0 and l.size == 0
        assert rle_decode(v, l).size == 0

    def test_decode_validates_lengths(self):
        with pytest.raises(CodecError):
            rle_decode(np.array([1]), np.array([0]))

    def test_shape_mismatch(self):
        with pytest.raises(CodecError):
            rle_decode(np.array([1, 2]), np.array([1]))

    def test_mean_run_length(self):
        assert mean_run_length(np.array([1, 1, 1, 1])) == 4.0
        assert mean_run_length(np.array([1, 2, 3])) == 1.0
        assert mean_run_length(np.empty(0)) == 0.0

    def test_mean_run_length_known_column(self):
        # Pinned value on a known column: 4 runs over 10 values -> 2.5.
        # mean_run_length counts change points directly, without
        # materializing the rle_encode copy — the two must agree.
        col = np.array([5, 5, 5, 7, 7, 9, 9, 9, 9, 2], dtype=np.int32)
        assert mean_run_length(col) == 2.5
        values, lengths = rle_encode(col)
        assert mean_run_length(col) == col.size / values.size
        assert lengths.sum() == col.size

    @given(st.lists(st.integers(0, 5), min_size=0, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        arr = np.asarray(values, dtype=np.int64)
        v, l = rle_encode(arr)
        assert np.array_equal(rle_decode(v, l), arr)


class TestDict:
    def test_roundtrip_uint8(self, rng):
        v = rng.integers(0, 90, 5000).astype(np.uint8)
        assert np.array_equal(dict_decode(dict_encode(v)), v)

    def test_roundtrip_float32(self, rng):
        v = np.round(rng.random(1000), 2).astype(np.float32)
        assert np.array_equal(dict_decode(dict_encode(v)), v)

    def test_empty(self):
        v = np.empty(0, dtype=np.uint16)
        out = dict_decode(dict_encode(v))
        assert out.size == 0 and out.dtype == np.uint16

    def test_single_value_one_bit(self):
        v = np.full(1000, 7, dtype=np.uint8)
        blob = dict_encode(v)
        # dict(1 entry) + 1000 bits ~ 125 bytes + header.
        assert len(blob) < 150

    def test_small_dict_beats_bytes(self, rng):
        """<100 distinct values: better than 1 byte/elem (paper's point)."""
        v = rng.integers(0, 90, 10_000).astype(np.uint8)
        assert len(dict_encode(v)) < 10_000

    def test_too_many_distinct_rejected(self):
        v = np.arange(70_000, dtype=np.uint32)
        with pytest.raises(CodecError):
            dict_encode(v)

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            dict_decode(b"\x01")

    @given(st.lists(st.integers(0, 200), min_size=0, max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        arr = np.asarray(values, dtype=np.uint32)
        assert np.array_equal(dict_decode(dict_encode(arr)), arr)


class TestTwoBit:
    def test_roundtrip(self, rng):
        v = rng.integers(0, 4, 9999).astype(np.uint8)
        assert np.array_equal(twobit_decode(twobit_encode(v)), v)

    def test_quarter_size(self):
        v = np.zeros(4000, dtype=np.uint8)
        assert len(twobit_encode(v)) == 4 + 1000

    def test_rejects_large_values(self):
        with pytest.raises(CodecError):
            twobit_encode(np.array([4]))

    def test_empty(self):
        assert twobit_decode(twobit_encode(np.empty(0, dtype=np.uint8))).size == 0


class TestSparse:
    def test_roundtrip(self, rng):
        v = np.zeros(5000, dtype=np.uint16)
        idx = rng.choice(5000, 80, replace=False)
        v[idx] = rng.integers(1, 500, 80)
        assert np.array_equal(sparse_decode(sparse_encode(v, 0)), v)

    def test_nonzero_default(self, rng):
        v = np.full(1000, 4, dtype=np.uint8)
        v[5] = 2
        out = sparse_decode(sparse_encode(v, 4))
        assert np.array_equal(out, v)

    def test_dense_column_still_lossless(self, rng):
        v = rng.integers(0, 255, 300).astype(np.uint8)
        assert np.array_equal(sparse_decode(sparse_encode(v, 0)), v)

    def test_sparse_much_smaller(self, rng):
        v = np.zeros(100_000, dtype=np.uint16)
        v[rng.choice(100_000, 100, replace=False)] = 9
        assert len(sparse_encode(v, 0)) < 2000

    def test_float_column(self):
        v = np.full(100, 1.0, dtype=np.float32)
        v[3] = 0.5
        assert np.array_equal(sparse_decode(sparse_encode(v, 1.0)), v)

    @given(st.lists(st.integers(0, 3), min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, values):
        arr = np.asarray(values, dtype=np.uint8)
        assert np.array_equal(sparse_decode(sparse_encode(arr, 0)), arr)


class TestException:
    def test_roundtrip_with_prediction(self, rng):
        predicted = rng.integers(0, 10, 2000).astype(np.uint8)
        actual = predicted.copy()
        idx = rng.choice(2000, 20, replace=False)
        actual[idx] = (actual[idx] + 1) % 10
        blob = exception_encode(actual, predicted)
        assert np.array_equal(exception_decode(blob, predicted), actual)

    def test_perfect_prediction_tiny(self, rng):
        predicted = rng.integers(0, 10, 10_000).astype(np.uint8)
        blob = exception_encode(predicted, predicted)
        assert len(blob) < 40

    def test_wrong_prediction_length_rejected(self):
        v = np.zeros(5, dtype=np.uint8)
        blob = exception_encode(v, v)
        with pytest.raises(CodecError):
            exception_decode(blob, np.zeros(6, dtype=np.uint8))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CodecError):
            exception_encode(
                np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8)
            )


class TestDelta:
    def test_roundtrip(self, rng):
        v = np.sort(rng.integers(0, 10**6, 3000)).astype(np.int64)
        assert np.array_equal(delta_decode(delta_encode(v)), v)

    def test_unsorted_rejected(self):
        with pytest.raises(CodecError):
            delta_encode(np.array([3, 1]))

    def test_empty_and_single(self):
        assert delta_decode(delta_encode(np.empty(0, dtype=np.int64))).size == 0
        out = delta_decode(delta_encode(np.array([42], dtype=np.int64)))
        assert list(out) == [42]

    def test_dense_positions_compact(self):
        v = np.arange(10_000, dtype=np.int64)
        # All gaps are 1: one bit each.
        assert len(delta_encode(v)) < 1350

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, values):
        arr = np.sort(np.asarray(values, dtype=np.int64))
        assert np.array_equal(delta_decode(delta_encode(arr)), arr)
