"""CLI entry points, end to end through real files."""

import os

import numpy as np
import pytest

from repro.cli import main_call, main_decompress, main_simulate
from repro.formats.cns import read_cns


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli")
    cwd = os.getcwd()
    os.chdir(d)
    yield d
    os.chdir(cwd)


@pytest.fixture(scope="module")
def simulated(workdir):
    rc = main_simulate(
        ["--sites", "6000", "--depth", "9", "--prefix", "demo", "--seed", "8"]
    )
    assert rc == 0
    return workdir


class TestSimulate:
    def test_files_written(self, simulated):
        for ext in (".fa", ".soap", ".prior", ".truth"):
            assert (simulated / f"demo{ext}").stat().st_size > 0

    def test_truth_has_positions(self, simulated):
        truth = np.loadtxt(simulated / "demo.truth", skiprows=1)
        assert truth.shape[1] == 3


class TestCall:
    def test_text_output(self, simulated):
        rc = main_call(
            ["demo.fa", "demo.soap", "--prior", "demo.prior",
             "--engine", "gsnp_cpu", "-o", "out.cns"]
        )
        assert rc == 0
        table = read_cns(simulated / "out.cns")
        assert table.n_sites == 6000

    def test_engines_agree_via_files(self, simulated):
        main_call(["demo.fa", "demo.soap", "--prior", "demo.prior",
                   "--engine", "soapsnp", "-o", "a.cns"])
        main_call(["demo.fa", "demo.soap", "--prior", "demo.prior",
                   "--engine", "gsnp", "-o", "b.cns", "--window", "6000"])
        assert read_cns(simulated / "a.cns").equals(
            read_cns(simulated / "b.cns")
        )

    def test_compressed_output(self, simulated):
        rc = main_call(
            ["demo.fa", "demo.soap", "--engine", "gsnp", "-o", "out.gsnp",
             "--compressed", "--window", "6000"]
        )
        assert rc == 0
        assert (simulated / "out.gsnp").stat().st_size < (
            simulated / "out.cns"
        ).stat().st_size


class TestDecompress:
    def test_full_roundtrip(self, simulated):
        main_call(["demo.fa", "demo.soap", "--prior", "demo.prior",
                   "--engine", "gsnp", "-o", "c.gsnp", "--compressed",
                   "--window", "6000"])
        main_call(["demo.fa", "demo.soap", "--prior", "demo.prior",
                   "--engine", "gsnp", "-o", "c.cns", "--window", "6000"])
        rc = main_decompress(["c.gsnp", "-o", "d.cns"])
        assert rc == 0
        assert read_cns(simulated / "d.cns").equals(
            read_cns(simulated / "c.cns")
        )

    def test_range_query(self, simulated):
        rc = main_decompress(["c.gsnp", "--range", "100:200", "-o", "r.cns"])
        assert rc == 0
        t = read_cns(simulated / "r.cns")
        assert t.n_sites == 100

    def test_snps_only(self, simulated, capsys):
        rc = main_decompress(["c.gsnp", "--snps-only", "-o", "s.cns"])
        assert rc == 0
