"""Unit coverage for the remaining small pieces: recycle, GPU posterior
accounting, fixed-cost scaling, CLI edge cases."""

import numpy as np
import pytest

from repro.bench.events import PhaseRecord
from repro.core.recycle import gsnp_recycle
from repro.gpusim.device import Device


class TestRecycle:
    def test_accounts_buffer_bytes(self):
        device = Device()
        gsnp_recycle(device, n_words=1000, n_sites=500)
        c = device.counters.get("recycle")
        assert c.launches == 1
        expected = 1000 * 4 + 501 * 8 + 500 * 16 * 8
        assert c.g_store_bytes == expected
        assert c.g_store == -(-expected // 128)

    def test_sparse_recycle_tiny_vs_dense(self):
        """The paper's point: sparse recycle traffic is ~0.01% of the
        dense 131,072 bytes/site."""
        device = Device()
        n_sites = 1000
        n_words = 10 * n_sites  # ~10 observations/site
        gsnp_recycle(device, n_words, n_sites)
        dense_bytes = n_sites * 131072
        sparse_bytes = device.counters.get("recycle").g_store_bytes
        assert sparse_bytes < dense_bytes / 100

    def test_accumulates_across_windows(self):
        device = Device()
        gsnp_recycle(device, 100, 50)
        gsnp_recycle(device, 100, 50)
        assert device.counters.get("recycle").launches == 2


class TestGsnpPosteriorAccounting:
    def test_counters_and_result(self, small_obs, small_dataset,
                                 small_pm_flat, small_penalty):
        from repro.core.posterior import gsnp_posterior
        from repro.soapsnp import CallingParams, summarize_window
        from repro.soapsnp.likelihood import window_type_likely

        params = CallingParams(read_len=100)
        tl = window_type_likely(small_obs, small_pm_flat, small_penalty)
        device = Device()
        ref_codes = small_dataset.reference.codes
        table = gsnp_posterior(
            device, small_obs, 0, ref_codes, small_dataset.prior, tl,
            params, chrom="c",
        )
        expected = summarize_window(
            small_obs, 0, ref_codes, small_dataset.prior, tl, params, "c"
        )
        assert table.equals(expected)
        c = device.counters.get("posterior")
        assert c.launches == 1
        assert c.g_load > 0 and c.g_store > 0
        assert c.g_store_bytes >= small_obs.n_sites * 40


class TestFixedSeconds:
    def test_fixed_cost_does_not_scale(self):
        rec = PhaseRecord(name="x", fixed_seconds=2.0)
        scaled = rec.scaled(1000)
        assert scaled.fixed_seconds == 2.0
        assert scaled.modeled_time() == pytest.approx(2.0, abs=1e-3)

    def test_fixed_cost_adds_to_model(self):
        rec = PhaseRecord(name="x", fixed_seconds=1.5)
        rec.cpu.seq_read_bytes = 4_200_000_000  # 1s
        assert rec.modeled_time() == pytest.approx(2.5, rel=1e-6)


class TestSparsityHistogramBins:
    def test_custom_bins(self):
        from repro.soapsnp.base_occ import sparsity_histogram

        nnz = np.array([0, 0, 5, 5, 100])
        hist = sparsity_histogram(nnz, bin_edges=(0, 1, 10))
        assert hist["[0,1)"] == pytest.approx(40.0)
        assert hist["[1,10)"] == pytest.approx(40.0)
        assert hist["[10,inf)"] == pytest.approx(20.0)

    def test_empty_input(self):
        from repro.soapsnp.base_occ import sparsity_histogram

        hist = sparsity_histogram(np.empty(0, dtype=np.int64))
        assert sum(hist.values()) == 0.0


class TestCliEdgeCases:
    def test_verify_cli_pass(self):
        from repro.cli import main_verify

        rc = main_verify(["--sites", "2000", "--windows", "500,1000"])
        assert rc == 0

    def test_call_without_prior(self, tmp_path):
        import os

        from repro.cli import main_call, main_simulate

        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            main_simulate(["--sites", "3000", "--prefix", "x", "--seed", "5"])
            rc = main_call(["x.fa", "x.soap", "--engine", "gsnp_cpu",
                            "-o", "out.cns"])
            assert rc == 0
            assert (tmp_path / "out.cns").stat().st_size > 0
        finally:
            os.chdir(cwd)

    def test_decompress_missing_file(self, tmp_path):
        from repro.cli import main_decompress
        from repro.errors import CodecError

        with pytest.raises((FileNotFoundError, CodecError)):
            main_decompress([str(tmp_path / "missing.gsnp")])


class TestWholeGenomeSpecs:
    def test_chr_y_gets_half_depth(self):
        from repro.seqsim import whole_genome_specs

        specs = {s.name: s for s in whole_genome_specs(depth=10.0)}
        assert specs["chrY-sim"].depth == 5.0
        assert specs["chr1-sim"].depth == 10.0

    def test_sizes_descend_from_chr1(self):
        from repro.seqsim import whole_genome_specs

        specs = whole_genome_specs()
        by_name = {s.name: s.n_sites for s in specs}
        assert by_name["chr1-sim"] == max(by_name.values())
        assert by_name["chr21-sim"] == min(by_name.values())
