"""Parallel CPU cost model: the memory-bandwidth wall (Section VI-A)."""

import pytest

from repro.gpusim.costmodel import CpuCostModel, CpuEvents


class TestTimeParallel:
    def test_compute_bound_scales_with_threads(self):
        m = CpuCostModel()
        e = CpuEvents(instructions=32 * 10**9)
        t1 = m.time(e)
        t16 = m.time_parallel(e, threads=16)
        assert t1 / t16 == pytest.approx(16.0)

    def test_memory_bound_capped_by_bandwidth(self):
        m = CpuCostModel()
        e = CpuEvents(seq_read_bytes=42 * 10**9)
        t1 = m.time(e)
        t16 = m.time_parallel(e, threads=16, mem_bw_scale=3.0)
        assert t1 / t16 == pytest.approx(3.0)

    def test_single_thread_equals_serial_model(self):
        m = CpuCostModel()
        e = CpuEvents(
            seq_read_bytes=10**9, random_accesses=10**6,
            instructions=10**9, log_calls=10**5,
        )
        assert m.time_parallel(e, threads=1) == pytest.approx(m.time(e))

    def test_mem_scale_never_exceeds_threads(self):
        m = CpuCostModel()
        e = CpuEvents(seq_read_bytes=10**9)
        t2 = m.time_parallel(e, threads=2, mem_bw_scale=3.0)
        assert m.time(e) / t2 <= 2.0 + 1e-9

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            CpuCostModel().time_parallel(CpuEvents(), threads=0)

    def test_soapsnp_mix_lands_in_paper_band(self):
        """A SOAPsnp-like event mix (dominant dense scans + some compute)
        gains 2.5-4.5x with 16 threads — the paper's 3-4x observation."""
        m = CpuCostModel()
        # Ch.21-like likelihood+recycle mix.
        e = CpuEvents(
            seq_read_bytes=6_160_000_000_000,   # dense scans
            seq_write_bytes=6_160_000_000_000,  # recycle memsets
            random_accesses=9_000_000_000,
            instructions=9_000_000_000,
            log_calls=4_500_000_000,
        )
        speedup = m.time(e) / m.time_parallel(e, threads=16)
        assert 2.5 < speedup < 4.5
