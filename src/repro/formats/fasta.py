"""Minimal FASTA reader/writer for reference sequences."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..constants import BASES
from ..errors import FormatError
from ..seqsim.reference import Reference

_LINE_WIDTH = 70


def write_fasta(path: str | Path, references: list[Reference]) -> int:
    """Write references to a FASTA file; returns bytes written."""
    lut = np.frombuffer(BASES.encode(), dtype=np.uint8)
    total = 0
    with open(path, "wb") as f:
        for ref in references:
            header = f">{ref.name}\n".encode()
            f.write(header)
            total += len(header)
            seq = lut[ref.codes].tobytes()
            for i in range(0, len(seq), _LINE_WIDTH):
                line = seq[i : i + _LINE_WIDTH] + b"\n"
                f.write(line)
                total += len(line)
    return total


def read_fasta(path: str | Path) -> list[Reference]:
    """Read all sequences from a FASTA file."""
    refs: list[Reference] = []
    name: str | None = None
    chunks: list[str] = []

    def flush() -> None:
        if name is not None:
            refs.append(Reference.from_string(name, "".join(chunks)))

    with open(path, "r") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                flush()
                name = line[1:].split()[0]
                if not name:
                    raise FormatError(f"{path}:{lineno}: empty sequence name")
                chunks = []
            else:
                if name is None:
                    raise FormatError(
                        f"{path}:{lineno}: sequence data before header"
                    )
                chunks.append(line)
    flush()
    if not refs:
        raise FormatError(f"{path}: no sequences found")
    return refs
