"""Streaming window reader over SOAP alignment files.

The production input is "hundreds of gigabytes of short read alignment
results ordered by their matched positions" (Section III-A) — far beyond
memory.  :class:`StreamingSoapReader` yields the same
:class:`~repro.formats.window.Window` objects as the in-memory
:class:`~repro.formats.window.WindowReader`, but parses the file
incrementally: it keeps only the reads overlapping the current window,
exploiting the position-sorted order to discard everything behind the
window front.

Reads spanning a window boundary are retained and re-delivered to the next
window, exactly like the in-memory reader (tested equivalent).
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..align.records import AlignmentBatch
from ..errors import FormatError, PipelineError
from .soap import parse_soap_record, quarantine_record
from .window import Window


class _SoapRecordStream:
    """Incremental pull of parsed, validated records from a SOAP file.

    Exploits the position-sorted order: :meth:`pull_past` parses just far
    enough that everything overlapping a range boundary is resident, and
    :meth:`take_overlapping` drops records entirely behind the range front.
    Shared by the window-granularity :class:`StreamingSoapReader` and the
    shard-granularity :class:`ShardBatchReader`.
    """

    def __init__(
        self, f, path, n_sites: int, chrom: str | None,
        quarantine=None,
    ) -> None:
        self._lines = enumerate(f, 1)
        self.path = path
        self.n_sites = n_sites
        self.chrom = chrom or ""
        self.quarantine = quarantine
        self.n_quarantined = 0
        self.read_len = 0
        self.bytes_read = 0
        self.pending: list[tuple] = []
        self._last_pos = -1
        self._exhausted = False

    def pull_past(self, end: int) -> None:
        """Parse lines until a read starts at/after ``end`` (kept pending);
        sorted order guarantees nothing later overlaps ``[.., end)``."""
        while not self._exhausted:
            try:
                lineno, raw = next(self._lines)
            except StopIteration:
                self._exhausted = True
                return
            self.bytes_read += len(raw)
            raw = raw.rstrip(b"\n")
            if not raw:
                continue
            try:
                rec = parse_soap_record(raw, lineno, self.path)
            except FormatError as exc:
                if self.quarantine is None:
                    raise
                quarantine_record(
                    self.quarantine, self.path, lineno, raw, str(exc)
                )
                self.n_quarantined += 1
                continue
            if not self.chrom:
                self.chrom = raw.split(b"\t")[6].decode()
            if rec[0] < self._last_pos:
                raise FormatError(
                    f"{self.path}:{lineno}: positions not sorted"
                )
            self._last_pos = rec[0]
            if self.read_len == 0:
                self.read_len = rec[3].size
            elif rec[3].size != self.read_len:
                raise FormatError(
                    f"{self.path}:{lineno}: mixed read lengths"
                )
            if rec[0] + self.read_len > self.n_sites:
                raise PipelineError(
                    f"{self.path}:{lineno}: read extends past the "
                    f"reference end"
                )
            self.pending.append(rec)
            if rec[0] >= end:
                return

    def take_overlapping(self, start: int, end: int) -> list[tuple]:
        """Records overlapping ``[start, end)``; drops those behind it.

        Records spanning the range's end stay pending, so they are also
        delivered to the next range — the boundary-read duplication both
        the in-memory reader and the shard planner rely on.
        """
        self.pending = [
            r for r in self.pending if r[0] + self.read_len > start
        ]
        return [r for r in self.pending if r[0] < end]


class PrefetchIterator:
    """Double-buffered iteration: produce item N+1 while N is consumed.

    A background thread drains ``source`` into a bounded queue (depth =
    number of windows decoded ahead, CUDA-streams style), so the producer's
    work — window slicing, temp-input decode, file parsing — overlaps the
    consumer's compute.  Items are delivered in source order; producer
    exceptions re-raise at the consumer's matching position; abandoning the
    iterator mid-stream stops the producer promptly.

    Determinism: prefetching changes *when* items are produced, never what
    they contain or their order, so pipeline results and event counters are
    untouched by it.
    """

    _DEPTH_DEFAULT = 2

    def __init__(self, source: Iterable, depth: int = _DEPTH_DEFAULT) -> None:
        self.source = source
        self.depth = max(1, int(depth))

    def __iter__(self) -> Iterator:
        q: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def _put(item) -> bool:
            while not stop.is_set():
                try:
                    q.put(item, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        def _produce() -> None:
            try:
                for item in self.source:
                    if not _put(("item", item)):
                        return
                _put(("done", None))
            except BaseException as exc:  # re-raised on the consumer side
                _put(("err", exc))

        t = threading.Thread(
            target=_produce, name="gsnp-prefetch", daemon=True
        )
        t.start()
        try:
            while True:
                kind, payload = q.get()
                if kind == "done":
                    return
                if kind == "err":
                    raise payload
                yield payload
        finally:
            stop.set()
            t.join(timeout=5.0)


class StreamingSoapReader:
    """Iterate fixed-size windows over a SOAP file without loading it.

    Parameters
    ----------
    path:
        Position-sorted SOAP alignment file.
    n_sites:
        Reference length (windows cover ``[0, n_sites)``).
    window_size:
        Sites per window.
    chrom:
        Chromosome name stamped on emitted batches (defaults to the file's
        seventh column of the first record).
    quarantine:
        Optional quarantine file: malformed records are appended there
        (with coordinates) and skipped instead of aborting the stream.
    """

    def __init__(
        self,
        path: str | Path,
        n_sites: int,
        window_size: int,
        chrom: str | None = None,
        quarantine=None,
    ) -> None:
        if window_size <= 0:
            raise PipelineError("window size must be positive")
        self.path = Path(path)
        self.n_sites = n_sites
        self.window_size = window_size
        self.chrom = chrom
        self.quarantine = quarantine
        self.bytes_read = 0

    @property
    def n_windows(self) -> int:
        return -(-self.n_sites // self.window_size)

    def __iter__(self) -> Iterator[Window]:
        with open(self.path, "rb") as f:
            rs = _SoapRecordStream(
                f, self.path, self.n_sites, self.chrom,
                quarantine=self.quarantine,
            )
            for w in range(self.n_windows):
                start = w * self.window_size
                end = min(start + self.window_size, self.n_sites)
                rs.pull_past(end)
                overlap = rs.take_overlapping(start, end)
                self.bytes_read = rs.bytes_read
                yield Window(
                    start=start,
                    end=end,
                    reads=_batch_from_records(
                        overlap, rs.chrom, rs.read_len or self.window_size
                    ),
                )


class ShardBatchReader:
    """Stream per-range alignment batches from a position-sorted SOAP file.

    Given contiguous, sorted ``(start, end)`` site ranges (shards), yields
    ``(start, end, AlignmentBatch)`` with exactly the reads overlapping
    each range — boundary-spanning reads are delivered to both ranges, the
    same contract as window iteration.  Only the reads overlapping the
    current range are ever resident, so the sharded executor can pump a
    huge input file through its bounded queue with O(shard) memory.
    """

    def __init__(
        self,
        path: str | Path,
        ranges,
        n_sites: int,
        chrom: str | None = None,
        quarantine=None,
    ) -> None:
        self.path = Path(path)
        self.ranges = list(ranges)
        self.n_sites = n_sites
        self.chrom = chrom
        self.quarantine = quarantine
        self.bytes_read = 0
        last = 0
        for start, end in self.ranges:
            if start != last or end <= start or end > n_sites:
                raise PipelineError(
                    f"shard ranges must tile [0, {n_sites}) contiguously; "
                    f"got [{start}, {end}) after {last}"
                )
            last = end

    def __iter__(self) -> Iterator[tuple[int, int, AlignmentBatch]]:
        with open(self.path, "rb") as f:
            rs = _SoapRecordStream(
                f, self.path, self.n_sites, self.chrom,
                quarantine=self.quarantine,
            )
            for start, end in self.ranges:
                rs.pull_past(end)
                overlap = rs.take_overlapping(start, end)
                self.bytes_read = rs.bytes_read
                yield start, end, _batch_from_records(
                    overlap, rs.chrom, rs.read_len or 1
                )


def _batch_from_records(
    records: list[tuple], chrom: str, read_len: int
) -> AlignmentBatch:
    if not records:
        return AlignmentBatch.empty(chrom, read_len)
    pos = np.array([r[0] for r in records], dtype=np.int64)
    return AlignmentBatch(
        chrom=chrom,
        read_len=read_len,
        pos=pos,
        strand=np.array([r[1] for r in records], dtype=np.uint8),
        hits=np.array([r[2] for r in records], dtype=np.uint8),
        bases=np.vstack([r[3] for r in records]),
        quals=np.vstack([r[4] for r in records]),
    )
