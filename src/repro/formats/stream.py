"""Streaming window reader over SOAP alignment files.

The production input is "hundreds of gigabytes of short read alignment
results ordered by their matched positions" (Section III-A) — far beyond
memory.  :class:`StreamingSoapReader` yields the same
:class:`~repro.formats.window.Window` objects as the in-memory
:class:`~repro.formats.window.WindowReader`, but parses the file
incrementally: it keeps only the reads overlapping the current window,
exploiting the position-sorted order to discard everything behind the
window front.

Reads spanning a window boundary are retained and re-delivered to the next
window, exactly like the in-memory reader (tested equivalent).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..align.records import AlignmentBatch
from ..constants import BASES
from ..errors import FormatError, PipelineError
from .soap import QUAL_OFFSET
from .window import Window

_BASE_LUT = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _BASE_LUT[ord(_b)] = _i


def _parse_line(raw: bytes, lineno: int, path) -> tuple:
    parts = raw.split(b"\t")
    if len(parts) != 8:
        raise FormatError(
            f"{path}:{lineno}: expected 8 fields, got {len(parts)}"
        )
    _, seq, qual, n_hits, length, strand, _chrom, pos = parts
    codes = _BASE_LUT[np.frombuffer(seq, dtype=np.uint8)]
    if (codes == 255).any():
        raise FormatError(f"{path}:{lineno}: invalid base in read")
    q = np.frombuffer(qual, dtype=np.uint8).astype(np.int16) - QUAL_OFFSET
    if (q < 0).any() or (q >= 64).any():
        raise FormatError(f"{path}:{lineno}: quality out of range")
    if int(length) != codes.size or codes.size != q.size:
        raise FormatError(f"{path}:{lineno}: length mismatch")
    if strand not in (b"+", b"-"):
        raise FormatError(f"{path}:{lineno}: bad strand {strand!r}")
    return (
        int(pos) - 1,
        0 if strand == b"+" else 1,
        min(int(n_hits), 255),
        codes,
        q.astype(np.uint8),
    )


class StreamingSoapReader:
    """Iterate fixed-size windows over a SOAP file without loading it.

    Parameters
    ----------
    path:
        Position-sorted SOAP alignment file.
    n_sites:
        Reference length (windows cover ``[0, n_sites)``).
    window_size:
        Sites per window.
    chrom:
        Chromosome name stamped on emitted batches (defaults to the file's
        seventh column of the first record).
    """

    def __init__(
        self,
        path: str | Path,
        n_sites: int,
        window_size: int,
        chrom: str | None = None,
    ) -> None:
        if window_size <= 0:
            raise PipelineError("window size must be positive")
        self.path = Path(path)
        self.n_sites = n_sites
        self.window_size = window_size
        self.chrom = chrom
        self.bytes_read = 0

    @property
    def n_windows(self) -> int:
        return -(-self.n_sites // self.window_size)

    def __iter__(self) -> Iterator[Window]:
        pending: list[tuple] = []  # parsed reads not yet behind the front
        read_len = 0
        chrom = self.chrom or ""
        last_pos = -1

        with open(self.path, "rb") as f:
            line_iter = enumerate(f, 1)
            exhausted = False
            for w in range(self.n_windows):
                start = w * self.window_size
                end = min(start + self.window_size, self.n_sites)
                # Pull lines until a read starts at/after this window's end
                # (sorted order guarantees nothing later overlaps it).
                while not exhausted:
                    try:
                        lineno, raw = next(line_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    self.bytes_read += len(raw)
                    raw = raw.rstrip(b"\n")
                    if not raw:
                        continue
                    if not chrom:
                        chrom = raw.split(b"\t")[6].decode()
                    rec = _parse_line(raw, lineno, self.path)
                    if rec[0] < last_pos:
                        raise FormatError(
                            f"{self.path}:{lineno}: positions not sorted"
                        )
                    last_pos = rec[0]
                    if read_len == 0:
                        read_len = rec[3].size
                    elif rec[3].size != read_len:
                        raise FormatError(
                            f"{self.path}:{lineno}: mixed read lengths"
                        )
                    if rec[0] + read_len > self.n_sites:
                        raise PipelineError(
                            f"{self.path}:{lineno}: read extends past the "
                            f"reference end"
                        )
                    pending.append(rec)
                    if rec[0] >= end:
                        break
                # Drop reads entirely behind this window.
                pending = [
                    r for r in pending if r[0] + read_len > start
                ]
                overlap = [r for r in pending if r[0] < end]
                yield Window(
                    start=start,
                    end=end,
                    reads=_batch_from_records(
                        overlap, chrom, read_len or self.window_size
                    ),
                )


def _batch_from_records(
    records: list[tuple], chrom: str, read_len: int
) -> AlignmentBatch:
    if not records:
        return AlignmentBatch.empty(chrom, read_len)
    pos = np.array([r[0] for r in records], dtype=np.int64)
    return AlignmentBatch(
        chrom=chrom,
        read_len=read_len,
        pos=pos,
        strand=np.array([r[1] for r in records], dtype=np.uint8),
        hits=np.array([r[2] for r in records], dtype=np.uint8),
        bases=np.vstack([r[3] for r in records]),
        quals=np.vstack([r[4] for r in records]),
    )
