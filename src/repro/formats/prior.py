"""Known-SNP prior file (the third input of the pipeline).

One tab-separated line per known polymorphic site:

``chrom  pos(1-based)  rate``

where ``rate`` is the prior probability that the site is polymorphic in an
individual (derived from population allele frequencies).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import FormatError
from ..seqsim.datasets import KnownSnpPrior


def write_prior(path: str | Path, chrom: str, prior: KnownSnpPrior) -> int:
    """Write a prior file; returns bytes written."""
    total = 0
    with open(path, "wb") as f:
        for p, r in zip(prior.positions, prior.rates):
            line = f"{chrom}\t{int(p) + 1}\t{float(r):.6f}\n".encode()
            f.write(line)
            total += len(line)
    return total


def read_prior(path: str | Path, chrom: str | None = None) -> KnownSnpPrior:
    """Read a prior file (optionally filtered to one chromosome)."""
    positions: list[int] = []
    rates: list[float] = []
    with open(path, "r") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise FormatError(
                    f"{path}:{lineno}: expected 3 fields, got {len(parts)}"
                )
            c, pos, rate = parts
            if chrom is not None and c != chrom:
                continue
            r = float(rate)
            if not 0.0 <= r <= 1.0:
                raise FormatError(f"{path}:{lineno}: rate {r} out of [0,1]")
            positions.append(int(pos) - 1)
            rates.append(r)
    pos_arr = np.asarray(positions, dtype=np.int64)
    order = np.argsort(pos_arr, kind="stable")
    return KnownSnpPrior(
        positions=pos_arr[order],
        rates=np.asarray(rates, dtype=np.float64)[order],
    )
