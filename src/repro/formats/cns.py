"""The 17-column SNP result table (SOAPsnp ``.cns`` text format).

Each row describes one site (Section III-A: "the result of SNP detection is
a table, in which each row records SNP related information for a site").
Columns, following SOAPsnp's consensus output:

 1. chromosome name            10. second-best base (or N)
 2. position (1-based)         11. average quality of second best
 3. reference base             12. count of uniquely-mapped second best
 4. consensus genotype (IUPAC) 13. count of all second best
 5. consensus quality          14. sequencing depth
 6. best base                  15. rank-sum test p-value
 7. average quality of best    16. average copy number
 8. count of uniquely-mapped   17. known-SNP flag
    best
 9. count of all best

The in-memory representation is a struct-of-arrays :class:`ResultTable`;
the text codec reproduces SOAPsnp's row format (and hence its output
volume, the quantity Figures 9-10 measure).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from ..constants import (
    BASES,
    GENOTYPES,
    GENOTYPE_IUPAC,
    IUPAC_GENOTYPE,
    N_OUTPUT_COLUMNS,
)
from ..errors import FormatError

#: Sentinel base code meaning "no second allele observed".
NO_BASE = 4

_BASE_CHARS = BASES + "N"

#: Column-array fields of ResultTable in output order (cols 2..17).
COLUMN_FIELDS = (
    "pos",
    "ref_base",
    "genotype",
    "quality",
    "best_base",
    "avg_qual_best",
    "count_uni_best",
    "count_all_best",
    "second_base",
    "avg_qual_second",
    "count_uni_second",
    "count_all_second",
    "depth",
    "rank_sum",
    "copy_num",
    "known_snp",
)


@dataclass
class ResultTable:
    """Struct-of-arrays result table for one chromosome (or window)."""

    chrom: str
    pos: np.ndarray  # int64, 1-based
    ref_base: np.ndarray  # uint8 code 0..3
    genotype: np.ndarray  # uint8 genotype index 0..9
    quality: np.ndarray  # uint8 consensus quality 0..99
    best_base: np.ndarray  # uint8 code 0..3
    avg_qual_best: np.ndarray  # uint8
    count_uni_best: np.ndarray  # uint16
    count_all_best: np.ndarray  # uint16
    second_base: np.ndarray  # uint8 code 0..4 (4 = none)
    avg_qual_second: np.ndarray  # uint8
    count_uni_second: np.ndarray  # uint16
    count_all_second: np.ndarray  # uint16
    depth: np.ndarray  # uint16
    rank_sum: np.ndarray  # float32, quantized to 2 decimals
    copy_num: np.ndarray  # float32, quantized to 2 decimals
    known_snp: np.ndarray  # uint8 flag

    @property
    def n_sites(self) -> int:
        return int(self.pos.size)

    @property
    def n_columns(self) -> int:
        return N_OUTPUT_COLUMNS

    def validate(self) -> None:
        """Raise ValueError on shape or domain violations."""
        n = self.n_sites
        for f in fields(self):
            if f.name == "chrom":
                continue
            arr = getattr(self, f.name)
            if arr.shape != (n,):
                raise ValueError(f"column {f.name} shape {arr.shape} != ({n},)")
        if n == 0:
            return
        if self.genotype.max(initial=0) >= len(GENOTYPES):
            raise ValueError("genotype index out of range")
        if self.ref_base.max(initial=0) > 3 or self.best_base.max(initial=0) > 3:
            raise ValueError("base code out of range")
        if self.second_base.max(initial=0) > NO_BASE:
            raise ValueError("second base code out of range")

    @staticmethod
    def empty(chrom: str) -> "ResultTable":
        z8 = np.empty(0, dtype=np.uint8)
        z16 = np.empty(0, dtype=np.uint16)
        return ResultTable(
            chrom=chrom,
            pos=np.empty(0, dtype=np.int64),
            ref_base=z8.copy(), genotype=z8.copy(), quality=z8.copy(),
            best_base=z8.copy(), avg_qual_best=z8.copy(),
            count_uni_best=z16.copy(), count_all_best=z16.copy(),
            second_base=z8.copy(), avg_qual_second=z8.copy(),
            count_uni_second=z16.copy(), count_all_second=z16.copy(),
            depth=z16.copy(),
            rank_sum=np.empty(0, dtype=np.float32),
            copy_num=np.empty(0, dtype=np.float32),
            known_snp=z8.copy(),
        )

    def concat(self, other: "ResultTable") -> "ResultTable":
        """Append another table's rows (same chromosome)."""
        kwargs = {"chrom": self.chrom}
        for f in fields(self):
            if f.name == "chrom":
                continue
            kwargs[f.name] = np.concatenate(
                [getattr(self, f.name), getattr(other, f.name)]
            )
        return ResultTable(**kwargs)

    def row(self, i: int) -> dict:
        """Row i as a plain dict (for tests and spot checks)."""
        return {f.name: getattr(self, f.name)[i] for f in fields(self)
                if f.name != "chrom"}

    def equals(self, other: "ResultTable") -> bool:
        """Exact equality of all columns (the §IV-G consistency check)."""
        if self.chrom != other.chrom or self.n_sites != other.n_sites:
            return False
        for f in fields(self):
            if f.name == "chrom":
                continue
            if not np.array_equal(getattr(self, f.name), getattr(other, f.name)):
                return False
        return True


def format_rows(table: ResultTable) -> bytes:
    """Render a table as SOAPsnp-style tab-separated text."""
    out: list[str] = []
    for i in range(table.n_sites):
        g = GENOTYPE_IUPAC[GENOTYPES[int(table.genotype[i])]]
        out.append(
            "\t".join(
                (
                    table.chrom,
                    str(int(table.pos[i])),
                    _BASE_CHARS[int(table.ref_base[i])],
                    g,
                    str(int(table.quality[i])),
                    _BASE_CHARS[int(table.best_base[i])],
                    str(int(table.avg_qual_best[i])),
                    str(int(table.count_uni_best[i])),
                    str(int(table.count_all_best[i])),
                    _BASE_CHARS[int(table.second_base[i])],
                    str(int(table.avg_qual_second[i])),
                    str(int(table.count_uni_second[i])),
                    str(int(table.count_all_second[i])),
                    str(int(table.depth[i])),
                    f"{float(table.rank_sum[i]):.2f}",
                    f"{float(table.copy_num[i]):.2f}",
                    str(int(table.known_snp[i])),
                )
            )
            + "\n"
        )
    return "".join(out).encode()


def write_cns(path: str | Path, table: ResultTable, append: bool = False) -> int:
    """Write a table as text; returns bytes written."""
    data = format_rows(table)
    with open(path, "ab" if append else "wb") as f:
        f.write(data)
    return len(data)


def parse_rows(data: bytes, chrom_hint: str | None = None) -> ResultTable:
    """Parse tab-separated rows back into a table."""
    base_idx = {c: i for i, c in enumerate(_BASE_CHARS)}
    cols: dict[str, list] = {name: [] for name in COLUMN_FIELDS}
    chrom = chrom_hint or ""
    for lineno, line in enumerate(data.decode().splitlines(), 1):
        if not line:
            continue
        parts = line.split("\t")
        if len(parts) != N_OUTPUT_COLUMNS:
            raise FormatError(
                f"line {lineno}: expected {N_OUTPUT_COLUMNS} columns, "
                f"got {len(parts)}"
            )
        chrom = parts[0]
        cols["pos"].append(int(parts[1]))
        cols["ref_base"].append(base_idx[parts[2]])
        g = IUPAC_GENOTYPE.get(parts[3])
        if g is None:
            raise FormatError(f"line {lineno}: bad genotype {parts[3]!r}")
        cols["genotype"].append(GENOTYPES.index(g))
        cols["quality"].append(int(parts[4]))
        cols["best_base"].append(base_idx[parts[5]])
        cols["avg_qual_best"].append(int(parts[6]))
        cols["count_uni_best"].append(int(parts[7]))
        cols["count_all_best"].append(int(parts[8]))
        cols["second_base"].append(base_idx[parts[9]])
        cols["avg_qual_second"].append(int(parts[10]))
        cols["count_uni_second"].append(int(parts[11]))
        cols["count_all_second"].append(int(parts[12]))
        cols["depth"].append(int(parts[13]))
        cols["rank_sum"].append(float(parts[14]))
        cols["copy_num"].append(float(parts[15]))
        cols["known_snp"].append(int(parts[16]))
    dtypes = {
        "pos": np.int64, "ref_base": np.uint8, "genotype": np.uint8,
        "quality": np.uint8, "best_base": np.uint8, "avg_qual_best": np.uint8,
        "count_uni_best": np.uint16, "count_all_best": np.uint16,
        "second_base": np.uint8, "avg_qual_second": np.uint8,
        "count_uni_second": np.uint16, "count_all_second": np.uint16,
        "depth": np.uint16, "rank_sum": np.float32, "copy_num": np.float32,
        "known_snp": np.uint8,
    }
    return ResultTable(
        chrom=chrom,
        **{
            name: np.asarray(vals, dtype=dtypes[name])
            for name, vals in cols.items()
        },
    )


def read_cns(path: str | Path) -> ResultTable:
    """Read a .cns text file into a table."""
    with open(path, "rb") as f:
        return parse_rows(f.read())
