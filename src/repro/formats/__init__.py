"""File formats and windowed input: FASTA, SOAP alignments, priors, CNS."""

from .cns import (
    COLUMN_FIELDS,
    NO_BASE,
    ResultTable,
    format_rows,
    parse_rows,
    read_cns,
    write_cns,
)
from .fasta import read_fasta, write_fasta
from .fastq import read_fastq, write_fastq
from .prior import read_prior, write_prior
from .soap import read_soap, soap_line_bytes, write_soap
from .stream import StreamingSoapReader
from .window import Window, WindowReader

__all__ = [
    "COLUMN_FIELDS",
    "NO_BASE",
    "ResultTable",
    "StreamingSoapReader",
    "Window",
    "WindowReader",
    "format_rows",
    "parse_rows",
    "read_cns",
    "read_fasta",
    "read_fastq",
    "read_prior",
    "read_soap",
    "soap_line_bytes",
    "write_cns",
    "write_fasta",
    "write_fastq",
    "write_prior",
    "write_soap",
]
