"""SOAP-style alignment text format.

The main input file of the pipeline: one tab-separated line per aligned
read, ordered by matched position (the paper's "hundreds of gigabytes of
short read alignment results ordered by their matched positions").  Layout
(a simplified SOAP ``.soap``):

``read_id  seq  qual  n_hits  length  strand(+/-)  chrom  pos(1-based)``

``seq``/``qual`` are stored in forward-reference orientation (reverse reads
are already complemented back), which is how the counting component wants
them; the machine cycle of forward offset ``j`` on a reverse read is
``length - 1 - j``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..constants import BASES
from ..errors import FormatError
from ..faults.degrade import degrade
from ..faults.plan import fault_point
from ..align.records import AlignmentBatch

#: Phred+33 quality encoding offset (Sanger FASTQ convention).
QUAL_OFFSET = 33

_BASE_LUT = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _BASE_LUT[ord(_b)] = _i


def parse_soap_record(raw: bytes, lineno: int, path) -> tuple:
    """Parse one SOAP line into ``(pos0, strand, hits, codes, quals)``.

    Every :class:`~repro.errors.FormatError` carries ``file:line``
    coordinates plus the offending field, so a malformed record in a
    multi-hour run can be located (and quarantined) without bisecting the
    input.  The single shared parser for the in-memory and streaming
    readers — and the one place the ``formats.soap.record`` fault site can
    corrupt a record in flight.
    """
    raw = fault_point("formats.soap.record", key=lineno, value=raw)
    parts = raw.split(b"\t")
    if len(parts) != 8:
        raise FormatError(
            f"{path}:{lineno}: expected 8 fields (tab-separated), got "
            f"{len(parts)} (truncated record?)"
        )
    _, seq, qual, n_hits, length, strand, _chrom, pos = parts
    codes = _BASE_LUT[np.frombuffer(seq, dtype=np.uint8)]
    if (codes == 255).any():
        bad = seq[int(np.argmax(codes == 255))]
        raise FormatError(
            f"{path}:{lineno}: invalid base {chr(bad)!r} in read"
        )
    q = np.frombuffer(qual, dtype=np.uint8).astype(np.int16) - QUAL_OFFSET
    if (q < 0).any() or (q >= 64).any():
        raise FormatError(
            f"{path}:{lineno}: quality out of range [0, 64) "
            f"(Phred+{QUAL_OFFSET})"
        )
    try:
        declared_len = int(length)
        pos0 = int(pos) - 1
        hits = int(n_hits)
    except ValueError as exc:
        raise FormatError(
            f"{path}:{lineno}: non-numeric length/hits/position field: "
            f"{exc}"
        ) from exc
    if declared_len != codes.size or codes.size != q.size:
        raise FormatError(
            f"{path}:{lineno}: length mismatch (declared {declared_len}, "
            f"seq {codes.size}, qual {q.size})"
        )
    if strand not in (b"+", b"-"):
        raise FormatError(f"{path}:{lineno}: bad strand {strand!r}")
    return (
        pos0,
        0 if strand == b"+" else 1,
        min(hits, 255),
        codes,
        q.astype(np.uint8),
    )


def quarantine_record(
    quarantine, path, lineno: int, raw: bytes, reason: str
) -> None:
    """Append a malformed record (with coordinates) to the quarantine file
    and announce the downgrade — the last rung of the degradation ladder:
    the record is *dropped*, so this is opt-in and never silent."""
    with open(quarantine, "ab") as f:
        f.write(f"{path}:{lineno}: {reason}\t".encode() + raw + b"\n")
    degrade(
        "record-quarantine",
        action=f"record skipped -> {quarantine}",
        reason=reason,
        file=str(path),
        line=lineno,
    )


def write_soap(path: str | Path, batch: AlignmentBatch) -> int:
    """Write an alignment batch as SOAP text; returns bytes written."""
    lut = np.frombuffer(BASES.encode(), dtype=np.uint8)
    total = 0
    with open(path, "wb") as f:
        for i in range(batch.n_reads):
            seq = lut[batch.bases[i]].tobytes().decode()
            qual = (batch.quals[i] + QUAL_OFFSET).astype(np.uint8).tobytes().decode()
            strand = "+" if batch.strand[i] == 0 else "-"
            line = (
                f"read_{i}\t{seq}\t{qual}\t{int(batch.hits[i])}\t"
                f"{batch.read_len}\t{strand}\t{batch.chrom}\t"
                f"{int(batch.pos[i]) + 1}\n"
            ).encode()
            f.write(line)
            total += len(line)
    return total


def soap_line_bytes(read_len: int) -> int:
    """Approximate bytes per SOAP line for a given read length."""
    return 2 * read_len + 40


def read_soap(
    path: str | Path, quarantine: str | Path | None = None
) -> AlignmentBatch:
    """Parse a SOAP alignment file into a position-sorted batch.

    With ``quarantine`` set, a malformed record is appended to that file
    (with ``file:line: reason`` coordinates) and skipped instead of
    aborting the parse; structural problems spanning records (mixed read
    lengths, an empty file) still raise.
    """
    pos_l: list[int] = []
    strand_l: list[int] = []
    hits_l: list[int] = []
    bases_l: list[np.ndarray] = []
    quals_l: list[np.ndarray] = []
    chrom = ""
    read_len = 0
    n_quarantined = 0
    with open(path, "rb") as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.rstrip(b"\n")
            if not raw:
                continue
            try:
                pos0, strand, hits, codes, quals = parse_soap_record(
                    raw, lineno, path
                )
            except FormatError as exc:
                if quarantine is None:
                    raise
                quarantine_record(quarantine, path, lineno, raw, str(exc))
                n_quarantined += 1
                continue
            if read_len == 0:
                read_len = codes.size
                chrom = raw.split(b"\t")[6].decode()
            elif codes.size != read_len:
                raise FormatError(
                    f"{path}:{lineno}: mixed read lengths not supported "
                    f"(expected {read_len}, got {codes.size})"
                )
            pos_l.append(pos0)
            strand_l.append(strand)
            hits_l.append(hits)
            bases_l.append(codes)
            quals_l.append(quals)
    if not pos_l:
        raise FormatError(
            f"{path}:1: empty alignment file"
            + (
                f" ({n_quarantined} record(s) quarantined)"
                if n_quarantined
                else ""
            )
        )
    pos = np.asarray(pos_l, dtype=np.int64)
    order = np.argsort(pos, kind="stable")
    return AlignmentBatch(
        chrom=chrom,
        read_len=read_len,
        pos=pos[order],
        strand=np.asarray(strand_l, dtype=np.uint8)[order],
        hits=np.asarray(hits_l, dtype=np.uint8)[order],
        bases=np.vstack(bases_l)[order],
        quals=np.vstack(quals_l)[order],
    )
