"""SOAP-style alignment text format.

The main input file of the pipeline: one tab-separated line per aligned
read, ordered by matched position (the paper's "hundreds of gigabytes of
short read alignment results ordered by their matched positions").  Layout
(a simplified SOAP ``.soap``):

``read_id  seq  qual  n_hits  length  strand(+/-)  chrom  pos(1-based)``

``seq``/``qual`` are stored in forward-reference orientation (reverse reads
are already complemented back), which is how the counting component wants
them; the machine cycle of forward offset ``j`` on a reverse read is
``length - 1 - j``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..constants import BASES
from ..errors import FormatError
from ..align.records import AlignmentBatch

#: Phred+33 quality encoding offset (Sanger FASTQ convention).
QUAL_OFFSET = 33


def write_soap(path: str | Path, batch: AlignmentBatch) -> int:
    """Write an alignment batch as SOAP text; returns bytes written."""
    lut = np.frombuffer(BASES.encode(), dtype=np.uint8)
    total = 0
    with open(path, "wb") as f:
        for i in range(batch.n_reads):
            seq = lut[batch.bases[i]].tobytes().decode()
            qual = (batch.quals[i] + QUAL_OFFSET).astype(np.uint8).tobytes().decode()
            strand = "+" if batch.strand[i] == 0 else "-"
            line = (
                f"read_{i}\t{seq}\t{qual}\t{int(batch.hits[i])}\t"
                f"{batch.read_len}\t{strand}\t{batch.chrom}\t"
                f"{int(batch.pos[i]) + 1}\n"
            ).encode()
            f.write(line)
            total += len(line)
    return total


def soap_line_bytes(read_len: int) -> int:
    """Approximate bytes per SOAP line for a given read length."""
    return 2 * read_len + 40


def read_soap(path: str | Path) -> AlignmentBatch:
    """Parse a SOAP alignment file into a position-sorted batch."""
    base_lut = np.full(256, 255, dtype=np.uint8)
    for i, b in enumerate(BASES):
        base_lut[ord(b)] = i
    pos_l: list[int] = []
    strand_l: list[int] = []
    hits_l: list[int] = []
    bases_l: list[np.ndarray] = []
    quals_l: list[np.ndarray] = []
    chrom = ""
    read_len = 0
    with open(path, "rb") as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.rstrip(b"\n")
            if not raw:
                continue
            parts = raw.split(b"\t")
            if len(parts) != 8:
                raise FormatError(
                    f"{path}:{lineno}: expected 8 fields, got {len(parts)}"
                )
            _, seq, qual, n_hits, length, strand, chrom_b, pos = parts
            codes = base_lut[np.frombuffer(seq, dtype=np.uint8)]
            if (codes == 255).any():
                raise FormatError(f"{path}:{lineno}: invalid base in read")
            q = np.frombuffer(qual, dtype=np.uint8).astype(np.int16) - QUAL_OFFSET
            if (q < 0).any() or (q >= 64).any():
                raise FormatError(f"{path}:{lineno}: quality out of range")
            if int(length) != codes.size or codes.size != q.size:
                raise FormatError(f"{path}:{lineno}: length mismatch")
            if strand not in (b"+", b"-"):
                raise FormatError(f"{path}:{lineno}: bad strand {strand!r}")
            if read_len == 0:
                read_len = codes.size
                chrom = chrom_b.decode()
            elif codes.size != read_len:
                raise FormatError(
                    f"{path}:{lineno}: mixed read lengths not supported"
                )
            pos_l.append(int(pos) - 1)
            strand_l.append(0 if strand == b"+" else 1)
            hits_l.append(min(int(n_hits), 255))
            bases_l.append(codes)
            quals_l.append(q.astype(np.uint8))
    if not pos_l:
        raise FormatError(f"{path}: empty alignment file")
    pos = np.asarray(pos_l, dtype=np.int64)
    order = np.argsort(pos, kind="stable")
    return AlignmentBatch(
        chrom=chrom,
        read_len=read_len,
        pos=pos[order],
        strand=np.asarray(strand_l, dtype=np.uint8)[order],
        hits=np.asarray(hits_l, dtype=np.uint8)[order],
        bases=np.vstack(bases_l)[order],
        quals=np.vstack(quals_l)[order],
    )
