"""FASTQ reader/writer for raw (machine-orientation) reads.

The upstream contract of the whole system: the sequencer emits FASTQ, the
aligner produces SOAP alignments, the callers consume those.  This module
closes the loop so the aligner substrate can be driven from files.
Qualities use the Sanger Phred+33 convention.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..constants import BASES
from ..errors import FormatError
from .soap import QUAL_OFFSET


def write_fastq(
    path: str | Path,
    reads: np.ndarray,
    quals: np.ndarray,
    name_prefix: str = "read",
) -> int:
    """Write (n, read_len) base codes + qualities as FASTQ; returns bytes."""
    reads = np.asarray(reads, dtype=np.uint8)
    quals = np.asarray(quals, dtype=np.uint8)
    if reads.shape != quals.shape or reads.ndim != 2:
        raise FormatError("reads/quals must be matching (n, read_len) arrays")
    lut = np.frombuffer(BASES.encode(), dtype=np.uint8)
    total = 0
    with open(path, "wb") as f:
        for i in range(reads.shape[0]):
            seq = lut[reads[i]].tobytes()
            q = (quals[i] + QUAL_OFFSET).astype(np.uint8).tobytes()
            rec = b"@%s_%d\n%s\n+\n%s\n" % (
                name_prefix.encode(), i, seq, q
            )
            f.write(rec)
            total += len(rec)
    return total


def read_fastq(path: str | Path) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Read a FASTQ file into (bases, quals, names).

    All reads must share one length (the second-generation fixed-length
    regime this system targets).
    """
    base_lut = np.full(256, 255, dtype=np.uint8)
    for i, b in enumerate(BASES):
        base_lut[ord(b)] = i
    names: list[str] = []
    bases_l: list[np.ndarray] = []
    quals_l: list[np.ndarray] = []
    with open(path, "rb") as f:
        lines = f.read().splitlines()
    if len(lines) % 4:
        raise FormatError(
            f"{path}:{len(lines)}: FASTQ line count not a multiple of 4 "
            f"(truncated record {len(lines) // 4}?)"
        )
    read_len = 0
    for r in range(0, len(lines), 4):
        # 1-based line of the record's '@' header, for operator coordinates.
        line = r + 1
        header, seq, plus, qual = lines[r : r + 4]
        if not header.startswith(b"@"):
            raise FormatError(
                f"{path}:{line}: record {r // 4}: missing '@' header"
            )
        if not plus.startswith(b"+"):
            raise FormatError(
                f"{path}:{line + 2}: record {r // 4}: missing '+' line"
            )
        codes = base_lut[np.frombuffer(seq, dtype=np.uint8)]
        if (codes == 255).any():
            bad = seq[int(np.argmax(codes == 255))]
            raise FormatError(
                f"{path}:{line + 1}: record {r // 4}: invalid base "
                f"{chr(bad)!r}"
            )
        q = np.frombuffer(qual, dtype=np.uint8).astype(np.int16) - QUAL_OFFSET
        if (q < 0).any() or (q >= 64).any():
            raise FormatError(
                f"{path}:{line + 3}: record {r // 4}: quality out of range "
                f"[0, 64) (Phred+{QUAL_OFFSET})"
            )
        if codes.size != q.size:
            raise FormatError(
                f"{path}:{line + 1}: record {r // 4}: seq/qual length "
                f"mismatch ({codes.size} vs {q.size})"
            )
        if read_len == 0:
            read_len = codes.size
        elif codes.size != read_len:
            raise FormatError(
                f"{path}:{line + 1}: record {r // 4}: mixed read lengths "
                f"not supported (expected {read_len}, got {codes.size})"
            )
        names.append(header[1:].decode())
        bases_l.append(codes)
        quals_l.append(q.astype(np.uint8))
    if not bases_l:
        raise FormatError(f"{path}:1: empty FASTQ")
    return np.vstack(bases_l), np.vstack(quals_l), names
