"""Windowed site reader — the ``read_site`` component.

Both pipelines process the chromosome in fixed-size windows of sites
(Figure 1/2: "the component read_site loads a fixed number of sites (a
window) from input files").  A window needs every read overlapping any of
its sites, so reads spanning a window boundary are delivered to both
windows; per-site counting later selects only the in-window offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..align.records import AlignmentBatch
from ..errors import PipelineError


@dataclass(frozen=True)
class Window:
    """One window of sites plus the reads overlapping it."""

    start: int  # first site (0-based, inclusive)
    end: int  # last site (exclusive)
    reads: AlignmentBatch

    @property
    def n_sites(self) -> int:
        return self.end - self.start


class WindowReader:
    """Iterate fixed-size windows over a position-sorted alignment batch.

    ``start``/``stop`` restrict iteration to the windows covering
    ``[start, stop)``; window boundaries stay anchored at ``start``, so a
    shard whose ``start`` is a multiple of ``window_size`` reproduces
    exactly the windows a full ``[0, n_sites)`` run would emit for that
    range (the property :mod:`repro.exec` relies on for bitwise-identical
    sharded output).
    """

    def __init__(
        self,
        alignments: AlignmentBatch,
        n_sites: int,
        window_size: int,
        start: int = 0,
        stop: int | None = None,
    ) -> None:
        if window_size <= 0:
            raise PipelineError("window size must be positive")
        if alignments.n_reads and (
            alignments.pos[-1] + alignments.read_len > n_sites
        ):
            raise PipelineError("alignments extend past the reference end")
        stop = n_sites if stop is None else min(stop, n_sites)
        if not 0 <= start < stop:
            raise PipelineError(
                f"empty or invalid site range [{start}, {stop})"
            )
        self.alignments = alignments
        self.n_sites = n_sites
        self.window_size = window_size
        self.start = start
        self.stop = stop

    @property
    def n_windows(self) -> int:
        return -(-(self.stop - self.start) // self.window_size)

    def __iter__(self) -> Iterator[Window]:
        aln = self.alignments
        read_len = aln.read_len
        for w in range(self.n_windows):
            start = self.start + w * self.window_size
            end = min(start + self.window_size, self.stop)
            # Reads overlapping [start, end): pos in (start-read_len, end).
            lo = int(np.searchsorted(aln.pos, start - read_len + 1, "left"))
            hi = int(np.searchsorted(aln.pos, end, "left"))
            yield Window(start=start, end=end, reads=aln.slice(lo, hi))
