"""Two-level RLE-DICT compression (Section V-B).

"We first apply run-length encoding (RLE) to compress repeats, which
produces two arrays storing the value and length for each run.  Next, we
use the dictionary-based encoding (DICT) to compress both run value and
length arrays."  The GPU variant implements RLE with the *reduction*
primitive (run-boundary flags reduced to counts) and DICT with
sort/unique/binary-search, matching the paper's kernel inventory.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CodecError
from ..gpusim.device import Device
from ..gpusim.memory import DeviceArray
from ..gpusim.primitives.reduce import device_reduce
from .dictionary import dict_decode, dict_encode, dict_encode_gpu
from .rle import rle_decode, rle_encode


def rle_dict_encode(values: np.ndarray) -> bytes:
    """RLE, then DICT on run values and (uint32) run lengths."""
    run_values, run_lengths = rle_encode(np.asarray(values))
    if run_lengths.size and int(run_lengths.max()) >= 1 << 32:
        raise CodecError("run too long for uint32 length storage")
    v_blob = dict_encode(run_values)
    l_blob = dict_encode(run_lengths.astype(np.uint32))
    return struct.pack("<II", len(v_blob), len(l_blob)) + v_blob + l_blob


def rle_dict_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`rle_dict_encode`."""
    if len(data) < 8:
        raise CodecError("truncated RLE-DICT header")
    nv, nl = struct.unpack_from("<II", data, 0)
    off = 8
    run_values = dict_decode(data[off : off + nv])
    run_lengths = dict_decode(data[off + nv : off + nv + nl])
    return rle_decode(run_values, run_lengths.astype(np.int64))


def _flag_runs_kernel(ctx, values: DeviceArray, flags: DeviceArray, n: int):
    """Thread t flags whether position t starts a new run."""
    active = ctx.tid < n
    v = ctx.gload(values, ctx.tid, active=active)
    left = ctx.gload(values, np.maximum(ctx.tid - 1, 0), active=active)
    is_new = (ctx.tid == 0) | (v != left)
    ctx.instr(2, active=active)
    ctx.gstore(flags, ctx.tid, is_new.astype(flags.dtype), active=active)


def rle_dict_encode_gpu(device: Device, values: np.ndarray) -> bytes:
    """GPU RLE-DICT: run flags + reduction for RLE, device DICT for both
    arrays.  Byte-identical to the CPU encoder."""
    values = np.asarray(values)
    if values.size:
        if values.dtype.kind in "ui" and values.itemsize <= 4:
            work = values.astype(np.uint32)
        else:
            work = np.searchsorted(np.unique(values), values).astype(np.uint32)
        vals_dev = device.to_device(work, "rle.values")
        flags = device.alloc(values.size, np.int64, "rle.flags")
        device.launch(
            _flag_runs_kernel, values.size, vals_dev, flags, values.size,
            name="rle_flag",
        )
        # Number of runs via the reduction primitive (the paper: "RLE is
        # implemented using the primitive reduction on the GPU").
        _n_runs = int(device_reduce(device, flags, op="sum"))
        device.free(vals_dev)
        device.free(flags)
        run_values, run_lengths = rle_encode(values)
        assert _n_runs == run_values.size
        v_blob = dict_encode_gpu(device, run_values)
        l_blob = dict_encode_gpu(device, run_lengths.astype(np.uint32))
    else:
        v_blob = dict_encode(values)
        l_blob = dict_encode(np.empty(0, dtype=np.uint32))
    return struct.pack("<II", len(v_blob), len(l_blob)) + v_blob + l_blob
