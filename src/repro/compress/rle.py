"""Run-length encoding (first level of RLE-DICT, Section V-B).

Quality-related columns repeat for "usually around tens of consecutive
sites" because bases on a short read share sequencing quality; RLE turns a
column into (run values, run lengths), both of which the DICT level then
compresses further.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError


def rle_encode(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode into (run_values, run_lengths); lengths are int64."""
    values = np.asarray(values)
    if values.size == 0:
        return values[:0].copy(), np.empty(0, dtype=np.int64)
    change = np.concatenate([[True], values[1:] != values[:-1]])
    starts = np.nonzero(change)[0]
    lengths = np.diff(np.concatenate([starts, [values.size]]))
    return values[starts].copy(), lengths.astype(np.int64)


def rle_decode(
    run_values: np.ndarray, run_lengths: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    run_values = np.asarray(run_values)
    run_lengths = np.asarray(run_lengths)
    if run_values.shape != run_lengths.shape:
        raise CodecError("run value/length arrays differ in shape")
    if run_lengths.size and int(run_lengths.min()) <= 0:
        raise CodecError("run lengths must be positive")
    return np.repeat(run_values, run_lengths)


def mean_run_length(values: np.ndarray) -> float:
    """Average run length of a column (diagnostic for codec choice).

    Counts change points directly instead of materialising the full
    ``rle_encode`` run arrays — the run count is all the statistic needs.
    """
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    n_runs = 1 + int(np.count_nonzero(values[1:] != values[:-1]))
    return values.size / n_runs
