"""Decompression tools and APIs for GSNP output (Section V-B).

"Higher level applications based on the SNP detection result are to query
sites satisfying certain conditions.  A common operation is a sequential
read on the SNP output data."  :class:`CompressedResultReader` iterates the
window blocks of a compressed result file, decompressing in memory, and
offers simple site-range / SNP-only queries on top.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import CodecError
from ..formats.cns import ResultTable
from .columnar import decode_table


class CompressedResultReader:
    """Sequential reader over a GSNP compressed result file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as f:
            self._data = f.read()
        if not self._data:
            raise CodecError(f"{path}: empty compressed result")

    def __iter__(self) -> Iterator[ResultTable]:
        """Yield one decoded table per window block."""
        offset = 0
        while offset < len(self._data):
            table, offset = decode_table(self._data, offset)
            yield table

    def read_all(self) -> ResultTable:
        """Decode and concatenate every block."""
        tables = list(self)
        full = tables[0]
        for t in tables[1:]:
            full = full.concat(t)
        return full

    def query_range(self, lo: int, hi: int) -> ResultTable:
        """All rows with 1-based position in [lo, hi)."""
        parts = []
        for table in self:
            if table.n_sites == 0:
                continue
            first, last = int(table.pos[0]), int(table.pos[-1])
            if last < lo or first >= hi:
                continue
            mask = (table.pos >= lo) & (table.pos < hi)
            parts.append(_select(table, mask))
        if not parts:
            raise CodecError(f"no rows in range [{lo}, {hi})")
        full = parts[0]
        for t in parts[1:]:
            full = full.concat(t)
        return full

    def query_snps(self) -> ResultTable:
        """Only rows whose consensus differs from hom-reference."""
        from ..soapsnp.posterior import is_snp_call

        parts = []
        chrom = ""
        for table in self:
            chrom = table.chrom
            mask = is_snp_call(table)
            if mask.any():
                parts.append(_select(table, mask))
        if not parts:
            return ResultTable.empty(chrom)
        full = parts[0]
        for t in parts[1:]:
            full = full.concat(t)
        return full


def _select(table: ResultTable, mask: np.ndarray) -> ResultTable:
    from dataclasses import fields

    kwargs = {"chrom": table.chrom}
    for f in fields(table):
        if f.name == "chrom":
            continue
        kwargs[f.name] = getattr(table, f.name)[mask]
    return ResultTable(**kwargs)
