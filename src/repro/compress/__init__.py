"""Customized compression subsystem (Section V)."""

from .bitpack import bits_needed, pack_bits, unpack_bits
from .columnar import (
    RLE_DICT_COLUMNS,
    decode_alignments,
    decode_table,
    encode_alignments,
    encode_table,
)
from .delta import delta_decode, delta_encode
from .dictionary import dict_decode, dict_encode, dict_encode_gpu
from .gzipcodec import (
    GZIP_COMPRESS_BW,
    GZIP_DECOMPRESS_BW,
    GzipStats,
    gzip_compress,
    gzip_decompress,
)
from .reader import CompressedResultReader
from .rle import mean_run_length, rle_decode, rle_encode
from .rle_dict import rle_dict_decode, rle_dict_encode, rle_dict_encode_gpu
from .sparse import (
    exception_decode,
    exception_encode,
    sparse_decode,
    sparse_encode,
)
from .twobit import twobit_decode, twobit_encode

__all__ = [
    "CompressedResultReader",
    "GZIP_COMPRESS_BW",
    "GZIP_DECOMPRESS_BW",
    "GzipStats",
    "RLE_DICT_COLUMNS",
    "bits_needed",
    "decode_alignments",
    "decode_table",
    "delta_decode",
    "delta_encode",
    "dict_decode",
    "dict_encode",
    "dict_encode_gpu",
    "encode_alignments",
    "encode_table",
    "exception_decode",
    "exception_encode",
    "gzip_compress",
    "gzip_decompress",
    "mean_run_length",
    "pack_bits",
    "rle_decode",
    "rle_dict_decode",
    "rle_dict_encode",
    "rle_dict_encode_gpu",
    "rle_encode",
    "sparse_decode",
    "sparse_encode",
    "twobit_decode",
    "twobit_encode",
    "unpack_bits",
]
