"""Dictionary (DICT) encoding with least-bits index packing (Section V-B).

The six quality-related output columns have "fewer than 100 distinct
values", so a dictionary of the distinct values plus ceil(log2(|dict|))-bit
indices beats byte storage by ~2-4x even before RLE.  The GPU encoder
builds the dictionary with the *sort* and *unique* primitives and looks
indices up with parallel *binary search*, loading the dictionary into
constant memory when it fits — exactly the paper's construction.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CodecError
from ..gpusim.device import Device
from ..gpusim.primitives.search import device_binary_search
from ..gpusim.primitives.sort import device_radix_sort
from ..gpusim.primitives.unique import device_unique
from .bitpack import bits_needed, pack_bits, unpack_bits

#: dtype tags persisted in encoded headers.
_DTYPES = {
    0: np.dtype(np.uint8),
    1: np.dtype(np.uint16),
    2: np.dtype(np.uint32),
    3: np.dtype(np.int64),
    4: np.dtype(np.float32),
    5: np.dtype(np.float64),
}
_DTYPE_TAGS = {v: k for k, v in _DTYPES.items()}


def dtype_tag(dtype: np.dtype) -> int:
    """Persisted tag of a supported dtype."""
    dt = np.dtype(dtype)
    if dt not in _DTYPE_TAGS:
        raise CodecError(f"unsupported column dtype {dt}")
    return _DTYPE_TAGS[dt]


def tag_dtype(tag: int) -> np.dtype:
    """Inverse of :func:`dtype_tag`."""
    if tag not in _DTYPES:
        raise CodecError(f"unknown dtype tag {tag}")
    return _DTYPES[tag]


def dict_encode(values: np.ndarray) -> bytes:
    """Encode an array as dictionary + packed indices.

    Header: ``<I count> <B dtype_tag> <H dict_size> <B width>``, then the
    dictionary values, then the packed index stream.
    """
    values = np.asarray(values)
    tag = dtype_tag(values.dtype)
    if values.size == 0:
        return struct.pack("<IBHB", 0, tag, 0, 1)
    table = np.unique(values)
    if table.size > 65535:
        raise CodecError("dictionary too large (>65535 entries)")
    idx = np.searchsorted(table, values)
    width = bits_needed(table.size - 1)
    header = struct.pack("<IBHB", values.size, tag, table.size, width)
    return header + table.tobytes() + pack_bits(idx, width)


def dict_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`dict_encode`."""
    if len(data) < 8:
        raise CodecError("truncated DICT header")
    count, tag, dict_size, width = struct.unpack_from("<IBHB", data, 0)
    dt = tag_dtype(tag)
    off = 8
    if count == 0:
        return np.empty(0, dtype=dt)
    table = np.frombuffer(data, dtype=dt, count=dict_size, offset=off)
    off += dict_size * dt.itemsize
    idx = unpack_bits(data[off:], width, count)
    if idx.size and int(idx.max()) >= dict_size:
        raise CodecError("DICT index out of range")
    return table[idx.astype(np.int64)]


def dict_encode_gpu(device: Device, values: np.ndarray) -> bytes:
    """GPU DICT encoder: sort + unique build the dictionary, parallel
    binary search finds indices; constant memory caches small
    dictionaries.

    Produces byte-identical output to :func:`dict_encode` (tested) while
    charging the simulated device.
    """
    values = np.asarray(values)
    if values.size == 0:
        return dict_encode(values)
    # Radix sort wants unsigned keys.  Integer values sort directly; float
    # values are first rank-mapped on the host (rank order == value order,
    # so the device builds the same dictionary shape).
    if values.dtype.kind in "ui" and values.itemsize <= 4:
        work = values.astype(np.uint32)
    else:
        work = np.searchsorted(np.unique(values), values).astype(np.uint32)
    keys = device.to_device(work, "dict.keys")
    sorted_keys = device_radix_sort(device, keys)
    uniq = device_unique(device, sorted_keys)
    # Dictionary lookup: parallel binary search; the dictionary is cached
    # in constant memory when it fits (Section V-B).
    table64 = uniq.data.astype(np.int64)
    hay = (
        device.to_constant(table64, "dict.table")
        if table64.nbytes <= device.spec.constant_mem_bytes // 2
        else device.to_device(table64, "dict.table")
    )
    needles = device.to_device(work.astype(np.int64), "dict.needles")
    idx_dev = device_binary_search(device, needles, hay)
    # The search charges the real lookup traffic; the actual DICT codes are
    # produced by the host-side dict_encode below.
    idx_dev.mark_consumed()
    for a in (keys, sorted_keys, uniq, hay, needles, idx_dev):
        device.free(a)
    return dict_encode(values)
