"""zlib (gzip) baseline codec — the general-purpose comparator of Fig. 9/10.

The paper compares its customized algorithms against gzip through zlib
[13]; we do the same, recording compressed sizes and (de)compression CPU
time so the benchmark can model full-scale output speed.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass


@dataclass(frozen=True)
class GzipStats:
    """Result of one gzip (de)compression run."""

    input_bytes: int
    output_bytes: int
    seconds: float

    @property
    def ratio(self) -> float:
        if self.output_bytes == 0:
            return 0.0
        return self.input_bytes / self.output_bytes

    @property
    def throughput(self) -> float:
        """Input bytes per second."""
        return self.input_bytes / self.seconds if self.seconds > 0 else 0.0


def gzip_compress(data: bytes, level: int = 6) -> tuple[bytes, GzipStats]:
    """Compress with zlib; returns (blob, stats)."""
    t0 = time.perf_counter()
    blob = zlib.compress(data, level)
    dt = time.perf_counter() - t0
    return blob, GzipStats(len(data), len(blob), dt)


def gzip_decompress(blob: bytes) -> tuple[bytes, GzipStats]:
    """Decompress with zlib; returns (data, stats)."""
    t0 = time.perf_counter()
    data = zlib.decompress(blob)
    dt = time.perf_counter() - t0
    return data, GzipStats(len(blob), len(data), dt)


#: Measured-at-full-scale gzip compression throughput the cost model uses
#: when extrapolating (zlib level 6 on one Xeon core, bytes/s).
GZIP_COMPRESS_BW = 30e6
GZIP_DECOMPRESS_BW = 150e6
