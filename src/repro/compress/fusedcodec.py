"""Megabatched output compression: segmented codec kernels per column.

The unfused output phase runs the RLE-DICT device chain once per window
per quality column — six columns x (run-flag + reduce + two
sort/unique/search chains) x every window.  That makes the output codec
the launch-count leader of the whole pipeline.  The fused path instead
concatenates each column across all windows of a megabatch and runs the
chain *once*, using the segmented primitives:

* run flags come from :func:`segmented_flag_runs` (a window boundary
  always starts a new run, so the flag total equals the sum of
  per-window run counts);
* both DICT levels go through :func:`segmented_dict_indices`, which
  embeds the window id in the high bits of a composite sort key so a
  single sort/unique/search yields every window's private dictionary
  and segment-local indices.

The emitted bytes still come from the host encoders via
:func:`repro.compress.columnar.encode_table` — the same bytes the
per-window GPU encoder produces (byte-parity between the host and GPU
encoders is an existing tested invariant) — so fusing the device work
cannot perturb the output stream.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.device import Device
from ..gpusim.primitives.reduce import device_reduce
from ..gpusim.primitives.segmented import (
    segmented_dict_indices,
    segmented_flag_runs,
)
from .columnar import RLE_DICT_COLUMNS, _quantize100, encode_table
from .rle import rle_encode


def _rank_keys(values: np.ndarray) -> np.ndarray:
    """uint32 sort keys with the rank-map rule of the per-window encoder."""
    values = np.asarray(values)
    if values.dtype.kind in "ui" and values.itemsize <= 4:
        return values.astype(np.uint32)
    return np.searchsorted(np.unique(values), values).astype(np.uint32)


def _column_values(table, name: str) -> np.ndarray:
    v = np.asarray(getattr(table, name))
    if name in ("rank_sum", "copy_num"):
        return _quantize100(v)
    return v


def _fused_rle_dict_column(device: Device, cols: list[np.ndarray]) -> None:
    """Device work for one column across all windows, in one chain."""
    cols = [np.asarray(c) for c in cols if np.asarray(c).size]
    if not cols:
        return
    # --- RLE level: one segmented run-flag launch + one reduction -------
    values = np.concatenate([_rank_keys(c) for c in cols])
    seg_first = np.zeros(values.size, dtype=np.uint8)
    seg_first[np.cumsum([0] + [c.size for c in cols[:-1]])] = 1
    vals_dev = device.to_device(values, "fusedrle.values")
    first_dev = device.to_device(seg_first, "fusedrle.first")
    flags = segmented_flag_runs(device, vals_dev, first_dev)
    n_runs = int(device_reduce(device, flags, op="sum"))
    for a in (vals_dev, first_dev, flags):
        device.free(a)
    runs = [rle_encode(c) for c in cols]
    assert n_runs == sum(rv.size for rv, _ in runs)
    # --- DICT level: one segmented chain per run array ------------------
    for seg_keys, host in (
        ([_rank_keys(rv) for rv, _ in runs], [rv for rv, _ in runs]),
        (
            [rl.astype(np.uint32) for _, rl in runs],
            [rl.astype(np.uint32) for _, rl in runs],
        ),
    ):
        local_idx, dict_sizes = segmented_dict_indices(device, seg_keys)
        # Parity check against the per-window dictionary lookup: the
        # composite-key chain must reproduce each window's searchsorted
        # indices exactly.
        off = 0
        for seg, arr in zip(seg_keys, host):
            got = local_idx[off : off + seg.size]
            off += seg.size
            assert np.array_equal(
                got, np.searchsorted(np.unique(arr), arr)
            )
        assert [int(np.unique(a).size) for a in host] == dict_sizes


def encode_tables_fused(device: Device | None, tables: list) -> list[bytes]:
    """Encode a megabatch of result tables with segmented device codecs.

    Returns one container blob per table, byte-identical to per-window
    :func:`encode_table` output.  With a device, the six RLE-DICT quality
    columns charge their codec kernels once per megabatch instead of
    once per window.
    """
    if device is not None and tables:
        for name in RLE_DICT_COLUMNS:
            _fused_rle_dict_column(
                device, [_column_values(t, name) for t in tables]
            )
    return [encode_table(t) for t in tables]


__all__ = ["encode_tables_fused"]
