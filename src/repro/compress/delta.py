"""Delta encoding for sorted position columns.

The alignment input is ordered by matched position, so consecutive
positions differ by small non-negative gaps; storing first value + gaps at
the minimum bit width shrinks the 8-byte positions to a few bits each.
Used by the temporary-input compression (Section V-A).
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CodecError
from .bitpack import bits_needed, pack_bits, unpack_bits


def delta_encode(values: np.ndarray) -> bytes:
    """Encode a non-decreasing int64 array as first value + packed gaps."""
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return struct.pack("<IqB", 0, 0, 1)
    gaps = np.diff(values)
    if gaps.size and int(gaps.min()) < 0:
        raise CodecError("delta encoding requires a sorted column")
    width = bits_needed(int(gaps.max()) if gaps.size else 0)
    header = struct.pack("<IqB", values.size, int(values[0]), width)
    return header + pack_bits(gaps, width)


def delta_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`delta_encode`."""
    if len(data) < 13:
        raise CodecError("truncated delta header")
    count, first, width = struct.unpack_from("<IqB", data, 0)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    gaps = unpack_bits(data[13:], width, count - 1).astype(np.int64)
    out = np.empty(count, dtype=np.int64)
    out[0] = first
    if count > 1:
        out[1:] = first + np.cumsum(gaps)
    return out
