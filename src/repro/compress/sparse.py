"""Sparse and exception (difference) column codecs (Section V-B).

* :func:`sparse_encode` — "a certain number of columns related to the
  second allele are sparse.  Then we only store non-zero elements": the
  column is stored as (positions, values) of entries differing from a
  constant default.
* :func:`exception_encode` — "several columns related to SNPs are similar
  due to the low probability of SNPs.  We only need to store differences":
  the column is stored as its differences against a *predicted* column the
  decoder can reconstruct (e.g. the hom-reference genotype derived from
  the reference-base column).

Exception positions are sorted, so they are delta-coded and bit-packed;
exception values go through DICT — both levels reuse the package's own
primitives, keeping every byte accounted for.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CodecError
from .delta import delta_decode, delta_encode
from .dictionary import dict_decode, dict_encode, dtype_tag, tag_dtype


def _encode_exceptions(idx: np.ndarray, values: np.ndarray) -> bytes:
    """Shared payload: delta-packed positions + DICT-packed values."""
    idx_blob = delta_encode(idx.astype(np.int64))
    val_blob = dict_encode(values)
    return (
        struct.pack("<II", len(idx_blob), len(val_blob)) + idx_blob + val_blob
    )


def _decode_exceptions(data: bytes, offset: int) -> tuple[np.ndarray, np.ndarray]:
    ni, nv = struct.unpack_from("<II", data, offset)
    offset += 8
    idx = delta_decode(data[offset : offset + ni])
    values = dict_decode(data[offset + ni : offset + ni + nv])
    return idx, values


def sparse_encode(values: np.ndarray, default) -> bytes:
    """Store only the entries that differ from ``default``."""
    values = np.asarray(values)
    tag = dtype_tag(values.dtype)
    idx = np.nonzero(values != values.dtype.type(default))[0]
    if values.size >= 1 << 32:
        raise CodecError("column too long for uint32 positions")
    header = struct.pack("<IBd", values.size, tag, float(default))
    return header + _encode_exceptions(idx, values[idx])


def sparse_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`sparse_encode`."""
    if len(data) < 13:
        raise CodecError("truncated sparse header")
    count, tag, default = struct.unpack_from("<IBd", data, 0)
    dt = tag_dtype(tag)
    idx, vals = _decode_exceptions(data, 13)
    out = np.full(count, dt.type(default), dtype=dt)
    out[idx.astype(np.int64)] = vals.astype(dt)
    return out


def exception_encode(values: np.ndarray, predicted: np.ndarray) -> bytes:
    """Store only the entries where ``values`` differs from ``predicted``."""
    values = np.asarray(values)
    predicted = np.asarray(predicted, dtype=values.dtype)
    if values.shape != predicted.shape:
        raise CodecError("prediction shape mismatch")
    tag = dtype_tag(values.dtype)
    idx = np.nonzero(values != predicted)[0]
    header = struct.pack("<IB", values.size, tag)
    return header + _encode_exceptions(idx, values[idx])


def exception_decode(data: bytes, predicted: np.ndarray) -> np.ndarray:
    """Inverse of :func:`exception_encode` given the same prediction."""
    if len(data) < 5:
        raise CodecError("truncated exception header")
    count, tag = struct.unpack_from("<IB", data, 0)
    dt = tag_dtype(tag)
    predicted = np.asarray(predicted, dtype=dt)
    if predicted.size != count:
        raise CodecError(
            f"prediction has {predicted.size} entries, column has {count}"
        )
    idx, vals = _decode_exceptions(data, 5)
    out = predicted.copy()
    out[idx.astype(np.int64)] = vals.astype(dt)
    return out
