"""Column-based compression of the 17-column result table and the input.

"Column-based compression is applied for each window" (Section V-B).  The
container holds one block per window; each block stores the chromosome
name + site count once (columns 1-2 collapse to a constant and a range)
and a per-column payload using the codec that matches the column's
characteristics:

========================= ============== =====================================
column                    codec          rationale (paper)
========================= ============== =====================================
chrom, pos                implicit       "only the sequence name and the
                                         number of sites"
ref/best base             TWOBIT         "two bits ... for four base types"
genotype                  EXCEPTION      "store differences" vs hom-reference
second base               SPARSE         second-allele columns are sparse
avg qual 2nd, counts 2nd  SPARSE         same
quality, avg qual best,   RLE-DICT       six quality-related columns:
depth, rank-sum, copy num                <100 distinct values, long runs
count uni/all best        DICT           few distinct values, short runs
known-SNP flag            SPARSE         low SNP probability
========================= ============== =====================================

The GPU path encodes the six RLE-DICT columns with the device kernels of
:mod:`repro.compress.rle_dict` (the paper GPU-accelerates exactly those);
output bytes are identical either way.
"""

from __future__ import annotations

import struct

import numpy as np

from ..align.records import AlignmentBatch
from ..constants import GENOTYPES, N_BASES
from ..errors import CodecError
from ..formats.cns import NO_BASE, ResultTable
from ..gpusim.device import Device
from .bitpack import pack_bits, unpack_bits
from .delta import delta_decode, delta_encode
from .dictionary import dict_decode, dict_encode
from .rle_dict import rle_dict_decode, rle_dict_encode, rle_dict_encode_gpu
from .sparse import (
    exception_decode,
    exception_encode,
    sparse_decode,
    sparse_encode,
)
from .twobit import twobit_decode, twobit_encode

_MAGIC = b"GSNPC1"
_MAGIC_ALN = b"GSNPA1"

#: Genotype index of hom-ref for each reference base (prediction column).
_HOM_REF = np.array(
    [GENOTYPES.index((r, r)) for r in range(N_BASES)], dtype=np.uint8
)

#: The six quality-related columns the paper GPU-accelerates with RLE-DICT.
RLE_DICT_COLUMNS = (
    "quality",
    "avg_qual_best",
    "depth",
    "rank_sum",
    "copy_num",
    "count_all_best",
)


def _quantize100(values: np.ndarray) -> np.ndarray:
    """Two-decimal floats -> integer hundredths (lossless round trip)."""
    return np.rint(values.astype(np.float64) * 100.0).astype(np.uint16)


def _dequantize100(values: np.ndarray) -> np.ndarray:
    return (values.astype(np.float64) / 100.0).astype(np.float32)


def encode_table(table: ResultTable, device: Device | None = None) -> bytes:
    """Encode one window's table into a container block."""
    rd = (
        (lambda v: rle_dict_encode_gpu(device, v))
        if device is not None
        else rle_dict_encode
    )
    n = table.n_sites
    if n:
        if np.any(np.diff(table.pos) != 1):
            raise CodecError("table positions must be consecutive")
    blocks: list[tuple[str, bytes]] = [
        ("ref_base", twobit_encode(table.ref_base)),
        ("genotype", exception_encode(table.genotype, _HOM_REF[table.ref_base])),
        ("quality", rd(table.quality)),
        ("best_base", twobit_encode(table.best_base)),
        ("avg_qual_best", rd(table.avg_qual_best)),
        # RLE-DICT, but host-side: only the six quality-related columns go
        # through the GPU kernels (Section V-B); bytes are identical.
        ("count_uni_best", rle_dict_encode(table.count_uni_best)),
        ("count_all_best", rd(table.count_all_best)),
        ("second_base", sparse_encode(table.second_base, NO_BASE)),
        ("avg_qual_second", sparse_encode(table.avg_qual_second, 0)),
        ("count_uni_second", sparse_encode(table.count_uni_second, 0)),
        ("count_all_second", sparse_encode(table.count_all_second, 0)),
        ("depth", rd(table.depth)),
        ("rank_sum", rd(_quantize100(table.rank_sum))),
        ("copy_num", rd(_quantize100(table.copy_num))),
        ("known_snp", sparse_encode(table.known_snp, 0)),
    ]
    chrom_b = table.chrom.encode()
    start = int(table.pos[0]) if n else 0
    out = [
        _MAGIC,
        struct.pack("<H", len(chrom_b)),
        chrom_b,
        struct.pack("<IqB", n, start, len(blocks)),
    ]
    for name, payload in blocks:
        name_b = name.encode()
        out.append(struct.pack("<BI", len(name_b), len(payload)))
        out.append(name_b)
        out.append(payload)
    return b"".join(out)


def decode_table(data: bytes, offset: int = 0) -> tuple[ResultTable, int]:
    """Decode one container block; returns (table, next offset)."""
    if data[offset : offset + 6] != _MAGIC:
        raise CodecError("bad container magic")
    offset += 6
    (clen,) = struct.unpack_from("<H", data, offset)
    offset += 2
    chrom = data[offset : offset + clen].decode()
    offset += clen
    n, start, n_blocks = struct.unpack_from("<IqB", data, offset)
    offset += 13
    payloads: dict[str, bytes] = {}
    for _ in range(n_blocks):
        nlen, plen = struct.unpack_from("<BI", data, offset)
        offset += 5
        name = data[offset : offset + nlen].decode()
        offset += nlen
        payloads[name] = data[offset : offset + plen]
        offset += plen

    ref_base = twobit_decode(payloads["ref_base"])
    table = ResultTable(
        chrom=chrom,
        pos=start + np.arange(n, dtype=np.int64),
        ref_base=ref_base,
        genotype=exception_decode(payloads["genotype"], _HOM_REF[ref_base]),
        quality=rle_dict_decode(payloads["quality"]).astype(np.uint8),
        best_base=twobit_decode(payloads["best_base"]),
        avg_qual_best=rle_dict_decode(payloads["avg_qual_best"]).astype(np.uint8),
        count_uni_best=rle_dict_decode(payloads["count_uni_best"]).astype(
            np.uint16
        ),
        count_all_best=rle_dict_decode(payloads["count_all_best"]).astype(np.uint16),
        second_base=sparse_decode(payloads["second_base"]),
        avg_qual_second=sparse_decode(payloads["avg_qual_second"]),
        count_uni_second=sparse_decode(payloads["count_uni_second"]),
        count_all_second=sparse_decode(payloads["count_all_second"]),
        depth=rle_dict_decode(payloads["depth"]).astype(np.uint16),
        rank_sum=_dequantize100(rle_dict_decode(payloads["rank_sum"])),
        copy_num=_dequantize100(rle_dict_decode(payloads["copy_num"])),
        known_snp=sparse_decode(payloads["known_snp"]),
    )
    return table, offset


# ---------------------------------------------------------------------------
# Temporary input compression (Section V-A)
# ---------------------------------------------------------------------------


def encode_alignments(batch: AlignmentBatch) -> bytes:
    """Compress an alignment batch (the cal_p_matrix temporary file).

    Positions are delta-coded (the file is position-sorted), strands are
    one bit, hit counts are sparse around 1, bases take two bits, and the
    binned qualities go through RLE-DICT.
    """
    n = batch.n_reads
    chrom_b = batch.chrom.encode()
    parts = [
        _MAGIC_ALN,
        struct.pack("<HIH", len(chrom_b), n, batch.read_len),
        chrom_b,
    ]
    payloads = [
        delta_encode(batch.pos),
        struct.pack("<I", n) + pack_bits(batch.strand, 1),
        sparse_encode(batch.hits, 1),
        twobit_encode(batch.bases.reshape(-1)),
        rle_dict_encode(batch.quals.reshape(-1)),
    ]
    for p in payloads:
        parts.append(struct.pack("<I", len(p)))
        parts.append(p)
    return b"".join(parts)


def decode_alignments(data: bytes) -> AlignmentBatch:
    """Inverse of :func:`encode_alignments`."""
    if data[:6] != _MAGIC_ALN:
        raise CodecError("bad alignment container magic")
    clen, n, read_len = struct.unpack_from("<HIH", data, 6)
    offset = 14
    chrom = data[offset : offset + clen].decode()
    offset += clen
    payloads = []
    for _ in range(5):
        (plen,) = struct.unpack_from("<I", data, offset)
        offset += 4
        payloads.append(data[offset : offset + plen])
        offset += plen
    pos = delta_decode(payloads[0])
    (sn,) = struct.unpack_from("<I", payloads[1], 0)
    strand = unpack_bits(payloads[1][4:], 1, sn).astype(np.uint8)
    hits = sparse_decode(payloads[2])
    bases = twobit_decode(payloads[3]).reshape(n, read_len)
    quals = rle_dict_decode(payloads[4]).astype(np.uint8).reshape(n, read_len)
    return AlignmentBatch(
        chrom=chrom,
        read_len=read_len,
        pos=pos,
        strand=strand,
        hits=hits,
        bases=bases,
        quals=quals,
    )
