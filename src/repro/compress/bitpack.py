"""Least-bits packing of small unsigned integers (Section V-B).

After dictionary encoding, indices are packed with the minimum bit width —
"we encode the index using least bits through a map".  Packing is
vectorized via ``np.packbits`` over an explicit bit matrix.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError


def bits_needed(max_value: int) -> int:
    """Minimum bits to represent values in [0, max_value]; at least 1."""
    if max_value < 0:
        raise CodecError("bitpack requires non-negative values")
    return max(1, int(max_value).bit_length())


def pack_bits(values: np.ndarray, width: int) -> bytes:
    """Pack non-negative integers into ``width`` bits each, MSB first."""
    values = np.asarray(values)
    if values.size == 0:
        return b""
    if width <= 0 or width > 64:
        raise CodecError(f"invalid bit width {width}")
    v = values.astype(np.uint64)
    if int(v.max()) >= (1 << width):
        raise CodecError(
            f"value {int(v.max())} does not fit in {width} bits"
        )
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((v[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
    return np.packbits(bits.reshape(-1)).tobytes()


def unpack_bits(data: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns uint64 values."""
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    total_bits = count * width
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size * 8 < total_bits:
        raise CodecError(
            f"bitpack payload too short: {raw.size * 8} bits < {total_bits}"
        )
    bits = np.unpackbits(raw)[:total_bits].reshape(count, width)
    weights = (1 << np.arange(width - 1, -1, -1, dtype=np.uint64))
    return (bits.astype(np.uint64) * weights[None, :]).sum(axis=1)
