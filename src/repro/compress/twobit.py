"""2-bit nucleotide encoding for base-type columns (Section V-B).

"For the three columns containing four base types, two bits are used to
encode each type."
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CodecError
from .bitpack import pack_bits, unpack_bits


def twobit_encode(codes: np.ndarray) -> bytes:
    """Encode base codes (0..3) at two bits each."""
    codes = np.asarray(codes)
    if codes.size and int(codes.max()) > 3:
        raise CodecError("two-bit codec requires values in 0..3")
    return struct.pack("<I", codes.size) + pack_bits(codes, 2)


def twobit_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`twobit_encode`; returns uint8 codes."""
    if len(data) < 4:
        raise CodecError("truncated two-bit header")
    (count,) = struct.unpack_from("<I", data, 0)
    return unpack_bits(data[4:], 2, count).astype(np.uint8)
