"""Resident job execution: cross-job caches and shared output rendering.

The daemon's whole reason to exist is amortization — the paper's one-time
costs (the ``cal_p_matrix`` input pass, the device score-table upload)
must be paid once per *dataset*, not once per *job*.  This module keeps
that state resident between jobs:

* :class:`DatasetCache` — parsed (fasta, soap, prior) inputs, keyed by
  content fingerprint, with a small LRU bound.
* :class:`CalibrationCache` — the calibration product, keyed by
  (engine, input fingerprints).  Two layers: in-memory for a live daemon,
  and an on-disk store under the daemon's state directory so a restarted
  daemon still skips the calibration pass (the kill/restart recovery path
  keeps its cache hits).
* :class:`ResidentRunner` — runs one job through the sharded executor
  with ``resident=True``, so the worker pipeline (device + uploaded
  tables, keyed by the calibration fingerprint via
  :mod:`repro.gpusim.residency`) survives across jobs on each worker
  thread.

Output rendering is shared with ``gsnp-call`` (:func:`write_job_output`,
:func:`job_summary`): the daemon and the one-shot CLI post-process results
through literally the same code, which is what makes served bytes
bitwise identical to CLI bytes.
"""

from __future__ import annotations

import hashlib
import pickle
import shutil
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

from ..api import JobSpec
from ..core.detector import dataset_from_files
from ..exec import execute
from ..faults.journal import atomic_output

#: On-disk calibration entry format version.
CALIBRATION_STORE_VERSION = 1


def file_fingerprint(path) -> str:
    """Content hash of one input file (sha1 over raw bytes)."""
    h = hashlib.sha1()
    with open(path, "rb") as f:
        for block in iter(lambda: f.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


def job_input_key(spec: JobSpec) -> tuple:
    """Content-derived identity of a job's parsed inputs.

    The first three entries (fasta, primary soap, prior) identify the
    parsed *dataset*; cohort jobs append one fingerprint per extra
    sample.  Callers that cache the dataset key on the primary triple
    (``key[:3]``) therefore share parsed inputs between a solo job and
    any cohort led by the same sample.
    """
    key = (
        file_fingerprint(spec.fasta),
        file_fingerprint(spec.soap),
        file_fingerprint(spec.prior) if spec.prior else "none",
    )
    return key + tuple(file_fingerprint(p) for p in spec.samples)


def write_job_output(result, spec: JobSpec) -> bytes:
    """Render a job's output bytes exactly as ``gsnp-call`` would.

    Returns the rendered bytes (compressed blob or CNS text) and, when
    the spec names an output path, writes them there atomically.
    """
    samples = getattr(result, "samples", None)
    if samples is not None:
        # Cohort job: one file per sample (sample 0 at spec.output,
        # sample i at <output>.s<i>); the returned inline bytes are the
        # per-sample renderings concatenated in cohort order.
        from ..core.cohort import cohort_output_path
        from ..formats.cns import format_rows

        blobs = []
        for si, sres in enumerate(samples):
            if spec.compressed:
                sample_blob = sres.compressed_output
            else:
                sample_blob = format_rows(sres.table)
            blobs.append(sample_blob)
            if spec.output:
                with atomic_output(cohort_output_path(spec.output, si)) as f:
                    f.write(sample_blob)
        return b"".join(blobs)
    table = result.table
    if spec.compressed:
        if spec.engine == "soapsnp":
            from ..compress.columnar import encode_table

            blob = encode_table(table)
        else:
            blob = result.compressed_output
    else:
        from ..formats.cns import format_rows

        blob = format_rows(table)
    if spec.output:
        with atomic_output(spec.output) as f:
            f.write(blob)
    return blob


def job_summary(result, spec: JobSpec, wall: float) -> str:
    """The one-line human summary ``gsnp-call`` prints."""
    from ..soapsnp.posterior import is_snp_call

    table = result.table
    snps = is_snp_call(table) & (table.quality >= spec.min_quality)
    cohort = ""
    n_samples = getattr(result, "n_samples", 1)
    if n_samples > 1:
        cohort = f" [cohort of {n_samples} samples; sample-0 counts]"
    return (
        f"{spec.engine}: {table.n_sites} sites, {int(snps.sum())} SNP "
        f"calls (q>={spec.min_quality}) in {wall:.2f}s{cohort}"
    )


class DatasetCache:
    """LRU cache of parsed input datasets, keyed by content fingerprint."""

    def __init__(self, max_entries: int = 4) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, spec: JobSpec, key: tuple):
        """The parsed dataset for a job (parsing on miss).

        Jobs with a quarantine file bypass the cache: their parse has the
        side effect the caller asked for.
        """
        if spec.quarantine:
            return dataset_from_files(
                spec.fasta, spec.soap, spec.prior, quarantine=spec.quarantine
            )
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        dataset = dataset_from_files(spec.fasta, spec.soap, spec.prior)
        with self._lock:
            self.misses += 1
            self._entries[key] = dataset
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return dataset

    def get_sample(self, path, fingerprint: str, quarantine=None):
        """A parsed cohort sample batch, keyed by content fingerprint.

        Shares this cache's LRU (sample keys are tagged so they can
        never collide with dataset keys); quarantine parses bypass the
        cache like dataset parses do.
        """
        from ..formats.soap import read_soap

        if quarantine:
            return read_soap(path, quarantine=quarantine)
        key = ("sample", fingerprint)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        batch = read_soap(path)
        with self._lock:
            self.misses += 1
            self._entries[key] = batch
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return batch

    def stats(self) -> dict:
        """Hit/miss counters and current size."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }


class CalibrationCache:
    """Two-layer (memory + disk) cache of stripped calibration products.

    Keys combine the engine with the input fingerprints; the disk layer
    lives under the daemon's state directory so calibration survives a
    daemon restart — the recovery path's repeated job still skips the
    input pass.
    """

    def __init__(self, root) -> None:
        self.dir = Path(root)
        self.dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._memory: dict[str, object] = {}
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0

    @staticmethod
    def cache_key(spec: JobSpec, input_key: tuple) -> str:
        """Stable fingerprint for one (engine, inputs) calibration."""
        h = hashlib.sha256()
        h.update(f"cal{CALIBRATION_STORE_VERSION}|{spec.engine}|".encode())
        for part in input_key:
            h.update(f"{part}|".encode())
        return h.hexdigest()[:24]

    def _path(self, key: str) -> Path:
        return self.dir / f"{key}.pkl"

    def _load_disk(self, key: str):
        try:
            raw = self._path(key).read_bytes()
            digest, _, blob = raw.partition(b"\n")
            if hashlib.sha256(blob).hexdigest().encode() != digest:
                return None  # torn entry: recompute
            return pickle.loads(blob)
        except (OSError, pickle.PickleError, EOFError, ValueError):
            return None

    def _store_disk(self, key: str, calibration) -> None:
        blob = pickle.dumps(calibration, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest().encode()
        with atomic_output(self._path(key)) as f:
            f.write(digest + b"\n" + blob)

    def get(self, key: str):
        """The cached calibration, or ``None`` (counting the lookup)."""
        with self._lock:
            cal = self._memory.get(key)
            if cal is not None:
                self.hits_memory += 1
                return cal
        cal = self._load_disk(key)
        with self._lock:
            if cal is not None:
                self._memory[key] = cal
                self.hits_disk += 1
            else:
                self.misses += 1
        return cal

    def put(self, key: str, calibration) -> None:
        """Make a calibration resident in both layers."""
        with self._lock:
            self._memory[key] = calibration
        self._store_disk(key, calibration)

    def stats(self) -> dict:
        """Hit/miss counters (memory and disk layers separately)."""
        with self._lock:
            return {
                "hits": self.hits_memory + self.hits_disk,
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "entries": len(self._memory),
            }


@dataclass
class RunOutcome:
    """What running one job produced."""

    blob: bytes
    summary: str
    wall: float
    n_sites: int


class ResidentRunner:
    """Execute jobs with cross-job state kept resident.

    Every job routes through the sharded executor
    (:func:`repro.exec.execute`) with ``resident=True`` — output is
    bitwise identical to a one-shot serial run (the executor's standing
    parity invariant) while the worker pipeline, its simulated device and
    the uploaded score tables persist on the worker thread between jobs.
    """

    def __init__(self, state_dir, max_datasets: int = 4) -> None:
        self.state_dir = Path(state_dir)
        self.datasets = DatasetCache(max_entries=max_datasets)
        self.calibrations = CalibrationCache(self.state_dir / "cal")

    def journal_dir(self, job_id: str) -> Path:
        """The per-job shard-journal directory (the crash-recovery unit)."""
        return self.state_dir / "journal" / job_id

    def run_job(self, job) -> RunOutcome:
        """Run one admitted job to rendered output bytes.

        The job's shard journal lives under the daemon state directory for
        the duration of the run: a daemon killed mid-job resumes from the
        committed shards on restart (``job.recovered``) and merges to
        bitwise-identical output.  The journal is removed on success.
        """
        spec = job.spec.validate(require_inputs=True)
        t0 = time.perf_counter()
        input_key = job_input_key(spec)
        # The dataset is identified by the primary (fasta, soap, prior)
        # triple alone, so a solo job and a cohort led by the same sample
        # hit the same parsed entry; the calibration key keeps the full
        # cohort identity (pooled reads differ per cohort).
        dataset = self.datasets.get(spec, input_key[:3])

        sample_reads = None
        if spec.is_cohort:
            from ..align.records import AlignmentBatch

            sample_reads = [AlignmentBatch.from_read_set(dataset.reads)]
            for path, fp in zip(spec.samples, input_key[3:]):
                sample_reads.append(
                    self.datasets.get_sample(
                        path, fp, quarantine=spec.quarantine
                    )
                )

        cal_key = self.calibrations.cache_key(spec, input_key)
        calibration = self.calibrations.get(cal_key)
        if calibration is None:
            from ..align.records import AlignmentBatch
            from ..api import create_pipeline

            pipe = create_pipeline(
                spec=replace(spec, faults=None, sanitize=False)
            )
            if sample_reads is not None:
                from ..core.cohort import pooled_batch

                reads = pooled_batch(sample_reads)
            else:
                reads = AlignmentBatch.from_read_set(dataset.reads)
            calibration = pipe.calibrate(dataset, reads=reads).strip()
            self.calibrations.put(cal_key, calibration)

        jdir = self.journal_dir(job.job_id)
        run_spec = replace(
            spec,
            output=None,
            sanitize=False,
            journal=str(jdir),
            resume=bool(job.recovered),
        )
        result = execute(
            dataset, spec=run_spec, calibration=calibration, resident=True,
            sample_reads=sample_reads,
        )
        blob = write_job_output(result, spec)
        wall = time.perf_counter() - t0
        shutil.rmtree(jdir, ignore_errors=True)
        return RunOutcome(
            blob=blob,
            summary=job_summary(result, spec, wall),
            wall=wall,
            n_sites=int(result.table.n_sites),
        )

    def stats(self) -> dict:
        """Cache counters for the ``/stats`` protocol request."""
        return {
            "datasets": self.datasets.stats(),
            "calibration": self.calibrations.stats(),
        }


__all__ = [
    "CALIBRATION_STORE_VERSION",
    "CalibrationCache",
    "DatasetCache",
    "ResidentRunner",
    "RunOutcome",
    "file_fingerprint",
    "job_input_key",
    "job_summary",
    "write_job_output",
]
