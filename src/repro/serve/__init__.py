"""gsnp-serve: a resident SNP-calling service behind the JobSpec API.

The one-shot CLI pays the paper's setup costs — input parsing, the
``cal_p_matrix`` calibration pass, the device score-table upload — on
every invocation.  This package keeps a daemon resident so those costs
are paid once per *dataset*: :class:`GsnpServer` listens on a Unix
socket, admits :class:`~repro.api.JobSpec` jobs through a multi-tenant
priority scheduler, executes them on worker threads with cross-job
caches (:class:`ResidentRunner`), and streams results back to
:class:`ServeClient` (``gsnp-submit``).

Guarantees: served output is bitwise identical to the one-shot CLI
(jobs route through the sharded executor's parity-checked path), and a
daemon killed mid-job resumes it on restart from the job ledger plus
shard journal — still bitwise identical.
"""

from .client import ServeClient, SubmitResult, wait_for_server
from .daemon import GsnpServer, ServeConfig
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_chunk,
    encode_chunks,
    read_message,
    write_message,
)
from .runner import (
    CalibrationCache,
    DatasetCache,
    ResidentRunner,
    RunOutcome,
    job_summary,
    write_job_output,
)
from .scheduler import AdmissionError, Job, JobScheduler, JobState
from .smoke import run_smoke

__all__ = [
    "AdmissionError",
    "CalibrationCache",
    "DatasetCache",
    "GsnpServer",
    "Job",
    "JobScheduler",
    "JobState",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResidentRunner",
    "RunOutcome",
    "ServeClient",
    "ServeConfig",
    "SubmitResult",
    "decode_chunk",
    "encode_chunks",
    "job_summary",
    "read_message",
    "run_smoke",
    "wait_for_server",
    "write_job_output",
    "write_message",
]
