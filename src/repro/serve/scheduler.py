"""Multi-tenant job scheduling: priority queue, admission, quotas.

The daemon admits work through one :class:`JobScheduler`.  Admission is
decided synchronously at submit time — a full backlog or an exhausted
per-tenant quota raises :class:`AdmissionError` immediately, so a client
is never left holding a job the daemon cannot take (bounded queues are
the service analogue of the executor's bounded in-flight window).

Admitted jobs wait in a priority queue (higher ``priority`` first, FIFO
within a priority level) until a daemon worker thread claims them with
:meth:`JobScheduler.next_job`.  Each :class:`Job` carries its own event
fan-out: any number of client connections can :meth:`Job.subscribe` and
receive ``started``/``output``/``done``/``error`` events; terminal events
replay to late subscribers, so attaching to a finished job still yields
its outcome.

States move strictly ``QUEUED -> RUNNING -> DONE | FAILED``; per-tenant
quota counts jobs in the two live states.
"""

from __future__ import annotations

import heapq
import queue
import threading
from enum import Enum
from typing import Optional

from ..api import JobSpec
from ..errors import GsnpError


class JobState(str, Enum):
    """Lifecycle of a served job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class AdmissionError(GsnpError):
    """Raised when a submit fails admission control (quota/backlog)."""

    def __init__(self, message: str, code: str = "rejected") -> None:
        super().__init__(message)
        #: Machine-readable rejection class (``backlog`` or ``quota``).
        self.code = code


class Job:
    """One admitted calling job and its event fan-out."""

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        tenant: str = "default",
        priority: int = 0,
        inline: bool = False,
        recovered: bool = False,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.tenant = tenant
        self.priority = priority
        #: Stream the output bytes back over the socket (no output path).
        self.inline = inline
        #: Re-enqueued from the ledger after a daemon restart; the runner
        #: resumes from the job's shard journal.
        self.recovered = recovered
        self.state = JobState.QUEUED
        self.summary: Optional[str] = None
        self.error: Optional[str] = None
        #: Inline jobs park their output bytes here so late subscribers
        #: can still stream them.
        self.result_blob: Optional[bytes] = None
        self._lock = threading.Lock()
        self._watchers: list[queue.Queue] = []
        self._history: list[dict] = []

    def emit(self, event: dict) -> None:
        """Fan one event out to every subscriber (and the replay log)."""
        with self._lock:
            self._history.append(event)
            watchers = list(self._watchers)
        for q in watchers:
            q.put(event)

    def subscribe(self) -> "queue.Queue[dict]":
        """A queue receiving this job's events (history replays first)."""
        q: queue.Queue = queue.Queue()
        with self._lock:
            for event in self._history:
                q.put(event)
            self._watchers.append(q)
        return q

    def unsubscribe(self, q: "queue.Queue[dict]") -> None:
        """Detach one subscriber queue."""
        with self._lock:
            if q in self._watchers:
                self._watchers.remove(q)

    @property
    def live(self) -> bool:
        """Whether the job still occupies queue/quota capacity."""
        return self.state in (JobState.QUEUED, JobState.RUNNING)


class JobScheduler:
    """Priority queue with admission control and per-tenant quotas."""

    def __init__(
        self,
        max_queued: int = 16,
        tenant_quota: Optional[int] = None,
    ) -> None:
        #: Max live (queued + running) jobs across all tenants.
        self.max_queued = max_queued
        #: Max live jobs per tenant (``None`` = unlimited).
        self.tenant_quota = tenant_quota
        self._cond = threading.Condition()
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = 0
        self.jobs: dict[str, Job] = {}
        self.counters = {
            "submitted": 0, "rejected": 0, "completed": 0, "failed": 0,
        }

    def _live_counts(self) -> tuple[int, dict[str, int]]:
        total = 0
        by_tenant: dict[str, int] = {}
        for job in self.jobs.values():
            if job.live:
                total += 1
                by_tenant[job.tenant] = by_tenant.get(job.tenant, 0) + 1
        return total, by_tenant

    def submit(self, job: Job) -> None:
        """Admit a job or raise :class:`AdmissionError` (atomic check)."""
        with self._cond:
            total, by_tenant = self._live_counts()
            if total >= self.max_queued:
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"backlog full: {total}/{self.max_queued} jobs live",
                    code="backlog",
                )
            if (
                self.tenant_quota is not None
                and by_tenant.get(job.tenant, 0) >= self.tenant_quota
            ):
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"tenant {job.tenant!r} is at its quota of "
                    f"{self.tenant_quota} live job(s)",
                    code="quota",
                )
            self._seq += 1
            heapq.heappush(self._heap, (-job.priority, self._seq, job))
            self.jobs[job.job_id] = job
            self.counters["submitted"] += 1
            self._cond.notify()

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Claim the highest-priority queued job (or ``None`` on timeout)."""
        with self._cond:
            if not self._heap:
                self._cond.wait(timeout)
            if not self._heap:
                return None
            _, _, job = heapq.heappop(self._heap)
            job.state = JobState.RUNNING
            return job

    def mark_done(self, job: Job, summary: str) -> None:
        """Record successful completion."""
        with self._cond:
            job.state = JobState.DONE
            job.summary = summary
            self.counters["completed"] += 1
            self._cond.notify_all()

    def mark_failed(self, job: Job, error: str) -> None:
        """Record failure (the job frees its queue/quota slot)."""
        with self._cond:
            job.state = JobState.FAILED
            job.error = error
            self.counters["failed"] += 1
            self._cond.notify_all()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is live; ``False`` on timeout."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not any(j.live for j in self.jobs.values()),
                timeout=timeout,
            )

    def get(self, job_id: str) -> Optional[Job]:
        """Look a job up by id."""
        with self._cond:
            return self.jobs.get(job_id)

    def stats(self) -> dict:
        """Counters plus live queue depth, per state and per tenant."""
        with self._cond:
            total, by_tenant = self._live_counts()
            by_state: dict[str, int] = {}
            for job in self.jobs.values():
                key = job.state.value
                by_state[key] = by_state.get(key, 0) + 1
            return {
                **self.counters,
                "live": total,
                "by_tenant": by_tenant,
                "by_state": by_state,
                "max_queued": self.max_queued,
                "tenant_quota": self.tenant_quota,
            }


__all__ = [
    "AdmissionError",
    "Job",
    "JobScheduler",
    "JobState",
]
