"""Self-contained serve smoke test (the CI ``serve-smoke`` job).

``gsnp-serve --smoke`` runs a full service scenario in-process against a
freshly simulated dataset and asserts the tentpole guarantees:

* two identical jobs (different tenants) produce output bytes **bitwise
  identical** to a one-shot ``gsnp-call`` over the same inputs;
* an over-quota submission is rejected at admission with ``code=quota``;
* a repeated job hits the resident caches — nonzero calibration-cache and
  device score-table hit counters in ``/stats``;
* the daemon drains and shuts down cleanly (socket removed).

Everything runs in a temporary directory with one worker thread, so the
scenario is deterministic: the first job carries a short injected
``exec.shard.slow`` stall, guaranteeing it is still live when the same
tenant's second submission arrives.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from ..faults.plan import FaultPlan, FaultSpec

#: Window used by every smoke job (3 shards over the smoke dataset).
SMOKE_WINDOW = 400

#: Sites in the simulated smoke dataset.
SMOKE_SITES = 1200


def _write_inputs(root: Path) -> tuple[str, str, str]:
    from ..align.records import AlignmentBatch
    from ..formats.fasta import write_fasta
    from ..formats.prior import write_prior
    from ..formats.soap import write_soap
    from ..seqsim.datasets import DatasetSpec, generate_dataset

    ds = generate_dataset(DatasetSpec(
        name="chrServe", n_sites=SMOKE_SITES, depth=8.0, coverage=0.9,
        read_len=60, seed=11,
    ))
    fasta = str(root / "smoke.fa")
    soap = str(root / "smoke.soap")
    prior = str(root / "smoke.prior")
    write_fasta(fasta, [ds.reference])
    write_soap(soap, AlignmentBatch.from_read_set(ds.reads))
    write_prior(prior, ds.reference.name, ds.prior)
    return fasta, soap, prior


def run_smoke(keep_dir=None, verbose: bool = True) -> dict:
    """Run the serve smoke scenario; returns a report with ``ok``."""
    from ..api import JobSpec
    from ..cli import main_call
    from .client import ServeClient, wait_for_server
    from .daemon import GsnpServer, ServeConfig

    root = Path(keep_dir) if keep_dir else Path(tempfile.mkdtemp(
        prefix="gsnp-serve-smoke-"
    ))
    root.mkdir(parents=True, exist_ok=True)
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, passed: bool, detail: str = "") -> None:
        checks.append((name, bool(passed), detail))
        if verbose:
            print(f"  [{'ok' if passed else 'FAIL'}] {name}"
                  + (f" — {detail}" if detail else ""))

    server = None
    try:
        fasta, soap, prior = _write_inputs(root)

        # One-shot CLI reference bytes (the parity baseline).
        ref_out = str(root / "ref.cns")
        rc = main_call([
            fasta, soap, "--prior", prior,
            "--window", str(SMOKE_WINDOW), "-o", ref_out,
        ])
        check("one-shot gsnp-call", rc == 0)
        ref_bytes = Path(ref_out).read_bytes()

        sock = str(root / "s.sock")
        server = GsnpServer(ServeConfig(
            socket_path=sock,
            state_dir=str(root / "state"),
            workers=1,
            max_queued=8,
            tenant_quota=1,
        ))
        server.start()
        check("daemon up", wait_for_server(sock, timeout=10.0))
        client = ServeClient(sock)

        def spec_for(out_name, faults=None) -> JobSpec:
            return JobSpec(
                fasta=fasta, soap=soap, prior=prior,
                window=SMOKE_WINDOW, output=str(root / out_name),
                faults=faults,
            )

        # Job 1 (tenant alpha) carries a short injected stall so it is
        # still live when alpha's second submission arrives.
        stall = FaultPlan((FaultSpec(
            site="exec.shard.slow", kind="slow", key=0, times=1, arg=0.5,
        ),))
        r1 = client.submit(spec_for("out1.cns", faults=stall),
                           tenant="alpha", wait=False)
        check("job1 accepted", r1.status == "accepted", r1.error or "")
        over = client.submit(spec_for("out3.cns"), tenant="alpha",
                             wait=False)
        check(
            "over-quota rejected",
            over.status == "rejected" and over.code == "quota",
            f"status={over.status} code={over.code}",
        )
        r2 = client.submit(spec_for("out2.cns"), tenant="beta", wait=False)
        check("job2 accepted", r2.status == "accepted", r2.error or "")
        w1 = client.wait(r1.job_id)
        w2 = client.wait(r2.job_id)
        check("job1 done", w1.status == "done", w1.error or "")
        check("job2 done", w2.status == "done", w2.error or "")

        # Repeated job: same dataset, third tenant — must hit the caches.
        r4 = client.submit(spec_for("out4.cns"), tenant="gamma")
        check("repeat job done", r4.status == "done", r4.error or "")

        for name in ("out1.cns", "out2.cns", "out4.cns"):
            served = (root / name).read_bytes()
            check(
                f"parity {name}",
                served == ref_bytes,
                f"{len(served)} vs {len(ref_bytes)} bytes",
            )

        stats = client.stats()
        cal = stats["runner"]["calibration"]
        check(
            "calibration cache hit",
            cal["hits"] >= 1,
            f"hits={cal['hits']} misses={cal['misses']}",
        )
        resident = stats["resident"]
        check(
            "score-table residency hit",
            resident["table_hits"] >= 1,
            f"hits={resident['table_hits']} "
            f"misses={resident['table_misses']}",
        )
        sched = stats["scheduler"]
        check(
            "scheduler counters",
            sched["completed"] == 3 and sched["rejected"] == 1,
            f"completed={sched['completed']} rejected={sched['rejected']}",
        )

        bye = client.shutdown(drain=True)
        check("clean shutdown", bye.get("event") == "bye")
        server.close()
        server = None
        check("socket removed", not Path(sock).exists())
    finally:
        if server is not None:
            server.close()
        if keep_dir is None:
            shutil.rmtree(root, ignore_errors=True)

    ok = all(passed for _, passed, _ in checks)
    return {
        "ok": ok,
        "checks": [
            {"name": n, "ok": p, "detail": d} for n, p, d in checks
        ],
        "dir": str(root) if keep_dir else None,
    }


__all__ = ["SMOKE_SITES", "SMOKE_WINDOW", "run_smoke"]
