"""The gsnp-serve wire protocol: line-delimited JSON over a Unix socket.

One request per connection for simple operations; a ``submit`` or ``wait``
connection stays open while the daemon streams job events back.  Every
message is a single JSON object on one ``\\n``-terminated line — trivial
to speak from any language, safe to log, and free of framing ambiguity.

Requests carry an ``op``:

* ``{"op": "ping"}`` — liveness probe, answered with ``pong``.
* ``{"op": "stats"}`` — scheduler/cache counters, answered with ``stats``.
* ``{"op": "submit", "spec": <JobSpec wire payload>, "tenant": ...,
  "priority": ..., "wait": ..., "inline": ...}`` — admit a job.  The
  daemon answers ``accepted`` (with the assigned ``job_id``) or
  ``rejected``; with ``wait`` it then streams ``started``, optional
  ``output`` chunks (inline jobs), and finally ``done`` or ``error``.
* ``{"op": "wait", "job_id": ...}`` — attach to an already-submitted
  job's event stream (terminal events replay if it already finished).
* ``{"op": "shutdown"}`` — drain queued jobs and stop, answered with
  ``bye`` once the daemon is idle.

Responses carry an ``event`` naming one of :data:`EVENTS`.  Binary job
output crosses the socket base64-encoded in bounded ``output`` chunks, so
a line never grows past :data:`MAX_MESSAGE_BYTES`.
"""

from __future__ import annotations

import base64
import json
from typing import Iterator, Optional

from ..errors import GsnpError

#: Protocol version, echoed in ``accepted``/``pong`` events.
PROTOCOL_VERSION = 1

#: Request operations a client may send.
OPS = ("ping", "shutdown", "stats", "submit", "wait")

#: Event types the daemon may stream back.
EVENTS = (
    "accepted", "bye", "done", "error", "output", "pong", "rejected",
    "started", "stats",
)

#: Upper bound on one protocol line (requests and events alike).
MAX_MESSAGE_BYTES = 1 << 20

#: Raw bytes per base64 ``output`` chunk (encoded size stays well under
#: :data:`MAX_MESSAGE_BYTES`).
OUTPUT_CHUNK_BYTES = 192 * 1024


class ProtocolError(GsnpError):
    """Raised on malformed, oversized or out-of-protocol messages."""


def write_message(wfile, message: dict) -> None:
    """Serialize one message as a single JSON line and flush it."""
    line = json.dumps(message, sort_keys=True, separators=(",", ":"))
    data = line.encode() + b"\n"
    if len(data) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte line limit"
        )
    wfile.write(data)
    wfile.flush()


def read_message(rfile) -> Optional[dict]:
    """Read one JSON line; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on oversized lines, truncated trailing
    data, non-JSON content, or a non-object payload.
    """
    line = rfile.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ProtocolError(
            "truncated or oversized protocol line "
            f"({len(line)} bytes without a newline)"
        )
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON on the wire: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got "
            f"{type(obj).__name__}"
        )
    return obj


def encode_chunks(blob: bytes) -> Iterator[dict]:
    """Split binary job output into bounded base64 ``output`` events."""
    total = (len(blob) + OUTPUT_CHUNK_BYTES - 1) // OUTPUT_CHUNK_BYTES
    for i in range(max(1, total)):
        raw = blob[i * OUTPUT_CHUNK_BYTES:(i + 1) * OUTPUT_CHUNK_BYTES]
        yield {
            "event": "output",
            "seq": i,
            "last": i == max(1, total) - 1,
            "data": base64.b64encode(raw).decode(),
        }


def decode_chunk(event: dict) -> bytes:
    """The raw bytes of one ``output`` event."""
    try:
        return base64.b64decode(event["data"])
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"bad output chunk: {exc}") from exc


__all__ = [
    "EVENTS",
    "MAX_MESSAGE_BYTES",
    "OPS",
    "OUTPUT_CHUNK_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_chunk",
    "encode_chunks",
    "read_message",
    "write_message",
]
