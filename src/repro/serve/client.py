"""Client side of the gsnp-serve protocol (the gsnp-submit library).

:class:`ServeClient` opens one Unix-socket connection per request, speaks
the line-JSON protocol (:mod:`repro.serve.protocol`), and exposes the
operations as plain methods.  :meth:`ServeClient.submit` blocks streaming
job events until the terminal one by default and returns a
:class:`SubmitResult`; inline jobs (no output path on the spec) have
their output bytes reassembled from the streamed chunks.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..api import JobSpec
from .protocol import ProtocolError, decode_chunk, read_message, write_message


@dataclass
class SubmitResult:
    """Outcome of one job submission."""

    #: ``done``, ``error``, ``rejected`` — or ``accepted`` for no-wait.
    status: str
    job_id: Optional[str] = None
    summary: Optional[str] = None
    error: Optional[str] = None
    #: Machine-readable rejection class (``quota``/``backlog``/...).
    code: Optional[str] = None
    #: Reassembled output bytes (inline jobs only).
    output: Optional[bytes] = None
    events: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the job was accepted and (if waited for) succeeded."""
        return self.status in ("done", "accepted")


class ServeClient:
    """Talk to a gsnp-serve daemon over its Unix socket."""

    def __init__(self, socket_path: str, timeout: float = 300.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        return sock

    def _roundtrip(self, message: dict) -> dict:
        """One request, one reply."""
        with self._connect() as sock:
            wfile = sock.makefile("wb")
            rfile = sock.makefile("rb")
            write_message(wfile, message)
            reply = read_message(rfile)
        if reply is None:
            raise ProtocolError("daemon closed the connection mid-request")
        return reply

    def ping(self) -> dict:
        """Liveness probe; returns the ``pong`` event."""
        return self._roundtrip({"op": "ping"})

    def stats(self) -> dict:
        """The daemon's scheduler/cache/residency counters."""
        return self._roundtrip({"op": "stats"})["stats"]

    def shutdown(self, drain: bool = True) -> dict:
        """Stop the daemon (draining live jobs first by default)."""
        return self._roundtrip({"op": "shutdown", "drain": drain})

    def _collect(
        self,
        rfile,
        result: SubmitResult,
        on_event: Optional[Callable[[dict], None]],
    ) -> SubmitResult:
        chunks: list[bytes] = []
        while True:
            event = read_message(rfile)
            if event is None:
                result.status = "error"
                result.error = "connection closed before a terminal event"
                return result
            result.events.append(event)
            if on_event is not None:
                on_event(event)
            kind = event.get("event")
            if kind == "output":
                chunks.append(decode_chunk(event))
            elif kind == "done":
                result.status = "done"
                result.summary = event.get("summary")
                if chunks:
                    result.output = b"".join(chunks)
                return result
            elif kind == "error":
                result.status = "error"
                result.error = event.get("error")
                return result

    def submit(
        self,
        spec: JobSpec,
        tenant: str = "default",
        priority: int = 0,
        wait: bool = True,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> SubmitResult:
        """Submit one job; with ``wait`` (default), block until terminal.

        Returns a :class:`SubmitResult` whose ``status`` is ``rejected``
        (admission failed), ``accepted`` (no-wait), ``done`` or ``error``.
        """
        result = SubmitResult(status="error")
        with self._connect() as sock:
            wfile = sock.makefile("wb")
            rfile = sock.makefile("rb")
            write_message(wfile, {
                "op": "submit",
                "spec": spec.to_wire(),
                "tenant": tenant,
                "priority": priority,
                "wait": wait,
            })
            first = read_message(rfile)
            if first is None:
                raise ProtocolError("daemon closed the connection on submit")
            result.events.append(first)
            if on_event is not None:
                on_event(first)
            if first.get("event") == "rejected":
                result.status = "rejected"
                result.error = first.get("error")
                result.code = first.get("code")
                return result
            result.job_id = first.get("job_id")
            if not wait:
                result.status = "accepted"
                return result
            return self._collect(rfile, result, on_event)

    def wait(
        self,
        job_id: str,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> SubmitResult:
        """Attach to an already-submitted job until its terminal event."""
        result = SubmitResult(status="error", job_id=job_id)
        with self._connect() as sock:
            wfile = sock.makefile("wb")
            rfile = sock.makefile("rb")
            write_message(wfile, {"op": "wait", "job_id": job_id})
            return self._collect(rfile, result, on_event)


def wait_for_server(
    socket_path: str, timeout: float = 10.0, interval: float = 0.05
) -> bool:
    """Poll a daemon socket until it answers ``ping`` (or timeout)."""
    deadline = time.monotonic() + timeout
    client = ServeClient(socket_path, timeout=max(1.0, interval * 10))
    while time.monotonic() < deadline:
        try:
            client.ping()
            return True
        except (OSError, ProtocolError):
            time.sleep(interval)
    return False


__all__ = ["ServeClient", "SubmitResult", "wait_for_server"]
