"""The gsnp-serve daemon: a resident calling service on a Unix socket.

:class:`GsnpServer` ties the service layers together: the line-JSON
protocol (:mod:`repro.serve.protocol`) on a local Unix socket, the
multi-tenant scheduler (:mod:`repro.serve.scheduler`), the resident
runner with its cross-job caches (:mod:`repro.serve.runner`), and the
crash-recovery ledger (:class:`repro.faults.journal.JobLedger`).

Thread model: one acceptor thread owns the listening socket and spawns a
short-lived handler thread per connection; ``workers`` long-lived worker
threads claim jobs off the scheduler and run them in-process through the
serial executor (each thread keeps its own resident pipeline/device — the
simulated device is thread-confined by design).

Durability contract: a job with an output path is recorded in the ledger
*before* it is admitted and marked done only *after* its output bytes are
atomically in place.  A daemon killed at any instant therefore restarts
to a ledger whose pending records are exactly the unfinished jobs; it
re-enqueues them with ``resume`` pointing at their shard journals and
produces bitwise-identical output.  Inline jobs (results streamed back
over the socket) die with their client connection and are deliberately
not recovered.
"""

from __future__ import annotations

import contextlib
import os
import queue
import socket
import threading
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..api import JobSpec
from ..exec import pool_stats, resident_stats
from ..faults.journal import JobLedger
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_chunks,
    read_message,
    write_message,
)
from .runner import ResidentRunner
from .scheduler import AdmissionError, Job, JobScheduler


@dataclass(frozen=True)
class ServeConfig:
    """Everything a daemon instance needs to run."""

    #: Unix socket path the daemon listens on (keep it short: the OS caps
    #: socket paths at ~107 bytes).
    socket_path: str = "gsnp-serve.sock"
    #: State directory: job ledger, shard journals, calibration store.
    state_dir: str = "gsnp-serve-state"
    #: Worker threads executing jobs (each with resident device state).
    workers: int = 2
    #: Admission cap on live (queued + running) jobs across tenants.
    max_queued: int = 16
    #: Admission cap on live jobs per tenant (``None`` = unlimited).
    tenant_quota: Optional[int] = None
    #: Parsed-dataset LRU size in the resident runner.
    max_datasets: int = 4
    #: Worker/acceptor poll interval in seconds.
    poll: float = 0.05
    #: Extra fields merged into every ``stats`` reply (smoke/test hook).
    extra_stats: dict = field(default_factory=dict)


class GsnpServer:
    """A resident multi-tenant SNP-calling service."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.scheduler = JobScheduler(
            max_queued=config.max_queued, tenant_quota=config.tenant_quota
        )
        self.runner = ResidentRunner(
            self.state_dir, max_datasets=config.max_datasets
        )
        self.ledger = JobLedger(self.state_dir / "jobs")
        self.recovered_jobs: list[str] = []
        self._stop = threading.Event()
        self._accepting = True
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._seq_lock = threading.Lock()
        self._seq = 0

    # -- lifecycle ---------------------------------------------------------

    def _next_job_id(self) -> str:
        with self._seq_lock:
            self._seq += 1
            return f"job-{self._seq:05d}-{uuid.uuid4().hex[:6]}"

    def recover(self) -> list[str]:
        """Re-enqueue every ledger-pending job (daemon-restart path).

        Returns the recovered job ids.  Recovered jobs resume from their
        shard journals, so already-committed shards are not re-executed
        and the merged output is bitwise identical to an uninterrupted
        run.
        """
        recovered = []
        for entry in self.ledger.pending():
            try:
                spec = JobSpec.from_wire(entry["spec"])
            except (KeyError, ValueError):
                continue  # unreadable record: leave it pending on disk
            job = Job(
                entry["job_id"],
                spec,
                tenant=entry.get("tenant", "default"),
                priority=int(entry.get("priority", 0)),
                recovered=True,
            )
            try:
                self.scheduler.submit(job)
            except AdmissionError:
                continue  # stays pending; the next restart retries
            recovered.append(job.job_id)
        self.recovered_jobs = recovered
        return recovered

    def start(self) -> None:
        """Recover pending jobs, bind the socket, spawn all threads."""
        self.recover()
        path = self.config.socket_path
        with contextlib.suppress(OSError):
            os.unlink(path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(path)
        except OSError as exc:
            listener.close()
            raise OSError(
                f"cannot bind unix socket {path!r} ({exc}); note the OS "
                "caps socket paths at ~107 bytes"
            ) from exc
        listener.listen(64)
        listener.settimeout(self.config.poll)
        self._listener = listener
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"gsnp-serve-worker-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)
        t = threading.Thread(
            target=self._accept_loop, name="gsnp-serve-acceptor", daemon=True
        )
        t.start()
        self._threads.append(t)

    def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or a signal handler) stops us."""
        if self._listener is None:
            self.start()
        self._stop.wait()
        self.close()

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> bool:
        """Stop the daemon; with ``drain``, finish live jobs first."""
        self._accepting = False
        drained = True
        if drain:
            drained = self.scheduler.wait_idle(timeout=timeout)
        self._stop.set()
        return drained

    def close(self) -> None:
        """Release the socket and wait for service threads to exit."""
        self._stop.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
            self._listener = None
        with contextlib.suppress(OSError):
            os.unlink(self.config.socket_path)
        for t in self._threads:
            t.join(timeout=2.0)
        self._threads = []

    # -- job execution -----------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.scheduler.next_job(timeout=self.config.poll)
            if job is None:
                continue
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.emit({"event": "started", "job_id": job.job_id})
        ledgered = job.spec.output is not None
        try:
            outcome = self.runner.run_job(job)
        except Exception as exc:  # surface any failure to the client
            if ledgered:
                self.ledger.mark_failed(job.job_id)
            self.scheduler.mark_failed(job, repr(exc))
            job.emit({
                "event": "error", "job_id": job.job_id, "error": repr(exc),
            })
            return
        if job.inline:
            job.result_blob = outcome.blob
        if ledgered:
            # Output bytes are atomically in place; only now is the job
            # allowed to disappear from the recovery set.
            self.ledger.mark_done(job.job_id)
        self.scheduler.mark_done(job, outcome.summary)
        if job.inline:
            for chunk in encode_chunks(outcome.blob):
                job.emit({**chunk, "job_id": job.job_id})
        job.emit({
            "event": "done",
            "job_id": job.job_id,
            "summary": outcome.summary,
            "wall": outcome.wall,
            "n_sites": outcome.n_sites,
            "recovered": job.recovered,
        })

    # -- connection handling -----------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            t = threading.Thread(
                target=self._handle_conn, args=(conn,), daemon=True
            )
            t.start()

    def _handle_conn(self, conn: socket.socket) -> None:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            message = read_message(rfile)
            if message is None:
                return
            op = message.get("op")
            if op == "ping":
                write_message(wfile, {
                    "event": "pong", "version": PROTOCOL_VERSION,
                    "accepting": self._accepting,
                })
            elif op == "stats":
                write_message(wfile, {"event": "stats", "stats": self.stats()})
            elif op == "submit":
                self._op_submit(message, wfile)
            elif op == "wait":
                self._op_wait(message, wfile)
            elif op == "shutdown":
                self.shutdown(drain=bool(message.get("drain", True)))
                write_message(wfile, {"event": "bye", "stats": self.stats()})
            else:
                write_message(wfile, {
                    "event": "error", "error": f"unknown op {op!r}",
                })
        except ProtocolError as exc:
            with contextlib.suppress(OSError, ValueError):
                write_message(wfile, {"event": "error", "error": str(exc)})
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away mid-stream; the job continues
        finally:
            for closable in (wfile, rfile, conn):
                with contextlib.suppress(OSError):
                    closable.close()

    def _op_submit(self, message: dict, wfile) -> None:
        try:
            spec = JobSpec.from_wire(message.get("spec") or {})
            spec.validate(require_inputs=True)
            if spec.sanitize:
                raise ValueError(
                    "sanitize jobs are not served (thread-confined device "
                    "audit); run gsnp-call --sanitize instead"
                )
            if spec.journal or spec.resume:
                raise ValueError(
                    "journal/resume are managed by the daemon; submit the "
                    "job without them"
                )
        except ValueError as exc:
            write_message(wfile, {
                "event": "rejected", "error": str(exc), "code": "invalid",
            })
            return
        if not self._accepting:
            write_message(wfile, {
                "event": "rejected", "error": "daemon is draining",
                "code": "draining",
            })
            return
        job = Job(
            self._next_job_id(),
            spec,
            tenant=str(message.get("tenant", "default")),
            priority=int(message.get("priority", 0)),
            inline=spec.output is None,
        )
        ledgered = spec.output is not None
        if ledgered:
            # Record BEFORE admission: a crash in the gap re-runs the job
            # (at-least-once) rather than silently losing it.
            self.ledger.record(job.job_id, {
                "spec": spec.to_wire(),
                "tenant": job.tenant,
                "priority": job.priority,
            })
        try:
            self.scheduler.submit(job)
        except AdmissionError as exc:
            if ledgered:
                self.ledger.forget(job.job_id)
            write_message(wfile, {
                "event": "rejected", "error": str(exc), "code": exc.code,
            })
            return
        write_message(wfile, {
            "event": "accepted", "job_id": job.job_id,
            "version": PROTOCOL_VERSION,
        })
        if message.get("wait", True):
            self._stream_job(job, wfile)

    def _op_wait(self, message: dict, wfile) -> None:
        job = self.scheduler.get(str(message.get("job_id")))
        if job is None:
            write_message(wfile, {
                "event": "error",
                "error": f"unknown job {message.get('job_id')!r}",
            })
            return
        self._stream_job(job, wfile)

    def _stream_job(self, job: Job, wfile) -> None:
        q = job.subscribe()
        try:
            while True:
                try:
                    event = q.get(timeout=self.config.poll)
                except queue.Empty:
                    if self._stop.is_set():
                        return
                    continue
                write_message(wfile, event)
                if event.get("event") in ("done", "error"):
                    return
        finally:
            job.unsubscribe(q)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """The ``/stats`` payload: scheduler, caches, residency, recovery."""
        return {
            "scheduler": self.scheduler.stats(),
            "runner": self.runner.stats(),
            "resident": resident_stats(),
            "devices": pool_stats(),
            "recovered_jobs": list(self.recovered_jobs),
            "accepting": self._accepting,
            **self.config.extra_stats,
        }


__all__ = ["GsnpServer", "ServeConfig"]
