"""Host-precomputed logarithm tables (Section IV-G).

GPUs and CPUs disagree in the last ulp of transcendental functions, which
the paper found flipped ~0.1% of SNP calls.  GSNP therefore computes every
logarithm it needs *once on the host* and ships the results to the device:

* :func:`log10_table` — ``log10`` of the integer scores ``0..n-1`` (the
  paper's 64-entry ``log_table`` kept in constant memory).
* :func:`dependency_penalty_table` — the Phred penalty applied by
  ``adjust`` to the k-th repeated observation at the same (strand, coord);
  built from ``log10`` on the host so the sparse/GPU path and the dense/CPU
  path apply *identical* integer adjustments.

Both tables are plain NumPy arrays; every implementation in this package —
dense baseline, sparse CPU, simulated GPU — reads from the same arrays,
which is how the reproduction achieves the paper's bitwise-consistency
guarantee.
"""

from __future__ import annotations

import numpy as np

from ..constants import N_SCORES

#: Default PCR dependency coefficient: each duplicate observation at the
#: same (strand, coordinate) halves the evidence weight (see DESIGN.md).
DEFAULT_PCR_DEPENDENCY = 0.5


def log10_table(n: int = N_SCORES) -> np.ndarray:
    """``log10(i)`` for integer scores ``i in [0, n)``; entry 0 is 0.

    The zero entry is defined as 0 rather than ``-inf`` because SOAPsnp only
    consults the table for positive scores; keeping it finite makes the
    table safe to ship to constant memory wholesale.
    """
    if n <= 0:
        raise ValueError("table size must be positive")
    out = np.zeros(n, dtype=np.float64)
    if n > 1:
        out[1:] = np.log10(np.arange(1, n, dtype=np.float64))
    return out


def dependency_penalty_table(
    max_count: int = N_SCORES,
    pcr_dependency: float = DEFAULT_PCR_DEPENDENCY,
) -> np.ndarray:
    """Integer Phred penalties for repeated same-coordinate observations.

    ``penalty[k]`` is subtracted from the quality score of the (k+1)-th
    observation at the same (strand, coord) within one base class:
    ``penalty[k] = round(10 * k * log10(1 / pcr_dependency))``.

    With the default coefficient 0.5 each duplicate costs ~3 Phred, i.e.
    the error probability attributed to it doubles — the standard way
    consensus callers discount PCR duplicates.
    """
    if not 0.0 < pcr_dependency <= 1.0:
        raise ValueError("pcr_dependency must be in (0, 1]")
    k = np.arange(max_count, dtype=np.float64)
    penalty = np.rint(10.0 * k * np.log10(1.0 / pcr_dependency))
    return penalty.astype(np.int32)


def phred_to_error(q: np.ndarray | int) -> np.ndarray | float:
    """Convert Phred quality to error probability ``10^(-q/10)``."""
    return np.power(10.0, -np.asarray(q, dtype=np.float64) / 10.0)


def error_to_phred(p: np.ndarray | float, cap: int = 99):
    """Convert error probability to a capped integer Phred score."""
    p = np.asarray(p, dtype=np.float64)
    with np.errstate(divide="ignore"):
        q = -10.0 * np.log10(p)
    return np.minimum(np.rint(q), cap).astype(np.int32)
