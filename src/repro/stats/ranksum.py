"""Wilcoxon rank-sum test (normal approximation).

SOAPsnp's output column 15 reports, for heterozygous candidates, the
p-value of a rank-sum test on the quality scores supporting the two
alleles: if one allele is only supported by low-quality bases the site is
probably a sequencing artifact rather than a SNP.  We implement the test
directly (tie-corrected normal approximation) rather than via
``scipy.stats`` so the computation is self-contained, deterministic, and
cheap to vectorize over sites.
"""

from __future__ import annotations

import math

import numpy as np


def rank_sum_statistic(x: np.ndarray, y: np.ndarray) -> float:
    """Return the z statistic of the Wilcoxon rank-sum test.

    ``x`` and ``y`` are the two samples (quality scores of the two
    alleles).  Returns 0.0 when either sample is empty or when there is no
    variance (all values tied).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n1, n2 = x.size, y.size
    if n1 == 0 or n2 == 0:
        return 0.0
    combined = np.concatenate([x, y])
    order = np.argsort(combined, kind="stable")
    ranks = np.empty_like(combined)
    ranks[order] = np.arange(1, combined.size + 1, dtype=np.float64)
    # Average ranks over ties.
    sorted_vals = combined[order]
    _, start, counts = np.unique(
        sorted_vals, return_index=True, return_counts=True
    )
    for s, c in zip(start, counts):
        if c > 1:
            idx = order[s : s + c]
            ranks[idx] = ranks[idx].mean()
    w = ranks[:n1].sum()
    n = n1 + n2
    mean_w = n1 * (n + 1) / 2.0
    # Tie correction for the variance.
    tie_term = ((counts**3 - counts).sum()) / float(n * (n - 1)) if n > 1 else 0.0
    var_w = n1 * n2 / 12.0 * ((n + 1) - tie_term)
    if var_w <= 0:
        return 0.0
    return (w - mean_w) / math.sqrt(var_w)


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal via erfc."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def rank_sum_pvalue(x: np.ndarray, y: np.ndarray) -> float:
    """Two-sided p-value of the rank-sum test; 1.0 for degenerate input."""
    z = rank_sum_statistic(x, y)
    p = 2.0 * _normal_sf(abs(z))
    return min(1.0, max(0.0, p))
