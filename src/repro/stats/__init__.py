"""Statistical helpers: host-side log tables and the rank-sum test."""

from .ranksum import rank_sum_pvalue, rank_sum_statistic
from .tables import (
    DEFAULT_PCR_DEPENDENCY,
    dependency_penalty_table,
    error_to_phred,
    log10_table,
    phred_to_error,
)

__all__ = [
    "DEFAULT_PCR_DEPENDENCY",
    "dependency_penalty_table",
    "error_to_phred",
    "log10_table",
    "phred_to_error",
    "rank_sum_pvalue",
    "rank_sum_statistic",
]
