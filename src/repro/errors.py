"""Exception hierarchy for the GSNP reproduction."""

from __future__ import annotations


class GsnpError(Exception):
    """Base class for all errors raised by this package."""


class DeviceError(GsnpError):
    """Raised on invalid use of the simulated GPU device."""


class AllocationError(DeviceError):
    """Raised when a device allocation exceeds the configured memory."""


class KernelError(DeviceError):
    """Raised when a simulated kernel is launched with an invalid config."""


class FormatError(GsnpError):
    """Raised when an input file does not conform to its declared format."""


class CodecError(GsnpError):
    """Raised when compressed data cannot be decoded."""


class PipelineError(GsnpError):
    """Raised when pipeline components are used out of order."""
