"""Exception hierarchy for the GSNP reproduction."""

from __future__ import annotations


class GsnpError(Exception):
    """Base class for all errors raised by this package."""


class DeviceError(GsnpError):
    """Raised on invalid use of the simulated GPU device."""


class AllocationError(DeviceError):
    """Raised when a device allocation exceeds the configured memory."""


class KernelError(DeviceError):
    """Raised when a simulated kernel is launched with an invalid config."""


class SanitizerError(DeviceError):
    """Raised by ``Device(sanitize=True)`` when a kernel violates the
    simulator's memory discipline (races, hazards, uninitialized reads).

    Carries the structured :class:`repro.analyze.sanitize.SanitizerIssue`
    list so tooling can report warp/lane pairs without parsing messages.
    """

    def __init__(self, message: str, issues=()):
        super().__init__(message)
        self.issues = list(issues)


class FormatError(GsnpError):
    """Raised when an input file does not conform to its declared format."""


class CodecError(GsnpError):
    """Raised when compressed data cannot be decoded."""


class PipelineError(GsnpError):
    """Raised when pipeline components are used out of order."""


class InjectedFault(GsnpError):
    """A fault deliberately raised by the chaos layer (:mod:`repro.faults`).

    Carries the registered injection ``site`` and the ``key`` (shard
    index, line number, ...) it fired at, so harnesses can assert which
    scheduled faults actually triggered.
    """

    def __init__(self, message: str, *, site: str = "", key=None) -> None:
        super().__init__(message)
        self.site = site
        self.key = key


class ShardTimeout(GsnpError):
    """A shard overran its deadline; the executor killed and retried it."""

    def __init__(
        self, message: str, *, shard_index: int = -1, deadline: float = 0.0
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.deadline = deadline


class ShardError(GsnpError):
    """Raised when a shard keeps failing after its retry budget.

    Carries the shard context so operators can pinpoint the genomic range
    that poisoned the run.
    """

    def __init__(
        self, message: str, *, shard_index: int = -1,
        site_range: tuple[int, int] = (0, 0), attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.site_range = site_range
        self.attempts = attempts
