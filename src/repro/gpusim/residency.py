"""Persistent device residency: keyed caches for long-lived allocations.

The paper amortizes its one-time costs — the 20 MB ``new_p_matrix`` build
and upload — over an entire run (§IV-G, §VI-E).  :class:`DeviceResidency`
gives each simulated :class:`~repro.gpusim.device.Device` a keyed cache of
allocations that outlive a single pipeline run, so fixed tables are
uploaded once per device and reused across windows, shards and ``run()``
calls.  Keys are content fingerprints (:func:`array_fingerprint`), so a
changed calibration naturally misses and re-uploads; explicit invalidation
(:meth:`DeviceResidency.clear`) releases everything before a strict
sanitizer teardown.

Residency never touches hardware counters: cached uploads happen outside
the pipeline's phase scopes and the one serial-equivalent transfer is
charged analytically by ``calibrate()``, so per-phase counters stay bitwise
identical to the uncached engine.
"""

from __future__ import annotations

import hashlib

import numpy as np


def array_fingerprint(*arrays: np.ndarray) -> str:
    """Content hash of one or more arrays (dtype, shape and bytes)."""
    h = hashlib.sha1()
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


class DeviceResidency:
    """Keyed cache of device allocations that outlive one pipeline run.

    Values are arbitrary objects (e.g. a ``GsnpTables`` bundle); ``arrays``
    lists the :class:`~repro.gpusim.memory.DeviceArray` members whose
    liveness gates a hit — an entry any of whose arrays was freed behind
    the cache's back is dropped, never returned stale.
    """

    def __init__(self, device) -> None:
        self._device = device
        self._entries: dict[object, tuple[object, tuple]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """The cached value for ``key``, or ``None`` (stale entries drop)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, arrays = entry
        if any(a.freed for a in arrays):
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key, value, arrays=()) -> None:
        """Make ``value`` resident under ``key``."""
        self._entries[key] = (value, tuple(arrays))

    def invalidate(self, key, free: bool = True) -> None:
        """Drop one entry, freeing its still-live device arrays."""
        entry = self._entries.pop(key, None)
        if entry is None or not free:
            return
        for arr in entry[1]:
            if not arr.freed:
                self._device.free(arr)

    def clear(self, free: bool = True) -> None:
        """Drop every entry (explicit invalidation / pre-teardown release)."""
        for key in list(self._entries):
            self.invalidate(key, free=free)


__all__ = ["DeviceResidency", "array_fingerprint"]
