"""Analytical cost models converting simulated event counts into seconds.

The paper itself reasons analytically about performance: Formula (1)
estimates the dense ``base_occ`` scan time as ``S * |base_occ| / B_cpu`` and
finds it explains 65-92% of the measured likelihood/recycle time.  We adopt
the same style throughout:

* :class:`GpuCostModel` — a roofline over the simulated hardware counters:
  a kernel takes ``max(instruction time, memory time)``; memory time is the
  *transaction* traffic (128-byte segments) over the coalesced bandwidth,
  which automatically prices random access at the measured ~3 GB/s
  (32 segments/warp) and sequential access at 82 GB/s (1 segment/warp).
* :class:`CpuCostModel` — sequential bytes over the measured 4.2 GB/s,
  plus latency-priced random accesses, plus instruction and ``log10`` terms.
* :class:`DiskModel` — sequential disk bytes over 90 MB/s plus per-byte
  text parse/format CPU cost.

Because every model consumes *counts* (which scale linearly with the number
of sites), full-scale times for the paper's datasets are obtained by
multiplying scaled-run counts by the dataset scale factor; see
:mod:`repro.bench.scale`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .counters import KernelCounters
from .spec import CpuSpec, DiskSpec, GpuSpec, HostLinkSpec


# ---------------------------------------------------------------------------
# GPU
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GpuCostModel:
    """Roofline time model over :class:`KernelCounters`."""

    spec: GpuSpec = field(default_factory=GpuSpec)

    def instruction_time(self, c: KernelCounters) -> float:
        """Time to issue all warp-instructions at the chip's issue rate."""
        return c.inst_warp / self.spec.warp_issue_rate

    def memory_time(self, c: KernelCounters) -> float:
        """Time to move all global-memory transactions.

        Every transaction moves one full segment regardless of how many
        bytes the warp actually uses, so scattered access is automatically
        penalized by the useful-bytes / segment-bytes ratio.
        """
        tx = c.g_load + c.g_store
        return tx * self.spec.segment_bytes / self.spec.bw_coalesced

    def shared_time(self, c: KernelCounters) -> float:
        """Time for shared-memory traffic (rarely the bottleneck)."""
        ops = c.s_load_warp + c.s_store_warp
        return ops * self.spec.warp_size / self.spec.shared_access_rate

    def kernel_time(self, c: KernelCounters) -> float:
        """Roofline: overlapped compute/memory plus launch overhead."""
        busy = max(
            self.instruction_time(c), self.memory_time(c), self.shared_time(c)
        )
        return busy + c.launches * self.spec.launch_overhead

    def transfer_time(self, nbytes: int) -> float:
        """PCIe transfer time for ``nbytes`` host<->device bytes."""
        return nbytes / self.spec.pcie_bandwidth

    def effective_bandwidth(self, c: KernelCounters) -> float:
        """Useful bytes per second achieved by a kernel (diagnostic)."""
        t = self.kernel_time(c)
        if t == 0:
            return 0.0
        return (c.g_load_bytes + c.g_store_bytes) / t


# ---------------------------------------------------------------------------
# CPU
# ---------------------------------------------------------------------------


@dataclass
class CpuEvents:
    """Event counts for a CPU-side computation phase."""

    seq_read_bytes: int = 0
    seq_write_bytes: int = 0
    random_accesses: int = 0
    instructions: int = 0
    log_calls: int = 0

    def merge(self, other: "CpuEvents") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def scaled(self, factor: float) -> "CpuEvents":
        """Return a copy with every count multiplied by ``factor``."""
        return CpuEvents(
            **{
                f.name: int(getattr(self, f.name) * factor)
                for f in fields(self)
            }
        )


@dataclass(frozen=True)
class CpuCostModel:
    """Memory-bandwidth + latency + instruction model for one CPU thread."""

    spec: CpuSpec = field(default_factory=CpuSpec)

    def time(self, e: CpuEvents) -> float:
        """Modeled seconds for the given event counts."""
        s = self.spec
        return (
            (e.seq_read_bytes + e.seq_write_bytes) / s.bw_sequential
            + e.random_accesses * s.random_latency
            + e.instructions / s.instr_rate
            + e.log_calls * s.log_cost
        )

    def base_occ_scan_time(self, n_sites: int, matrix_bytes: int) -> float:
        """Formula (1) of the paper: dense matrix scan time estimate."""
        return n_sites * matrix_bytes / self.spec.bw_sequential

    def time_parallel(
        self,
        e: CpuEvents,
        threads: int = 16,
        mem_bw_scale: float = 3.0,
    ) -> float:
        """Modeled seconds with ``threads`` worker threads.

        Compute terms (instructions, log calls) divide by the thread
        count; memory terms only improve by ``mem_bw_scale``, the
        aggregate-over-single-core bandwidth ratio of the Xeon platform.
        This reproduces the paper's observation (Section VI-A) that a
        16-thread SOAPsnp only gains 3-4x "because the algorithm is
        bounded by memory bandwidth".
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        s = self.spec
        mem_scale = min(mem_bw_scale, float(threads))
        return (
            (e.seq_read_bytes + e.seq_write_bytes)
            / (s.bw_sequential * mem_scale)
            + e.random_accesses * s.random_latency / mem_scale
            + e.instructions / (s.instr_rate * threads)
            + e.log_calls * s.log_cost / threads
        )


# ---------------------------------------------------------------------------
# Multi-device pool
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LaneUsage:
    """Accumulated modeled work of one scheduler lane (device or CPU)."""

    #: Modeled seconds of on-lane compute (kernel roofline or CPU model),
    #: excluding host<->device transfer time — that is charged to the link.
    compute_seconds: float = 0.0
    #: Host<->device bytes this lane moved over the shared link.
    transfer_bytes: int = 0
    #: Number of individual transfers (each pays link arbitration).
    transfer_count: int = 0


@dataclass(frozen=True)
class PoolCostModel:
    """Makespan model for a :class:`~repro.gpusim.pool.DevicePool` run.

    Lanes compute concurrently, so compute time is the *maximum* over
    lanes; the host link is shared and serializes, so transfer time is
    the *sum* over lanes (total bytes over the one bandwidth, plus
    per-transfer arbitration).  This is deliberately conservative — a
    real node overlaps some transfer with compute — which keeps the
    modeled multi-device speedup a lower bound.
    """

    link: HostLinkSpec = field(default_factory=HostLinkSpec)

    def link_seconds(self, lanes: "list[LaneUsage]") -> float:
        """Serialized time of all lanes' traffic on the shared link."""
        total_bytes = sum(l.transfer_bytes for l in lanes)
        total_count = sum(l.transfer_count for l in lanes)
        return (
            total_bytes / self.link.bandwidth
            + total_count * self.link.per_transfer_overhead
        )

    def makespan(self, lanes: "list[LaneUsage]") -> float:
        """Modeled end-to-end seconds: slowest lane + serialized link."""
        if not lanes:
            return 0.0
        return max(l.compute_seconds for l in lanes) + self.link_seconds(lanes)


def predict_lane_rates(
    n_sites: int,
    read_bases: int,
    gpu: "GpuCostModel | None" = None,
    cpu: "CpuCostModel | None" = None,
) -> tuple[float, float]:
    """Roofline estimate of (GPU, CPU) calling throughput in sites/s.

    The heterogeneous scheduler needs an *initial* device/CPU split
    before any shard has run, so this prices one site on each engine
    from the calibrated per-phase event shapes (the same counters the
    per-run models consume, scaled per site):

    * GPU: each observation costs a handful of warp-instructions in the
      fused likelihood kernel plus ~2 coalesced table transactions per
      site; the roofline takes the max of the two terms.
    * CPU: the sparse SOAPsnp recurrence pays ~2 cache-missing table
      lookups and ~60 scalar instructions per observation plus ~10
      ``log10`` calls per site (the very structure Table III motivates
      removing on the GPU).

    Work stealing corrects any misprediction at runtime — the split
    only seeds the deques — so fidelity here buys balance, not
    correctness.
    """
    gpu = gpu or GpuCostModel()
    cpu = cpu or CpuCostModel()
    n_sites = max(n_sites, 1)
    depth = max(read_bases / n_sites, 1.0)
    # GPU per-site: ~6 warp-instructions per observation across the
    # fused pipeline (1/32 of the scalar count, warp-vectorized), and
    # ~2 table-segment transactions per site of coalesced traffic.
    per_site_inst = 6.0 * depth / gpu.spec.warp_issue_rate
    per_site_mem = 2.0 * gpu.spec.segment_bytes / gpu.spec.bw_coalesced
    gpu_site_seconds = max(per_site_inst, per_site_mem)
    # CPU per-site: latency-priced random lookups dominate, plus the
    # scalar instruction stream and the per-site log calls.
    e = CpuEvents(
        random_accesses=int(2 * depth),
        instructions=int(60 * depth),
        log_calls=10,
    )
    cpu_site_seconds = cpu.time(e)
    return 1.0 / gpu_site_seconds, 1.0 / cpu_site_seconds


def predict_split(
    n_shards: int,
    n_devices: int,
    cpu_steal: bool,
    gpu_rate: float,
    cpu_rate: float,
) -> list[int]:
    """Initial shard counts per lane: ``[gpu_0 .. gpu_{N-1}, cpu?]``.

    Shards are apportioned to lanes in proportion to their predicted
    rates, remainders going to the fastest lanes first.  The counts sum
    to ``n_shards`` exactly; a lane may receive zero.
    """
    if n_shards < 0:
        raise ValueError("n_shards must be non-negative")
    if n_devices < 1:
        raise ValueError("predict_split needs at least one device lane")
    if gpu_rate <= 0 or cpu_rate <= 0:
        raise ValueError("lane rates must be positive")
    rates = [gpu_rate] * n_devices + ([cpu_rate] if cpu_steal else [])
    total = sum(rates)
    counts = [int(n_shards * r / total) for r in rates]
    remainder = n_shards - sum(counts)
    by_speed = sorted(range(len(rates)), key=lambda i: -rates[i])
    i = 0
    while remainder > 0:
        counts[by_speed[i % len(by_speed)]] += 1
        remainder -= 1
        i += 1
    return counts


# ---------------------------------------------------------------------------
# Disk
# ---------------------------------------------------------------------------


@dataclass
class DiskEvents:
    """Event counts for a disk I/O phase."""

    read_bytes: int = 0
    read_buffered_bytes: int = 0
    write_bytes: int = 0
    parsed_bytes: int = 0
    formatted_bytes: int = 0

    def merge(self, other: "DiskEvents") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def scaled(self, factor: float) -> "DiskEvents":
        return DiskEvents(
            **{
                f.name: int(getattr(self, f.name) * factor)
                for f in fields(self)
            }
        )


@dataclass(frozen=True)
class DiskModel:
    """Sequential-disk + text parse/format cost model."""

    spec: DiskSpec = field(default_factory=DiskSpec)

    def time(self, e: DiskEvents) -> float:
        s = self.spec
        return (
            e.read_bytes / s.bw_sequential
            + e.read_buffered_bytes / s.bw_buffered
            + e.write_bytes / s.bw_sequential
            + e.parsed_bytes * s.parse_cost_per_byte
            + e.formatted_bytes * s.format_cost_per_byte
        )
