"""Analytical cost models converting simulated event counts into seconds.

The paper itself reasons analytically about performance: Formula (1)
estimates the dense ``base_occ`` scan time as ``S * |base_occ| / B_cpu`` and
finds it explains 65-92% of the measured likelihood/recycle time.  We adopt
the same style throughout:

* :class:`GpuCostModel` — a roofline over the simulated hardware counters:
  a kernel takes ``max(instruction time, memory time)``; memory time is the
  *transaction* traffic (128-byte segments) over the coalesced bandwidth,
  which automatically prices random access at the measured ~3 GB/s
  (32 segments/warp) and sequential access at 82 GB/s (1 segment/warp).
* :class:`CpuCostModel` — sequential bytes over the measured 4.2 GB/s,
  plus latency-priced random accesses, plus instruction and ``log10`` terms.
* :class:`DiskModel` — sequential disk bytes over 90 MB/s plus per-byte
  text parse/format CPU cost.

Because every model consumes *counts* (which scale linearly with the number
of sites), full-scale times for the paper's datasets are obtained by
multiplying scaled-run counts by the dataset scale factor; see
:mod:`repro.bench.scale`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .counters import KernelCounters
from .spec import CpuSpec, DiskSpec, GpuSpec


# ---------------------------------------------------------------------------
# GPU
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GpuCostModel:
    """Roofline time model over :class:`KernelCounters`."""

    spec: GpuSpec = field(default_factory=GpuSpec)

    def instruction_time(self, c: KernelCounters) -> float:
        """Time to issue all warp-instructions at the chip's issue rate."""
        return c.inst_warp / self.spec.warp_issue_rate

    def memory_time(self, c: KernelCounters) -> float:
        """Time to move all global-memory transactions.

        Every transaction moves one full segment regardless of how many
        bytes the warp actually uses, so scattered access is automatically
        penalized by the useful-bytes / segment-bytes ratio.
        """
        tx = c.g_load + c.g_store
        return tx * self.spec.segment_bytes / self.spec.bw_coalesced

    def shared_time(self, c: KernelCounters) -> float:
        """Time for shared-memory traffic (rarely the bottleneck)."""
        ops = c.s_load_warp + c.s_store_warp
        return ops * self.spec.warp_size / self.spec.shared_access_rate

    def kernel_time(self, c: KernelCounters) -> float:
        """Roofline: overlapped compute/memory plus launch overhead."""
        busy = max(
            self.instruction_time(c), self.memory_time(c), self.shared_time(c)
        )
        return busy + c.launches * self.spec.launch_overhead

    def transfer_time(self, nbytes: int) -> float:
        """PCIe transfer time for ``nbytes`` host<->device bytes."""
        return nbytes / self.spec.pcie_bandwidth

    def effective_bandwidth(self, c: KernelCounters) -> float:
        """Useful bytes per second achieved by a kernel (diagnostic)."""
        t = self.kernel_time(c)
        if t == 0:
            return 0.0
        return (c.g_load_bytes + c.g_store_bytes) / t


# ---------------------------------------------------------------------------
# CPU
# ---------------------------------------------------------------------------


@dataclass
class CpuEvents:
    """Event counts for a CPU-side computation phase."""

    seq_read_bytes: int = 0
    seq_write_bytes: int = 0
    random_accesses: int = 0
    instructions: int = 0
    log_calls: int = 0

    def merge(self, other: "CpuEvents") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def scaled(self, factor: float) -> "CpuEvents":
        """Return a copy with every count multiplied by ``factor``."""
        return CpuEvents(
            **{
                f.name: int(getattr(self, f.name) * factor)
                for f in fields(self)
            }
        )


@dataclass(frozen=True)
class CpuCostModel:
    """Memory-bandwidth + latency + instruction model for one CPU thread."""

    spec: CpuSpec = field(default_factory=CpuSpec)

    def time(self, e: CpuEvents) -> float:
        """Modeled seconds for the given event counts."""
        s = self.spec
        return (
            (e.seq_read_bytes + e.seq_write_bytes) / s.bw_sequential
            + e.random_accesses * s.random_latency
            + e.instructions / s.instr_rate
            + e.log_calls * s.log_cost
        )

    def base_occ_scan_time(self, n_sites: int, matrix_bytes: int) -> float:
        """Formula (1) of the paper: dense matrix scan time estimate."""
        return n_sites * matrix_bytes / self.spec.bw_sequential

    def time_parallel(
        self,
        e: CpuEvents,
        threads: int = 16,
        mem_bw_scale: float = 3.0,
    ) -> float:
        """Modeled seconds with ``threads`` worker threads.

        Compute terms (instructions, log calls) divide by the thread
        count; memory terms only improve by ``mem_bw_scale``, the
        aggregate-over-single-core bandwidth ratio of the Xeon platform.
        This reproduces the paper's observation (Section VI-A) that a
        16-thread SOAPsnp only gains 3-4x "because the algorithm is
        bounded by memory bandwidth".
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        s = self.spec
        mem_scale = min(mem_bw_scale, float(threads))
        return (
            (e.seq_read_bytes + e.seq_write_bytes)
            / (s.bw_sequential * mem_scale)
            + e.random_accesses * s.random_latency / mem_scale
            + e.instructions / (s.instr_rate * threads)
            + e.log_calls * s.log_cost / threads
        )


# ---------------------------------------------------------------------------
# Disk
# ---------------------------------------------------------------------------


@dataclass
class DiskEvents:
    """Event counts for a disk I/O phase."""

    read_bytes: int = 0
    read_buffered_bytes: int = 0
    write_bytes: int = 0
    parsed_bytes: int = 0
    formatted_bytes: int = 0

    def merge(self, other: "DiskEvents") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def scaled(self, factor: float) -> "DiskEvents":
        return DiskEvents(
            **{
                f.name: int(getattr(self, f.name) * factor)
                for f in fields(self)
            }
        )


@dataclass(frozen=True)
class DiskModel:
    """Sequential-disk + text parse/format cost model."""

    spec: DiskSpec = field(default_factory=DiskSpec)

    def time(self, e: DiskEvents) -> float:
        s = self.spec
        return (
            e.read_bytes / s.bw_sequential
            + e.read_buffered_bytes / s.bw_buffered
            + e.write_bytes / s.bw_sequential
            + e.parsed_bytes * s.parse_cost_per_byte
            + e.formatted_bytes * s.format_cost_per_byte
        )
