"""Simulated GPU substrate.

The paper runs on an NVIDIA Tesla M2050; this environment has no GPU, so the
reproduction executes every kernel *functionally* (vectorized NumPy in SIMT
lockstep) on a simulated device that performs per-warp coalescing analysis
and exposes CUDA-profiler-style hardware counters plus a roofline cost model
parameterized with the paper's measured bandwidths.  See DESIGN.md for why
this substitution preserves the paper's claims.
"""

from .counters import CounterBook, KernelCounters
from .costmodel import (
    CpuCostModel,
    CpuEvents,
    DiskEvents,
    DiskModel,
    GpuCostModel,
    LaneUsage,
    PoolCostModel,
    predict_lane_rates,
    predict_split,
)
from .device import Device, TransferLog
from .kernel import KernelContext
from .memory import (
    DeviceArray,
    count_transactions,
    fast_paths_enabled,
    set_fast_paths,
)
from .pool import DevicePool, HostLink, LinkUsage, acquire_device
from .residency import DeviceResidency, array_fingerprint
from .spec import (
    BGI_PLATFORM,
    CpuSpec,
    DiskSpec,
    GpuSpec,
    HostLinkSpec,
    PlatformSpec,
)
from .stream import DeviceStream

__all__ = [
    "BGI_PLATFORM",
    "CounterBook",
    "CpuCostModel",
    "CpuEvents",
    "CpuSpec",
    "Device",
    "DeviceArray",
    "DevicePool",
    "DeviceResidency",
    "DeviceStream",
    "DiskEvents",
    "DiskModel",
    "DiskSpec",
    "GpuCostModel",
    "GpuSpec",
    "HostLink",
    "HostLinkSpec",
    "KernelContext",
    "KernelCounters",
    "LaneUsage",
    "LinkUsage",
    "PlatformSpec",
    "PoolCostModel",
    "TransferLog",
    "acquire_device",
    "array_fingerprint",
    "count_transactions",
    "fast_paths_enabled",
    "predict_lane_rates",
    "predict_split",
    "set_fast_paths",
]
