"""Launch-plan scheduling for ragged cross-window megabatches.

The per-window pipeline fires a full counting -> sort -> likelihood ->
posterior -> compress kernel chain for every ~3k-site window, so a
chromosome run pays thousands of launches for tiny grids.  The fused
execution path instead concatenates the windows of a prefetch batch into
one *ragged megabatch*: a flat site axis with CSR-style per-window
offsets and a site -> window segment-id map.  Device work then launches
once per megabatch — multipass sort size buckets are re-bucketed across
windows, the likelihood/posterior pair is fused into a single kernel,
and the output codec runs segmented over all window columns at once.

This module is the scheduler half: it knows *where* each window lives
inside the flat layout (:class:`LaunchPlan`) and *what* the fusion saved
(:class:`LaunchTally`), but contains no kernels itself — those live in
``repro.gpusim.primitives.segmented`` and ``repro.core.fused``.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

#: Windows concatenated into one ragged megabatch.  Matches the shard
#: granularity the executor hands the fused path; 16 windows of ~3k
#: sites keeps every flat array well under the M2050 memory model while
#: amortising launch overhead ~16x for the per-window kernel chain.
MEGABATCH_WINDOWS = 16

#: Host-side launcher functions whose device work the fused path
#: replaces with a single megabatch launch sequence.  gsnp-lint rule
#: GSNP107 flags calls to these names inside a per-window loop.
FUSABLE_LAUNCHERS = frozenset(
    {
        "gsnp_counting",
        "gsnp_likelihood_sort",
        "gsnp_likelihood_comp",
        "gsnp_posterior",
        "gsnp_recycle",
        "encode_table",
        "rle_dict_encode_gpu",
        "dict_encode_gpu",
    }
)


@dataclass(frozen=True)
class WindowSegment:
    """One window's slot inside the ragged megabatch.

    ``site_offset``/``obs_offset`` locate the window's slice on the flat
    site and observation axes; ``start``/``end`` are its reference
    coordinates, unchanged from the underlying :class:`Window`.
    ``sample`` is the cohort sample this segment belongs to (0 for a
    single-sample plan): a cohort megabatch lays S samples' copies of
    the same reference windows out sample-major on one flat axis, so the
    segment kernels never distinguish "another window" from "another
    sample's window".
    """

    index: int
    start: int
    end: int
    n_sites: int
    site_offset: int
    obs_offset: int
    sample: int = 0

    @property
    def site_slice(self) -> slice:
        return slice(self.site_offset, self.site_offset + self.n_sites)


@dataclass(frozen=True)
class LaunchPlan:
    """CSR-style layout of a megabatch: segments + flat-axis totals.

    ``site_offsets`` has ``n_windows + 1`` entries (classic CSR row
    pointers over the flat site axis); :meth:`site_window` expands it to
    a per-site segment-id array for device-side segmented primitives.
    """

    segments: Tuple[WindowSegment, ...]
    n_sites: int
    n_obs: int

    @property
    def n_windows(self) -> int:
        return len(self.segments)

    @property
    def n_samples(self) -> int:
        """Number of cohort samples laid out in this plan (1 if solo)."""
        if not self.segments:
            return 1
        return max(seg.sample for seg in self.segments) + 1

    def sample_segments(self, sample: int) -> Tuple[WindowSegment, ...]:
        """The segments belonging to one cohort sample, in window order."""
        return tuple(seg for seg in self.segments if seg.sample == sample)

    @property
    def site_offsets(self) -> np.ndarray:
        out = np.zeros(self.n_windows + 1, dtype=np.int64)
        for seg in self.segments:
            out[seg.index + 1] = seg.site_offset + seg.n_sites
        return out

    def site_window(self) -> np.ndarray:
        """Per-site window (segment) ids, shape ``(n_sites,)``."""
        counts = [seg.n_sites for seg in self.segments]
        return np.repeat(np.arange(self.n_windows, dtype=np.int32), counts)


def build_launch_plan(windows: Sequence, obs_counts: Sequence[int]) -> LaunchPlan:
    """Lay a batch of windows out on flat site/observation axes."""
    if len(windows) != len(obs_counts):
        raise ValueError("windows and obs_counts must align")
    segments: List[WindowSegment] = []
    site_off = 0
    obs_off = 0
    for i, (window, n_obs) in enumerate(zip(windows, obs_counts)):
        segments.append(
            WindowSegment(
                index=i,
                start=window.start,
                end=window.end,
                n_sites=window.n_sites,
                site_offset=site_off,
                obs_offset=obs_off,
            )
        )
        site_off += window.n_sites
        obs_off += int(n_obs)
    return LaunchPlan(segments=tuple(segments), n_sites=site_off, n_obs=obs_off)


def build_cohort_plan(
    windows: Sequence,
    obs_counts: Sequence[int],
    samples: Sequence[int],
) -> LaunchPlan:
    """Lay a sample-major cohort megabatch out on one flat axis.

    ``windows``/``obs_counts``/``samples`` are parallel and already in
    sample-major order: all of sample 0's windows for this megabatch,
    then all of sample 1's, and so on.  Segment indices stay sequential
    (0 .. S*W-1) because the flat-axis machinery — ``site_offsets``,
    :func:`repro.core.fused.merge_observations`, the segmented
    primitives — is segment-count agnostic; the ``sample`` tag exists
    only so the host epilogue can route each window's result table back
    to its own sample's output stream.
    """
    if not len(windows) == len(obs_counts) == len(samples):
        raise ValueError("windows, obs_counts and samples must align")
    if list(samples) != sorted(samples):
        raise ValueError("cohort plan segments must be sample-major")
    segments: List[WindowSegment] = []
    site_off = 0
    obs_off = 0
    for i, (window, n_obs, sample) in enumerate(
        zip(windows, obs_counts, samples)
    ):
        segments.append(
            WindowSegment(
                index=i,
                start=window.start,
                end=window.end,
                n_sites=window.n_sites,
                site_offset=site_off,
                obs_offset=obs_off,
                sample=int(sample),
            )
        )
        site_off += window.n_sites
        obs_off += int(n_obs)
    return LaunchPlan(segments=tuple(segments), n_sites=site_off, n_obs=obs_off)


def chunk_windows(windows: Iterable, size: int) -> Iterator[list]:
    """Group a window stream into megabatch-sized lists (last may be short)."""
    if size < 1:
        raise ValueError("megabatch size must be >= 1")
    it = iter(windows)
    while True:
        group = list(itertools.islice(it, size))
        if not group:
            return
        yield group


@dataclass
class _StageStat:
    launches: int = 0
    windows: int = 0
    batches: int = 0


@dataclass
class LaunchTally:
    """Segment-aware launch accounting for the fused path.

    Each fused stage records how many kernel launches it actually issued
    (measured from the device counter book, not estimated) and how many
    windows that batch covered, so ``launches / windows`` exposes the
    per-window launch cost the fusion achieved for every stage.
    """

    stages: Dict[str, _StageStat] = field(default_factory=dict)

    def note(self, stage: str, launches: int, windows: int) -> None:
        st = self.stages.setdefault(stage, _StageStat())
        st.launches += int(launches)
        st.windows += int(windows)
        st.batches += 1

    @contextmanager
    def measure(self, device, stage: str, windows: int):
        """Attribute launches issued inside the block to ``stage``."""
        before = device.counters.total().launches
        yield
        after = device.counters.total().launches
        self.note(stage, after - before, windows)

    def total_launches(self) -> int:
        return sum(st.launches for st in self.stages.values())

    def summary(self) -> dict:
        return {
            name: {
                "launches": st.launches,
                "windows": st.windows,
                "batches": st.batches,
            }
            for name, st in sorted(self.stages.items())
        }


__all__ = [
    "FUSABLE_LAUNCHERS",
    "LaunchPlan",
    "LaunchTally",
    "MEGABATCH_WINDOWS",
    "WindowSegment",
    "build_cohort_plan",
    "build_launch_plan",
    "chunk_windows",
]
