"""Hardware specifications for the simulated platform.

The defaults replicate the evaluation platform of Section VI-A: a Dell
PowerEdge M610x with an NVIDIA Tesla M2050 GPU and Intel Xeon E5630 CPUs.
All bandwidth figures are the *measured* numbers the paper reports, because
the paper's own analytical estimate (Formula 1) is built on them; using the
same constants lets our cost model reproduce the paper's reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a simulated GPU.

    Attributes mirror the quantities the paper uses when reasoning about
    performance: memory bandwidths for coalesced vs. random access, the
    warp width that drives coalescing analysis, shared/constant memory
    capacities that constrain kernel design, and an instruction issue rate
    used by the roofline cost model.
    """

    name: str = "NVIDIA Tesla M2050"
    num_sms: int = 14
    cores: int = 448
    warp_size: int = 32
    clock_ghz: float = 1.15
    global_mem_bytes: int = 3 * 1024**3
    shared_mem_per_block: int = 48 * 1024
    constant_mem_bytes: int = 64 * 1024
    l1_bytes: int = 48 * 1024
    l2_bytes: int = 768 * 1024
    #: Measured bandwidth for fully coalesced access (Section VI-A).
    bw_coalesced: float = 82e9
    #: Measured bandwidth for random access (Section VI-A).
    bw_random: float = 3.2e9
    #: Memory transaction (cache line / segment) size in bytes.
    segment_bytes: int = 128
    #: Warp-instruction issue rate of the whole chip (warp-instructions/s).
    #: 448 cores * 1.15 GHz / 32 lanes = one warp-instruction per SM-cycle.
    warp_issue_rate: float = 448 * 1.15e9 / 32
    #: Fixed overhead per kernel launch (seconds).
    launch_overhead: float = 5e-6
    #: Host <-> device transfer bandwidth (PCIe gen2 x16, effective).
    pcie_bandwidth: float = 5e9
    #: Shared-memory access throughput (accesses/s, whole chip).
    shared_access_rate: float = 448 * 1.15e9


@dataclass(frozen=True)
class HostLinkSpec:
    """The shared host<->device interconnect of a multi-GPU node.

    A :class:`~repro.gpusim.pool.DevicePool` hangs every device off one
    :class:`~repro.gpusim.pool.HostLink` built from this spec.  The model
    is the one SOAP3-dp's multi-GPU split assumes: each PCIe slot may be
    x16, but all slots funnel through one I/O hub and host-memory
    controller, so *concurrent* transfers from N devices serialize
    against the shared ``bandwidth`` rather than scaling it by N.  Every
    transfer additionally pays ``per_transfer_overhead`` (DMA setup and
    arbitration), which is what makes many small uploads more expensive
    than one large one even at equal byte counts.
    """

    #: Aggregate host<->device bandwidth of the shared link (bytes/s).
    #: Defaults to the single-slot PCIe gen2 x16 effective rate — the
    #: conservative "all slots share one hub" assumption.
    bandwidth: float = 5e9
    #: Fixed serialized cost per individual transfer (seconds).
    per_transfer_overhead: float = 10e-6


@dataclass(frozen=True)
class CpuSpec:
    """Static description of the host CPU used by the CPU cost model."""

    name: str = "Intel Xeon E5630 2.53 GHz"
    cores: int = 8
    threads: int = 16
    clock_ghz: float = 2.53
    main_mem_bytes: int = 64 * 1024**3
    #: Measured sequential main-memory bandwidth (Section VI-A).
    bw_sequential: float = 4.2e9
    #: Latency of a cache-missing random access (seconds).
    random_latency: float = 60e-9
    #: Sustained simple-instruction throughput for one thread (ops/s).
    instr_rate: float = 2.0e9
    #: Cost of one scalar ``log10`` call (seconds).
    log_cost: float = 30e-9


@dataclass(frozen=True)
class DiskSpec:
    """Static description of the disk and the text I/O path."""

    #: Measured sequential disk bandwidth (Section VI-A).
    bw_sequential: float = 90e6
    #: Effective bandwidth when the OS page cache absorbs a re-read
    #: (the paper notes read_site benefits from OS buffering).
    bw_buffered: float = 150e6
    #: CPU cost of formatting one output byte of plain text (seconds).
    format_cost_per_byte: float = 20e-9
    #: CPU cost of parsing one input byte of plain text (seconds).
    parse_cost_per_byte: float = 10e-9


@dataclass(frozen=True)
class PlatformSpec:
    """The full evaluation platform: GPU + CPU + disk."""

    gpu: GpuSpec = field(default_factory=GpuSpec)
    cpu: CpuSpec = field(default_factory=CpuSpec)
    disk: DiskSpec = field(default_factory=DiskSpec)


#: Effective CPU compression throughput (bytes/s) for the output codec
#: when it runs on the host instead of the device.  Section V-B motivates
#: moving RLE+DICT onto the GPU precisely because the CPU-side encoder
#: sustains only on the order of the sequential disk bandwidth it feeds
#: (~90 MB/s on the Xeon E5630 testbed), so host compression would gate
#: the whole output phase.  The pipeline charges this rate for the
#: residual host-side encode work.
CPU_COMPRESS_BW = 90e6

#: The default platform, replicating the paper's testbed.
BGI_PLATFORM = PlatformSpec()
