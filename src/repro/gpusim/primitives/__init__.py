"""Data-parallel primitives on the simulated GPU.

These mirror the primitives the paper builds its compression kernels from
(Section V-B): *reduction* (used for RLE), *sort* and *unique* (dictionary
construction for DICT), *binary search* (dictionary lookup), and *scan*
(compaction offsets).  Each primitive performs the real computation with
NumPy and accounts instructions and memory transactions through the
:class:`~repro.gpusim.kernel.KernelContext`.
"""

from .reduce import device_reduce, segmented_reduce
from .scan import device_exclusive_scan
from .search import device_binary_search
from .segmented import (
    compose_segment_keys,
    segmented_dict_indices,
    segmented_flag_runs,
)
from .sort import device_radix_sort, sequential_radix_sort_batches
from .unique import device_unique

__all__ = [
    "compose_segment_keys",
    "device_binary_search",
    "device_exclusive_scan",
    "device_radix_sort",
    "device_reduce",
    "device_unique",
    "segmented_dict_indices",
    "segmented_flag_runs",
    "segmented_reduce",
    "sequential_radix_sort_batches",
]
