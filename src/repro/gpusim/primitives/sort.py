"""LSD radix sort on the simulated GPU.

This is the Thrust-style large-array sort the paper compares against in
Figure 7(a): excellent for one big array, but hopeless when billions of tiny
per-site arrays must be sorted one after another
(:func:`sequential_radix_sort_batches` reproduces that underutilization).
"""

from __future__ import annotations

import numpy as np

from ...errors import KernelError
from ..device import Device
from ..memory import DeviceArray

#: Digit width in bits for the LSD passes.
RADIX_BITS = 8
RADIX = 1 << RADIX_BITS


def _histogram_kernel(ctx, keys, hist, shift: int, n: int):
    """Thread t extracts its digit and atomically bumps the histogram."""
    active = ctx.tid < n
    k = ctx.gload(keys, ctx.tid, active=active)
    digit = (k.astype(np.int64) >> shift) & (RADIX - 1)
    ctx.instr(2, active=active)
    ctx.gatomic_add(hist, digit, 1, active=active)


def _scatter_kernel(ctx, keys, out, perm, n: int):
    """Thread t writes its key to its stable-partitioned position."""
    active = ctx.tid < n
    k = ctx.gload(keys, ctx.tid, active=active)
    pos = ctx.gload(perm, ctx.tid, active=active)
    ctx.instr(1, active=active)
    ctx.gstore(out, pos, k, active=active)


def device_radix_sort(
    device: Device, keys: DeviceArray, nbits: int | None = None
) -> DeviceArray:
    """Sort a device array of unsigned integer keys ascending.

    Runs ``ceil(bits / 8)`` LSD passes.  Each pass issues a histogram
    kernel, a 256-bin scan (negligible, folded into the histogram launch),
    and a scatter kernel whose writes are, as on real hardware, almost
    fully uncoalesced — which is precisely why radix sort needs large
    arrays to pay off.

    ``nbits`` caps the key width actually sorted: callers whose keys
    occupy only the low bits of the word (e.g. the megabatch codec's
    composite segment keys) skip the all-zero high-digit passes, exactly
    as a real radix sort configured with ``begin_bit``/``end_bit`` would.
    """
    if keys.dtype.kind != "u":
        raise KernelError("device_radix_sort requires an unsigned dtype")
    n = keys.size
    width = keys.itemsize * 8
    if nbits is None:
        nbits = width
    if not 1 <= nbits <= width:
        raise KernelError(f"nbits must be in [1, {width}], got {nbits}")
    src = device.alloc(n, keys.dtype, name=f"{keys.name}.rsortA")
    src.data[:] = keys.data.reshape(-1)
    dst = device.alloc(n, keys.dtype, name=f"{keys.name}.rsortB")
    for shift in range(0, nbits, RADIX_BITS):
        digits = (src.data.astype(np.int64) >> shift) & (RADIX - 1)
        if n:
            hist = device.alloc(RADIX, np.int64, name="rsort.hist")
            # The 256-bin scan that consumes the histogram is folded into
            # this launch (see docstring); the host computes the actual
            # permutation below.
            hist.mark_consumed()
            device.launch(
                _histogram_kernel, n, src, hist, shift, n, name="radix_histogram"
            )
            # Stable partition permutation for this digit (host computes the
            # permutation; device traffic is what we account).
            perm_host = np.empty(n, dtype=np.int64)
            order = np.argsort(digits, kind="stable")
            perm_host[order] = np.arange(n)
            perm = device.to_device(perm_host, name="rsort.perm")
            device.launch(
                _scatter_kernel, n, src, dst, perm, n, name="radix_scatter"
            )
            device.free(hist)
            device.free(perm)
        src, dst = dst, src
    out = device.alloc(n, keys.dtype, name=f"{keys.name}.sorted")
    out.data[:] = src.data
    device.free(src)
    device.free(dst)
    return out


def sequential_radix_sort_batches(
    device: Device, batch: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Sort many small arrays by calling the big-array sort on each in turn.

    ``batch`` is ``(n_arrays, max_len)``; ``lengths[i]`` gives the valid
    prefix of row ``i``.  This is the Figure 7(a) strawman: every tiny sort
    occupies the whole device, so throughput collapses.
    """
    batch = np.asarray(batch)
    out = batch.copy()
    for i in range(batch.shape[0]):
        m = int(lengths[i])
        if m <= 1:
            continue
        keys = device.to_device(
            np.ascontiguousarray(batch[i, :m]), name="seqsort.row"
        )
        sorted_row = device_radix_sort(device, keys)
        out[i, :m] = sorted_row.data
        device.free(keys)
        device.free(sorted_row)
    return out
