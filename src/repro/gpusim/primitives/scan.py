"""Work-efficient exclusive prefix scan (Blelloch) on the simulated GPU."""

from __future__ import annotations

import numpy as np

from ..device import Device
from ..memory import DeviceArray


def _upsweep_kernel(ctx, arr: DeviceArray, stride: int, n: int):
    """Up-sweep phase: a[i + 2s - 1] += a[i + s - 1] for strided i."""
    i = ctx.tid * (2 * stride)
    active = (i + 2 * stride - 1) < n
    left = ctx.gload(arr, i + stride - 1, active=active)
    right = ctx.gload(arr, i + 2 * stride - 1, active=active)
    ctx.instr(1, active=active)
    ctx.gstore(arr, i + 2 * stride - 1, left + right, active=active)


def _downsweep_kernel(ctx, arr: DeviceArray, stride: int, n: int):
    """Down-sweep phase: swap-and-add propagating partial sums down."""
    i = ctx.tid * (2 * stride)
    active = (i + 2 * stride - 1) < n
    left = ctx.gload(arr, i + stride - 1, active=active)
    right = ctx.gload(arr, i + 2 * stride - 1, active=active)
    ctx.instr(2, active=active)
    ctx.gstore(arr, i + stride - 1, right, active=active)
    ctx.gstore(arr, i + 2 * stride - 1, left + right, active=active)


def device_exclusive_scan(device: Device, arr: DeviceArray) -> DeviceArray:
    """Exclusive prefix sum of a device array.

    Returns a new device array ``out`` with
    ``out[i] = sum(arr[:i])``; the input is left untouched.  The
    implementation pads to the next power of two and runs the classic
    up-sweep / down-sweep passes, each a coalesced strided kernel.
    """
    n = arr.size
    if n == 0:
        return device.alloc(0, arr.dtype, name=f"{arr.name}.scan")
    m = 1 << (n - 1).bit_length()
    work = device.alloc(m, arr.dtype, name=f"{arr.name}.scanwork")
    work.data[:n] = arr.data.reshape(-1)
    stride = 1
    while stride < m:
        threads = m // (2 * stride)
        device.launch(
            _upsweep_kernel, threads, work, stride, m, name="scan_upsweep"
        )
        stride *= 2
    work.data[m - 1] = 0
    stride = m // 2
    while stride >= 1:
        threads = m // (2 * stride)
        device.launch(
            _downsweep_kernel, threads, work, stride, m, name="scan_downsweep"
        )
        stride //= 2
    out = device.alloc(n, arr.dtype, name=f"{arr.name}.scan")
    out.data[:] = work.data[:n]
    device.free(work)
    return out
