"""Segmented device primitives for ragged megabatches.

The fused launch path concatenates many windows' columns into one flat
array and needs the per-window codec results from single launches:

* :func:`segmented_flag_runs` — RLE run-boundary flags where a new
  segment (window) always starts a new run, so the flag sum equals the
  sum of per-window run counts.
* :func:`segmented_dict_indices` — per-segment dictionary construction
  and lookup in one sort/unique/search chain, by embedding the segment
  id in the high bits of a composite key.  Segment boundaries then fall
  out of the ordinary ``unique`` compaction (adjacent keys from
  different segments always differ), and one parallel binary search
  over the concatenated dictionary serves every window at once.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..device import Device
from ..memory import DeviceArray
from .search import device_binary_search
from .sort import device_radix_sort
from .unique import device_unique


def _bits_for(max_value: int) -> int:
    """Bits needed to store values in ``[0, max_value]`` (at least 1)."""
    return max(1, int(max_value).bit_length())


def _seg_flag_kernel(ctx, values, seg_first, flags, n: int):
    """Thread t flags a new run at t: segment start or value change."""
    active = ctx.tid < n
    v = ctx.gload(values, ctx.tid, active=active)
    left = ctx.gload(values, np.maximum(ctx.tid - 1, 0), active=active)
    first = ctx.gload(seg_first, ctx.tid, active=active)
    is_new = (first != 0) | (v != left)
    ctx.instr(3, active=active)
    ctx.gstore(flags, ctx.tid, is_new.astype(flags.dtype), active=active)


def segmented_flag_runs(
    device: Device, values: DeviceArray, seg_first: DeviceArray
) -> DeviceArray:
    """Run-boundary flags over a flat array of concatenated segments.

    ``seg_first[i]`` must be nonzero exactly where segment ``i`` begins
    (including position 0).  The returned int64 flag array sums to the
    total run count across all segments — identical to running the
    per-window ``rle_flag`` kernel on each segment separately, but in a
    single launch.
    """
    n = values.size
    flags = device.alloc(n, np.int64, name="segrle.flags")
    device.launch(
        _seg_flag_kernel, n, values, seg_first, flags, n, name="seg_rle_flag"
    )
    return flags


def compose_segment_keys(
    keys: np.ndarray, seg_ids: np.ndarray, key_bits: int
) -> np.ndarray:
    """Pack ``(segment, key)`` pairs into sortable uint64 composites.

    Sorting composites ascending sorts primarily by segment and
    secondarily by key, so a single radix sort yields every segment's
    sorted key range back to back.
    """
    return (seg_ids.astype(np.uint64) << np.uint64(key_bits)) | keys.astype(
        np.uint64
    )


def segmented_dict_indices(
    device: Device, segments: Sequence[np.ndarray]
) -> Tuple[np.ndarray, List[int]]:
    """Per-segment DICT indices for many key arrays in one launch chain.

    ``segments`` holds one uint32 rank-key array per window.  Returns the
    flat array of *segment-local* dictionary indices (concatenated in
    segment order) plus each segment's dictionary size.  Equivalent to
    running sort/unique/binary-search per segment, but the device sees
    one composite-key sort, one unique compaction and one search.
    """
    sizes = [int(np.asarray(s).size) for s in segments]
    total = sum(sizes)
    if total == 0:
        return np.empty(0, dtype=np.int64), [0] * len(segments)
    keys = np.concatenate([np.asarray(s, dtype=np.uint32) for s in segments])
    seg_ids = np.repeat(np.arange(len(segments), dtype=np.int64), sizes)
    key_bits = _bits_for(int(keys.max()))
    seg_bits = _bits_for(max(len(segments) - 1, 0))
    composite = compose_segment_keys(keys, seg_ids, key_bits)

    comp_dev = device.to_device(composite, "segdict.keys")
    sorted_dev = device_radix_sort(device, comp_dev, nbits=key_bits + seg_bits)
    uniq = device_unique(device, sorted_dev)
    # The concatenated dictionary goes to constant memory when it fits,
    # same policy as the per-window DICT encoder (Section V-B).
    table64 = uniq.data.astype(np.int64)
    hay = (
        device.to_constant(table64, "segdict.table")
        if table64.nbytes <= device.spec.constant_mem_bytes // 2
        else device.to_device(table64, "segdict.table")
    )
    needles = device.to_device(composite.astype(np.int64), "segdict.needles")
    idx_dev = device_binary_search(device, needles, hay)
    global_idx = idx_dev.data.astype(np.int64).copy()
    for a in (comp_dev, sorted_dev, uniq, hay, needles, idx_dev):
        device.free(a)

    # Segment-local indices: subtract each segment's dictionary offset.
    dict_sizes = [int(np.unique(np.asarray(s)).size) for s in segments]
    offsets = np.zeros(len(segments), dtype=np.int64)
    np.cumsum(dict_sizes[:-1], out=offsets[1:])
    return global_idx - offsets[seg_ids], dict_sizes


__all__ = [
    "compose_segment_keys",
    "segmented_dict_indices",
    "segmented_flag_runs",
]
