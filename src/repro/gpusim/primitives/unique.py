"""Unique-compaction of a sorted device array (dictionary construction)."""

from __future__ import annotations

import numpy as np

from ...errors import KernelError
from ..device import Device
from ..memory import DeviceArray
from .scan import device_exclusive_scan


def _flag_kernel(ctx, keys, flags, n: int):
    """Thread t flags whether keys[t] starts a new run (t==0 or != left)."""
    active = ctx.tid < n
    k = ctx.gload(keys, ctx.tid, active=active)
    left = ctx.gload(keys, np.maximum(ctx.tid - 1, 0), active=active)
    is_new = (ctx.tid == 0) | (k != left)
    ctx.instr(2, active=active)
    ctx.gstore(flags, ctx.tid, is_new.astype(flags.dtype), active=active)


def _compact_kernel(ctx, keys, flags, positions, out, n: int):
    """Thread t scatters its key to out[positions[t]] when flagged."""
    active = ctx.tid < n
    f = ctx.gload(flags, ctx.tid, active=active)
    emit = active & (f != 0)
    k = ctx.gload(keys, ctx.tid, active=emit)
    pos = ctx.gload(positions, ctx.tid, active=emit)
    ctx.instr(1, active=active)
    ctx.gstore(out, pos, k, active=emit)


def device_unique(device: Device, sorted_keys: DeviceArray) -> DeviceArray:
    """Return the distinct values of an ascending-sorted device array.

    Classic flag -> scan -> scatter compaction; raises if the input is not
    sorted (the precondition real Thrust ``unique`` silently assumes).
    """
    n = sorted_keys.size
    if n == 0:
        return device.alloc(0, sorted_keys.dtype, name="unique")
    flat = sorted_keys.data.reshape(-1)
    if np.any(flat[1:] < flat[:-1]):
        raise KernelError("device_unique requires sorted input")
    flags = device.alloc(n, np.int64, name="unique.flags")
    device.launch(_flag_kernel, n, sorted_keys, flags, n, name="unique_flag")
    positions = device_exclusive_scan(device, flags)
    n_unique = int(positions.data[-1] + flags.data[-1])
    # init=False: compaction must populate every output slot itself.
    out = device.alloc(n_unique, sorted_keys.dtype, name="unique", init=False)
    device.launch(
        _compact_kernel,
        n,
        sorted_keys,
        flags,
        positions,
        out,
        n,
        name="unique_compact",
    )
    device.free(flags)
    device.free(positions)
    return out
