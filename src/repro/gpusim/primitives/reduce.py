"""Tree reduction on the simulated GPU."""

from __future__ import annotations

import numpy as np

from ...errors import KernelError
from ..device import Device
from ..memory import DeviceArray

_OPS = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
}


def _reduce_pass_kernel(ctx, src: DeviceArray, dst: DeviceArray, n: int, op):
    """One tree-reduction pass: thread t combines elements 2t and 2t+1."""
    left = 2 * ctx.tid
    right = left + 1
    a = ctx.gload(src, left, active=left < n)
    has_right = right < n
    b = ctx.gload(src, np.minimum(right, n - 1), active=has_right)
    combined = np.where(has_right, op(a, b), a)
    ctx.instr(2)
    # Every lane owns one output slot (lanes without a right element pass
    # their left value through), hence the explicit full-warp mask.
    ctx.gstore(dst, ctx.tid, combined, active=None)


def device_reduce(device: Device, arr: DeviceArray, op: str = "sum"):
    """Reduce a device array to a scalar with log2(n) kernel passes.

    Returns the reduced value as a NumPy scalar of the array's dtype.
    """
    if op not in _OPS:
        raise KernelError(f"unsupported reduction op {op!r}")
    ufunc = _OPS[op]
    n = arr.size
    if n == 0:
        raise KernelError("cannot reduce an empty array")
    src = arr
    scratch = None
    while n > 1:
        m = (n + 1) // 2
        dst = device.alloc(m, arr.dtype, name=f"{arr.name}.reduce")
        device.launch(
            _reduce_pass_kernel, m, src, dst, n, ufunc, name="reduce_pass"
        )
        if scratch is not None:
            device.free(scratch)
        scratch = dst
        src, n = dst, m
    out = src.data.reshape(-1)[0].copy()
    if scratch is not None:
        device.free(scratch)
    return out


def _segment_sum_kernel(ctx, values, offsets, out, n_segments):
    """Thread t sums values[offsets[t]:offsets[t+1]] sequentially.

    Segments here are tiny (per-site runs), so a per-thread sequential loop
    mirrors what the real kernel does; the lockstep loop runs to the longest
    segment in the launch with shorter lanes masked off.
    """
    starts = ctx.gload(offsets, ctx.tid, active=ctx.tid < n_segments)
    ends = ctx.gload(offsets, ctx.tid + 1, active=ctx.tid < n_segments)
    acc = np.zeros(ctx.n_threads, dtype=np.float64)
    lengths = ends - starts
    max_len = int(lengths.max(initial=0))
    for j in range(max_len):
        active = (j < lengths) & (ctx.tid < n_segments)
        v = ctx.gload(values, starts + j, active=active)
        acc += np.where(active, v.astype(np.float64), 0.0)
        ctx.instr(1, active=active)
    ctx.gstore(out, ctx.tid, acc.astype(out.dtype), active=ctx.tid < n_segments)


def segmented_reduce(
    device: Device, values: DeviceArray, offsets: DeviceArray
) -> DeviceArray:
    """Sum each segment ``values[offsets[i]:offsets[i+1]]``.

    ``offsets`` has ``n_segments + 1`` entries; returns a device array of
    ``n_segments`` sums with the same dtype as ``values``.
    """
    n_segments = offsets.size - 1
    if n_segments < 0:
        raise KernelError("offsets must have at least one entry")
    out = device.alloc(max(n_segments, 1), values.dtype, name="segsum")
    if n_segments:
        device.launch(
            _segment_sum_kernel,
            n_segments,
            values,
            offsets,
            out,
            n_segments,
            name="segmented_reduce",
        )
    return out
