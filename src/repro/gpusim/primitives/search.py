"""Parallel binary search (dictionary lookup for DICT encoding)."""

from __future__ import annotations

import numpy as np

from ...errors import KernelError
from ..device import Device
from ..memory import DeviceArray


def _binary_search_kernel(ctx, needles, haystack, out, n: int, m: int):
    """Thread t binary-searches haystack (sorted, size m) for needles[t].

    All lanes run the full ceil(log2(m)) iterations in lockstep, as the
    real kernel does; the dictionary may live in constant memory, in which
    case probes hit the constant cache instead of global memory.
    """
    active = ctx.tid < n
    x = ctx.gload(needles, ctx.tid, active=active)
    lo = np.zeros(ctx.n_threads, dtype=np.int64)
    hi = np.full(ctx.n_threads, m, dtype=np.int64)
    # Host-side loop-bound arithmetic, not a score computation.
    steps = max(1, int(np.ceil(np.log2(max(m, 2)))) + 1)  # gsnp-lint: disable=GSNP102
    probe = ctx.cload if haystack.space == "constant" else ctx.gload
    for _ in range(steps):
        mid = (lo + hi) // 2
        v = probe(haystack, np.minimum(mid, m - 1), active=active)
        go_right = v < x
        lo = np.where(go_right & (hi > lo), mid + 1, lo)
        hi = np.where(~go_right & (hi > lo), mid, hi)
        ctx.instr(4, active=active)
    ctx.gstore(out, ctx.tid, lo.astype(out.dtype), active=active)


def device_binary_search(
    device: Device, needles: DeviceArray, haystack: DeviceArray
) -> DeviceArray:
    """Find the index of each needle in a sorted haystack.

    Returns a device array of int64 indices (``searchsorted`` left
    semantics); every needle is assumed to be present when used as a DICT
    lookup, but absent needles simply return their insertion point.
    """
    m = haystack.size
    if m == 0:
        raise KernelError("cannot search an empty dictionary")
    n = needles.size
    # init=False: every queried slot is written by the kernel (the n == 0
    # placeholder slot is never read).
    out = device.alloc(max(n, 1), np.int64, name="bsearch", init=False)
    if n:
        device.launch(
            _binary_search_kernel,
            n,
            needles,
            haystack,
            out,
            n,
            m,
            name="binary_search",
        )
    return out
