"""In-order device work queues (the CUDA-stream launch interface).

The window-pipelined throughput engine expresses each phase's kernel
sequence as launches enqueued on a :class:`DeviceStream`.  The simulator
executes kernels eagerly and deterministically — there is no device-side
asynchrony to model — so a stream is a thin in-order delegate to
:meth:`~repro.gpusim.device.Device.launch` with identical counter
semantics.  It exists so pipeline code states which launches form one
ordered sequence (the shape real CUDA streaming requires), and so tooling
can find kernels statically: ``gsnp-lint`` treats the first argument of
``*.enqueue(...)`` exactly like the first argument of ``*.launch(...)``.
"""

from __future__ import annotations

from typing import Callable

from .device import Device


class DeviceStream:
    """An ordered kernel queue bound to one :class:`Device`.

    ``enqueue`` has the signature and accounting of ``Device.launch``;
    ``synchronize`` is a no-op barrier (eager execution leaves nothing
    pending) kept so pipeline code reads like the CUDA idiom it models.
    """

    def __init__(self, device: Device) -> None:
        self.device = device
        #: Number of kernels enqueued on this stream.
        self.launches = 0

    def enqueue(self, kernel: Callable, n_threads: int, *args, **kwargs):
        """Launch ``kernel`` in stream order (eager, fully accounted).

        On a pooled device the launch command itself is also noted on
        the shared :class:`~repro.gpusim.pool.HostLink`: command traffic
        crosses the same hub as data transfers, and the per-device tally
        feeds the pool's contention stats.
        """
        self.launches += 1
        if self.device.link is not None:
            self.device.link.note_launch(self.device.device_id)
        return self.device.launch(kernel, n_threads, *args, **kwargs)

    def synchronize(self) -> None:
        """Wait for enqueued work — immediate, since execution is eager."""
        return None


__all__ = ["DeviceStream"]
