"""Multi-device simulation: a pool of devices behind one contended link.

The paper evaluates a single Tesla M2050, but its cluster-scale results
(Tables I/IV) assume many such devices working on one genome at once.
SOAP3-dp is the canonical precedent for splitting a short-read workload
across several GPUs *and* the host CPU simultaneously; this module models
the hardware side of that picture:

* :class:`HostLink` — the shared PCIe/host-memory interconnect.  Every
  device in a pool charges its host<->device transfers here in addition
  to its private :class:`~repro.gpusim.device.TransferLog`.  Because all
  slots funnel through one I/O hub, the link *serializes*: modeled link
  time is total bytes over the shared bandwidth plus a per-transfer
  arbitration overhead (see :class:`~repro.gpusim.spec.HostLinkSpec`),
  not N independent x16 channels.
* :class:`DevicePool` — N identically-specced devices sharing one link,
  with pool-level views that merge per-device ``KernelCounters`` and
  transfer logs into totals and summarize per-device residency (keys
  include ``device_id``, so two pool devices never alias one upload).
* :func:`acquire_device` — the sanctioned construction funnel for
  standalone devices.  ``gsnp-lint`` rule GSNP110 flags direct
  ``Device(...)`` instantiation outside this module so every simulated
  device is obtained from the pool layer (or carries a rationale).

The simulator executes kernels eagerly and deterministically, so the
pool does not interleave device execution in real time; contention is a
*model* applied by :class:`~repro.gpusim.costmodel.PoolCostModel` when
converting accumulated charges into seconds.  Scheduling across the pool
lives in :mod:`repro.exec.hetero`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import DeviceError
from .counters import KernelCounters
from .device import Device, TransferLog
from .spec import GpuSpec, HostLinkSpec


@dataclass
class LinkUsage:
    """Per-device traffic accumulated on a shared :class:`HostLink`."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_count: int = 0
    d2h_count: int = 0
    #: Kernel-launch commands issued over the link (stream accounting).
    launches: int = 0

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    @property
    def total_count(self) -> int:
        return self.h2d_count + self.d2h_count


class HostLink:
    """The shared, contended host<->device interconnect of a pool.

    Thread-safe: scheduler lanes run on concurrent threads, each driving
    its own device, and all of them charge the same link.
    """

    def __init__(self, spec: Optional[HostLinkSpec] = None) -> None:
        self.spec = spec or HostLinkSpec()
        self._lock = threading.Lock()
        self._usage: dict[int, LinkUsage] = {}

    def _entry(self, device_id: int) -> LinkUsage:
        entry = self._usage.get(device_id)
        if entry is None:
            entry = self._usage[device_id] = LinkUsage()
        return entry

    def charge(self, device_id: int, nbytes: int, direction: str) -> None:
        """Record one transfer by ``device_id`` (called by the device)."""
        if direction not in ("h2d", "d2h"):
            raise DeviceError(f"unknown transfer direction {direction!r}")
        with self._lock:
            entry = self._entry(device_id)
            if direction == "h2d":
                entry.h2d_bytes += nbytes
                entry.h2d_count += 1
            else:
                entry.d2h_bytes += nbytes
                entry.d2h_count += 1

    def note_launch(self, device_id: int) -> None:
        """Record one kernel-launch command crossing the link."""
        with self._lock:
            self._entry(device_id).launches += 1

    def usage(self, device_id: int) -> LinkUsage:
        """A snapshot of one device's accumulated link traffic."""
        with self._lock:
            entry = self._usage.get(device_id)
            if entry is None:
                return LinkUsage()
            return LinkUsage(
                h2d_bytes=entry.h2d_bytes,
                d2h_bytes=entry.d2h_bytes,
                h2d_count=entry.h2d_count,
                d2h_count=entry.d2h_count,
                launches=entry.launches,
            )

    def total(self) -> LinkUsage:
        """Aggregate traffic over every device on the link."""
        out = LinkUsage()
        with self._lock:
            for entry in self._usage.values():
                out.h2d_bytes += entry.h2d_bytes
                out.d2h_bytes += entry.d2h_bytes
                out.h2d_count += entry.h2d_count
                out.d2h_count += entry.d2h_count
                out.launches += entry.launches
        return out

    def serialized_seconds(self) -> float:
        """Modeled time for all accumulated traffic, fully serialized.

        One shared hub: total bytes over the link bandwidth plus the
        per-transfer arbitration overhead for every individual transfer,
        regardless of which device issued it.
        """
        t = self.total()
        return (
            t.total_bytes / self.spec.bandwidth
            + t.total_count * self.spec.per_transfer_overhead
        )

    def reset(self) -> None:
        with self._lock:
            self._usage.clear()


class DevicePool:
    """N identically-specced simulated devices sharing one host link.

    Devices are created eagerly with stable ``device_id`` 0..N-1 and
    live for the pool's lifetime; `device(i)` hands out the same object
    every time, so residency on each device persists across shards the
    scheduler assigns to it.
    """

    def __init__(
        self,
        n_devices: int,
        spec: Optional[GpuSpec] = None,
        sanitize: bool = False,
        enforce_memory: bool = True,
        link_spec: Optional[HostLinkSpec] = None,
    ) -> None:
        if n_devices < 1:
            raise DeviceError(f"a pool needs >= 1 device, got {n_devices}")
        self.spec = spec or GpuSpec()
        if link_spec is None:
            link_spec = HostLinkSpec(bandwidth=self.spec.pcie_bandwidth)
        self.link = HostLink(link_spec)
        self.devices: list[Device] = [
            Device(  # gsnp-lint: disable=GSNP110 (the pool is the sanctioned device construction site)
                spec=self.spec,
                sanitize=sanitize,
                enforce_memory=enforce_memory,
                device_id=i,
                link=self.link,
            )
            for i in range(n_devices)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices)

    def device(self, device_id: int) -> Device:
        """The pool device with the given stable id."""
        try:
            return self.devices[device_id]
        except IndexError:
            raise DeviceError(
                f"device {device_id} not in pool of {len(self.devices)}"
            ) from None

    # -- pool-level accounting views -------------------------------------

    def total_counters(self) -> KernelCounters:
        """Per-device kernel counters merged into one pool total."""
        out = KernelCounters(name="pool_total", num_sms=self.spec.num_sms)
        for dev in self.devices:
            out.merge(dev.counters.total())
        return out

    def counters_by_kernel(self) -> dict[str, KernelCounters]:
        """Pool totals keyed by kernel name (merged across devices)."""
        merged: dict[str, KernelCounters] = {}
        for dev in self.devices:
            for name, c in dev.counters.entries.items():
                entry = merged.setdefault(
                    name, KernelCounters(name=name, num_sms=self.spec.num_sms)
                )
                entry.merge(c)
        return merged

    def total_transfers(self) -> TransferLog:
        """Per-device transfer logs merged into one pool total."""
        out = TransferLog()
        for dev in self.devices:
            out.h2d_bytes += dev.transfers.h2d_bytes
            out.d2h_bytes += dev.transfers.d2h_bytes
            out.h2d_count += dev.transfers.h2d_count
            out.d2h_count += dev.transfers.d2h_count
        return out

    def per_device_stats(self) -> list[dict]:
        """One stats row per device (serve `/stats` and bench shape)."""
        rows = []
        for dev in self.devices:
            total = dev.counters.total()
            rows.append(
                {
                    "device": dev.device_id,
                    "launches": total.launches,
                    "h2d_bytes": dev.transfers.h2d_bytes,
                    "d2h_bytes": dev.transfers.d2h_bytes,
                    "h2d_count": dev.transfers.h2d_count,
                    "d2h_count": dev.transfers.d2h_count,
                    "resident_entries": len(dev.resident),
                    "resident_hits": dev.resident.hits,
                    "resident_misses": dev.resident.misses,
                }
            )
        return rows

    def resident_summary(self) -> dict[object, list[int]]:
        """Map of residency key -> device ids holding an entry for it.

        With device identity folded into cache keys every list has
        exactly one element; a key shared by two devices would mean the
        pool aliased one calibration-fingerprinted upload across
        devices (the bug the keying fix closes).
        """
        summary: dict[object, list[int]] = {}
        for dev in self.devices:
            for key in dev.resident._entries:
                summary.setdefault(key, []).append(dev.device_id)
        return summary

    def release(self, strict_teardown: bool = False) -> None:
        """Drop residency on every device; optionally leak-check each."""
        for dev in self.devices:
            dev.resident.clear()
            if strict_teardown:
                dev.sanitize_teardown(strict=True)


def acquire_device(
    spec: Optional[GpuSpec] = None,
    sanitize: bool = False,
    enforce_memory: bool = True,
) -> Device:
    """Obtain a standalone simulated device (the GSNP110 funnel).

    Serial pipelines and probes that genuinely need a private device use
    this instead of instantiating :class:`Device` directly, so the pool
    layer remains the one construction site the linter has to trust.  A
    standalone device has ``device_id`` 0 and no shared link.
    """
    return Device(  # gsnp-lint: disable=GSNP110 (acquire_device is the standalone arm of the pool construction funnel)
        spec=spec or GpuSpec(),
        sanitize=sanitize,
        enforce_memory=enforce_memory,
    )


__all__ = [
    "DevicePool",
    "HostLink",
    "LinkUsage",
    "acquire_device",
]
