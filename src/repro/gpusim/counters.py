"""CUDA-Visual-Profiler-style hardware counters for simulated kernels.

Table III of the paper reports five counters for ``likelihood_comp``:
``#inst. PW``, ``#g_load``, ``#g_store``, ``#s_load PW`` and ``#s_store PW``,
where *PW* means the counter is normalized per warp on one multiprocessor.
:class:`KernelCounters` accumulates the raw quantities during simulated
execution; the ``*_pw`` properties apply the same normalization so benchmark
output is directly comparable with the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KernelCounters:
    """Mutable counter set for one kernel (or one accumulation scope)."""

    name: str = ""
    #: Number of simulated kernel launches folded into this counter set.
    launches: int = 0
    #: Total warp-instructions issued (one vector op over a warp = 1).
    inst_warp: int = 0
    #: Global-memory load transactions (128-byte segments).
    g_load: int = 0
    #: Global-memory store transactions (128-byte segments).
    g_store: int = 0
    #: Bytes actually requested by global loads (useful bytes).
    g_load_bytes: int = 0
    #: Bytes actually requested by global stores (useful bytes).
    g_store_bytes: int = 0
    #: Shared-memory load operations, per warp.
    s_load_warp: int = 0
    #: Shared-memory store operations, per warp.
    s_store_warp: int = 0
    #: Constant-memory load operations (cached, cheap).
    c_load: int = 0
    #: Number of multiprocessors used for the PW normalization.
    num_sms: int = 14

    def _is_empty(self) -> bool:
        return (
            self.launches == 0
            and self.inst_warp == 0
            and self.g_load == 0
            and self.g_store == 0
            and self.g_load_bytes == 0
            and self.g_store_bytes == 0
            and self.s_load_warp == 0
            and self.s_store_warp == 0
            and self.c_load == 0
        )

    def bump_global(
        self,
        load_tx: int = 0,
        store_tx: int = 0,
        load_bytes: int = 0,
        store_bytes: int = 0,
        inst: int = 0,
    ) -> None:
        """Fold one memory op's whole counter delta in a single call.

        The per-access hot path of :class:`~repro.gpusim.kernel.KernelContext`
        batches its transaction/byte/instruction updates through here.
        """
        self.g_load += load_tx
        self.g_store += store_tx
        self.g_load_bytes += load_bytes
        self.g_store_bytes += store_bytes
        self.inst_warp += inst

    def merge(self, other: "KernelCounters") -> None:
        """Fold another counter set into this one.

        The ``*_pw`` views divide by ``num_sms``, so counters gathered on
        devices with different multiprocessor counts must never be summed:
        a still-empty accumulator adopts the other side's ``num_sms``,
        while folding two non-empty mismatched sets raises.
        """
        if self.num_sms != other.num_sms and not other._is_empty():
            if self._is_empty():
                self.num_sms = other.num_sms
            else:
                from ..errors import DeviceError

                raise DeviceError(
                    f"cannot merge counters for {other.name or self.name!r} "
                    f"across device specs: num_sms {self.num_sms} != "
                    f"{other.num_sms} (PW normalization would be wrong)"
                )
        self.launches += other.launches
        self.inst_warp += other.inst_warp
        self.g_load += other.g_load
        self.g_store += other.g_store
        self.g_load_bytes += other.g_load_bytes
        self.g_store_bytes += other.g_store_bytes
        self.s_load_warp += other.s_load_warp
        self.s_store_warp += other.s_store_warp
        self.c_load += other.c_load

    # -- Paper-style normalized views ------------------------------------

    @property
    def inst_pw(self) -> float:
        """``#inst. PW``: warp-instructions per multiprocessor."""
        return self.inst_warp / self.num_sms

    @property
    def s_load_pw(self) -> float:
        """``#s_load PW``: shared loads per warp per multiprocessor."""
        return self.s_load_warp / self.num_sms

    @property
    def s_store_pw(self) -> float:
        """``#s_store PW``: shared stores per warp per multiprocessor."""
        return self.s_store_warp / self.num_sms

    def as_dict(self) -> dict[str, float]:
        """Return the Table-III-style view of this counter set."""
        return {
            "inst_pw": self.inst_pw,
            "g_load": float(self.g_load),
            "g_store": float(self.g_store),
            "s_load_pw": self.s_load_pw,
            "s_store_pw": self.s_store_pw,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        d = self.as_dict()
        body = ", ".join(f"{k}={v:.3g}" for k, v in d.items())
        return f"KernelCounters({self.name}: {body})"


@dataclass
class CounterBook:
    """A named collection of :class:`KernelCounters`, one per kernel.

    A :class:`~repro.gpusim.device.Device` owns one book; every launch
    accumulates into the entry matching the kernel name, so a pipeline can
    report per-kernel totals at the end of a run.
    """

    num_sms: int = 14
    entries: dict[str, KernelCounters] = field(default_factory=dict)

    def get(self, name: str) -> KernelCounters:
        """Return (creating if needed) the counters for ``name``."""
        if name not in self.entries:
            self.entries[name] = KernelCounters(name=name, num_sms=self.num_sms)
        return self.entries[name]

    def total(self) -> KernelCounters:
        """Return the sum over all kernels."""
        out = KernelCounters(name="total", num_sms=self.num_sms)
        for c in self.entries.values():
            out.merge(c)
        return out

    def reset(self) -> None:
        """Drop all accumulated counters."""
        self.entries.clear()
