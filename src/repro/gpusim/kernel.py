"""Warp-vectorized kernel execution context.

Simulated kernels follow the *lockstep* idiom: instead of running one Python
function per thread (hopelessly slow), the kernel body is written once and
operates on NumPy vectors indexed by thread id — exactly the mental model of
SIMT execution, and exactly the "vectorize your loops" idiom the scientific
Python optimization guide prescribes.  Every device-memory access goes
through the :class:`KernelContext`, which

* performs the real gather/scatter on the backing NumPy array, and
* runs per-warp coalescing analysis so the device's hardware counters
  reflect what a Fermi GPU would have done.

Inactive lanes are expressed with an ``active`` boolean mask (the SIMT
equivalent of a divergent branch): masked lanes read as 0 and issue no
transactions, but the warp still issues the instruction.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import KernelError
from .counters import KernelCounters
from . import memory as _gmem
from .memory import DeviceArray, count_transactions


@dataclass(frozen=True)
class OpRecord:
    """One routed memory op as observed at runtime.

    ``gsnp-audit --calibrate`` installs an observer to collect these and
    cross-checks them against the static coalescing verdicts: the
    ``(file, line)`` pair keys the record back to the audited source op.
    """

    kind: str            # gload|gstore|gatomic_add|cload
    file: str            # source file of the kernel call site
    line: int            # line of the call site
    kernel: str          # launch name (KernelCounters.name)
    array: str           # device array name
    tx: int              # memory transactions issued (0 for cload)
    n_live: int          # live lanes
    warps: int           # warps with at least one live lane
    n_threads: int
    warp_size: int
    itemsize: int
    segment_bytes: int


#: Module-level op observer; ``None`` keeps the hot path branch-free
#: beyond a single global check.
_OP_OBSERVER: Optional[Callable[[OpRecord], None]] = None


def set_op_observer(
    fn: Optional[Callable[[OpRecord], None]],
) -> Optional[Callable[[OpRecord], None]]:
    """Install (or clear, with ``None``) the per-op observer.

    Returns the previous observer so callers can restore it.
    """
    global _OP_OBSERVER
    prev = _OP_OBSERVER
    _OP_OBSERVER = fn
    return prev


class KernelContext:
    """Execution context handed to a simulated kernel body."""

    def __init__(
        self,
        device,
        counters: KernelCounters,
        n_threads: int,
        block_size: int = 256,
    ) -> None:
        self.device = device
        self.counters = counters
        self.n_threads = int(n_threads)
        self.block_size = int(block_size)
        self.warp_size = device.spec.warp_size
        #: Runtime sanitizer, or None (``Device(sanitize=True)`` sets it).
        self.sanitizer = getattr(device, "sanitizer", None)
        #: Global thread ids, the vector every kernel body indexes with.
        self.tid = np.arange(self.n_threads, dtype=np.int64)
        # Per-mask-object memo of (mask object, bool vector, active warps).
        # Kernels reuse one mask across many accesses (the comp kernel's
        # j-loop issues a dozen ops per mask), so the pad/reshape/any scan
        # runs once per mask instead of once per access.  The strong
        # reference pins each memoized mask, so an ``id`` can never be
        # recycled to a different object; masks must not be mutated in
        # place between accesses (lockstep kernels build fresh masks).
        self._mask_memo: dict[int, tuple] = {}

    # -- helpers ------------------------------------------------------------

    @property
    def n_warps(self) -> int:
        """Number of warps in this launch (ceil division)."""
        return -(-self.n_threads // self.warp_size)

    def _active_info(
        self, active: Optional[np.ndarray]
    ) -> tuple[Optional[np.ndarray], int]:
        """(bool mask or None, active-warp count), memoized per mask object.

        Under the fast paths, a mask with every lane live collapses to
        ``None``: masking with an all-true vector is the identity, so the
        downstream ops can take their unmasked shortcut (results and
        counters are unchanged — every warp has an active lane either way).
        """
        if active is None:
            return None, self.n_warps
        fast = _gmem._FAST_PATHS
        if fast:
            memo = self._mask_memo.get(id(active))
            if memo is not None and memo[0] is active:
                return memo[1], memo[2]
        act = np.asarray(active, dtype=bool).ravel()
        if act.size != self.n_threads:
            raise KernelError(
                f"active mask has {act.size} lanes, launch has "
                f"{self.n_threads} threads"
            )
        if fast and act.all():
            out: tuple[Optional[np.ndarray], int] = (None, self.n_warps)
        else:
            pad = (-act.size) % self.warp_size
            padded = act
            if pad:
                padded = np.concatenate([act, np.zeros(pad, dtype=bool)])
            warps = int(padded.reshape(-1, self.warp_size).any(axis=1).sum())
            out = (act, warps)
        if fast:
            self._mask_memo[id(active)] = (active, out[0], out[1])
        return out

    def _active_warps(self, active: Optional[np.ndarray]) -> int:
        """Warps with at least one active lane (these issue instructions)."""
        return self._active_info(active)[1]

    def _masked_idx(
        self, idx: np.ndarray, active: Optional[np.ndarray]
    ) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64).ravel()
        if idx.size != self.n_threads:
            raise KernelError(
                f"index vector has {idx.size} lanes, launch has "
                f"{self.n_threads} threads"
            )
        if active is not None:
            idx = np.where(self._active_info(active)[0], idx, -1)
        return idx

    def _op_info(
        self, idx: np.ndarray, active: Optional[np.ndarray]
    ) -> tuple[np.ndarray, Optional[np.ndarray], int, int]:
        """Per-access bookkeeping, computed once and shared by the op.

        Returns ``(midx, live, n_live, active_warps)`` where ``live`` is
        ``None`` when every lane is live (the all-live fast path: no boolean
        scatter needed).  ``live`` stays materialized whenever the sanitizer
        runs, since its hooks consume the mask.
        """
        act, warps = self._active_info(active)
        is_tid = idx is self.tid
        idx = np.asarray(idx, dtype=np.int64).ravel()
        if idx.size != self.n_threads:
            raise KernelError(
                f"index vector has {idx.size} lanes, launch has "
                f"{self.n_threads} threads"
            )
        if act is None:
            if (
                _gmem._FAST_PATHS
                and self.sanitizer is None
                and idx.size
                and (is_tid or int(idx.min()) >= 0)
            ):
                return idx, None, idx.size, warps
            live = idx >= 0
            return idx, live, int(np.count_nonzero(live)), warps
        # A surviving mask has a dead lane (all-true masks collapsed to
        # None above), so the all-live shortcut can never apply here.
        midx = np.where(act, idx, -1)
        live = midx >= 0
        return midx, live, int(np.count_nonzero(live)), warps

    # -- instruction accounting ----------------------------------------------

    def instr(self, per_thread: int, active: Optional[np.ndarray] = None) -> None:
        """Account ``per_thread`` arithmetic/logic instructions.

        In SIMT, a warp with any active lane issues the instruction for the
        whole warp — branch divergence costs the full warp, which is why the
        paper's sparse packing (all lanes doing identical work on packed
        non-zeros) matters.
        """
        self.counters.inst_warp += int(per_thread) * self._active_warps(active)

    def syncthreads(self) -> None:
        """A block-wide barrier (``__syncthreads()``).

        Establishes memory ordering between the stores before it and the
        loads after it, which is what the runtime sanitizer's race and
        hazard windows key on.  No instructions are charged here: kernels
        that need barriers already fold the cost into their per-step
        ``instr`` constants (see the batch bitonic kernel).
        """
        if self.sanitizer is not None:
            self.sanitizer.barrier()

    def note_shared(
        self,
        loads: int = 0,
        stores: int = 0,
        active: Optional[np.ndarray] = None,
    ) -> None:
        """Account shared-memory traffic (per-thread op counts)."""
        w = self._active_warps(active)
        self.counters.s_load_warp += int(loads) * w
        self.counters.s_store_warp += int(stores) * w

    def _observe(
        self, kind: str, arr: DeviceArray, tx: int, n_live: int, warps: int
    ) -> None:
        """Report one routed op to the calibration observer.

        Only called when an observer is installed; the call-site frame two
        levels up is the kernel body line that issued the op.
        """
        assert _OP_OBSERVER is not None
        frame = sys._getframe(2)
        _OP_OBSERVER(OpRecord(
            kind=kind,
            file=frame.f_code.co_filename,
            line=frame.f_lineno,
            kernel=self.counters.name,
            array=arr.name,
            tx=int(tx),
            n_live=int(n_live),
            warps=int(warps),
            n_threads=self.n_threads,
            warp_size=self.warp_size,
            itemsize=int(arr.itemsize),
            segment_bytes=int(self.device.spec.segment_bytes),
        ))

    # -- global memory --------------------------------------------------------

    def gload(
        self,
        arr: DeviceArray,
        idx: np.ndarray,
        active: Optional[np.ndarray] = None,
        fill=0,
    ) -> np.ndarray:
        """Per-thread gather from global memory with coalescing analysis.

        ``idx[t]`` is the flat element index read by thread ``t``; inactive
        lanes receive ``fill``.
        """
        self._check_global(arr)
        midx, live, n_live, warps = self._op_info(idx, active)
        tx = count_transactions(
            midx, arr.itemsize, self.warp_size,
            self.device.spec.segment_bytes, all_live=live is None,
        )
        self.counters.bump_global(
            load_tx=tx, load_bytes=n_live * arr.itemsize, inst=warps
        )
        if _OP_OBSERVER is not None:
            self._observe("gload", arr, tx, n_live, warps)
        flat = arr.flat_view()
        if live is None:
            self._bounds_check(arr, midx)
            arr._kernel_reads += 1
            return flat[midx]
        self._bounds_check(arr, midx[live])
        arr._kernel_reads += 1
        if self.sanitizer is not None:
            self.sanitizer.on_load(self, arr, midx, live)
        out = np.full(self.n_threads, fill, dtype=arr.dtype)
        out[live] = flat[midx[live]]
        return out

    def gstore(
        self,
        arr: DeviceArray,
        idx: np.ndarray,
        values: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> None:
        """Per-thread scatter to global memory with coalescing analysis.

        Lanes writing the same address are serialized in thread-id order
        (last lane wins), matching CUDA's undefined-but-single-winner
        semantics deterministically.
        """
        self._check_global(arr)
        midx, live, n_live, warps = self._op_info(idx, active)
        tx = count_transactions(
            midx, arr.itemsize, self.warp_size,
            self.device.spec.segment_bytes, all_live=live is None,
        )
        self.counters.bump_global(
            store_tx=tx, store_bytes=n_live * arr.itemsize, inst=warps
        )
        if _OP_OBSERVER is not None:
            self._observe("gstore", arr, tx, n_live, warps)
        vals = np.broadcast_to(
            np.asarray(values, dtype=arr.dtype), (self.n_threads,)
        )
        if live is None:
            self._bounds_check(arr, midx)
            arr._writes += 1
            arr.flat_view()[midx] = vals
            return
        self._bounds_check(arr, midx[live])
        arr._writes += 1
        if self.sanitizer is not None:
            self.sanitizer.on_store(self, arr, midx, live)
        arr.flat_view()[midx[live]] = vals[live]

    def gatomic_add(
        self,
        arr: DeviceArray,
        idx: np.ndarray,
        values: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> None:
        """Per-thread atomic add to global memory (np.add.at semantics)."""
        self._check_global(arr)
        midx, live, n_live, warps = self._op_info(idx, active)
        tx = count_transactions(
            midx, arr.itemsize, self.warp_size,
            self.device.spec.segment_bytes, all_live=live is None,
        )
        # An atomic RMW costs a load and a store transaction.
        nbytes = n_live * arr.itemsize
        self.counters.bump_global(
            load_tx=tx, store_tx=tx, load_bytes=nbytes, store_bytes=nbytes,
            inst=warps,
        )
        if _OP_OBSERVER is not None:
            self._observe("gatomic_add", arr, tx, n_live, warps)
        vals = np.broadcast_to(
            np.asarray(values, dtype=arr.dtype), (self.n_threads,)
        )
        if live is None:
            self._bounds_check(arr, midx)
            arr._writes += 1
            np.add.at(arr.flat_view(), midx, vals)
            return
        self._bounds_check(arr, midx[live])
        arr._writes += 1
        if self.sanitizer is not None:
            self.sanitizer.on_atomic(self, arr, midx, live)
        np.add.at(arr.flat_view(), midx[live], vals[live])

    # -- constant memory --------------------------------------------------------

    def cload(
        self,
        arr: DeviceArray,
        idx: np.ndarray,
        active: Optional[np.ndarray] = None,
        fill=0,
    ) -> np.ndarray:
        """Gather from cached constant memory (no transaction counting)."""
        arr.require_live()
        if arr.space != "constant":
            raise KernelError(
                f"cload on array {arr.name!r} in space {arr.space!r}"
            )
        midx, live, n_live, warps = self._op_info(idx, active)
        self.counters.c_load += n_live
        self.counters.inst_warp += warps
        if _OP_OBSERVER is not None:
            self._observe("cload", arr, 0, n_live, warps)
        if live is None:
            self._bounds_check(arr, midx)
            arr._kernel_reads += 1
            return arr.flat_view()[midx]
        self._bounds_check(arr, midx[live])
        arr._kernel_reads += 1
        if self.sanitizer is not None:
            self.sanitizer.on_load(self, arr, midx, live)
        out = np.full(self.n_threads, fill, dtype=arr.dtype)
        out[live] = arr.flat_view()[midx[live]]
        return out

    # -- internal -----------------------------------------------------------

    def _check_global(self, arr: DeviceArray) -> None:
        arr.require_live()
        if arr.space != "global":
            raise KernelError(
                f"global access to array {arr.name!r} in space {arr.space!r}"
            )

    @staticmethod
    def _bounds_check(arr: DeviceArray, idx: np.ndarray) -> None:
        if idx.size and (idx.max(initial=0) >= arr.size):
            raise KernelError(
                f"out-of-bounds access on {arr.name!r}: index "
                f"{int(idx.max())} >= size {arr.size}"
            )
