"""Simulated device memory: arrays, spaces, and coalescing analysis.

The GPU-performance claims in the paper all reduce to *how many memory
transactions a warp issues*.  On Fermi-class hardware a warp's loads are
serviced in 128-byte segments: 32 threads reading 32 consecutive 4-byte
words touch exactly one segment (coalesced), while 32 scattered reads touch
up to 32 segments (the measured 82 GB/s vs 3.2 GB/s gap of Section VI-A).
:func:`count_transactions` performs that per-warp segment analysis, fully
vectorized over all warps of a launch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DeviceError

#: Memory spaces recognised by the simulator.
SPACES = ("global", "constant")

_SENTINEL_SEG = np.iinfo(np.int64).max

# -- fast-path switch --------------------------------------------------------
#
# The coalescing analysis below has two algebraically-equivalent engines: the
# reference sentinel-sort (always correct, O(n log w) per call) and fast
# paths for the access shapes kernels actually issue (monotonic live
# indices; repeated patterns).  The switch exists so benchmarks can measure
# the fast engine against the faithful original, and so parity tests can
# prove both return identical counts on every input.

_FAST_PATHS = True
_TX_CACHE: dict[tuple, int] = {}
_TX_CACHE_MAX = 8192
#: Patterns at most this many lanes are memoized by exact bytes even when
#: the monotonic path could handle them: small launches are dominated by
#: per-call overhead, and their index shapes repeat across windows.
_TX_MEMO_MAX_LANES = 2048
#: (n, warp_size) -> bool[n-1], True where lane i+1 starts a new warp.
_BOUNDARY_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _warp_boundaries(n: int, warp_size: int) -> np.ndarray:
    key = (n, warp_size)
    b = _BOUNDARY_CACHE.get(key)
    if b is None:
        b = (np.arange(1, n) % warp_size) == 0
        if len(_BOUNDARY_CACHE) >= 512:
            _BOUNDARY_CACHE.clear()
        _BOUNDARY_CACHE[key] = b
    return b


def set_fast_paths(enabled: bool) -> bool:
    """Toggle the simulator fast paths; returns the previous setting."""
    global _FAST_PATHS
    prev = _FAST_PATHS
    _FAST_PATHS = bool(enabled)
    _TX_CACHE.clear()
    return prev


def fast_paths_enabled() -> bool:
    """Whether the simulator fast paths are currently active."""
    return _FAST_PATHS


def _count_transactions_reference(
    idx: np.ndarray, itemsize: int, warp_size: int, segment_bytes: int
) -> int:
    """The sentinel-sort coalescing analysis (the original algorithm)."""
    n = idx.size
    pad = (-n) % warp_size
    if pad:
        idx = np.concatenate([idx, np.full(pad, -1, dtype=np.int64)])
    addr = idx.astype(np.int64) * int(itemsize)
    seg = addr // int(segment_bytes)
    seg[idx < 0] = _SENTINEL_SEG
    seg = seg.reshape(-1, warp_size)
    seg = np.sort(seg, axis=1)
    # Distinct runs per row; the sentinel run (inactive lanes) contributes
    # exactly one run when present, which we subtract back out.
    distinct = (np.diff(seg, axis=1) != 0).sum(axis=1) + 1
    distinct = distinct - (seg[:, -1] == _SENTINEL_SEG)
    return int(distinct.sum())


def _count_transactions_scattered_live(
    idx: np.ndarray, itemsize: int, warp_size: int, segment_bytes: int
) -> int:
    """The sentinel-sort analysis specialized for all-live lanes.

    Same result as :func:`_count_transactions_reference` when no index is
    negative (verified by tests), with the sentinel bookkeeping dropped:
    only the pad lanes can be dead, and the pad run is exactly one extra
    distinct value per padded row.
    """
    n = idx.size
    seg = (idx.astype(np.int64, copy=False) * int(itemsize)) // int(
        segment_bytes
    )
    pad = (-n) % warp_size
    if pad:
        seg = np.concatenate([seg, np.full(pad, _SENTINEL_SEG, dtype=np.int64)])
    seg = np.sort(seg.reshape(-1, warp_size), axis=1)
    changes = int(np.count_nonzero(seg[:, 1:] != seg[:, :-1]))
    # Each row has (changes-in-row + 1) distinct values; the pad run in the
    # last row (when present) is one of them and issues no transaction.
    return changes + seg.shape[0] - (1 if pad else 0)


def _count_transactions_monotonic(
    idx: np.ndarray,
    itemsize: int,
    warp_size: int,
    segment_bytes: int,
    all_live: bool = False,
):
    """Sort-free count when the live indices are monotonic, else ``None``.

    Monotonic live lanes (``ctx.tid``-shaped loads, prefix masks, strided
    per-thread slots) put equal segments adjacent within each warp, so
    distinct segments per warp reduce to counting value changes between
    consecutive live lanes of the same warp — one vectorized pass instead
    of a per-warp sort.  ``all_live`` (caller-proven: no negative lane)
    skips liveness extraction and uses a cached warp-boundary mask.
    """
    if all_live:
        k = idx.size
        if k == 1:
            return 1
        lv = idx
        if not (lv[1:] >= lv[:-1]).all():
            if not (lv[1:] <= lv[:-1]).all():
                return None
        seg = lv * int(itemsize) // int(segment_bytes)
        new_tx = (seg[1:] != seg[:-1]) | _warp_boundaries(k, warp_size)
        return 1 + int(np.count_nonzero(new_tx))
    live_pos = np.nonzero(idx >= 0)[0]
    k = live_pos.size
    if k == 0:
        return 0
    lv = idx[live_pos].astype(np.int64)
    if k == 1:
        return 1
    if not (lv[1:] >= lv[:-1]).all():
        if not (lv[1:] <= lv[:-1]).all():
            return None
    seg = lv * int(itemsize) // int(segment_bytes)
    row = live_pos // warp_size
    new_tx = (row[1:] != row[:-1]) | (seg[1:] != seg[:-1])
    return 1 + int(new_tx.sum())


def count_transactions(
    indices: np.ndarray,
    itemsize: int,
    warp_size: int = 32,
    segment_bytes: int = 128,
    all_live: bool = False,
) -> int:
    """Count the memory transactions a warp-partitioned access generates.

    Parameters
    ----------
    indices:
        Flat element indices accessed by consecutive threads.  Thread ``t``
        accesses ``indices[t]``; a negative index marks an inactive lane
        (masked-off thread), which issues no transaction.
    itemsize:
        Size in bytes of one element.
    warp_size:
        Number of threads per warp (lanes coalesced together).
    segment_bytes:
        Size of one memory transaction segment.
    all_live:
        Caller-supplied proof that no index is negative (every lane live);
        lets the fast engine skip liveness extraction.  Purely an
        optimization hint — the result is identical without it.

    Returns
    -------
    int
        Total number of ``segment_bytes``-sized transactions summed over
        all warps.
    """
    idx = np.asarray(indices).ravel()
    n = idx.size
    if n == 0:
        return 0
    if not _FAST_PATHS:
        return _count_transactions_reference(
            idx, itemsize, warp_size, segment_bytes
        )
    key = None
    if n <= _TX_MEMO_MAX_LANES:
        # Small launches (scan levels, histogram bins, per-block passes)
        # are per-call-overhead bound and their index shapes repeat across
        # windows — memoize every pattern by exact bytes.
        key = (
            idx.dtype.str, n, int(itemsize), int(warp_size),
            int(segment_bytes), idx.tobytes(),
        )
        cached = _TX_CACHE.get(key)
        if cached is not None:
            return cached
    total = _count_transactions_monotonic(
        idx, itemsize, warp_size, segment_bytes, all_live=all_live
    )
    if total is None:
        # Scattered pattern: the sentinel sort is the only correct
        # analysis; memoize large ones too (gather shapes repeat across
        # genotype/window iterations).
        if key is None:
            key = (
                idx.dtype.str, n, int(itemsize), int(warp_size),
                int(segment_bytes), idx.tobytes(),
            )
            cached = _TX_CACHE.get(key)
            if cached is not None:
                return cached
        if all_live:
            total = _count_transactions_scattered_live(
                idx, itemsize, warp_size, segment_bytes
            )
        else:
            total = _count_transactions_reference(
                idx, itemsize, warp_size, segment_bytes
            )
    if key is not None:
        if len(_TX_CACHE) >= _TX_CACHE_MAX:
            _TX_CACHE.clear()
        _TX_CACHE[key] = total
    return total


class DeviceArray:
    """A typed array living in simulated device memory.

    The backing store is an ordinary NumPy array (``.data``).  Host code may
    touch ``.data`` freely when staging inputs or checking outputs; *kernel*
    code must route every access through the
    :class:`~repro.gpusim.kernel.KernelContext` so transactions are counted
    (``gsnp-lint`` enforces this statically).

    Under ``Device(sanitize=True)`` each array additionally carries a
    *shadow written-bitmap* (``_shadow``): one bool per element, set when a
    kernel stores to it (or when host code touches ``.data``, which is
    conservatively treated as initializing the whole array).  Kernel loads
    from elements whose shadow bit is clear are reported as uninitialized
    reads.  ``_host_reads``/``_kernel_reads``/``_writes`` feed the device
    teardown leak check.
    """

    __slots__ = (
        "name",
        "_data",
        "space",
        "device",
        "_freed",
        "_shadow",
        "_host_reads",
        "_kernel_reads",
        "_writes",
        "_consumed",
    )

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        space: str = "global",
        device: Optional[object] = None,
    ) -> None:
        if space not in SPACES:
            raise DeviceError(f"unknown memory space {space!r}")
        self.name = name
        self._data = data
        self.space = space
        self.device = device
        self._freed = False
        self._shadow: Optional[np.ndarray] = None
        self._host_reads = 0
        self._kernel_reads = 0
        self._writes = 0
        self._consumed = False

    # -- backing store ----------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The backing NumPy array (host-side access).

        Host code may read or write through this view, so in sanitize mode
        any access conservatively marks the whole array initialized.
        """
        self._host_reads += 1
        if self._shadow is not None:
            self._shadow[:] = True
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = value
        self._writes += 1
        if self._shadow is not None:
            self._shadow = np.ones(value.size, dtype=bool)

    def enable_shadow(self, initialized: bool) -> None:
        """Attach the sanitizer's written-bitmap (``Device(sanitize=True)``)."""
        self._shadow = np.full(self._data.size, initialized, dtype=bool)

    def mark_consumed(self) -> None:
        """Acknowledge that this array's contents are consumed by *modeled*
        device code the simulator does not execute.

        Some kernels charge realistic traffic for an output whose actual
        values the simulator then computes on the host (e.g. the radix-sort
        histogram, whose 256-bin scan consumer is folded into the launch).
        Calling this suppresses the sanitizer's ``leak-never-read`` teardown
        check for the array without inflating the read tallies.
        """
        self._consumed = True

    # -- inspection -------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def itemsize(self) -> int:
        return self._data.itemsize

    @property
    def freed(self) -> bool:
        return self._freed

    def require_live(self) -> None:
        """Raise :class:`DeviceError` if this array has been freed."""
        if self._freed:
            raise DeviceError(f"use of freed device array {self.name!r}")

    def flat_view(self) -> np.ndarray:
        """Return a flat (1-D) view of the backing store.

        This is the *kernel-internal* accessor used by
        :class:`~repro.gpusim.kernel.KernelContext` after its shadow checks;
        it does not mark the shadow bitmap, unlike host ``.data`` access.
        """
        self.require_live()
        return self._data.reshape(-1)

    def copy_to_host(self) -> np.ndarray:
        """Raw (unaccounted) copy out; prefer ``Device.from_device``."""
        self.require_live()
        self._host_reads += 1
        return self._data.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else f"{self.shape} {self.dtype}"
        return f"DeviceArray({self.name!r}, {self.space}, {state})"
