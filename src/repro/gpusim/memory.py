"""Simulated device memory: arrays, spaces, and coalescing analysis.

The GPU-performance claims in the paper all reduce to *how many memory
transactions a warp issues*.  On Fermi-class hardware a warp's loads are
serviced in 128-byte segments: 32 threads reading 32 consecutive 4-byte
words touch exactly one segment (coalesced), while 32 scattered reads touch
up to 32 segments (the measured 82 GB/s vs 3.2 GB/s gap of Section VI-A).
:func:`count_transactions` performs that per-warp segment analysis, fully
vectorized over all warps of a launch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DeviceError

#: Memory spaces recognised by the simulator.
SPACES = ("global", "constant")

_SENTINEL_SEG = np.iinfo(np.int64).max


def count_transactions(
    indices: np.ndarray,
    itemsize: int,
    warp_size: int = 32,
    segment_bytes: int = 128,
) -> int:
    """Count the memory transactions a warp-partitioned access generates.

    Parameters
    ----------
    indices:
        Flat element indices accessed by consecutive threads.  Thread ``t``
        accesses ``indices[t]``; a negative index marks an inactive lane
        (masked-off thread), which issues no transaction.
    itemsize:
        Size in bytes of one element.
    warp_size:
        Number of threads per warp (lanes coalesced together).
    segment_bytes:
        Size of one memory transaction segment.

    Returns
    -------
    int
        Total number of ``segment_bytes``-sized transactions summed over
        all warps.
    """
    idx = np.asarray(indices).ravel()
    n = idx.size
    if n == 0:
        return 0
    pad = (-n) % warp_size
    if pad:
        idx = np.concatenate([idx, np.full(pad, -1, dtype=np.int64)])
    addr = idx.astype(np.int64) * int(itemsize)
    seg = addr // int(segment_bytes)
    seg[idx < 0] = _SENTINEL_SEG
    seg = seg.reshape(-1, warp_size)
    seg = np.sort(seg, axis=1)
    # Distinct runs per row; the sentinel run (inactive lanes) contributes
    # exactly one run when present, which we subtract back out.
    distinct = (np.diff(seg, axis=1) != 0).sum(axis=1) + 1
    distinct = distinct - (seg[:, -1] == _SENTINEL_SEG)
    return int(distinct.sum())


class DeviceArray:
    """A typed array living in simulated device memory.

    The backing store is an ordinary NumPy array (``.data``).  Host code may
    touch ``.data`` freely when staging inputs or checking outputs; *kernel*
    code must route every access through the
    :class:`~repro.gpusim.kernel.KernelContext` so transactions are counted
    (``gsnp-lint`` enforces this statically).

    Under ``Device(sanitize=True)`` each array additionally carries a
    *shadow written-bitmap* (``_shadow``): one bool per element, set when a
    kernel stores to it (or when host code touches ``.data``, which is
    conservatively treated as initializing the whole array).  Kernel loads
    from elements whose shadow bit is clear are reported as uninitialized
    reads.  ``_host_reads``/``_kernel_reads``/``_writes`` feed the device
    teardown leak check.
    """

    __slots__ = (
        "name",
        "_data",
        "space",
        "device",
        "_freed",
        "_shadow",
        "_host_reads",
        "_kernel_reads",
        "_writes",
        "_consumed",
    )

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        space: str = "global",
        device: Optional[object] = None,
    ) -> None:
        if space not in SPACES:
            raise DeviceError(f"unknown memory space {space!r}")
        self.name = name
        self._data = data
        self.space = space
        self.device = device
        self._freed = False
        self._shadow: Optional[np.ndarray] = None
        self._host_reads = 0
        self._kernel_reads = 0
        self._writes = 0
        self._consumed = False

    # -- backing store ----------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The backing NumPy array (host-side access).

        Host code may read or write through this view, so in sanitize mode
        any access conservatively marks the whole array initialized.
        """
        self._host_reads += 1
        if self._shadow is not None:
            self._shadow[:] = True
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = value
        self._writes += 1
        if self._shadow is not None:
            self._shadow = np.ones(value.size, dtype=bool)

    def enable_shadow(self, initialized: bool) -> None:
        """Attach the sanitizer's written-bitmap (``Device(sanitize=True)``)."""
        self._shadow = np.full(self._data.size, initialized, dtype=bool)

    def mark_consumed(self) -> None:
        """Acknowledge that this array's contents are consumed by *modeled*
        device code the simulator does not execute.

        Some kernels charge realistic traffic for an output whose actual
        values the simulator then computes on the host (e.g. the radix-sort
        histogram, whose 256-bin scan consumer is folded into the launch).
        Calling this suppresses the sanitizer's ``leak-never-read`` teardown
        check for the array without inflating the read tallies.
        """
        self._consumed = True

    # -- inspection -------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def itemsize(self) -> int:
        return self._data.itemsize

    @property
    def freed(self) -> bool:
        return self._freed

    def require_live(self) -> None:
        """Raise :class:`DeviceError` if this array has been freed."""
        if self._freed:
            raise DeviceError(f"use of freed device array {self.name!r}")

    def flat_view(self) -> np.ndarray:
        """Return a flat (1-D) view of the backing store.

        This is the *kernel-internal* accessor used by
        :class:`~repro.gpusim.kernel.KernelContext` after its shadow checks;
        it does not mark the shadow bitmap, unlike host ``.data`` access.
        """
        self.require_live()
        return self._data.reshape(-1)

    def copy_to_host(self) -> np.ndarray:
        """Raw (unaccounted) copy out; prefer ``Device.from_device``."""
        self.require_live()
        self._host_reads += 1
        return self._data.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else f"{self.shape} {self.dtype}"
        return f"DeviceArray({self.name!r}, {self.space}, {state})"
