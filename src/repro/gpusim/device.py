"""The simulated GPU device: allocation, transfers, and kernel launches.

A :class:`Device` owns simulated global and constant memory, a
:class:`~repro.gpusim.counters.CounterBook` accumulating per-kernel hardware
counters, and a transfer log accounting host<->device PCIe traffic.  It is
the single object a pipeline threads through all GPU-side components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pool import HostLink

import numpy as np

from ..errors import AllocationError, DeviceError
from ..faults.plan import fault_point
from .counters import CounterBook, KernelCounters
from .kernel import KernelContext
from .memory import DeviceArray
from .spec import GpuSpec


@dataclass
class TransferLog:
    """Accumulated host<->device transfer volume."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_count: int = 0
    d2h_count: int = 0

    def reset(self) -> None:
        self.h2d_bytes = self.d2h_bytes = 0
        self.h2d_count = self.d2h_count = 0


@dataclass
class Device:
    """A simulated GPU.

    Parameters
    ----------
    spec:
        Hardware description; defaults to the paper's Tesla M2050.
    enforce_memory:
        When true, allocations beyond ``spec.global_mem_bytes`` raise
        :class:`AllocationError` (mirrors a real ``cudaMalloc`` failure).
    sanitize:
        When true, runs every kernel under the runtime sanitizer
        (:mod:`repro.analyze.sanitize`): write-write race and
        read-after-write hazard detection, gstore/gatomic mixing checks,
        and uninitialized-read detection via per-array shadow bitmaps.
        Results are bitwise identical to a non-sanitized run; violations
        raise :class:`~repro.errors.SanitizerError`.
    device_id:
        Stable identity of this device within its pool (0 for a
        standalone device).  Residency cache keys include it so two pool
        devices never alias each other's uploads.
    link:
        The shared :class:`~repro.gpusim.pool.HostLink` this device's
        transfers are charged against, or ``None`` for a standalone
        device.  Per-device accounting in ``transfers`` is unchanged;
        the link additionally serializes the traffic of every device in
        a pool for the contention-aware cost model.
    """

    spec: GpuSpec = field(default_factory=GpuSpec)
    enforce_memory: bool = True
    sanitize: bool = False
    device_id: int = 0
    link: Optional["HostLink"] = None
    counters: CounterBook = field(init=False)
    transfers: TransferLog = field(default_factory=TransferLog)

    def __post_init__(self) -> None:
        self.counters = CounterBook(num_sms=self.spec.num_sms)
        self._global_used = 0
        self._constant_used = 0
        self._arrays: list[DeviceArray] = []
        # Keyed cache of allocations that outlive one pipeline run (score
        # tables etc.); see repro.gpusim.residency.
        from .residency import DeviceResidency

        self.resident = DeviceResidency(self)
        if self.sanitize:
            from ..analyze.sanitize import Sanitizer

            self.sanitizer = Sanitizer(self)
        else:
            self.sanitizer = None

    # -- memory management -------------------------------------------------

    @property
    def global_used(self) -> int:
        """Bytes currently allocated in global memory."""
        return self._global_used

    @property
    def constant_used(self) -> int:
        """Bytes currently allocated in constant memory."""
        return self._constant_used

    @property
    def peak_global_used(self) -> int:
        """High-water mark of global memory usage."""
        return self._peak

    _peak: int = 0

    def alloc(
        self,
        shape,
        dtype,
        name: str = "anon",
        space: str = "global",
        init: bool = True,
    ) -> DeviceArray:
        """Allocate a device array.

        With ``init=True`` (default) the array is zero-initialized, like a
        ``cudaMemset``-cleared buffer.  ``init=False`` models a raw
        ``cudaMalloc``: the contents are still deterministic zeros (the
        simulator never produces garbage), but under ``sanitize=True``
        reading an element before any kernel stores to it is reported as
        an uninitialized read.
        """
        data = np.zeros(shape, dtype=dtype)
        return self._register(
            DeviceArray(name, data, space, self), initialized=init
        )

    def to_device(
        self, host: np.ndarray, name: str = "anon", space: str = "global"
    ) -> DeviceArray:
        """Copy a host array to the device, accounting PCIe traffic."""
        host = np.ascontiguousarray(host)
        arr = self._register(DeviceArray(name, host.copy(), space, self))
        arr._writes += 1
        self.transfers.h2d_bytes += host.nbytes
        self.transfers.h2d_count += 1
        if self.link is not None:
            self.link.charge(self.device_id, host.nbytes, "h2d")
        return arr

    def to_constant(self, host: np.ndarray, name: str = "anon") -> DeviceArray:
        """Upload a table to constant memory (capacity-checked)."""
        if (
            self.enforce_memory
            and self._constant_used + host.nbytes > self.spec.constant_mem_bytes
        ):
            raise AllocationError(
                f"constant memory overflow: {host.nbytes} bytes for "
                f"{name!r} on top of {self._constant_used} used "
                f"(capacity {self.spec.constant_mem_bytes})"
            )
        return self.to_device(host, name, space="constant")

    def from_device(self, arr: DeviceArray) -> np.ndarray:
        """Copy a device array back to the host, accounting PCIe traffic."""
        arr.require_live()
        self.transfers.d2h_bytes += arr.nbytes
        self.transfers.d2h_count += 1
        if self.link is not None:
            self.link.charge(self.device_id, arr.nbytes, "d2h")
        return arr.data.copy()

    def free(self, arr: DeviceArray) -> None:
        """Release a device array (subsequent kernel use raises)."""
        if arr.freed:
            raise DeviceError(f"double free of {arr.name!r}")
        if arr.space == "global":
            self._global_used -= arr.nbytes
        else:
            self._constant_used -= arr.nbytes
        arr._freed = True
        arr._data = np.empty(0, dtype=arr._data.dtype)
        arr._shadow = None

    def _register(
        self, arr: DeviceArray, initialized: bool = True
    ) -> DeviceArray:
        # Chaos site: a scheduled plan can make this allocation fail with
        # AllocationError, exercising the degradation rung that re-runs
        # the shard with residency/fast paths disabled.
        fault_point("gpusim.device.alloc", key=arr.name)
        if arr.space == "global":
            if (
                self.enforce_memory
                and self._global_used + arr.nbytes > self.spec.global_mem_bytes
            ):
                raise AllocationError(
                    f"global memory overflow: {arr.nbytes} bytes for "
                    f"{arr.name!r} on top of {self._global_used} used "
                    f"(capacity {self.spec.global_mem_bytes})"
                )
            self._global_used += arr.nbytes
            self._peak = max(self._peak, self._global_used)
        else:
            if (
                self.enforce_memory
                and self._constant_used + arr.nbytes
                > self.spec.constant_mem_bytes
            ):
                raise AllocationError("constant memory overflow")
            self._constant_used += arr.nbytes
        if self.sanitize:
            arr.enable_shadow(initialized)
        self._arrays.append(arr)
        return arr

    # -- kernel launches ----------------------------------------------------

    def launch(
        self,
        kernel: Callable,
        n_threads: int,
        *args,
        name: Optional[str] = None,
        block_size: int = 256,
        shared_bytes: int = 0,
        **kwargs,
    ):
        """Launch a warp-vectorized kernel over ``n_threads`` threads.

        The kernel is an ordinary Python callable
        ``kernel(ctx, *args, **kwargs)`` whose body operates on all threads
        at once (NumPy vectors indexed by ``ctx.tid``) and routes device
        memory accesses through ``ctx``.  Counters accumulate into this
        device's book under ``name`` (default: the callable's name).
        """
        if n_threads < 0:
            raise DeviceError("n_threads must be non-negative")
        if block_size <= 0 or block_size % self.spec.warp_size:
            raise DeviceError(
                f"block_size must be a positive multiple of warp size "
                f"{self.spec.warp_size}, got {block_size}"
            )
        if shared_bytes > self.spec.shared_mem_per_block:
            raise DeviceError(
                f"requested {shared_bytes} bytes of shared memory; the "
                f"device offers {self.spec.shared_mem_per_block} per block"
            )
        kname = name or getattr(kernel, "__name__", "kernel")
        book_entry = self.counters.get(kname)
        local = KernelCounters(name=kname, num_sms=self.spec.num_sms)
        local.launches = 1
        ctx = KernelContext(
            device=self,
            counters=local,
            n_threads=n_threads,
            block_size=block_size,
        )
        san = self.sanitizer
        if san is not None:
            san.begin_launch(kname)
        try:
            result = kernel(ctx, *args, **kwargs)
        finally:
            if san is not None:
                san.end_launch()
        book_entry.merge(local)
        return result

    def reset_counters(self) -> None:
        """Drop accumulated counters and transfer statistics."""
        self.counters.reset()
        self.transfers.reset()

    # -- sanitizer teardown --------------------------------------------------

    def sanitize_teardown(self, strict: bool = False):
        """Run the device-teardown leak check.

        Returns the list of :class:`~repro.analyze.sanitize.SanitizerIssue`
        for arrays never freed and arrays written but never read.  With
        ``strict=True`` a non-empty report raises
        :class:`~repro.errors.SanitizerError`.  Available on any device —
        the underlying read/write tallies are kept even without
        ``sanitize=True``.
        """
        from ..analyze.sanitize import teardown_issues

        issues = teardown_issues(self)
        if strict and issues:
            from ..errors import SanitizerError

            raise SanitizerError(
                "device teardown check failed:\n"
                + "\n".join(str(i) for i in issues),
                issues=issues,
            )
        return issues
