"""GSNP memory recycle: re-initialize per-window buffers.

With the sparse representation only ~0.08% of the dense footprint needs
re-zeroing (Formula 2), and GPU memory bandwidth makes even that negligible
— Table IV measures 3s vs SOAPsnp's 8,214s.  The component is therefore
almost pure accounting: a memset-style kernel over the buffers the next
window reuses.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.device import Device


def gsnp_recycle(device: Device, n_words: int, n_sites: int) -> None:
    """Account the buffer re-initialization for one window.

    ``n_words`` base_words (4 bytes each) plus the per-site offset and
    type_likely buffers are cleared with coalesced stores.
    """
    c = device.counters.get("recycle")
    c.launches += 1
    nbytes = (
        n_words * 4  # base_word storage
        + (n_sites + 1) * 8  # segment offsets
        + n_sites * 16 * 8  # type_likely
    )
    segments = -(-nbytes // device.spec.segment_bytes)
    c.g_store += segments
    c.g_store_bytes += nbytes
    c.inst_warp += -(-nbytes // (4 * device.spec.warp_size))
