"""The GSNP pipeline (Figure 2), GPU-accelerated with per-phase accounting.

Workflow: ``cal_p_matrix`` reads the input once, builds ``p_matrix`` *and*
writes a compressed temporary copy of the input (Section V-A);
``load_table`` expands the host-computed score tables onto the device;
then per window: ``read_site`` (decompress temp) -> ``counting`` (GPU
base_word append) -> ``likelihood`` (multipass sort + comp kernel) ->
``posterior`` -> ``output`` (GPU columnar compression) -> ``recycle``.

``mode='cpu'`` runs the identical sparse algorithm without the device
(GSNP_CPU in the evaluation): quicksort for likelihood_sort, the table
lookups evaluated on the host.  All three pipelines (SOAPsnp, GSNP_CPU,
GSNP) produce bitwise identical result tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..align.records import AlignmentBatch
from ..bench.events import PhaseRecord, RunProfile
from ..constants import DEFAULT_WINDOW_GSNP
from ..errors import PipelineError
from ..formats.cns import ResultTable
from ..formats.soap import soap_line_bytes
from ..formats.window import WindowReader
from ..compress.columnar import encode_alignments, encode_table
from ..gpusim.counters import KernelCounters
from ..gpusim.device import Device
from ..gpusim.launchplan import (
    MEGABATCH_WINDOWS,
    LaunchTally,
    build_cohort_plan,
    build_launch_plan,
    chunk_windows,
)
from ..gpusim.pool import acquire_device
from ..gpusim.spec import CPU_COMPRESS_BW
from ..seqsim.datasets import SimulatedDataset
from ..soapsnp.likelihood import (
    adjust_scores,
    occurrence_ordinals,
    sequential_site_sums,
)
from ..soapsnp.model import CallingParams
from ..soapsnp.observe import extract_observations
from ..soapsnp.p_matrix import build_p_matrix, flatten_p_matrix
from ..soapsnp.posterior import summarize_window
from ..sortnet.cpu_sort import quicksort_per_site
from .base_word import canonical_keys, decode_keys, extract_words, words_from_observations
from .counting import gsnp_counting
from .likelihood import (
    OPTIMIZED,
    GsnpTables,
    LikelihoodVariant,
    gsnp_likelihood_comp,
    gsnp_likelihood_sort,
)
from .fused import (
    fused_posterior_tail,
    gsnp_likelihood_posterior_fused,
    gsnp_recycle_fused,
    merge_observations,
)
from .posterior import gsnp_posterior
from .prefetch import PREFETCH_DEPTH, OutputDrain, prefetched_windows
from .recycle import gsnp_recycle
from .score_table import cached_new_p_matrix, table_contributions

# CPU_COMPRESS_BW now lives with the other M2050/testbed model numbers in
# repro.gpusim.spec; re-exported here for backwards compatibility.
__all__ = ["CPU_COMPRESS_BW", "GsnpCalibration", "GsnpPipeline", "GsnpResult"]


@dataclass
class GsnpResult:
    """Output of one GSNP run."""

    table: ResultTable
    profile: RunProfile
    compressed_output: bytes = b""
    output_bytes: int = 0
    temp_input_bytes: int = 0
    sort_stats: list = field(default_factory=list)
    extras: dict = field(default_factory=dict)


@dataclass
class GsnpCalibration:
    """Product of the one-time ``cal_p_matrix`` input pass.

    Sharded execution (:mod:`repro.exec`) computes this once in the parent
    and shares it with every shard, so calibration work — and its event
    record — is charged exactly once, as in a serial run.
    """

    params: CallingParams
    pm_flat: np.ndarray
    penalty: np.ndarray
    #: Expanded host tables for ``mode='cpu'`` (None in GPU mode).
    new_p_flat: Optional[np.ndarray]
    #: Compressed temporary copy of the input (Section V-A).
    temp_blob: bytes
    #: Length of ``temp_blob`` — kept separately so :meth:`strip` can drop
    #: the blob before pickling to workers without losing the size that
    #: the per-window ``read_site`` accounting needs.
    temp_len: int
    input_bytes: int
    total_reads: int
    #: The ``cal_p_matrix`` phase events (wall, disk, cpu, table upload).
    record: PhaseRecord

    def strip(self) -> "GsnpCalibration":
        """Copy without the temp blob (cheap to ship to worker processes)."""
        return GsnpCalibration(
            params=self.params,
            pm_flat=self.pm_flat,
            penalty=self.penalty,
            new_p_flat=self.new_p_flat,
            temp_blob=b"",
            temp_len=self.temp_len,
            input_bytes=self.input_bytes,
            total_reads=self.total_reads,
            record=self.record,
        )


class _PhaseScope:
    """Capture wall time + device counter/transfer deltas for one phase."""

    def __init__(self, record: PhaseRecord, device: Optional[Device]) -> None:
        self.record = record
        self.device = device

    def __enter__(self):
        self.t0 = time.perf_counter()
        if self.device is not None:
            self._snap = self.device.counters.total()
            self._xfer = (
                self.device.transfers.h2d_bytes + self.device.transfers.d2h_bytes
            )
        return self

    def __exit__(self, *exc):
        self.record.wall += time.perf_counter() - self.t0
        if self.device is not None:
            after = self.device.counters.total()
            delta = KernelCounters(
                name=self.record.name, num_sms=after.num_sms
            )
            delta.launches = after.launches - self._snap.launches
            delta.inst_warp = after.inst_warp - self._snap.inst_warp
            delta.g_load = after.g_load - self._snap.g_load
            delta.g_store = after.g_store - self._snap.g_store
            delta.g_load_bytes = after.g_load_bytes - self._snap.g_load_bytes
            delta.g_store_bytes = after.g_store_bytes - self._snap.g_store_bytes
            delta.s_load_warp = after.s_load_warp - self._snap.s_load_warp
            delta.s_store_warp = after.s_store_warp - self._snap.s_store_warp
            self.record.gpu.merge(delta)
            xfer_now = (
                self.device.transfers.h2d_bytes + self.device.transfers.d2h_bytes
            )
            self.record.transfer_bytes += xfer_now - self._xfer
        return False


class GsnpPipeline:
    """The GPU-accelerated SNP caller (or its CPU twin, ``mode='cpu'``)."""

    def __init__(
        self,
        params: Optional[CallingParams] = None,
        window_size: int = DEFAULT_WINDOW_GSNP,
        mode: str = "gpu",
        variant: LikelihoodVariant = OPTIMIZED,
        device: Optional[Device] = None,
        prefetch: bool = True,
        cache: bool = True,
        fusion: bool = False,
        megabatch: int = MEGABATCH_WINDOWS,
    ) -> None:
        if mode not in ("gpu", "cpu"):
            raise PipelineError(f"unknown mode {mode!r}")
        if megabatch < 1:
            raise PipelineError("megabatch must be >= 1")
        self.params = params
        self.window_size = window_size
        self.mode = mode
        self.variant = variant
        self.device = device
        #: Double-buffered window streaming (read_site decode of window N+1
        #: overlaps compute of window N; output writes drain in background).
        self.prefetch = prefetch
        #: Persistent device residency: keep the device and its uploaded
        #: score tables across run() calls (tables load once per process
        #: per calibration instead of once per run/shard).
        self.cache = cache
        #: Fused ragged-megabatch execution: concatenate ``megabatch``
        #: windows into one flat launch plan so every kernel chain
        #: (counting, cross-window-rebucketed sort, fused
        #: likelihood+posterior, segmented output codec, recycle)
        #: launches once per megabatch instead of once per window.
        #: GPU mode only; results stay bitwise identical.
        self.fusion = fusion
        self.megabatch = megabatch
        self._cached_device: Optional[Device] = None

    def calibrate(
        self, dataset: SimulatedDataset, reads: Optional[AlignmentBatch] = None
    ) -> GsnpCalibration:
        """The ``cal_p_matrix`` pass: read the whole input once, build the
        score tables and the compressed temporary input copy.

        Charges the pass's events (including the device table upload in GPU
        mode) to the returned :attr:`GsnpCalibration.record`, so a sharded
        run that shares one calibration reports the same counters as a
        serial run that calibrates inline.
        """
        if reads is None:
            reads = AlignmentBatch.from_read_set(dataset.reads)
        params = self.params or CallingParams(read_len=reads.read_len or 100)
        input_bytes = reads.n_reads * soap_line_bytes(reads.read_len)
        rec = PhaseRecord(name="cal_p_matrix")
        with _PhaseScope(rec, None):
            p_matrix = build_p_matrix(reads, dataset.reference, params)
            pm_flat = flatten_p_matrix(p_matrix)
            penalty = params.penalty_table()
            temp_blob = encode_alignments(reads)
            if self.mode == "gpu":
                # Charge the one serial-equivalent load_table upload
                # analytically — run() performs the single real upload
                # (outside any phase scope), so nothing is built or
                # transferred twice just to record the bytes.
                rec.transfer_bytes += GsnpTables.upload_bytes(pm_flat, penalty)
                newp_flat = None
            else:
                newp_flat = cached_new_p_matrix(pm_flat)
        rec.disk.read_bytes += input_bytes
        rec.disk.parsed_bytes += input_bytes
        rec.disk.write_bytes += len(temp_blob)
        rec.cpu.instructions += reads.n_reads * reads.read_len * 4
        # Score-table generation + upload is dataset-size independent; the
        # paper measures ~2s for new_p_matrix + log_table (Section VI-E).
        rec.fixed_seconds += 2.0
        return GsnpCalibration(
            params=params,
            pm_flat=pm_flat,
            penalty=penalty,
            new_p_flat=newp_flat,
            temp_blob=temp_blob,
            temp_len=len(temp_blob),
            input_bytes=input_bytes,
            total_reads=reads.n_reads,
            record=rec,
        )

    def run(
        self,
        dataset: SimulatedDataset,
        output_path=None,
        *,
        site_range: Optional[tuple[int, int]] = None,
        calibration: Optional[GsnpCalibration] = None,
        reads: Optional[AlignmentBatch] = None,
    ) -> GsnpResult:
        """Call SNPs; optionally write the compressed result file.

        ``site_range`` restricts the run to the windows covering
        ``[start, stop)`` (shard execution); ``calibration`` supplies a
        shared precomputed ``cal_p_matrix`` product, in which case the
        calibration phase is neither re-run nor re-charged here; ``reads``
        overrides the alignment batch (e.g. a streamed shard batch holding
        only the reads overlapping ``site_range``).
        """
        if reads is None:
            reads = AlignmentBatch.from_read_set(dataset.reads)
        profile = RunProfile(
            pipeline="gsnp" if self.mode == "gpu" else "gsnp_cpu"
        )
        device = self.device
        if self.mode == "gpu" and device is None:
            # Persistent residency: reuse one device (and its uploaded
            # tables) across run() calls; without caching, each run gets a
            # fresh device exactly as before.
            if self.cache and self._cached_device is not None:
                device = self._cached_device
            else:
                device = acquire_device()
                if self.cache:
                    self._cached_device = device

        own_calibration = calibration is None
        if own_calibration:
            calibration = self.calibrate(dataset, reads=reads)
            profile.records["cal_p_matrix"] = calibration.record
        params = calibration.params
        pm_flat = calibration.pm_flat
        penalty = calibration.penalty
        newp_flat = calibration.new_p_flat
        temp_len = calibration.temp_len
        total_reads = calibration.total_reads
        # Residency stays off on sanitizing devices: the strict teardown
        # leak check must see every allocation of the run freed.
        use_cache = self.cache and not (
            device is not None and device.sanitizer is not None
        )
        if self.mode == "gpu":
            # Shared-calibration runs load outside any phase scope: the one
            # serial-equivalent upload is already charged to the record.
            # With caching, repeat runs hit the device-resident bundle and
            # transfer nothing — also outside any scope, so per-phase
            # records are identical either way.
            tables = GsnpTables.load(device, pm_flat, penalty, cache=use_cache)

        start, stop = site_range if site_range is not None else (0, dataset.n_sites)
        reader = WindowReader(
            reads, dataset.n_sites, self.window_size, start=start, stop=stop
        )
        use_fusion = self.fusion and self.mode == "gpu"
        # With fusion the compute loop consumes a whole megabatch at a
        # time, so the decode pipeline must run at least that far ahead.
        depth = max(PREFETCH_DEPTH, self.megabatch) if use_fusion else PREFETCH_DEPTH
        windows = prefetched_windows(reader, self.prefetch, depth=depth)
        tables_out: list[ResultTable] = []
        sort_stats = []
        blobs: list[bytes] = []
        out_f = None
        out_cm = None
        drain = None
        if output_path is not None:
            if self.prefetch:
                drain = OutputDrain(output_path)
            else:
                # Same crash-safety as the drain: write <path>.part and
                # rename only once every window's blob is flushed.
                from ..faults.journal import atomic_output

                out_cm = atomic_output(output_path)
                out_f = out_cm.__enter__()
        out_committed = False
        fusion_info = None
        try:
            if use_fusion:
                fusion_info = self._run_fused(
                    windows, device, tables, profile, dataset, params,
                    temp_len, total_reads, out_f, drain,
                    tables_out, sort_stats, blobs,
                )
                windows = ()  # the fused loop consumed the window stream
            for window in windows:
                frac = window.reads.n_reads / max(total_reads, 1)

                # ---- read_site: decompress the temp input ------------------
                rec = profile.phase("read_site")
                with _PhaseScope(rec, device):
                    win_reads = window.reads
                rec.disk.read_buffered_bytes += int(temp_len * frac)
                rec.cpu.instructions += win_reads.n_reads * 8

                # ---- counting: per-site base_word segments -----------------
                # The per-window launch chain below is the fusion parity
                # baseline (and the mode='cpu' path); GSNP107 suppressions
                # mark each launcher the megabatch path replaces.
                rec = profile.phase("counting")
                with _PhaseScope(rec, device):
                    obs = extract_observations(window)
                    if self.mode == "gpu":
                        words, offsets = gsnp_counting(device, obs)  # gsnp-lint: disable=GSNP107 (per-window parity baseline for fusion)
                    else:
                        words, offsets = words_from_observations(obs)
                rec.cpu.instructions += obs.n_obs * 4
                if self.mode == "cpu":
                    rec.cpu.random_accesses += obs.n_obs

                # ---- likelihood: sort + comp --------------------------------
                rec = profile.phase("likelihood")
                with _PhaseScope(rec, device):
                    if self.mode == "gpu":
                        wsorted, stats = gsnp_likelihood_sort(  # gsnp-lint: disable=GSNP107 (per-window parity baseline for fusion)
                            device, words, offsets
                        )
                        sort_stats.append(stats)
                        type_likely = gsnp_likelihood_comp(  # gsnp-lint: disable=GSNP107 (per-window parity baseline for fusion)
                            device, wsorted, offsets, tables, self.variant
                        )
                    else:
                        keys = canonical_keys(words)
                        skeys = quicksort_per_site(keys, offsets)
                        wsorted = decode_keys(skeys)
                        base, score, coord, strand = extract_words(wsorted)
                        site = np.repeat(
                            np.arange(offsets.size - 1), np.diff(offsets)
                        )
                        ordinal = occurrence_ordinals(site, base, coord, strand)
                        q_adj = adjust_scores(score, ordinal, penalty)
                        contrib = table_contributions(
                            newp_flat, q_adj, coord, base
                        )
                        type_likely = sequential_site_sums(contrib, offsets)
                if self.mode == "cpu":
                    m = words.size
                    lens = np.diff(offsets)
                    nl = lens[lens > 1]
                    rec.cpu.instructions += int(
                        (nl * np.log2(nl) * 12).sum()
                    ) + 30 * m
                    rec.cpu.random_accesses += 10 * m + 2 * m
                    rec.cpu.seq_read_bytes += 8 * m

                # ---- posterior ------------------------------------------------
                rec = profile.phase("posterior")
                with _PhaseScope(rec, device):
                    ref_codes = dataset.reference.codes[
                        window.start : window.end
                    ]
                    if self.mode == "gpu":
                        table = gsnp_posterior(  # gsnp-lint: disable=GSNP107 (per-window parity baseline for fusion)
                            device, obs, window.start, ref_codes,
                            dataset.prior, type_likely, params,
                            chrom=dataset.reference.name,
                        )
                    else:
                        table = summarize_window(
                            obs, window.start, ref_codes, dataset.prior,
                            type_likely, params,
                            chrom=dataset.reference.name,
                        )
                        rec.cpu.instructions += window.n_sites * 100
                        rec.cpu.random_accesses += window.n_sites * 5

                # ---- output: customized columnar compression ----------------
                rec = profile.phase("output")
                with _PhaseScope(rec, device):
                    blob = encode_table(  # gsnp-lint: disable=GSNP107 (per-window parity baseline for fusion)
                        table, device=device if self.mode == "gpu" else None
                    )
                    if out_f is not None:
                        out_f.write(blob)
                    elif drain is not None:
                        drain.submit(blob)
                blobs.append(blob)
                rec.disk.write_bytes += len(blob)
                if self.mode == "gpu":
                    # Compressed blob comes back over PCIe.
                    rec.transfer_bytes += len(blob)
                else:
                    # CPU codecs: sequential-scan compression cost.
                    raw = table.n_sites * 40
                    rec.cpu.instructions += int(
                        raw * (2.0e9 / CPU_COMPRESS_BW)
                    )
                tables_out.append(table)

                # ---- recycle -------------------------------------------------
                rec = profile.phase("recycle")
                with _PhaseScope(rec, device):
                    if self.mode == "gpu":
                        gsnp_recycle(device, words.size, window.n_sites)  # gsnp-lint: disable=GSNP107 (per-window parity baseline for fusion)
                if self.mode == "cpu":
                    rec.cpu.seq_write_bytes += words.size * 4 + window.n_sites * 88
        except BaseException as exc:
            # A failed window can leave partial allocations on the device;
            # drop the persistent residency rather than reuse that device.
            if self.mode == "gpu" and use_cache:
                self.release_cache()
            if out_cm is not None:
                # Abandon the partial .part file — never a torn output.
                out_committed = True
                out_cm.__exit__(type(exc), exc, exc.__traceback__)
            raise
        finally:
            if out_cm is not None and not out_committed:
                out_cm.__exit__(None, None, None)
            if drain is not None:
                drain.close()
            if self.mode == "gpu" and not use_cache:
                tables.free(device)

        full = tables_out[0]
        for t in tables_out[1:]:
            full = full.concat(t)
        compressed = b"".join(blobs)
        return GsnpResult(
            table=full,
            profile=profile,
            compressed_output=compressed,
            output_bytes=len(compressed),
            temp_input_bytes=temp_len,
            sort_stats=sort_stats,
            extras={
                "input_bytes": calibration.input_bytes,
                "device": device,
                "peak_gpu_bytes": device.peak_global_used if device else 0,
                **({"fusion": fusion_info} if fusion_info is not None else {}),
            },
        )

    def _run_fused(
        self,
        windows,
        device: Device,
        tables: GsnpTables,
        profile: RunProfile,
        dataset: SimulatedDataset,
        params: CallingParams,
        temp_len: int,
        total_reads: int,
        out_f,
        drain,
        tables_out: list,
        sort_stats: list,
        blobs: list,
    ) -> dict:
        """Fused megabatch loop: one launch chain per ``megabatch`` windows.

        Phase names and per-phase accounting match the per-window loop —
        each :class:`_PhaseScope` just covers a megabatch's worth of the
        phase at once — so phase-level event records stay comparable
        across the fusion toggle while the device sees ~``megabatch``x
        fewer launches.
        """
        from ..compress.fusedcodec import encode_tables_fused

        tally = LaunchTally()
        n_megabatches = 0
        fused_name = f"likelihood_posterior_fused_{self.variant.name}"
        for group in chunk_windows(windows, self.megabatch):
            n_megabatches += 1

            # ---- read_site: decompress the temp input ----------------------
            rec = profile.phase("read_site")
            with _PhaseScope(rec, device):
                group_reads = [w.reads for w in group]
            for win_reads in group_reads:
                frac = win_reads.n_reads / max(total_reads, 1)
                rec.disk.read_buffered_bytes += int(temp_len * frac)
                rec.cpu.instructions += win_reads.n_reads * 8

            # ---- counting: merged megabatch base_word segments -------------
            rec = profile.phase("counting")
            with _PhaseScope(rec, device):
                obs_list = [extract_observations(w) for w in group]
                plan = build_launch_plan(group, [o.n_obs for o in obs_list])
                merged = merge_observations(obs_list, plan)
                with tally.measure(device, "counting", plan.n_windows):
                    words, offsets = gsnp_counting(device, merged)
            rec.cpu.instructions += merged.n_obs * 4

            # ---- likelihood: cross-window sort + fused comp+posterior ------
            rec = profile.phase("likelihood")
            with _PhaseScope(rec, device):
                with tally.measure(device, "likelihood_sort", plan.n_windows):
                    wsorted, stats = gsnp_likelihood_sort(
                        device, words, offsets
                    )
                sort_stats.append(stats)
                with tally.measure(device, fused_name, plan.n_windows):
                    type_likely = gsnp_likelihood_posterior_fused(
                        device, wsorted, offsets, tables, self.variant
                    )

            # ---- posterior: host summaries + in-kernel epilogue charge -----
            rec = profile.phase("posterior")
            with _PhaseScope(rec, device):
                group_tables = []
                for seg, obs_w in zip(plan.segments, obs_list):
                    ref_codes = dataset.reference.codes[seg.start:seg.end]
                    group_tables.append(summarize_window(
                        obs_w, seg.start, ref_codes, dataset.prior,
                        type_likely[seg.site_slice], params,
                        chrom=dataset.reference.name,
                    ))
                    fused_posterior_tail(
                        device, fused_name, seg.n_sites, obs_w.n_obs
                    )

            # ---- output: segmented columnar compression --------------------
            rec = profile.phase("output")
            with _PhaseScope(rec, device):
                with tally.measure(device, "output_compress", plan.n_windows):
                    group_blobs = encode_tables_fused(device, group_tables)
                for blob in group_blobs:
                    if out_f is not None:
                        out_f.write(blob)
                    elif drain is not None:
                        drain.submit(blob)
            for blob in group_blobs:
                blobs.append(blob)
                rec.disk.write_bytes += len(blob)
                rec.transfer_bytes += len(blob)
            tables_out.extend(group_tables)

            # ---- recycle ---------------------------------------------------
            rec = profile.phase("recycle")
            with _PhaseScope(rec, device):
                with tally.measure(device, "recycle", plan.n_windows):
                    gsnp_recycle_fused(
                        device, words.size, plan.n_sites, plan.n_windows
                    )
        return {
            "megabatch_windows": self.megabatch,
            "megabatches": n_megabatches,
            "launches": tally.total_launches(),
            "stages": tally.summary(),
        }

    def run_cohort(
        self,
        dataset: SimulatedDataset,
        sample_reads,
        output_paths=None,
        *,
        site_range: Optional[tuple[int, int]] = None,
        calibration: Optional[GsnpCalibration] = None,
    ):
        """Call SNPs for an S-sample cohort sharing one reference.

        All samples share the same fixed-size reference windows, one
        pooled calibration (one ``pm_flat`` fingerprint, one resident
        score-table set per device) and — with fusion — one sample-major
        launch chain per megabatch, so launches per stage stay
        O(megabatches) rather than O(S * megabatches).

        Without fusion (or in CPU mode) the cohort degrades to S solo
        :meth:`run` calls sharing the pooled calibration; that loop *is*
        the bitwise parity baseline the fused path is tested against.

        ``output_paths``, when given, supplies one output file per
        sample (entries may be None).  Returns a
        :class:`repro.core.cohort.CohortResult`.
        """
        from .cohort import CohortResult, pooled_batch

        sample_reads = list(sample_reads)
        n_samples = len(sample_reads)
        if n_samples == 0:
            raise PipelineError("cohort needs at least one sample")
        if output_paths is not None and len(output_paths) != n_samples:
            raise PipelineError("output_paths must align with samples")
        profile = RunProfile(
            pipeline="gsnp" if self.mode == "gpu" else "gsnp_cpu"
        )
        own_calibration = calibration is None
        if own_calibration:
            calibration = self.calibrate(
                dataset, reads=pooled_batch(sample_reads)
            )
            profile.records["cal_p_matrix"] = calibration.record

        use_fusion = self.fusion and self.mode == "gpu"
        if not use_fusion:
            # Parity baseline: S solo runs sharing the pooled calibration
            # (the per-sample loop GSNP111 exists to flag is a loop over
            # *launchers*; a loop over whole runs is the baseline, not
            # the anti-pattern).
            sample_results = []
            for si, batch in enumerate(sample_reads):
                res = self.run(
                    dataset,
                    output_path=(
                        output_paths[si] if output_paths is not None else None
                    ),
                    site_range=site_range,
                    calibration=calibration,
                    reads=batch,
                )
                profile.merge(res.profile)
                sample_results.append(res)
            return CohortResult(
                samples=sample_results,
                profile=profile,
                extras={
                    "cohort": {"samples": n_samples, "fused": False},
                    "input_bytes": calibration.input_bytes,
                },
            )

        device = self.device
        if device is None:
            if self.cache and self._cached_device is not None:
                device = self._cached_device
            else:
                device = acquire_device()
                if self.cache:
                    self._cached_device = device
        use_cache = self.cache and not (
            device is not None and device.sanitizer is not None
        )
        tables = GsnpTables.load(
            device, calibration.pm_flat, calibration.penalty, cache=use_cache
        )
        start, stop = (
            site_range if site_range is not None else (0, dataset.n_sites)
        )
        # Window boundaries depend only on (n_sites, window_size, start,
        # stop), so S lockstep readers always agree on the reference
        # window each step covers.
        readers = [
            WindowReader(
                batch, dataset.n_sites, self.window_size,
                start=start, stop=stop,
            )
            for batch in sample_reads
        ]
        depth = max(PREFETCH_DEPTH, self.megabatch)
        streams = [
            prefetched_windows(r, self.prefetch, depth=depth) for r in readers
        ]
        per_tables: list[list] = [[] for _ in range(n_samples)]
        per_blobs: list[list[bytes]] = [[] for _ in range(n_samples)]
        sort_stats: list = []
        try:
            fusion_info = self._run_cohort_fused(
                zip(*streams), n_samples, device, tables, profile, dataset,
                calibration.params, calibration.temp_len,
                calibration.total_reads, per_tables, sort_stats, per_blobs,
            )
        except BaseException:
            if use_cache:
                self.release_cache()
            raise
        finally:
            if not use_cache:
                tables.free(device)

        if output_paths is not None:
            from ..faults.journal import atomic_output

            for si, path in enumerate(output_paths):
                if path is None:
                    continue
                with atomic_output(path) as f:
                    for blob in per_blobs[si]:
                        f.write(blob)

        sample_results = []
        for si in range(n_samples):
            full = per_tables[si][0]
            for t in per_tables[si][1:]:
                full = full.concat(t)
            compressed = b"".join(per_blobs[si])
            sample_results.append(
                GsnpResult(
                    table=full,
                    # Cohort-level events live on the cohort profile; the
                    # shared launch chain is not faked per sample.
                    profile=RunProfile(pipeline="gsnp"),
                    compressed_output=compressed,
                    output_bytes=len(compressed),
                    temp_input_bytes=calibration.temp_len,
                    sort_stats=sort_stats if si == 0 else [],
                )
            )
        return CohortResult(
            samples=sample_results,
            profile=profile,
            extras={
                "cohort": {"samples": n_samples, "fused": True},
                "fusion": fusion_info,
                "input_bytes": calibration.input_bytes,
                "device": device,
                "peak_gpu_bytes": device.peak_global_used if device else 0,
            },
        )

    def _run_cohort_fused(
        self,
        window_tuples,
        n_samples: int,
        device: Device,
        tables: GsnpTables,
        profile: RunProfile,
        dataset: SimulatedDataset,
        params: CallingParams,
        temp_len: int,
        total_reads: int,
        per_tables: list,
        sort_stats: list,
        per_blobs: list,
    ) -> dict:
        """Sample-major fused megabatch loop for a cohort.

        ``window_tuples`` yields S-tuples of :class:`Window`, one per
        sample, all covering the same reference window.  Each megabatch
        flattens its W reference windows x S samples sample-major onto
        one flat site axis (:func:`build_cohort_plan`); from there the
        launch chain is byte-for-byte the solo fused chain — the kernels
        are segment-local and never distinguish a sample boundary from a
        window boundary.  The tally counts *reference* windows, so
        ``launches / windows`` exposes the per-reference-window cost the
        sample axis amortises.
        """
        from ..compress.fusedcodec import encode_tables_fused

        tally = LaunchTally()
        n_megabatches = 0
        fused_name = f"likelihood_posterior_fused_{self.variant.name}"
        for group in chunk_windows(window_tuples, self.megabatch):
            n_megabatches += 1
            n_ref_windows = len(group)

            # ---- read_site: decompress the pooled temp input ---------------
            rec = profile.phase("read_site")
            with _PhaseScope(rec, device):
                group_reads = [[w.reads for w in tup] for tup in group]
            for tup_reads in group_reads:
                n = sum(r.n_reads for r in tup_reads)
                frac = n / max(total_reads, 1)
                rec.disk.read_buffered_bytes += int(temp_len * frac)
                rec.cpu.instructions += n * 8

            # ---- counting: sample-major merged megabatch -------------------
            rec = profile.phase("counting")
            with _PhaseScope(rec, device):
                flat_windows = [
                    group[wi][si]
                    for si in range(n_samples)
                    for wi in range(n_ref_windows)
                ]
                flat_samples = [
                    si
                    for si in range(n_samples)
                    for _ in range(n_ref_windows)
                ]
                obs_list = [extract_observations(w) for w in flat_windows]
                plan = build_cohort_plan(
                    flat_windows, [o.n_obs for o in obs_list], flat_samples
                )
                merged = merge_observations(obs_list, plan)
                with tally.measure(device, "counting", n_ref_windows):
                    words, offsets = gsnp_counting(device, merged)
            rec.cpu.instructions += merged.n_obs * 4

            # ---- likelihood: cross-sample sort + fused comp+posterior ------
            rec = profile.phase("likelihood")
            with _PhaseScope(rec, device):
                with tally.measure(device, "likelihood_sort", n_ref_windows):
                    wsorted, stats = gsnp_likelihood_sort(
                        device, words, offsets
                    )
                sort_stats.append(stats)
                with tally.measure(device, fused_name, n_ref_windows):
                    type_likely = gsnp_likelihood_posterior_fused(
                        device, wsorted, offsets, tables, self.variant
                    )

            # ---- posterior: host summaries + in-kernel epilogue charge -----
            rec = profile.phase("posterior")
            with _PhaseScope(rec, device):
                seg_tables = []
                for seg, obs_w in zip(plan.segments, obs_list):
                    ref_codes = dataset.reference.codes[seg.start:seg.end]
                    seg_tables.append(summarize_window(
                        obs_w, seg.start, ref_codes, dataset.prior,
                        type_likely[seg.site_slice], params,
                        chrom=dataset.reference.name,
                    ))
                    fused_posterior_tail(
                        device, fused_name, seg.n_sites, obs_w.n_obs
                    )

            # ---- output: segmented compression, routed per sample ----------
            rec = profile.phase("output")
            with _PhaseScope(rec, device):
                with tally.measure(device, "output_compress", n_ref_windows):
                    group_blobs = encode_tables_fused(device, seg_tables)
            for seg, table, blob in zip(plan.segments, seg_tables, group_blobs):
                per_tables[seg.sample].append(table)
                per_blobs[seg.sample].append(blob)
                rec.disk.write_bytes += len(blob)
                rec.transfer_bytes += len(blob)

            # ---- recycle ---------------------------------------------------
            rec = profile.phase("recycle")
            with _PhaseScope(rec, device):
                with tally.measure(device, "recycle", n_ref_windows):
                    gsnp_recycle_fused(
                        device, words.size, plan.n_sites, plan.n_windows
                    )
        return {
            "megabatch_windows": self.megabatch,
            "megabatches": n_megabatches,
            "samples": n_samples,
            "launches": tally.total_launches(),
            "stages": tally.summary(),
        }

    def release_cache(self) -> None:
        """Free the persistent residency: resident tables + cached device.

        The next :meth:`run` uploads tables afresh.  Call this before a
        strict sanitizer teardown — resident arrays are intentionally
        long-lived and would otherwise be reported as leaks.
        """
        for dev in (self.device, self._cached_device):
            if dev is not None:
                dev.resident.clear(free=True)
        self._cached_device = None
