"""Sparse aligned-base representation ``base_word`` (Section IV-B).

Each counted observation packs into one 32-bit word
``base<<15 | score<<9 | coord<<1 | strand`` (Figure 3); one word per
*occurrence* (no counts are stored, so counting never searches).  The
canonical iteration order of Algorithm 1 is base ascending, score
**descending**, coord ascending, strand ascending — an ascending sort of
``word XOR SCORE_MASK`` (score field inverted) realizes exactly that order,
which is the key transform :func:`canonical_keys` applies before the
multipass sort and :func:`decode_keys` removes afterwards.
"""

from __future__ import annotations

import numpy as np

from ..constants import (
    BASE_MASK,
    BASE_SHIFT,
    CANONICAL_SORT_MASK,
    COORD_MASK,
    COORD_SHIFT,
    SCORE_MASK,
    SCORE_SHIFT,
    STRAND_MASK,
    STRAND_SHIFT,
)
from ..soapsnp.observe import Observations


def pack_words(
    base: np.ndarray, score: np.ndarray, coord: np.ndarray, strand: np.ndarray
) -> np.ndarray:
    """Pack observation fields into uint32 base_words."""
    return (
        base.astype(np.uint32) << BASE_SHIFT
        | score.astype(np.uint32) << SCORE_SHIFT
        | coord.astype(np.uint32) << COORD_SHIFT
        | strand.astype(np.uint32) << STRAND_SHIFT
    )


def extract_words(
    words: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Unpack base_words into (base, score, coord, strand) uint8 arrays."""
    w = words.astype(np.uint32)
    base = ((w & BASE_MASK) >> BASE_SHIFT).astype(np.uint8)
    score = ((w & SCORE_MASK) >> SCORE_SHIFT).astype(np.uint8)
    coord = ((w & COORD_MASK) >> COORD_SHIFT).astype(np.uint8)
    strand = ((w & STRAND_MASK) >> STRAND_SHIFT).astype(np.uint8)
    return base, score, coord, strand


def canonical_keys(words: np.ndarray) -> np.ndarray:
    """Transform words so ascending sort yields canonical order."""
    return words ^ np.uint32(CANONICAL_SORT_MASK)


def decode_keys(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`canonical_keys` (the transform is an involution)."""
    return keys ^ np.uint32(CANONICAL_SORT_MASK)


def words_from_observations(
    obs: Observations, arrival_order: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Build per-site base_word segments from counted observations.

    Returns ``(words, offsets)`` where ``offsets`` has ``n_sites + 1``
    entries.  With ``arrival_order`` (the realistic case) words within a
    site appear in input-arrival order — *unsorted*, which is why GSNP
    needs ``likelihood_sort``.  With ``arrival_order=False`` the canonical
    order of the observations is kept (useful for testing the sort).
    """
    sel = np.nonzero(obs.counted)[0]
    site = obs.site[sel]
    words = pack_words(
        obs.base[sel], obs.score[sel], obs.coord[sel], obs.strand[sel]
    )
    if arrival_order and hasattr(obs, "arrival") and obs.arrival is not None:
        arr = obs.arrival[sel]
        order = np.lexsort((arr, site))
        words = words[order]
        site = site[order]
    counts = np.bincount(site, minlength=obs.n_sites)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return words, offsets
