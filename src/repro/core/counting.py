"""GSNP counting component: build per-site ``base_word`` segments on GPU.

One thread per aligned base: compute the site, pack the 32-bit word, and
append it into the site's segment.  The classic two-phase pattern —
histogram of per-site counts (atomic adds), exclusive scan for segment
offsets, then a scattered append — runs as simulated kernels so the
pipeline's counting costs reflect real transaction counts.  Appends land in
*arrival order* within each site, which is exactly why ``likelihood_sort``
exists (Section IV-B: "the canonical order is not preserved since aligned
bases for a site are unordered").
"""

from __future__ import annotations

import numpy as np

from ..gpusim.device import Device
from ..gpusim.memory import DeviceArray
from ..gpusim.primitives.scan import device_exclusive_scan
from ..gpusim.stream import DeviceStream
from ..soapsnp.observe import Observations
from .base_word import pack_words


def _histogram_kernel(ctx, sites: DeviceArray, counts: DeviceArray, n: int):
    """Thread t bumps the count of its observation's site."""
    active = ctx.tid < n
    s = ctx.gload(sites, ctx.tid, active=active)
    ctx.instr(2, active=active)
    ctx.gatomic_add(counts, s, 1, active=active)


def _scatter_kernel(
    ctx,
    sites: DeviceArray,
    words: DeviceArray,
    slots: DeviceArray,
    out: DeviceArray,
    n: int,
):
    """Thread t writes its packed word at its reserved segment slot."""
    active = ctx.tid < n
    s = ctx.gload(slots, ctx.tid, active=active)
    w = ctx.gload(words, ctx.tid, active=active)
    ctx.instr(6, active=active)  # pack + address computation
    ctx.gstore(out, s, w, active=active)


def gsnp_counting(
    device: Device, obs: Observations
) -> tuple[np.ndarray, np.ndarray]:
    """Build (words, offsets) on the simulated device.

    Returns host arrays: flat uint32 ``base_word`` storage in arrival order
    per site, and the (n_sites + 1) segment offsets.  Matches
    :func:`repro.core.base_word.words_from_observations` exactly (tested),
    while charging realistic device traffic.
    """
    sel = np.nonzero(obs.counted)[0]
    m = sel.size
    n_sites = obs.n_sites
    if m == 0:
        return (
            np.empty(0, dtype=np.uint32),
            np.zeros(n_sites + 1, dtype=np.int64),
        )
    # Arrival order: the raw input order the counting kernel sees.
    arr_order = np.argsort(obs.arrival[sel], kind="stable")
    sel = sel[arr_order]
    site_h = obs.site[sel]
    words_h = pack_words(
        obs.base[sel], obs.score[sel], obs.coord[sel], obs.strand[sel]
    )
    # Both counting kernels go through one stream: in-order like a CUDA
    # stream, and the pipelined launch path gsnp-lint also audits.
    stream = DeviceStream(device)
    sites_dev = device.to_device(site_h, "obs.site")
    words_in = device.to_device(words_h, "obs.word")
    counts = device.alloc(n_sites, np.int64, "site_counts")
    stream.enqueue(
        _histogram_kernel, m, sites_dev, counts, m, name="counting_histogram"
    )
    offsets_dev = device_exclusive_scan(device, counts)
    offsets = np.concatenate(
        [offsets_dev.data, [offsets_dev.data[-1] + counts.data[-1]]]
    ).astype(np.int64)
    # Per-site append cursors: slot = offset[site] + arrival ordinal within
    # the site (what per-site atomicAdd on a cursor array yields for
    # arrival-ordered threads).
    # site_h is NOT sorted (arrival order), so the ordinal must be computed
    # by stable grouping, not adjacency.
    order = np.argsort(site_h, kind="stable")
    sorted_site = site_h[order]
    grp_change = np.concatenate([[True], sorted_site[1:] != sorted_site[:-1]])
    run_start = np.nonzero(grp_change)[0]
    run_id = np.cumsum(grp_change) - 1
    ordinal_sorted = np.arange(m) - run_start[run_id]
    ordinal = np.empty(m, dtype=np.int64)
    ordinal[order] = ordinal_sorted
    slots_h = offsets[site_h] + ordinal
    slots = device.to_device(slots_h, "append_slots")
    # init=False: every slot must come from the scatter, never the memset —
    # the sanitizer's uninitialized-read check verifies full coverage.
    out = device.alloc(m, np.uint32, "base_word_out", init=False)
    stream.enqueue(
        _scatter_kernel, m, sites_dev, words_in, slots, out, m,
        name="counting_scatter",
    )
    stream.synchronize()
    words_out = device.from_device(out)
    for a in (sites_dev, words_in, counts, offsets_dev, slots, out):
        device.free(a)
    return words_out, offsets
