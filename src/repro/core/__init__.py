"""GSNP core: the paper's primary contribution (sparse GPU SNP caller)."""

from .base_word import (
    canonical_keys,
    decode_keys,
    extract_words,
    pack_words,
    words_from_observations,
)
from .counting import gsnp_counting
from .detector import Accuracy, GsnpDetector, SnpCall, detect_snps
from .likelihood import (
    ALL_VARIANTS,
    BASELINE,
    OPTIMIZED,
    WITH_SHARED,
    WITH_TABLE,
    GsnpTables,
    LikelihoodVariant,
    gpu_dense_likelihood_counters,
    gsnp_likelihood_comp,
    gsnp_likelihood_sort,
)
from .pipeline import GsnpPipeline, GsnpResult
from .posterior import gsnp_posterior
from .recycle import gsnp_recycle
from .score_table import build_new_p_matrix, new_p_index, table_contributions

__all__ = [
    "ALL_VARIANTS",
    "Accuracy",
    "BASELINE",
    "GsnpDetector",
    "GsnpPipeline",
    "GsnpResult",
    "GsnpTables",
    "LikelihoodVariant",
    "OPTIMIZED",
    "SnpCall",
    "WITH_SHARED",
    "WITH_TABLE",
    "build_new_p_matrix",
    "canonical_keys",
    "decode_keys",
    "detect_snps",
    "extract_words",
    "gpu_dense_likelihood_counters",
    "gsnp_counting",
    "gsnp_likelihood_comp",
    "gsnp_likelihood_sort",
    "gsnp_posterior",
    "gsnp_recycle",
    "new_p_index",
    "pack_words",
    "table_contributions",
    "words_from_observations",
]
