"""High-level public API: one call from aligned reads to SNP calls.

:class:`GsnpDetector` is the facade downstream users program against; the
examples and CLI are built on it.  It wires the GSNP pipeline (or the
SOAPsnp baseline for cross-checking) and exposes the calls, the compressed
output, and truth-scoring helpers for simulated data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constants import DEFAULT_WINDOW_GSNP
from ..formats.cns import ResultTable
from ..seqsim.datasets import SimulatedDataset
from ..soapsnp.model import CallingParams
from ..soapsnp.pipeline import SoapsnpPipeline
from ..soapsnp.posterior import is_snp_call
from .likelihood import OPTIMIZED, LikelihoodVariant
from .pipeline import GsnpPipeline, GsnpResult


@dataclass
class SnpCall:
    """One called variant site (convenience row view)."""

    chrom: str
    pos: int  # 1-based
    ref: int
    genotype: int
    quality: int
    depth: int


@dataclass
class Accuracy:
    """Scoring of calls against planted truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        d = self.true_positives + self.false_positives
        return self.true_positives / d if d else 1.0

    @property
    def recall(self) -> float:
        d = self.true_positives + self.false_negatives
        return self.true_positives / d if d else 1.0


class GsnpDetector:
    """Facade over the GSNP pipeline.

    Parameters
    ----------
    engine:
        ``"gsnp"`` (simulated GPU, default), ``"gsnp_cpu"`` (sparse CPU),
        or ``"soapsnp"`` (dense baseline) — all three produce identical
        calls.
    """

    def __init__(
        self,
        engine: str = "gsnp",
        params: Optional[CallingParams] = None,
        window_size: int = DEFAULT_WINDOW_GSNP,
        variant: LikelihoodVariant = OPTIMIZED,
        min_quality: int = 0,
    ) -> None:
        if engine not in ("gsnp", "gsnp_cpu", "soapsnp"):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine = engine
        self.params = params
        self.window_size = window_size
        self.variant = variant
        self.min_quality = min_quality
        self.last_result = None

    def run(self, dataset: SimulatedDataset, output_path=None):
        """Run the chosen engine over a dataset."""
        if self.engine == "soapsnp":
            pipe = SoapsnpPipeline(
                params=self.params, window_size=min(self.window_size, 4000)
            )
            result = pipe.run(dataset, output_path=output_path)
        else:
            pipe = GsnpPipeline(
                params=self.params,
                window_size=self.window_size,
                mode="gpu" if self.engine == "gsnp" else "cpu",
                variant=self.variant,
            )
            result = pipe.run(dataset, output_path=output_path)
        self.last_result = result
        return result

    def calls(self, table: ResultTable) -> list[SnpCall]:
        """Variant rows passing the quality filter."""
        mask = is_snp_call(table) & (table.quality >= self.min_quality)
        idx = np.nonzero(mask)[0]
        return [
            SnpCall(
                chrom=table.chrom,
                pos=int(table.pos[i]),
                ref=int(table.ref_base[i]),
                genotype=int(table.genotype[i]),
                quality=int(table.quality[i]),
                depth=int(table.depth[i]),
            )
            for i in idx
        ]

    @staticmethod
    def score(
        table: ResultTable,
        dataset: SimulatedDataset,
        min_quality: int = 0,
        covered_only: bool = True,
    ) -> Accuracy:
        """Score calls against the planted truth of a simulated dataset.

        With ``covered_only`` (default), planted SNPs at sites with zero
        sequencing depth are excluded from the false-negative count — no
        caller can find a variant it never saw a read for.
        """
        mask = is_snp_call(table) & (table.quality >= min_quality)
        called = set((table.pos[mask] - 1).tolist())
        truth_pos = dataset.diploid.snp_positions
        if covered_only:
            pos0 = table.pos - 1
            depth_at = dict(zip(pos0.tolist(), table.depth.tolist()))
            truth = {
                int(p) for p in truth_pos if depth_at.get(int(p), 0) > 0
            }
        else:
            truth = {int(p) for p in truth_pos}
        tp = len(called & truth)
        return Accuracy(
            true_positives=tp,
            false_positives=len(called - truth),
            false_negatives=len(truth - called),
        )


def detect_snps(
    dataset: SimulatedDataset,
    engine: str = "gsnp",
    min_quality: int = 0,
    **kwargs,
) -> tuple[ResultTable, list[SnpCall]]:
    """One-shot convenience: run a detector and return (table, calls)."""
    det = GsnpDetector(engine=engine, min_quality=min_quality, **kwargs)
    result = det.run(dataset)
    return result.table, det.calls(result.table)
