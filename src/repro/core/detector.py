"""High-level public API: one call from aligned reads to SNP calls.

:class:`GsnpDetector` is the facade downstream users program against; the
examples and CLI are built on it.  It wires any registered engine
(:mod:`repro.api`) — serially, or through the sharded parallel executor
(:mod:`repro.exec`) when ``workers``/``shard_size`` are set — and exposes
the calls, the compressed output, and truth-scoring helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..api import Engine, JobSpec, create_pipeline, resolve_engine
from ..constants import DEFAULT_WINDOW_GSNP
from ..formats.cns import ResultTable
from ..seqsim.datasets import DatasetSpec, KnownSnpPrior, SimulatedDataset
from ..soapsnp.model import CallingParams
from ..soapsnp.posterior import is_snp_call
from .likelihood import OPTIMIZED, LikelihoodVariant


def dataset_from_alignments(
    reference,
    batch,
    prior: Optional[KnownSnpPrior] = None,
) -> SimulatedDataset:
    """Wrap a parsed reference + alignment batch in the dataset container
    the pipelines consume (no planted truth: haplotypes = reference)."""
    from ..seqsim.diploid import Diploid
    from ..seqsim.reads import ReadSet

    if prior is None:
        prior = KnownSnpPrior(
            positions=np.empty(0, dtype=np.int64),
            rates=np.empty(0, dtype=np.float64),
        )
    rs = ReadSet(
        chrom=reference.name,
        read_len=batch.read_len,
        pos=batch.pos,
        strand=batch.strand,
        hits=batch.hits,
        bases=batch.bases,
        quals=batch.quals,
    )
    return SimulatedDataset(
        spec=DatasetSpec(
            name=reference.name,
            n_sites=reference.length,
            depth=0.0,
            coverage=1.0,
            read_len=batch.read_len,
        ),
        reference=reference,
        diploid=Diploid(
            reference=reference,
            hap1=reference.codes,
            hap2=reference.codes,
            snp_positions=np.empty(0, dtype=np.int64),
            snp_genotypes=np.empty((0, 2), dtype=np.uint8),
        ),
        reads=rs,
        prior=prior,
    )


def dataset_from_files(
    fasta_path, soap_path, prior_path=None, quarantine=None
) -> SimulatedDataset:
    """Parse (fasta, soap[, prior]) input files into a dataset.

    With ``quarantine`` set, malformed SOAP records are appended to that
    file (with ``path:line: reason`` context) and skipped instead of
    failing the parse.
    """
    from ..formats.fasta import read_fasta
    from ..formats.prior import read_prior
    from ..formats.soap import read_soap

    reference = read_fasta(fasta_path)[0]
    batch = read_soap(soap_path, quarantine=quarantine)
    prior = (
        read_prior(prior_path, chrom=reference.name) if prior_path else None
    )
    return dataset_from_alignments(reference, batch, prior)


@dataclass
class SnpCall:
    """One called variant site (convenience row view)."""

    chrom: str
    pos: int  # 1-based
    ref: int
    genotype: int
    quality: int
    depth: int


@dataclass
class Accuracy:
    """Scoring of calls against planted truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        d = self.true_positives + self.false_positives
        return self.true_positives / d if d else 1.0

    @property
    def recall(self) -> float:
        d = self.true_positives + self.false_negatives
        return self.true_positives / d if d else 1.0


class GsnpDetector:
    """Facade over the registered SNP-calling engines.

    Parameters
    ----------
    engine:
        An :class:`~repro.api.Engine` member or its string name —
        ``"gsnp"`` (simulated GPU, default), ``"gsnp_cpu"`` (sparse CPU),
        or ``"soapsnp"`` (dense baseline).  All engines produce identical
        calls.
    workers, shard_size:
        When ``workers > 1`` or a ``shard_size`` is set, runs through the
        sharded parallel executor (:func:`repro.exec.execute`) — output is
        bitwise identical to the serial path.
    devices, cpu_steal:
        ``devices > 1`` runs on a modeled :class:`~repro.gpusim.pool
        .DevicePool` through the heterogeneous work-stealing scheduler
        (:mod:`repro.exec.hetero`); ``cpu_steal=True`` adds the sparse
        host engine as an extra stealing lane.  Output stays bitwise
        identical for any device count and steal schedule.
    shard_timeout:
        Per-shard wall-clock deadline in seconds (process pools only); an
        expired shard is killed and retried with exponential backoff.
    journal_dir, resume:
        Crash-safe checkpointing.  With ``journal_dir`` set, every
        completed shard is committed to a content-hashed journal; with
        ``resume=True`` a re-run skips committed shards and merges to
        bitwise-identical output.
    quarantine:
        File collecting malformed input records (sharded runs only;
        applies to the streaming reader).
    faults:
        A :class:`~repro.faults.plan.FaultPlan` to run under (chaos
        testing).
    spec:
        A :class:`~repro.api.JobSpec` carrying all of the above in one
        object; individual keyword arguments must not be combined with it.
    """

    def __init__(
        self,
        engine: Engine | str = Engine.GSNP,
        params: Optional[CallingParams] = None,
        window_size: int = DEFAULT_WINDOW_GSNP,
        variant: LikelihoodVariant = OPTIMIZED,
        min_quality: int = 0,
        workers: int = 1,
        shard_size: Optional[int] = None,
        devices: int = 1,
        cpu_steal: bool = False,
        sanitize: bool = False,
        prefetch: bool = True,
        cache: bool = True,
        fusion: bool = False,
        shard_timeout: Optional[float] = None,
        journal_dir=None,
        resume: bool = False,
        quarantine=None,
        faults=None,
        samples: tuple = (),
        spec: Optional[JobSpec] = None,
    ) -> None:
        if spec is not None:
            spec.validate()
            engine = spec.engine
            samples = spec.samples
            window_size = spec.window
            variant = spec.variant
            min_quality = spec.min_quality
            workers = spec.workers
            shard_size = spec.shard_size
            devices = spec.devices
            cpu_steal = spec.cpu_steal
            sanitize = spec.sanitize
            prefetch = spec.prefetch
            cache = spec.cache
            fusion = spec.fusion
            shard_timeout = spec.shard_timeout
            journal_dir = spec.journal
            resume = spec.resume
            quarantine = spec.quarantine
            faults = spec.faults
        self.engine = resolve_engine(engine)
        self.params = params
        self.window_size = window_size
        self.variant = variant
        self.min_quality = min_quality
        self.workers = workers
        self.shard_size = shard_size
        self.devices = devices
        self.cpu_steal = cpu_steal
        self.sanitize = sanitize
        #: Throughput-engine toggles (double-buffered streaming, persistent
        #: device tables, fused megabatch launching); results are bitwise
        #: identical under every combination.
        self.prefetch = prefetch
        self.cache = cache
        self.fusion = fusion
        #: Robustness knobs, forwarded to the sharded executor.
        self.shard_timeout = shard_timeout
        self.journal_dir = journal_dir
        self.resume = resume
        self.quarantine = quarantine
        self.faults = faults
        #: Cohort mode: additional sample SOAP paths (the primary soap
        #: input is sample 0), or prebuilt batches via ``sample_batches``.
        self.samples = tuple(samples)
        self.sample_batches = None
        self.dataset: Optional[SimulatedDataset] = None
        self.last_result = None

    @classmethod
    def from_files(
        cls, fasta_path, soap_path, prior_path=None, **kwargs
    ) -> "GsnpDetector":
        """Build a detector bound to parsed (fasta, soap[, prior]) files;
        its :meth:`run` then needs no dataset argument."""
        det = cls(**kwargs)
        det.dataset = dataset_from_files(
            fasta_path, soap_path, prior_path, quarantine=det.quarantine
        )
        return det

    def job_spec(self) -> JobSpec:
        """The detector's current knobs as a :class:`~repro.api.JobSpec`."""
        return JobSpec(
            engine=str(self.engine),
            samples=self.samples,
            window=self.window_size,
            variant=self.variant,
            min_quality=self.min_quality,
            workers=self.workers,
            shard_size=self.shard_size,
            devices=self.devices,
            cpu_steal=self.cpu_steal,
            sanitize=self.sanitize,
            prefetch=self.prefetch,
            cache=self.cache,
            fusion=self.fusion,
            shard_timeout=self.shard_timeout,
            journal=self.journal_dir,
            resume=self.resume,
            quarantine=self.quarantine,
            faults=self.faults,
        )

    def run(
        self, dataset: Optional[SimulatedDataset] = None, output_path=None
    ):
        """Run the chosen engine (serial or sharded-parallel)."""
        if dataset is None:
            dataset = self.dataset
        if dataset is None:
            raise ValueError(
                "no dataset: pass one to run() or build the detector "
                "with from_files()"
            )
        spec = self.job_spec().validate()
        sample_reads = self.sample_batches
        if sample_reads is None and spec.is_cohort:
            from ..align.records import AlignmentBatch
            from ..formats.soap import read_soap

            sample_reads = [AlignmentBatch.from_read_set(dataset.reads)]
            for path in self.samples:
                sample_reads.append(
                    read_soap(path, quarantine=self.quarantine)
                )
        if spec.uses_executor:
            from ..exec import execute

            result = execute(
                dataset, spec=spec, params=self.params,
                output_path=output_path, sample_reads=sample_reads,
            )
        else:
            device = None
            if self.sanitize:
                from ..gpusim.pool import acquire_device

                device = acquire_device(sanitize=True)
            pipe = create_pipeline(
                spec=spec, params=self.params, device=device
            )
            if sample_reads is not None:
                from .cohort import cohort_output_path

                output_paths = (
                    [
                        cohort_output_path(output_path, i)
                        for i in range(len(sample_reads))
                    ]
                    if output_path is not None
                    else None
                )
                result = pipe.run_cohort(
                    dataset, sample_reads, output_paths=output_paths
                )
            else:
                result = pipe.run(dataset, output_path=output_path)
            if device is not None:
                # Resident score tables are intentionally long-lived; drop
                # them before the strict leak check.
                if hasattr(pipe, "release_cache"):
                    pipe.release_cache()
                device.sanitize_teardown(strict=True)
        self.last_result = result
        return result

    def calls(self, table: ResultTable) -> list[SnpCall]:
        """Variant rows passing the quality filter."""
        mask = is_snp_call(table) & (table.quality >= self.min_quality)
        idx = np.nonzero(mask)[0]
        return [
            SnpCall(
                chrom=table.chrom,
                pos=int(table.pos[i]),
                ref=int(table.ref_base[i]),
                genotype=int(table.genotype[i]),
                quality=int(table.quality[i]),
                depth=int(table.depth[i]),
            )
            for i in idx
        ]

    @staticmethod
    def score(
        table: ResultTable,
        dataset: SimulatedDataset,
        min_quality: int = 0,
        covered_only: bool = True,
    ) -> Accuracy:
        """Score calls against the planted truth of a simulated dataset.

        With ``covered_only`` (default), planted SNPs at sites with zero
        sequencing depth are excluded from the false-negative count — no
        caller can find a variant it never saw a read for.
        """
        mask = is_snp_call(table) & (table.quality >= min_quality)
        called = set((table.pos[mask] - 1).tolist())
        truth_pos = dataset.diploid.snp_positions
        if covered_only:
            pos0 = table.pos - 1
            depth_at = dict(zip(pos0.tolist(), table.depth.tolist()))
            truth = {
                int(p) for p in truth_pos if depth_at.get(int(p), 0) > 0
            }
        else:
            truth = {int(p) for p in truth_pos}
        tp = len(called & truth)
        return Accuracy(
            true_positives=tp,
            false_positives=len(called - truth),
            false_negatives=len(truth - called),
        )


def detect_snps(
    dataset: SimulatedDataset,
    engine: Engine | str = Engine.GSNP,
    min_quality: int = 0,
    **kwargs,
) -> tuple[ResultTable, list[SnpCall]]:
    """One-shot convenience: run a detector and return (table, calls)."""
    det = GsnpDetector(engine=engine, min_quality=min_quality, **kwargs)
    result = det.run(dataset)
    return result.table, det.calls(result.table)
