"""Window-pipeline overlap helpers: input prefetch and output drain.

Two halves of the double-buffered streaming engine:

* :func:`prefetched_windows` wraps a window reader in a
  :class:`~repro.formats.stream.PrefetchIterator`, so window N+1's
  ``read_site`` decode runs on a background thread while window N computes.
* :class:`OutputDrain` moves the output-file append off the compute thread:
  the pipeline's ``output`` phase still *encodes* each blob (device kernels,
  fully counted), then hands the bytes here for ordered background writing.

Neither changes results or counters — blobs are written in submission
order and all event accounting stays on the compute thread.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Optional

from ..formats.stream import PrefetchIterator

#: Windows decoded ahead of the compute loop (double buffering).
PREFETCH_DEPTH = 2


def prefetched_windows(
    reader: Iterable, enabled: bool = True, depth: int = PREFETCH_DEPTH
) -> Iterable:
    """The reader itself, or its prefetching wrapper when ``enabled``."""
    if not enabled:
        return reader
    return PrefetchIterator(reader, depth=depth)


class OutputDrain:
    """Ordered, crash-safe background writer for encoded result blobs.

    ``submit`` enqueues bytes; a writer thread appends them — in
    submission order — to a temporary ``<path>.part`` file, which is
    atomically renamed to ``path`` only when ``close`` has flushed every
    blob (:func:`repro.faults.journal.atomic_output`).  A run killed at
    any instant therefore leaves either a complete output file or none;
    a partial/corrupt result file can never be mistaken for a finished
    one.  ``close`` re-raises any I/O error the writer hit — a failed
    write still fails the run, and removes the partial file.
    """

    _SENTINEL = None

    def __init__(self, path, depth: int = 4) -> None:
        self.path = path
        self._q: queue.Queue = queue.Queue(maxsize=max(1, depth))
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._write_loop, name="gsnp-output-drain", daemon=True
        )
        self._thread.start()

    def _write_loop(self) -> None:
        from ..faults.journal import atomic_output

        saw_sentinel = False
        try:
            with atomic_output(self.path) as f:
                while True:
                    blob = self._q.get()
                    if blob is self._SENTINEL:
                        saw_sentinel = True
                        return
                    f.write(blob)
        except BaseException as exc:
            self._error = exc
            # Keep draining so submitters never block on a dead writer —
            # unless the failure was the final commit itself, after the
            # sentinel was already consumed.
            while not saw_sentinel and self._q.get() is not self._SENTINEL:
                pass

    def submit(self, blob: bytes) -> None:
        """Queue one blob for ordered append."""
        self._q.put(blob)

    def close(self) -> None:
        """Flush pending writes; re-raise the writer's error, if any."""
        self._q.put(self._SENTINEL)
        self._thread.join()
        if self._error is not None:
            raise self._error


__all__ = ["OutputDrain", "PREFETCH_DEPTH", "prefetched_windows"]
