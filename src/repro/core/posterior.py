"""GSNP posterior component: GPU-accelerated genotype calling.

The posterior math is *shared verbatim* with the baseline
(:mod:`repro.soapsnp.posterior`) — that is the whole point of the §IV-G
consistency design — so this module wraps those functions with device-side
accounting: per site, the kernel loads the 10 likelihoods and priors,
evaluates the posterior and summary statistics, and writes one result row.
"""

from __future__ import annotations

import numpy as np

from ..constants import N_GENOTYPES
from ..formats.cns import ResultTable
from ..gpusim.device import Device
from ..seqsim.datasets import KnownSnpPrior
from ..soapsnp.model import CallingParams
from ..soapsnp.observe import Observations
from ..soapsnp.posterior import summarize_window

#: Approximate bytes of one packed result row on the device.
RESULT_ROW_BYTES = 40


def gsnp_posterior(
    device: Device,
    obs: Observations,
    window_start: int,
    ref_codes: np.ndarray,
    prior: KnownSnpPrior,
    type_likely: np.ndarray,
    params: CallingParams,
    chrom: str,
) -> ResultTable:
    """Posterior + per-site statistics with device accounting.

    Returns exactly what the baseline's ``summarize_window`` returns
    (bitwise), while charging the simulated device for the per-site kernel
    work.
    """
    table = summarize_window(
        obs, window_start, ref_codes, prior, type_likely, params, chrom
    )
    n = obs.n_sites
    c = device.counters.get("posterior")
    c.launches += 1
    # Per site: coalesced read of 10 float64 likelihoods + ref/prior bytes.
    in_bytes = n * (N_GENOTYPES * 8 + 16)
    c.g_load += -(-in_bytes // device.spec.segment_bytes)
    c.g_load_bytes += in_bytes
    # Per observation: allele statistics accumulation (scattered).
    c.g_load += obs.n_obs
    c.g_store += obs.n_obs
    c.g_load_bytes += obs.n_obs * 4
    c.g_store_bytes += obs.n_obs * 4
    # Result row writes (coalesced struct-of-arrays stores).
    out_bytes = n * RESULT_ROW_BYTES
    c.g_store += -(-out_bytes // device.spec.segment_bytes)
    c.g_store_bytes += out_bytes
    c.inst_warp += n * 60 + obs.n_obs * 4
    return table
