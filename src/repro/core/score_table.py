"""The precomputed score tables of Sections IV-D and IV-G.

``new_p_matrix`` stores, for every (adjusted score, coord, observed base)
and each of the ten genotypes, the value Algorithm 2 would compute —
``log10(0.5 p[q,c,a1,b] + 0.5 p[q,c,a2,b])`` — so the inner loop performs
one table read instead of two ``p_matrix`` reads plus a logarithm
(Algorithm 3).  Both tables are computed once on the *host* and uploaded to
the device, which is also what guarantees bitwise CPU/GPU agreement
(Section IV-G): the device never evaluates a transcendental function.
"""

from __future__ import annotations

import numpy as np

from ..constants import (
    GENOTYPES,
    MAX_READ_LEN,
    N_BASES,
    N_GENOTYPES,
    N_SCORES,
    NEW_P_MATRIX_SIZE,
    NP_BASE_SHIFT,
    NP_COORD_SHIFT,
    NP_Q_SHIFT,
)


# Process-level build cache: the ~20 MB (full-scale) new_p_matrix depends
# only on the calibration's p_matrix, so each worker process expands it at
# most once per calibration fingerprint and every pipeline/shard/run reuses
# the same read-only array.  ``new_p_build_count`` exposes the build tally
# for the built-exactly-once residency tests.
_NEWP_CACHE: dict[str, np.ndarray] = {}
_NEWP_CACHE_MAX = 4
_NEWP_BUILDS = 0


def cached_new_p_matrix(pm_flat: np.ndarray) -> np.ndarray:
    """``build_new_p_matrix`` memoized by calibration fingerprint.

    Returns a read-only array shared by every caller in the process; device
    uploads copy it, and CPU-mode lookups only read it.
    """
    global _NEWP_BUILDS
    from ..gpusim.residency import array_fingerprint

    key = array_fingerprint(pm_flat)
    hit = _NEWP_CACHE.get(key)
    if hit is not None:
        return hit
    newp = build_new_p_matrix(
        np.asarray(pm_flat).reshape(N_SCORES, MAX_READ_LEN, N_BASES, N_BASES)
    )
    newp.setflags(write=False)
    if len(_NEWP_CACHE) >= _NEWP_CACHE_MAX:
        _NEWP_CACHE.clear()
    _NEWP_CACHE[key] = newp
    _NEWP_BUILDS += 1
    return newp


def new_p_build_count() -> int:
    """How many times this process actually expanded a new_p_matrix."""
    return _NEWP_BUILDS


def reset_new_p_cache() -> None:
    """Drop the build cache and zero the build tally (test isolation)."""
    global _NEWP_BUILDS
    _NEWP_CACHE.clear()
    _NEWP_BUILDS = 0


def build_new_p_matrix(p_matrix: np.ndarray) -> np.ndarray:
    """Expand ``p_matrix`` (64,256,4,4) into the flat ``new_p_matrix``.

    Layout: ``new_p[(q<<10 | coord<<2 | base) * 10 + i]`` holds the i-th
    genotype's value, i.e. C-order flattening of a (64, 256, 4, 10) array
    (q, coord, base, genotype).
    """
    if p_matrix.shape != (N_SCORES, MAX_READ_LEN, N_BASES, N_BASES):
        raise ValueError(f"unexpected p_matrix shape {p_matrix.shape}")
    out = np.empty((N_SCORES, MAX_READ_LEN, N_BASES, N_GENOTYPES))
    for gi, (a1, a2) in enumerate(GENOTYPES):
        # p_matrix axes are (q, coord, allele, base); slice the two allele
        # planes and mix, exactly as likely_update does per call.
        p1 = p_matrix[:, :, a1, :]
        p2 = p_matrix[:, :, a2, :]
        out[:, :, :, gi] = np.log10(0.5 * p1 + 0.5 * p2)
    flat = np.ascontiguousarray(out).reshape(-1)
    assert flat.size == NEW_P_MATRIX_SIZE
    return flat


def new_p_index(
    q_adj: np.ndarray, coord: np.ndarray, base: np.ndarray, i
) -> np.ndarray:
    """Algorithm 3 index: ``(q<<10 | coord<<2 | base) * 10 + i``."""
    idx = (
        np.asarray(q_adj, dtype=np.int64) << NP_Q_SHIFT
        | np.asarray(coord, dtype=np.int64) << NP_COORD_SHIFT
        | np.asarray(base, dtype=np.int64) << NP_BASE_SHIFT
    )
    return idx * N_GENOTYPES + i


def table_contributions(
    newp_flat: np.ndarray,
    q_adj: np.ndarray,
    coord: np.ndarray,
    base: np.ndarray,
) -> np.ndarray:
    """Algorithm 3 for every observation and all 10 genotypes.

    Returns ``(m, 10)``; bitwise identical to
    :func:`repro.soapsnp.likelihood.direct_contributions` on the same
    inputs (verified by tests), because the table entries were produced by
    the same IEEE operations the direct path evaluates.
    """
    m = np.asarray(q_adj).size
    out = np.empty((m, N_GENOTYPES), dtype=np.float64)
    for gi in range(N_GENOTYPES):
        out[:, gi] = newp_flat[new_p_index(q_adj, coord, base, gi)]
    return out
