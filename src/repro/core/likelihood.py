"""GSNP likelihood calculation on the simulated GPU (Algorithm 4).

``likelihood = likelihood_sort + likelihood_comp``:

* :func:`gsnp_likelihood_sort` restores canonical order in every site's
  ``base_word`` array with the multipass batch bitonic network
  (Section IV-C), via the score-inverting key transform.
* :func:`gsnp_likelihood_comp` runs the per-site computation with one
  thread per site (the paper's baseline parallelization), in lockstep over
  the simulated device so hardware counters reflect real coalescing.

Four kernel variants reproduce Figure 8 / Table III:

========== ============= ====================
variant     type_likely   score source
========== ============= ====================
baseline    global memory p_matrix + log10
w/ shared   shared memory p_matrix + log10
w/ table    global memory new_p_matrix lookup
optimized   shared memory new_p_matrix lookup
========== ============= ====================

All four produce **bitwise identical** results (the math is the same; the
table entries were computed by the same IEEE operations) — only the
counters differ, exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    GENOTYPES,
    MAX_READ_LEN,
    N_GENOTYPES,
    N_STRANDS,
)
from ..gpusim.device import Device
from ..gpusim.memory import DeviceArray
from ..soapsnp.p_matrix import p_matrix_index
from ..sortnet.multipass import MULTIPASS_BOUNDS, SortStats, multipass_sort, size_class_of
from .base_word import canonical_keys, decode_keys, extract_words
from .score_table import build_new_p_matrix, cached_new_p_matrix, new_p_index

# Instruction-accounting constants (per aligned base element); tuned so the
# counter ratios land near Table III.  They represent addressing, loop and
# bookkeeping work that a CUDA kernel spends per element.
_INSTR_EXTRACT = 20
_INSTR_ADJUST = 6
_INSTR_PER_GENOTYPE = 8
_INSTR_LOG10 = 6
_INSTR_DEP_RESET = 32


@dataclass(frozen=True)
class LikelihoodVariant:
    """Optimization switches of one kernel configuration."""

    name: str
    use_shared: bool
    use_table: bool


BASELINE = LikelihoodVariant("baseline", use_shared=False, use_table=False)
WITH_SHARED = LikelihoodVariant("w_shared", use_shared=True, use_table=False)
WITH_TABLE = LikelihoodVariant("w_new_table", use_shared=False, use_table=True)
OPTIMIZED = LikelihoodVariant("optimized", use_shared=True, use_table=True)

ALL_VARIANTS = (BASELINE, WITH_SHARED, WITH_TABLE, OPTIMIZED)


@dataclass
class GsnpTables:
    """Device-resident score tables (built on the host, Section IV-G)."""

    pm_host: np.ndarray  # flat (64*256*4*4,) p_matrix
    newp_host: np.ndarray  # flat new_p_matrix
    penalty_host: np.ndarray  # dependency penalty table (int32)
    pm_dev: DeviceArray
    newp_dev: DeviceArray
    penalty_dev: DeviceArray  # constant memory

    @staticmethod
    def load(
        device: Device,
        pm_flat: np.ndarray,
        penalty: np.ndarray,
        cache: bool = True,
    ) -> "GsnpTables":
        """The ``load_table`` component of Figure 2.

        With ``cache`` (default), the bundle is made resident on the device
        keyed by the calibration fingerprint *and the device identity*:
        repeat loads for the same calibration on the same device reuse the
        uploaded tables instead of re-transferring — the paper's
        keep-hot-tables-resident recipe.  The device id in the key is what
        keeps two pool devices from ever sharing one upload: each device
        of a :class:`~repro.gpusim.pool.DevicePool` holds arrays only it
        can legally touch, so a fingerprint-only key would alias entry
        lookups across devices the moment any code consults a residency
        view wider than one device.  ``cache=False`` always builds and
        uploads fresh (the caller then owns the free).
        """
        from ..gpusim.residency import array_fingerprint

        key = None
        if cache:
            key = (
                "gsnp_tables",
                getattr(device, "device_id", 0),
                array_fingerprint(pm_flat, penalty),
            )
            hit = device.resident.get(key)
            if hit is not None:
                return hit
        newp = cached_new_p_matrix(pm_flat)
        # Both score tables are uploaded regardless of kernel variant (the
        # paper's GSNP keeps them resident); a run using only the
        # new_p_matrix lookup never reads p_matrix, and vice versa.
        pm_dev = device.to_device(pm_flat, "p_matrix")
        newp_dev = device.to_device(newp, "new_p_matrix")
        penalty_dev = device.to_constant(penalty.astype(np.int32), "log_table")
        for t in (pm_dev, newp_dev, penalty_dev):
            t.mark_consumed()
        tables = GsnpTables(
            pm_host=pm_flat,
            newp_host=newp,
            penalty_host=penalty.astype(np.int32),
            pm_dev=pm_dev,
            newp_dev=newp_dev,
            penalty_dev=penalty_dev,
        )
        if cache:
            device.resident.put(key, tables, (pm_dev, newp_dev, penalty_dev))
        return tables

    @staticmethod
    def upload_bytes(pm_flat: np.ndarray, penalty: np.ndarray) -> int:
        """PCIe bytes one ``load_table`` upload moves (both score tables
        plus the constant-memory penalty table) — the analytic charge
        ``calibrate()`` records without re-building or re-uploading."""
        return (
            pm_flat.nbytes
            + cached_new_p_matrix(pm_flat).nbytes
            + penalty.astype(np.int32).nbytes
        )

    def free(self, device: Device) -> None:
        """Release the device copies (the teardown leak check flags score
        tables that outlive their pipeline run)."""
        for arr in (self.pm_dev, self.newp_dev, self.penalty_dev):
            if not arr.freed:
                device.free(arr)


def gsnp_likelihood_sort(
    device: Device | None,
    words: np.ndarray,
    offsets: np.ndarray,
) -> tuple[np.ndarray, SortStats]:
    """Sort every site's base_words into canonical order (multipass).

    Returns (sorted words, sort statistics).  ``device=None`` runs the
    same network on the CPU (the GSNP_CPU variant uses quicksort instead;
    see :mod:`repro.sortnet.cpu_sort`).
    """
    keys = canonical_keys(words)
    sorted_keys, stats = multipass_sort(keys, offsets, device=device)
    return decode_keys(sorted_keys), stats


def _comp_kernel(
    ctx,
    words_dev: DeviceArray,
    starts: np.ndarray,
    lens: np.ndarray,
    width: int,
    tables: GsnpTables,
    tl_dev: DeviceArray,
    dep_dev: DeviceArray,
    variant: LikelihoodVariant,
    acc_out: np.ndarray,
):
    """One bucket launch of likelihood_comp: thread t owns site t.

    ``acc_out`` (rows, 10) receives the per-site log-likelihood sums;
    the lockstep j-loop walks each site's sorted base_words sequentially,
    so accumulation order matches the dense CPU algorithm bit for bit.
    """
    n = ctx.n_threads
    tid = ctx.tid
    acc = np.zeros((n, N_GENOTYPES), dtype=np.float64)
    dep = np.zeros((n, N_STRANDS * MAX_READ_LEN), dtype=np.int32)
    last_base = np.zeros(n, dtype=np.int64)
    for j in range(width):
        # Out-of-range lanes are masked inactive, never clamped: a clamped
        # phantom gather would issue real transactions and inflate
        # g_load / g_load_bytes with reads no thread performs.
        word_idx = starts + j
        active = (j < lens) & (word_idx < words_dev.size)
        w = ctx.gload(words_dev, word_idx, active=active)
        base, score, coord, strand = extract_words(w)
        base_i = base.astype(np.int64)
        ctx.instr(_INSTR_EXTRACT, active=active)

        # Algorithm 4 lines 8-10: reset dep_count when the base advances.
        newbase = active & (base_i > last_base)
        if newbase.any():
            dep[newbase] = 0
            ctx.instr(_INSTR_DEP_RESET, active=newbase)
        last_base = np.where(active, np.maximum(last_base, base_i), last_base)

        # dep_count[strand*read_len + coord] += 1 (global memory array).
        slot = strand.astype(np.int64) * MAX_READ_LEN + coord
        dep_idx = tid * (N_STRANDS * MAX_READ_LEN) + slot
        _ = ctx.gload(dep_dev, dep_idx, active=active)
        dep[np.arange(n)[active], slot[active]] += 1
        k = dep[np.arange(n), slot]
        ctx.gstore(dep_dev, dep_idx, k.astype(dep_dev.dtype), active=active)

        # adjust(): penalty table lives in constant memory (log_table).
        pen = ctx.cload(
            tables.penalty_dev,
            np.minimum(k - 1, tables.penalty_host.size - 1).clip(min=0),
            active=active,
        )
        q_adj = np.maximum(0, score.astype(np.int64) - pen.astype(np.int64))
        ctx.instr(_INSTR_ADJUST, active=active)

        for gi, (a1, a2) in enumerate(GENOTYPES):
            if variant.use_table:
                idx = new_p_index(q_adj, coord, base_i, gi)
                val = ctx.gload(tables.newp_dev, idx, active=active)
            else:
                i1 = p_matrix_index(q_adj, coord, a1, base_i)
                i2 = p_matrix_index(q_adj, coord, a2, base_i)
                p1 = ctx.gload(tables.pm_dev, i1, active=active)
                p2 = ctx.gload(tables.pm_dev, i2, active=active)
                with np.errstate(divide="ignore"):
                    # The baseline variant computes log10 on the fly — the
                    # very cost the log-free score table removes (Table III).
                    val = np.log10(0.5 * p1 + 0.5 * p2)  # gsnp-lint: disable=GSNP102
                ctx.instr(_INSTR_LOG10, active=active)
            contribution = np.where(active, val, 0.0)
            if variant.use_shared:
                ctx.note_shared(loads=1, stores=1, active=active)
                acc[:, gi] += contribution
            else:
                tl_idx = tid * 16 + (a1 << 2 | a2)
                _ = ctx.gload(tl_dev, tl_idx, active=active)
                acc[:, gi] += contribution
                ctx.gstore(tl_dev, tl_idx, acc[:, gi], active=active)
            ctx.instr(_INSTR_PER_GENOTYPE, active=active)

    if variant.use_shared:
        # Copy s_type_likely to global memory through coalesced writes;
        # every lane participates, hence the explicit full-warp mask.
        for gi in range(N_GENOTYPES):
            ctx.note_shared(loads=1)
            ctx.gstore(tl_dev, tid * 16 + gi, acc[:, gi], active=None)
    acc_out[:] = acc


def gsnp_likelihood_comp(
    device: Device,
    words_sorted: np.ndarray,
    offsets: np.ndarray,
    tables: GsnpTables,
    variant: LikelihoodVariant = OPTIMIZED,
    bounds=MULTIPASS_BOUNDS,
    kernel_name: str = "likelihood_comp",
) -> np.ndarray:
    """Run likelihood_comp over all sites; returns (n_sites, 10) float64.

    Sites are launched in multipass-style size buckets so lockstep lanes
    stay balanced, mirroring the sort's bucketing.
    """
    n_sites = offsets.size - 1
    out = np.zeros((n_sites, N_GENOTYPES), dtype=np.float64)
    lengths = np.diff(offsets)
    if words_sorted.size == 0 or n_sites == 0:
        return out
    words_dev = device.to_device(words_sorted, "base_word")
    classes = size_class_of(lengths, bounds)
    uppers = list(bounds) + [int(lengths.max(initial=1))]
    for ci in range(len(bounds) + 1):
        rows = np.nonzero((classes == ci) & (lengths > 0))[0]
        if rows.size == 0:
            continue
        width = int(uppers[ci])
        n = rows.size
        tl_dev = device.alloc(n * 16, np.float64, "type_likely")
        # The kernel stores the real global-memory output here (charged as
        # traffic); the simulator hands results back through ``acc``.
        tl_dev.mark_consumed()
        dep_dev = device.alloc(
            n * N_STRANDS * MAX_READ_LEN, np.int32, "dep_count"
        )
        acc = np.empty((n, N_GENOTYPES), dtype=np.float64)
        device.launch(
            _comp_kernel,
            n,
            words_dev,
            offsets[:-1][rows],
            lengths[rows],
            width,
            tables,
            tl_dev,
            dep_dev,
            variant,
            acc,
            name=f"{kernel_name}_{variant.name}",
        )
        out[rows] = acc
        device.free(tl_dev)
        device.free(dep_dev)
    device.free(words_dev)
    return out


def gpu_dense_likelihood_counters(
    device: Device, n_sites: int, m_counted: int
) -> None:
    """Analytic counters for the dense-representation GPU strawman (Fig. 5).

    One thread block scans one site's 131,072-cell matrix with coalesced
    loads (the best dense implementation available); the non-zero cells
    then pay the same per-element work as the baseline sparse kernel.
    Records into the device's counter book under ``likelihood_gpu_dense``.
    """
    c = device.counters.get("likelihood_gpu_dense")
    c.launches += 1
    # Coalesced scan: 131,072 one-byte cells per site, 128 bytes/segment.
    c.g_load += n_sites * (131072 // 128)
    c.g_load_bytes += n_sites * 131072
    # Scan instructions: one compare/branch per cell per warp.
    c.inst_warp += n_sites * (131072 // 32)
    # Non-zero cells do baseline-variant work (20 p_matrix loads etc.).
    c.g_load += 22 * m_counted
    c.g_load_bytes += 22 * 8 * m_counted
    c.g_store += 11 * m_counted
    c.g_store_bytes += 11 * 8 * m_counted
    c.inst_warp += (
        _INSTR_EXTRACT
        + _INSTR_ADJUST
        + N_GENOTYPES * (_INSTR_PER_GENOTYPE + _INSTR_LOG10)
    ) * m_counted
