"""Cohort-batched multi-sample calling: shared layout and result types.

An S-sample cohort shares one reference, so every sample's pileup tiles
the *same* fixed-size windows.  The cohort execution mode exploits that:

* **one calibration** — the score-table inputs (``p_matrix``, the rank
  penalty) are built from the pooled reads of all S samples, giving one
  ``pm_flat`` fingerprint and therefore exactly one resident table set
  per device (:mod:`repro.gpusim.residency` keys by calibration
  fingerprint, never by sample);
* **one decode per window** — S lockstep :class:`WindowReader` streams
  advance together, so each reference window's boundary bookkeeping is
  paid once;
* **sample-major megabatches** — each megabatch concatenates all S
  samples' copies of the same W windows on one flat site axis (sample 0's
  windows, then sample 1's, ...), so the fused counting/sort/
  likelihood+posterior/codec chain launches once per megabatch no matter
  how many samples ride in it.

Per-sample outputs stay bitwise identical to S independent solo runs
that share the pooled calibration: the flat layout only ever juxtaposes
disjoint segments, and every fused kernel in this codebase is
segment-local by construction (an existing tested invariant).

This module holds the parts that do not need pipeline internals — the
pooled-reads helper, cohort input loading, output-path conventions and
the :class:`CohortResult` container.  The execution loop itself is
``GsnpPipeline.run_cohort`` in :mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence

import numpy as np

from ..align.records import AlignmentBatch
from ..bench.events import RunProfile
from ..errors import PipelineError


def pooled_batch(sample_reads: Sequence[AlignmentBatch]) -> AlignmentBatch:
    """Concatenate a cohort's alignment batches for pooled calibration.

    Calibration's ``build_p_matrix`` is a scatter-add over (cycle, base,
    quality) integer coordinates, so read order cannot change the score
    tables; the pooled batch is re-sorted by position (stable) only so
    the compressed temp-input copy's delta codec sees a sorted column.
    It is never used for windowing — each sample windows its own batch.
    """
    if not sample_reads:
        raise PipelineError("cohort needs at least one sample")
    read_lens = {b.read_len for b in sample_reads if b.n_reads}
    if len(read_lens) > 1:
        raise PipelineError(
            f"cohort samples mix read lengths {sorted(read_lens)}"
        )
    pooled = sample_reads[0]
    for batch in sample_reads[1:]:
        pooled = pooled.concat(batch)
    order = np.argsort(pooled.pos, kind="stable")
    return pooled.select(order)


def load_sample_batches(spec) -> List[AlignmentBatch]:
    """Parse a cohort JobSpec's pileup inputs (primary soap first)."""
    from ..formats.soap import read_soap

    batches = [read_soap(spec.soap, quarantine=spec.quarantine)]
    for path in spec.samples:
        batches.append(read_soap(path, quarantine=spec.quarantine))
    return batches


def cohort_output_path(base, sample: int) -> Path:
    """Per-sample output path convention: sample 0 owns the base path,
    sample ``i`` gets ``<base>.s<i>`` alongside it."""
    base = Path(base)
    if sample == 0:
        return base
    return base.with_name(f"{base.name}.s{sample}")


@dataclass
class CohortResult:
    """What one cohort run produced: a per-sample result list plus the
    cohort-level profile (events for the shared decode/launch chain are
    attributed once, at the cohort level, not faked per sample)."""

    samples: List  # per-sample GsnpResult, cohort order
    profile: RunProfile
    extras: dict = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    @property
    def table(self):
        """Primary-sample (sample 0) result table.

        Lets single-result consumers (``job_summary``, smoke checks)
        treat a cohort like a solo run of its primary sample.
        """
        return self.samples[0].table

    @property
    def compressed_output(self) -> bytes:
        """All samples' compressed streams, concatenated in cohort order."""
        return b"".join(s.compressed_output or b"" for s in self.samples)

    @property
    def output_bytes(self) -> int:
        return sum(int(s.output_bytes) for s in self.samples)

    def sample_result(self, i: int):
        return self.samples[i]


__all__ = [
    "CohortResult",
    "cohort_output_path",
    "load_sample_batches",
    "pooled_batch",
]
