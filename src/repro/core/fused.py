"""Fused megabatch execution of the GSNP kernel chain.

The fused path runs the per-window components of :mod:`repro.core` on a
ragged megabatch (see :mod:`repro.gpusim.launchplan`):

* :func:`merge_observations` concatenates per-window observation sets
  onto the flat site axis, so one ``gsnp_counting`` call — and one
  cross-window-rebucketed multipass sort — replaces a per-window chain.
* :func:`gsnp_likelihood_posterior_fused` is the fused
  likelihood_comp + posterior kernel: per-site genotype likelihoods stay
  in shared memory (one 32 KB ``s_type_likely`` tile per block) and only
  the posterior result row reaches global memory, eliminating the full
  ``type_likely`` store + reload per site that the unfused pair pays.
* :func:`fused_posterior_tail` / :func:`gsnp_recycle_fused` account the
  in-kernel posterior epilogue and the single megabatch recycle.

Bitwise parity: every real number is still produced by the same host
functions (``summarize_window`` on per-window slices of the same
``type_likely`` matrix), and the merged counting/sort work on per-site
segments that are disjoint across windows — so the fused path reorders
*launches*, never per-site arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..constants import GENOTYPES, MAX_READ_LEN, N_GENOTYPES, N_STRANDS
from ..gpusim.device import Device
from ..gpusim.launchplan import LaunchPlan
from ..gpusim.memory import DeviceArray
from ..soapsnp.observe import Observations
from ..soapsnp.p_matrix import p_matrix_index
from ..sortnet.multipass import MULTIPASS_BOUNDS, size_class_of
from .base_word import extract_words
from .likelihood import (
    _INSTR_ADJUST,
    _INSTR_DEP_RESET,
    _INSTR_EXTRACT,
    _INSTR_LOG10,
    _INSTR_PER_GENOTYPE,
    GsnpTables,
    LikelihoodVariant,
    OPTIMIZED,
)
from .posterior import RESULT_ROW_BYTES
from .score_table import new_p_index


def merge_observations(
    obs_list: list[Observations], plan: LaunchPlan
) -> Observations:
    """Concatenate per-window observations onto the flat megabatch axis.

    ``site`` is shifted by each window's ``site_offset`` and ``arrival``
    by its ``obs_offset``: window i's sites (and arrival positions) all
    precede window i+1's, so the merged set is still canonically sorted
    and :func:`repro.core.counting.gsnp_counting` on it yields exactly
    the concatenation of the per-window (words, offsets) results.

    The same holds for a sample-major cohort plan
    (:func:`repro.gpusim.launchplan.build_cohort_plan`): segments are
    sequentially indexed whether they came from one sample's W windows
    or S samples' S*W copies of them, so neither this merge nor any
    downstream segment kernel needs a sample special case — the sample
    axis is pure layout.
    """
    if len(obs_list) != plan.n_windows:
        raise ValueError("observation list does not match launch plan")

    def cat(field: str) -> np.ndarray:
        return np.concatenate([getattr(o, field) for o in obs_list])

    site = np.concatenate(
        [
            o.site + seg.site_offset
            for o, seg in zip(obs_list, plan.segments)
        ]
    )
    arrival = np.concatenate(
        [
            o.arrival + seg.obs_offset
            for o, seg in zip(obs_list, plan.segments)
        ]
    )
    return Observations(
        n_sites=plan.n_sites,
        site=site.astype(np.int64),
        base=cat("base"),
        score=cat("score"),
        coord=cat("coord"),
        strand=cat("strand"),
        hits=cat("hits"),
        unique=cat("unique"),
        counted=cat("counted"),
        arrival=arrival.astype(np.int64),
    )


def _fused_comp_kernel(
    ctx,
    words_dev: DeviceArray,
    starts: np.ndarray,
    lens: np.ndarray,
    width: int,
    tables: GsnpTables,
    dep_dev: DeviceArray,
    variant: LikelihoodVariant,
    acc_out: np.ndarray,
):
    """One bucket launch of the fused likelihood_comp + posterior kernel.

    The j-loop is the unfused ``_comp_kernel`` walk over each site's
    sorted base_words, but ``s_type_likely`` never leaves shared memory:
    there is no ``tl_dev`` parameter, no global accumulate traffic for
    the non-shared variants, and no end-of-kernel copy-out — the
    posterior epilogue consumes the shared tile in-kernel (accounted by
    :func:`fused_posterior_tail`).  The accumulation order over j is
    unchanged, so ``acc_out`` is bitwise identical to the unfused pair.
    """
    n = ctx.n_threads
    tid = ctx.tid
    acc = np.zeros((n, N_GENOTYPES), dtype=np.float64)
    dep = np.zeros((n, N_STRANDS * MAX_READ_LEN), dtype=np.int32)
    last_base = np.zeros(n, dtype=np.int64)
    for j in range(width):
        word_idx = starts + j
        active = (j < lens) & (word_idx < words_dev.size)
        w = ctx.gload(words_dev, word_idx, active=active)
        base, score, coord, strand = extract_words(w)
        base_i = base.astype(np.int64)
        ctx.instr(_INSTR_EXTRACT, active=active)

        newbase = active & (base_i > last_base)
        if newbase.any():
            dep[newbase] = 0
            ctx.instr(_INSTR_DEP_RESET, active=newbase)
        last_base = np.where(active, np.maximum(last_base, base_i), last_base)

        slot = strand.astype(np.int64) * MAX_READ_LEN + coord
        dep_idx = tid * (N_STRANDS * MAX_READ_LEN) + slot
        _ = ctx.gload(dep_dev, dep_idx, active=active)
        dep[np.arange(n)[active], slot[active]] += 1
        k = dep[np.arange(n), slot]
        ctx.gstore(dep_dev, dep_idx, k.astype(dep_dev.dtype), active=active)

        pen = ctx.cload(
            tables.penalty_dev,
            np.minimum(k - 1, tables.penalty_host.size - 1).clip(min=0),
            active=active,
        )
        q_adj = np.maximum(0, score.astype(np.int64) - pen.astype(np.int64))
        ctx.instr(_INSTR_ADJUST, active=active)

        for gi, (a1, a2) in enumerate(GENOTYPES):
            if variant.use_table:
                idx = new_p_index(q_adj, coord, base_i, gi)
                val = ctx.gload(tables.newp_dev, idx, active=active)
            else:
                i1 = p_matrix_index(q_adj, coord, a1, base_i)
                i2 = p_matrix_index(q_adj, coord, a2, base_i)
                p1 = ctx.gload(tables.pm_dev, i1, active=active)
                p2 = ctx.gload(tables.pm_dev, i2, active=active)
                with np.errstate(divide="ignore"):
                    val = np.log10(0.5 * p1 + 0.5 * p2)  # gsnp-lint: disable=GSNP102 (het strands average in probability space; log_table only covers single-p lookups)
                ctx.instr(_INSTR_LOG10, active=active)
            contribution = np.where(active, val, 0.0)
            ctx.note_shared(loads=1, stores=1, active=active)
            acc[:, gi] += contribution
            ctx.instr(_INSTR_PER_GENOTYPE, active=active)

    acc_out[:] = acc


def gsnp_likelihood_posterior_fused(
    device: Device,
    words_sorted: np.ndarray,
    offsets: np.ndarray,
    tables: GsnpTables,
    variant: LikelihoodVariant = OPTIMIZED,
    bounds=MULTIPASS_BOUNDS,
) -> np.ndarray:
    """Fused likelihood_comp + posterior over a megabatch's flat sites.

    Size buckets span *all* windows of the megabatch (``offsets`` is the
    flat-axis segment table), so each bucket launches once per megabatch.
    Returns the (n_sites, 10) ``type_likely`` matrix — identical to
    :func:`gsnp_likelihood_comp` output — which the host then slices per
    window for ``summarize_window``.
    """
    n_sites = offsets.size - 1
    out = np.zeros((n_sites, N_GENOTYPES), dtype=np.float64)
    lengths = np.diff(offsets)
    if words_sorted.size == 0 or n_sites == 0:
        return out
    words_dev = device.to_device(words_sorted, "base_word")
    classes = size_class_of(lengths, bounds)
    uppers = list(bounds) + [int(lengths.max(initial=1))]
    # One 256-thread block keeps its s_type_likely tile (256 sites x 16
    # padded genotype slots x 8 bytes = 32 KB) in shared memory for the
    # kernel's whole lifetime — within the 48 KB/block budget.
    shared_bytes = 256 * 16 * 8
    for ci in range(len(bounds) + 1):
        rows = np.nonzero((classes == ci) & (lengths > 0))[0]
        if rows.size == 0:
            continue
        width = int(uppers[ci])
        n = rows.size
        dep_dev = device.alloc(
            n * N_STRANDS * MAX_READ_LEN, np.int32, "dep_count"
        )
        acc = np.empty((n, N_GENOTYPES), dtype=np.float64)
        device.launch(
            _fused_comp_kernel,
            n,
            words_dev,
            offsets[:-1][rows],
            lengths[rows],
            width,
            tables,
            dep_dev,
            variant,
            acc,
            name=f"likelihood_posterior_fused_{variant.name}",
            shared_bytes=shared_bytes,
        )
        out[rows] = acc
        device.free(dep_dev)
    device.free(words_dev)
    return out


def fused_posterior_tail(
    device: Device, counter_name: str, n_sites: int, n_obs: int
) -> None:
    """Account one window's posterior epilogue inside the fused kernel.

    Mirrors :func:`repro.core.posterior.gsnp_posterior`'s analytic charge
    minus what the fusion eliminates: no extra launch, and the 10
    likelihoods per site arrive through shared memory instead of a global
    ``type_likely`` reload — only ref/prior bytes still come from global.
    """
    c = device.counters.get(counter_name)
    spec = device.spec
    # type_likely reads come from the shared tile (one read per genotype
    # per site, full warps).
    c.s_load_warp += N_GENOTYPES * (-(-n_sites // spec.warp_size))
    in_bytes = n_sites * 16  # ref codes + priors only
    c.g_load += -(-in_bytes // spec.segment_bytes)
    c.g_load_bytes += in_bytes
    # Per observation: allele statistics accumulation (scattered), same
    # as the unfused posterior kernel.
    c.g_load += n_obs
    c.g_store += n_obs
    c.g_load_bytes += n_obs * 4
    c.g_store_bytes += n_obs * 4
    out_bytes = n_sites * RESULT_ROW_BYTES
    c.g_store += -(-out_bytes // spec.segment_bytes)
    c.g_store_bytes += out_bytes
    c.inst_warp += n_sites * 60 + n_obs * 4


def gsnp_recycle_fused(
    device: Device, n_words: int, n_sites: int, n_windows: int
) -> None:
    """Account one megabatch's buffer re-initialization (single launch)."""
    c = device.counters.get("recycle")
    c.launches += 1
    nbytes = (
        n_words * 4  # base_word storage
        + (n_sites + n_windows) * 8  # per-window segment offsets
        + n_sites * 16 * 8  # type_likely
    )
    segments = -(-nbytes // device.spec.segment_bytes)
    c.g_store += segments
    c.g_store_bytes += nbytes
    c.inst_warp += -(-nbytes // (4 * device.spec.warp_size))


__all__ = [
    "fused_posterior_tail",
    "gsnp_likelihood_posterior_fused",
    "gsnp_recycle_fused",
    "merge_observations",
]
