"""Deterministic fault injection: the registry, the plan and the clock.

Production genomics runs last hours over billions of sites; the only way
to trust the retry/degradation machinery that keeps such a run alive is to
exercise it on purpose.  This module is the chaos-engineering substrate:

* :data:`SITES` — the closed registry of named injection points.  Code
  under test calls :func:`fault_point` at each site; ``gsnp-lint``'s
  GSNP106 rule enforces that no fault ever enters the system any other
  way (no ad-hoc ``if FAULT:`` flags).
* :class:`FaultSpec` — one scheduled fault: *where* (site + key), *when*
  (which hit ordinals fire) and *what* (crash, error, slow, alloc,
  truncate).
* :class:`FaultPlan` — an immutable, picklable schedule of specs plus a
  :class:`FaultClock` of per-spec hit counters.  Plans are seeded and
  deterministic: :meth:`FaultPlan.generate` builds the same schedule for
  the same seed, and firing decisions depend only on hit ordinals — never
  on wall clock or randomness at fire time.

With no plan installed, :func:`fault_point` is a dictionary lookup and an
``is None`` test — cheap enough to leave in hot paths permanently.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import AllocationError, InjectedFault

#: The closed registry of injection sites.  ``fault_point`` rejects names
#: outside this table and GSNP106 flags call sites that bypass it.
SITES: dict[str, str] = {
    "exec.worker.crash": "worker process dies mid-shard (pool rebuild path)",
    "exec.shard.error": "shard body raises a PipelineError (retry path)",
    "exec.shard.slow": "shard body stalls (deadline/timeout path)",
    "gpusim.device.alloc": "device allocation raises AllocationError "
    "(residency/fast-path degradation rung)",
    "gpusim.device.fail": "a pool device dies outright mid-run "
    "(device-failed rung: the lane retires and surviving lanes/CPU "
    "steal its remaining shards)",
    "formats.soap.record": "a SOAP input line arrives truncated "
    "(FormatError with coordinates; quarantine rung)",
}

#: Fault kinds a spec may schedule at a site.
KINDS = ("error", "crash", "slow", "alloc", "truncate")

#: Sites whose hit ordinal is the executor's retry attempt (the same shard
#: may land on different workers between attempts, so a worker-local
#: counter would re-fire after a crash).  All other sites count hits on
#: the plan's own clock.
_ATTEMPT_ORDERED = ("exec.",)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Fires at ``site`` for hits with ordinal in ``[after, after + times)``
    whose key matches ``key`` (``None`` = any key).  The ordinal is the
    executor retry attempt for ``exec.*`` sites and the per-spec hit count
    (from the :class:`FaultClock`) everywhere else.
    """

    site: str
    kind: str = "error"
    key: Optional[object] = None
    after: int = 0
    times: int = 1
    #: ``slow``: stall seconds.  ``truncate``: fraction of bytes kept.
    arg: Optional[float] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; registered sites: "
                + ", ".join(sorted(SITES))
            )
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid kinds: "
                + ", ".join(KINDS)
            )
        if self.times < 0 or self.after < 0:
            raise ValueError("after/times must be non-negative")

    def matches(self, key, ctx: dict) -> bool:
        if self.key is None:
            return True
        return self.key == key or self.key == ctx.get("shard")

    def fires_at(self, ordinal: int) -> bool:
        return self.after <= ordinal < self.after + self.times


class FaultClock:
    """Per-spec hit counters — the deterministic notion of "when"."""

    def __init__(self, n_specs: int) -> None:
        self.counts = [0] * n_specs

    def tick(self, spec_idx: int) -> int:
        """Count one hit for a spec; returns the hit's 0-based ordinal."""
        n = self.counts[spec_idx]
        self.counts[spec_idx] = n + 1
        return n


class FaultPlan:
    """A picklable, seeded schedule of :class:`FaultSpec` entries.

    The plan ships to worker processes inside the executor's worker state;
    each process installs its copy with :func:`install_plan`.  Ambient
    context (shard index, retry attempt) is pushed by the executor with
    :meth:`scope`, so deep sites — a device allocation five frames below
    the shard body — still fire against the right shard and attempt.
    """

    def __init__(self, specs=(), seed: Optional[int] = None) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.clock = FaultClock(len(self.specs))
        self.parent_pid = os.getpid()
        self._local = threading.local()
        #: Sites that fired, as (site, key, ordinal, kind) — audit trail.
        self.fired: list[tuple] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        n_shards: int,
        sites=("exec.worker.crash", "exec.shard.error", "gpusim.device.alloc"),
        max_faults: int = 3,
    ) -> "FaultPlan":
        """Seeded random schedule over ``sites`` targeting ``n_shards``.

        Same seed, same schedule — the CI seed matrix replays bit-for-bit.
        Every generated fault is transient (``times`` ≤ the executor's
        default retry budget), so a hardened pipeline must absorb all of
        them and still produce fault-free bytes.
        """
        rng = np.random.default_rng(seed)
        specs = []
        n = int(rng.integers(1, max_faults + 1))
        for _ in range(n):
            site = str(sites[int(rng.integers(0, len(sites)))])
            shard = int(rng.integers(0, max(1, n_shards)))
            kind = {
                "exec.worker.crash": "crash",
                "exec.shard.error": "error",
                "exec.shard.slow": "slow",
                "gpusim.device.alloc": "alloc",
                "formats.soap.record": "truncate",
            }[site]
            specs.append(
                FaultSpec(
                    site=site, kind=kind, key=shard,
                    times=int(rng.integers(1, 3)),
                    arg=0.05 if kind == "slow" else None,
                )
            )
        return cls(specs, seed=seed)

    def with_spec(self, spec: FaultSpec) -> "FaultPlan":
        return FaultPlan(self.specs + (spec,), seed=self.seed)

    # -- ambient context ---------------------------------------------------

    @property
    def ambient(self) -> dict:
        return getattr(self._local, "ctx", {})

    def scope(self, **ctx):
        """Context manager installing ambient context for deep sites."""
        return _Scope(self, ctx)

    def in_worker_process(self) -> bool:
        return os.getpid() != self.parent_pid

    # -- firing ------------------------------------------------------------

    def check(self, site: str, key, value, ctx: dict):
        """Run every matching spec for one hit; returns (possibly
        transformed) ``value``.  Faults raise; ``truncate`` transforms."""
        eff = {**self.ambient, **ctx}
        for idx, spec in enumerate(self.specs):
            if spec.site != site or not spec.matches(key, eff):
                continue
            if spec.kind == "alloc" and eff.get("degraded"):
                # The degraded rerun models a smaller device footprint:
                # allocation succeeds there, or the ladder could never
                # terminate.
                continue
            if site.startswith(_ATTEMPT_ORDERED) and "attempt" in eff:
                ordinal = int(eff["attempt"])
            else:
                ordinal = self.clock.tick(idx)
            if not spec.fires_at(ordinal):
                continue
            self.fired.append((site, key, ordinal, spec.kind))
            value = self._fire(spec, site, key, ordinal, value)
        return value

    def _fire(self, spec: FaultSpec, site: str, key, ordinal: int, value):
        where = f"{site}[key={key!r}, hit={ordinal}]"
        if spec.kind == "crash":
            if self.in_worker_process():
                # A real worker process dies outright, exactly like a
                # segfault/OOM-kill: the parent sees a broken pool.
                os._exit(113)
            raise InjectedFault(
                f"injected worker crash at {where}", site=site, key=key
            )
        if spec.kind == "alloc":
            raise AllocationError(f"injected allocation failure at {where}")
        if spec.kind == "slow":
            time.sleep(float(spec.arg or 0.05))
            return value
        if spec.kind == "truncate":
            if isinstance(value, (bytes, bytearray)):
                keep = float(spec.arg) if spec.arg is not None else 0.5
                return bytes(value[: max(0, int(len(value) * keep))])
            return value
        raise InjectedFault(
            f"injected shard failure at {where}", site=site, key=key
        )

    # -- pickling (thread-local can't cross process boundaries) ------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_local"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._local = threading.local()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(seed={self.seed}, specs={list(self.specs)!r})"


class _Scope:
    def __init__(self, plan: FaultPlan, ctx: dict) -> None:
        self.plan = plan
        self.ctx = ctx

    def __enter__(self):
        self._prev = self.plan.ambient
        self.plan._local.ctx = {**self._prev, **self.ctx}
        return self

    def __exit__(self, *exc):
        self.plan._local.ctx = self._prev
        return False


# -- the process-global active plan ---------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide (``None`` clears); returns the old."""
    global _ACTIVE
    prev, _ACTIVE = _ACTIVE, plan
    return prev


def active_plan() -> Optional[FaultPlan]:
    """The process-wide installed plan, or ``None``."""
    return _ACTIVE


class fault_plan:
    """``with fault_plan(plan): ...`` — install for a block, then restore."""

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan

    def __enter__(self) -> Optional[FaultPlan]:
        self._prev = install_plan(self.plan)
        return self.plan

    def __exit__(self, *exc):
        install_plan(self._prev)
        return False


def fault_point(site: str, key=None, value=None, **ctx):
    """The single gate every injected fault passes through.

    Call at a registered site with a stable ``key`` (shard index, line
    number...).  Returns ``value`` unchanged unless an active plan
    schedules a ``truncate`` here; scheduled faults raise or stall
    instead.  With no plan installed this is a no-op.
    """
    if site not in SITES:
        raise ValueError(f"unregistered fault site {site!r}")
    plan = _ACTIVE
    if plan is None:
        return value
    return plan.check(site, key, value, ctx)


def scope(**ctx):
    """Ambient-context scope on the active plan (no-op without one)."""
    plan = _ACTIVE
    if plan is None:
        return _NullScope()
    return plan.scope(**ctx)


class _NullScope:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


__all__ = [
    "FaultClock",
    "FaultPlan",
    "FaultSpec",
    "KINDS",
    "SITES",
    "active_plan",
    "fault_plan",
    "fault_point",
    "install_plan",
    "scope",
]
