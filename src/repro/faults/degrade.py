"""The graceful-degradation ladder: every downgrade announces itself.

The hardening rule this module enforces is *no silent fallbacks*: when the
system steps down a rung — broken pool to serial executor, device fault to
residency/fast-paths off, malformed record to quarantine — it must say so
in a form both humans (log line) and machines (typed warning with
structured fields) can consume.

Rungs, from least to most degraded:

========================  =================================================
rung                      trigger -> action
========================  =================================================
``pool-serial-fallback``  multiprocessing unavailable/broken -> run the
                          identical work in-process, serially
``shard-retry``           shard failure/timeout -> deterministic
                          exponential backoff, then re-dispatch
``device-degraded``       device ``AllocationError`` -> rebuild the worker
                          pipeline with residency, prefetch and simulator
                          fast paths disabled, re-run the shard in place
``device-failed``         a pool device dies mid-run (multi-device
                          scheduler) -> retire its lane; surviving
                          device/CPU lanes steal the remaining shards, and
                          if every lane dies the coordinator finishes the
                          leftovers on a fresh host-engine pipeline
``record-quarantine``     malformed input record -> append it (with
                          file/line/reason coordinates) to the quarantine
                          file and keep parsing
========================  =================================================

Every rung preserves result semantics except ``record-quarantine``, which
by construction drops data — which is why it is opt-in (``--quarantine``)
and why each quarantined record carries enough coordinates to be replayed.
"""

from __future__ import annotations

import logging
import warnings

logger = logging.getLogger("repro.faults")

#: Known ladder rungs (documentation + validation).
RUNGS = (
    "pool-serial-fallback",
    "shard-retry",
    "device-degraded",
    "device-failed",
    "record-quarantine",
)


class DegradationWarning(UserWarning):
    """A structured "the system stepped down a rung" notice.

    Attributes
    ----------
    rung:
        One of :data:`RUNGS`.
    action:
        What the system is doing instead of the fast path.
    reason:
        Why — including the triggering exception's repr when there is one.
    context:
        Extra machine-readable fields (shard index, file/line, ...).
    """

    def __init__(
        self, rung: str, action: str, reason: str, **context
    ) -> None:
        self.rung = rung
        self.action = action
        self.reason = reason
        self.context = dict(context)
        ctx = "".join(f" {k}={v!r}" for k, v in sorted(self.context.items()))
        super().__init__(f"[{rung}] {action} — {reason}{ctx}")


def degrade(rung: str, action: str, reason: str, **context) -> None:
    """Emit one downgrade notice as a warning *and* a log record."""
    if rung not in RUNGS:
        raise ValueError(
            f"unknown degradation rung {rung!r}; valid rungs: "
            + ", ".join(RUNGS)
        )
    w = DegradationWarning(rung, action, reason, **context)
    warnings.warn(w, stacklevel=2)
    logger.warning(str(w))


__all__ = ["DegradationWarning", "RUNGS", "degrade", "logger"]
