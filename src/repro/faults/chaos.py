"""``gsnp-chaos``: run the pipeline under a fault schedule, assert parity.

The tentpole's own acceptance harness.  One invocation:

1. simulates a dataset and writes its (fasta, soap, prior) input files;
2. runs the sharded executor fault-free — the reference bytes;
3. re-runs under a :class:`~repro.faults.plan.FaultPlan` combining a
   worker-process crash, a truncated input record, and a device
   allocation failure (plus a seeded random schedule), letting the
   retry/degradation machinery absorb every fault — then asserts the CNS
   output is **bitwise identical** to the fault-free run;
4. aborts a journaled run mid-stream (a shard whose injected failures
   exhaust the retry budget), re-invokes with ``resume=True``, and
   asserts the resumed merge reproduces the same bytes;
5. exercises the quarantine rung on a deliberately corrupted copy of the
   input file.

Exit status 0 means every parity check passed for every seed — the CI
``chaos-smoke`` job runs a fixed seed matrix of these.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

from ..errors import FormatError, GsnpError, ShardError
from .degrade import DegradationWarning
from .journal import ShardJournal, run_fingerprint  # noqa: F401 (re-export)
from .plan import FaultPlan, FaultSpec, fault_plan

#: Dataset/shard geometry of the harness: small enough for CI, large
#: enough for 4 workers with multiple shards each.
N_SITES = 6_000
WINDOW = 1_000
SHARD_SIZE = 1_000
DEPTH = 8.0


def _write_inputs(tmp: Path, seed: int):
    from ..align.records import AlignmentBatch
    from ..formats.fasta import write_fasta
    from ..formats.prior import write_prior
    from ..formats.soap import write_soap
    from ..seqsim.datasets import DatasetSpec, generate_dataset

    ds = generate_dataset(
        DatasetSpec(
            name="chrChaos",
            n_sites=N_SITES,
            depth=DEPTH,
            coverage=0.9,
            seed=seed,
        )
    )
    fasta = tmp / "chaos.fa"
    soap = tmp / "chaos.soap"
    prior = tmp / "chaos.prior"
    write_fasta(fasta, [ds.reference])
    write_soap(soap, AlignmentBatch.from_read_set(ds.reads))
    write_prior(prior, ds.reference.name, ds.prior)
    return fasta, soap, prior


def _load_dataset(fasta, soap, prior, max_attempts: int = 3):
    """Parse the input files, retrying transient read corruption.

    The ``formats.soap.record`` truncation fault models an I/O-level
    corruption: the file's bytes are fine, the delivered record is not.
    Re-reading is the correct response, and the fault clock guarantees
    the retry sees clean data.
    """
    from ..core.detector import dataset_from_files

    last: Exception | None = None
    for _ in range(max_attempts):
        try:
            return dataset_from_files(fasta, soap, prior)
        except FormatError as exc:
            last = exc
    raise GsnpError(
        f"input unreadable after {max_attempts} attempts"
    ) from last


def _execute(
    dataset, engine, *, workers, output, faults=None, journal_dir=None,
    resume=False, shard_timeout=None, **exec_kwargs,
):
    from ..api import JobSpec
    from ..exec import execute

    spec = JobSpec(
        engine=engine,
        window=WINDOW,
        workers=workers,
        shard_size=SHARD_SIZE,
        faults=faults,
        journal=journal_dir,
        resume=resume,
        shard_timeout=shard_timeout,
    )
    return execute(dataset, spec=spec, output_path=output, **exec_kwargs)


def _demo_plan(seed: int, n_shards: int, *, timeout_demo: bool) -> FaultPlan:
    """The acceptance schedule: crash + truncated record + allocation
    failure (all transient), plus a seeded random tail."""
    specs = [
        FaultSpec(site="exec.worker.crash", kind="crash", key=1, times=1),
        FaultSpec(site="gpusim.device.alloc", kind="alloc", key=2, times=1),
        FaultSpec(
            # Line numbers are 1-based; truncating line 3's bytes makes
            # the parse fail with coordinates, once.
            site="formats.soap.record", kind="truncate", key=3, times=1,
            arg=0.4,
        ),
        FaultSpec(site="exec.shard.error", key=0, times=1),
    ]
    if timeout_demo:
        specs.append(
            FaultSpec(
                site="exec.shard.slow", kind="slow", key=3, times=1, arg=8.0
            )
        )
    tail = FaultPlan.generate(
        seed, n_shards,
        sites=("exec.shard.error", "gpusim.device.alloc"),
    )
    return FaultPlan(tuple(specs) + tail.specs, seed=seed)


def run_chaos(
    seed: int = 0,
    *,
    engine: str = "gsnp",
    workers: int = 4,
    timeout_demo: bool = False,
    keep_dir: str | None = None,
) -> dict:
    """One full chaos cycle; returns a structured report dict."""
    report: dict = {"seed": seed, "engine": engine, "workers": workers}
    ctx = (
        tempfile.TemporaryDirectory(prefix="gsnp-chaos-")
        if keep_dir is None
        else None
    )
    tmp = Path(ctx.name) if ctx is not None else Path(keep_dir)
    tmp.mkdir(parents=True, exist_ok=True)
    try:
        fasta, soap, prior = _write_inputs(tmp, seed)
        n_shards = -(-N_SITES // SHARD_SIZE)

        # -- reference: fault-free run --------------------------------
        baseline_out = tmp / "baseline.out"
        dataset = _load_dataset(fasta, soap, prior)
        base = _execute(dataset, engine, workers=workers, output=baseline_out)
        base_bytes = baseline_out.read_bytes()
        report["n_shards"] = n_shards

        # -- chaos run: crash + truncation + alloc failure ------------
        plan = _demo_plan(seed, n_shards, timeout_demo=timeout_demo)
        chaos_out = tmp / "chaos.out"
        degradations: list[str] = []
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DegradationWarning)
            with fault_plan(plan):
                chaos_ds = _load_dataset(fasta, soap, prior)
            chaos = _execute(
                chaos_ds, engine, workers=workers, output=chaos_out,
                faults=plan,
                shard_timeout=4.0 if timeout_demo else None,
            )
            degradations = [
                str(w.message)
                for w in caught
                if isinstance(w.message, DegradationWarning)
            ]
        chaos_bytes = chaos_out.read_bytes()
        report["chaos"] = {
            "bitwise_identical": chaos_bytes == base_bytes,
            "table_identical": bool(chaos.table.equals(base.table)),
            "retries": chaos.extras["exec"]["retries"],
            "degradations": degradations,
            "specs": [s.site for s in plan.specs],
        }

        # -- kill mid-stream, then --resume ---------------------------
        journal_dir = tmp / "journal"
        poison = FaultPlan(
            (
                FaultSpec(
                    site="exec.shard.error", key=n_shards - 1, times=99
                ),
            ),
            seed=seed,
        )
        resume_out = tmp / "resume.out"
        try:
            _execute(
                dataset, engine, workers=workers, output=resume_out,
                faults=poison, journal_dir=str(journal_dir), max_retries=1,
            )
            died = False
        except ShardError:
            died = True
        journal = next(journal_dir.iterdir())
        committed_before = len(list(journal.glob("shard-*.pkl")))
        resumed = _execute(
            dataset, engine, workers=workers, output=resume_out,
            journal_dir=str(journal_dir), resume=True,
        )
        resume_bytes = resume_out.read_bytes()
        report["resume"] = {
            "run_died_mid_stream": died,
            "no_partial_output": died and not (
                resume_out.exists() and committed_before == 0
            ),
            "committed_before_resume": committed_before,
            "resumed_shards": resumed.extras["exec"]["resumed"],
            "bitwise_identical": resume_bytes == base_bytes,
        }

        # -- quarantine rung on a genuinely corrupt file --------------
        from ..formats.soap import read_soap

        bad_soap = tmp / "corrupt.soap"
        lines = soap.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2][: len(lines[2]) // 3].rstrip(b"\n") + b"\n"
        bad_soap.write_bytes(b"".join(lines))
        qpath = tmp / "quarantine.txt"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradationWarning)
            batch = read_soap(bad_soap, quarantine=qpath)
        qtext = qpath.read_text()
        report["quarantine"] = {
            "records_kept": batch.n_reads,
            "records_dropped": len(lines) - batch.n_reads,
            "has_coordinates": f"{bad_soap}:3:" in qtext,
        }

        report["ok"] = bool(
            report["chaos"]["bitwise_identical"]
            and report["chaos"]["table_identical"]
            and report["resume"]["run_died_mid_stream"]
            and report["resume"]["committed_before_resume"] > 0
            and report["resume"]["bitwise_identical"]
            and report["quarantine"]["records_dropped"] == 1
            and report["quarantine"]["has_coordinates"]
        )
        return report
    finally:
        if ctx is not None:
            ctx.cleanup()


def format_report(report: dict) -> str:
    """Human-readable multi-line summary of a :func:`run_chaos` report."""
    c, r, q = report["chaos"], report["resume"], report["quarantine"]
    lines = [
        f"seed={report['seed']} engine={report['engine']} "
        f"workers={report['workers']} shards={report['n_shards']}",
        f"  chaos : faults={len(c['specs'])} retries={c['retries']} "
        f"degradations={len(c['degradations'])} "
        f"parity={'OK' if c['bitwise_identical'] else 'FAILED'}",
        f"  resume: committed={r['committed_before_resume']} "
        f"resumed={r['resumed_shards']} "
        f"parity={'OK' if r['bitwise_identical'] else 'FAILED'}",
        f"  quarantine: kept={q['records_kept']} "
        f"dropped={q['records_dropped']} "
        f"coords={'OK' if q['has_coordinates'] else 'MISSING'}",
        f"  => {'OK' if report['ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)


__all__ = ["format_report", "run_chaos"]
