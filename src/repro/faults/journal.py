"""Crash-safe checkpointing: the shard journal and atomic file writes.

A whole-genome run is hours of wall clock; process death must cost at most
one shard, not the run.  :class:`ShardJournal` checkpoints every completed
:class:`~repro.exec.shard.ShardResult` into a directory of one-file-per-
shard entries, each written atomically (tmp + ``os.replace``) so a kill at
any instant leaves either a complete entry or none — never a torn one.

Entries are **content-addressed to the run**: the journal directory is
keyed by :func:`run_fingerprint`, a hash of everything that determines the
bytes a shard produces (engine, variant, window size, shard plan, and the
calibration tables themselves).  ``--resume`` therefore refuses to splice
a shard from a different input, engine or calibration into the merge —
a stale journal is simply a miss, and the shard re-executes.

:func:`atomic_output` gives final result files the same guarantee: the
pipeline writes ``<path>.part`` and the name only flips to ``<path>`` once
every byte is flushed, so a partial/corrupt CNS file can never be mistaken
for a finished one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

import numpy as np

from ..errors import GsnpError

#: Journal format version; bumping invalidates old entries.
JOURNAL_VERSION = 1


def run_fingerprint(
    engine: str,
    window_size: int,
    variant_name: str,
    n_sites: int,
    shard_bounds,
    calibration,
    n_samples: int = 1,
) -> str:
    """Hash of everything that determines a shard's output bytes.

    ``n_samples`` separates cohort journals from solo ones: a cohort
    shard result carries S payloads, so a resume must never splice a
    solo run's committed shard (or a different cohort size's) into the
    merge.  The pooled calibration already differs by sample *content*;
    this covers the degenerate case of identical pooled bytes.
    """
    h = hashlib.sha256()
    h.update(f"v{JOURNAL_VERSION}|{engine}|{window_size}|".encode())
    h.update(f"{variant_name}|{n_sites}|".encode())
    if n_samples != 1:
        h.update(f"cohort{n_samples}|".encode())
    for start, end in shard_bounds:
        h.update(f"{start}:{end},".encode())
    for arr in (calibration.pm_flat, calibration.penalty):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    h.update(str(calibration.total_reads).encode())
    return h.hexdigest()[:16]


class JournalError(GsnpError):
    """Raised when a journal entry cannot be trusted or written."""


class ShardJournal:
    """One-file-per-shard checkpoint store under ``root/<fingerprint>/``.

    ``commit`` is atomic and idempotent; ``load`` returns the committed
    :class:`~repro.exec.shard.ShardResult` objects whose shard ranges
    match the current plan, silently skipping torn or foreign entries
    (a torn entry re-executes — it never corrupts the merge).
    """

    def __init__(self, root, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.dir = Path(root) / fingerprint
        self.dir.mkdir(parents=True, exist_ok=True)

    def _entry_path(self, shard_index: int) -> Path:
        return self.dir / f"shard-{shard_index:06d}.pkl"

    def commit(self, result) -> Path:
        """Atomically persist one completed shard result."""
        path = self._entry_path(result.shard.index)
        blob = pickle.dumps(
            {
                "version": JOURNAL_VERSION,
                "fingerprint": self.fingerprint,
                "start": result.shard.start,
                "end": result.shard.end,
                "result": result,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(blob).hexdigest().encode()
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as f:
                f.write(digest + b"\n" + blob)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise JournalError(
                f"cannot commit shard {result.shard.index} to {path}: {exc}"
            ) from exc
        return path

    def _load_entry(self, path: Path) -> Optional[dict]:
        try:
            raw = path.read_bytes()
            digest, _, blob = raw.partition(b"\n")
            if hashlib.sha256(blob).hexdigest().encode() != digest:
                return None  # torn/corrupt entry: treat as a miss
            entry = pickle.loads(blob)
        except (OSError, pickle.PickleError, EOFError, ValueError):
            return None
        if (
            entry.get("version") != JOURNAL_VERSION
            or entry.get("fingerprint") != self.fingerprint
        ):
            return None
        return entry

    def load(self, shards) -> dict[int, object]:
        """Committed results for ``shards`` (index -> ShardResult).

        Only entries whose (start, end) matches the current plan count;
        anything else is ignored and the shard re-executes.
        """
        out: dict[int, object] = {}
        for shard in shards:
            entry = self._load_entry(self._entry_path(shard.index))
            if entry is None:
                continue
            if entry["start"] != shard.start or entry["end"] != shard.end:
                continue
            out[shard.index] = entry["result"]
        return out

    def committed_indices(self) -> list[int]:
        out = []
        for p in sorted(self.dir.glob("shard-*.pkl")):
            try:
                out.append(int(p.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return out


def atomic_write_json(path, payload: dict) -> None:
    """Atomically serialize ``payload`` as JSON at ``path``."""
    blob = json.dumps(payload, sort_keys=True).encode() + b"\n"
    with atomic_output(path) as f:
        f.write(blob)


class JobLedger:
    """Durable record of accepted service jobs: the daemon's recovery log.

    ``gsnp-serve`` records every admitted job *before* scheduling it and
    marks it done only *after* the output bytes are atomically in place.
    A daemon killed at any instant therefore restarts to a ledger whose
    pending records are exactly the jobs whose output cannot be trusted —
    it re-enqueues them (with ``resume=True`` so their shard journals are
    honoured) and produces bitwise-identical output.

    One JSON file per job under ``root/`` (``<job_id>.json``), each
    written atomically; marking done rewrites the record with
    ``state="done"``.  Records are tiny (a JobSpec wire payload plus
    bookkeeping), so a scan of the directory on startup is cheap.
    """

    def __init__(self, root) -> None:
        self.dir = Path(root)
        self.dir.mkdir(parents=True, exist_ok=True)

    def _path(self, job_id: str) -> Path:
        return self.dir / f"{job_id}.json"

    def record(self, job_id: str, payload: dict) -> None:
        """Durably record an admitted job (state ``pending``)."""
        atomic_write_json(
            self._path(job_id),
            {"job_id": job_id, "state": "pending", **payload},
        )

    def _mark(self, job_id: str, state: str) -> None:
        entry = self.get(job_id)
        if entry is None:
            entry = {"job_id": job_id}
        entry["state"] = state
        atomic_write_json(self._path(job_id), entry)

    def mark_done(self, job_id: str) -> None:
        """Flip a job's record to ``done`` (idempotent)."""
        self._mark(job_id, "done")

    def mark_failed(self, job_id: str) -> None:
        """Flip a job's record to ``failed`` — it will NOT be recovered
        (a deterministic failure would otherwise re-run on every
        restart)."""
        self._mark(job_id, "failed")

    def forget(self, job_id: str) -> None:
        """Drop a job's record entirely (rejected/cancelled jobs)."""
        self._path(job_id).unlink(missing_ok=True)

    def get(self, job_id: str) -> Optional[dict]:
        """One job's record, or ``None`` (torn/corrupt reads as ``None``)."""
        try:
            return json.loads(self._path(job_id).read_text())
        except (OSError, ValueError):
            return None

    def pending(self) -> list[dict]:
        """Every recorded job not yet marked done, oldest first."""
        out = []
        for p in sorted(self.dir.glob("*.json")):
            try:
                entry = json.loads(p.read_text())
            except (OSError, ValueError):
                continue  # torn record: the job never finished admission
            if entry.get("state") == "pending":
                out.append(entry)
        return out


@contextmanager
def atomic_output(path):
    """Open ``<path>.<pid>-<tid>.part`` for binary write; rename to
    ``path`` only on clean exit.  On error the partial file is removed —
    a final output file either exists complete or not at all.  The temp
    name is process- and thread-unique so concurrent writers of the same
    target (serve worker threads racing on a shared cache entry) cannot
    clobber each other's partial file; last rename wins."""
    path = Path(path)
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}-{threading.get_ident()}.part"
    )
    f = open(tmp, "wb")
    try:
        yield f
    except BaseException:
        f.close()
        tmp.unlink(missing_ok=True)
        raise
    else:
        f.flush()
        os.fsync(f.fileno())
        f.close()
        os.replace(tmp, path)


__all__ = [
    "JOURNAL_VERSION",
    "JobLedger",
    "JournalError",
    "ShardJournal",
    "atomic_output",
    "atomic_write_json",
    "run_fingerprint",
]
