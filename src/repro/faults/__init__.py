"""Chaos engineering layer: deterministic fault injection, crash-safe
checkpoint/resume, and the graceful-degradation ladder.

Three submodules, importable without pulling in the pipeline:

* :mod:`repro.faults.plan` — the fault-site registry, :class:`FaultSpec`
  schedules and the seeded, picklable :class:`FaultPlan`;
* :mod:`repro.faults.degrade` — :class:`DegradationWarning` and the
  :func:`degrade` reporter for the four ladder rungs;
* :mod:`repro.faults.journal` — atomic output files, the content-hashed
  shard journal backing ``--resume``, and run fingerprints.

The ``gsnp-chaos`` harness lives in :mod:`repro.faults.chaos`; it is
imported lazily (by the CLI) because it drives the full executor stack.
"""

from .degrade import RUNGS, DegradationWarning, degrade
from .journal import JournalError, ShardJournal, atomic_output, run_fingerprint
from .plan import (
    KINDS,
    SITES,
    FaultClock,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_plan,
    fault_point,
    install_plan,
    scope,
)

__all__ = [
    "DegradationWarning",
    "FaultClock",
    "FaultPlan",
    "FaultSpec",
    "JournalError",
    "KINDS",
    "RUNGS",
    "SITES",
    "ShardJournal",
    "active_plan",
    "atomic_output",
    "degrade",
    "fault_plan",
    "fault_point",
    "install_plan",
    "run_fingerprint",
    "scope",
]
