"""Reassemble per-shard results into one coherent serial-equivalent run.

Shards complete in arbitrary order; this module restores genomic order,
verifies the shards tile the site range with no gaps, concatenates the
result tables and compressed blobs, and folds the per-shard event profiles
plus the one shared calibration record into a single
:class:`~repro.bench.events.RunProfile` — so the bench harness and the
cost models see exactly the counters a serial run would have produced
(invariant 1: bitwise consistency; invariant 6: window invariance).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bench.events import RunProfile
from ..core.pipeline import GsnpResult
from ..errors import PipelineError
from ..faults.journal import atomic_output
from ..formats.cns import format_rows
from ..soapsnp.pipeline import SoapsnpResult
from .shard import ShardResult


def _ordered(results: list[ShardResult]) -> list[ShardResult]:
    results = sorted(results, key=lambda r: r.shard.index)
    for prev, cur in zip(results, results[1:]):
        if cur.shard.start != prev.shard.end:
            raise PipelineError(
                f"shard results do not tile the site range: "
                f"{prev.shard} then {cur.shard}"
            )
    return results


def merge_profiles(
    results: list[ShardResult], calibration_record=None
) -> RunProfile:
    """Sum per-shard phase events; charge calibration exactly once."""
    profile = RunProfile(pipeline=results[0].profile.pipeline)
    if calibration_record is not None:
        rec = profile.phase("cal_p_matrix")
        rec.merge(calibration_record)
        rec.fixed_seconds = calibration_record.fixed_seconds
    for sr in results:
        profile.merge(sr.profile)
    return profile


def _merge_cohort(
    results: list[ShardResult], calibration, profile, extras, output_path
):
    """Reassemble a cohort run: per-sample genomic-order concatenation.

    Each shard carries one table/blob per sample; sample ``i``'s merged
    output is exactly what sample ``i``'s solo sharded run (with the
    pooled calibration) would have produced.  Sample 0 writes to
    ``output_path``; sample ``i`` to ``<output_path>.s<i>``.
    """
    from ..core.cohort import CohortResult, cohort_output_path

    n_samples = len(results[0].sample_tables)
    if any(len(sr.sample_tables or ()) != n_samples for sr in results):
        raise PipelineError("shard results disagree on cohort size")
    samples = []
    for si in range(n_samples):
        table = results[0].sample_tables[si]
        for sr in results[1:]:
            table = table.concat(sr.sample_tables[si])
        compressed = b"".join(sr.sample_compressed[si] for sr in results)
        if output_path is not None:
            with atomic_output(cohort_output_path(output_path, si)) as f:
                f.write(compressed)
        samples.append(
            GsnpResult(
                table=table,
                profile=RunProfile(pipeline=results[0].profile.pipeline),
                compressed_output=compressed,
                output_bytes=len(compressed),
                temp_input_bytes=calibration.temp_len,
                sort_stats=(
                    [s for sr in results for s in sr.sort_stats]
                    if si == 0
                    else []
                ),
            )
        )
    extras["cohort"] = {"samples": n_samples}
    extras["device"] = None
    extras["peak_gpu_bytes"] = max(
        (sr.peak_gpu_bytes for sr in results), default=0
    )
    return CohortResult(samples=samples, profile=profile, extras=extras)


def merge_shard_results(
    results: list[ShardResult],
    calibration,
    output_path=None,
    exec_meta: Optional[dict] = None,
):
    """Merge shard results into the engine's own result type.

    Returns a :class:`~repro.core.pipeline.GsnpResult` or
    :class:`~repro.soapsnp.pipeline.SoapsnpResult`, indistinguishable from
    a serial run's except for wall-clock timings and the exec metadata in
    ``extras``.  When ``output_path`` is given, writes the same bytes the
    serial pipeline would have written (compressed blobs for the GSNP
    engines, ``.cns`` text for SOAPsnp).
    """
    if not results:
        raise PipelineError("no shard results to merge")
    results = _ordered(results)

    table = results[0].table
    for sr in results[1:]:
        table = table.concat(sr.table)
    profile = merge_profiles(results, calibration.record)

    extras = {
        "input_bytes": calibration.input_bytes,
        "shards": [sr.metrics() for sr in results],
    }
    if exec_meta:
        extras["exec"] = dict(exec_meta)

    family = results[0].profile.pipeline
    if results[0].sample_tables is not None:
        return _merge_cohort(
            results, calibration, profile, extras, output_path
        )
    if family in ("gsnp", "gsnp_cpu"):
        compressed = b"".join(sr.compressed for sr in results)
        if output_path is not None:
            with atomic_output(output_path) as f:
                f.write(compressed)
        extras["device"] = None
        extras["peak_gpu_bytes"] = max(
            (sr.peak_gpu_bytes for sr in results), default=0
        )
        return GsnpResult(
            table=table,
            profile=profile,
            compressed_output=compressed,
            output_bytes=len(compressed),
            temp_input_bytes=calibration.temp_len,
            sort_stats=[s for sr in results for s in sr.sort_stats],
            extras=extras,
        )

    if output_path is not None:
        with atomic_output(output_path) as f:
            for sr in results:
                f.write(format_rows(sr.table))
    nnz_parts = [sr.nnz for sr in results if sr.nnz is not None]
    return SoapsnpResult(
        table=table,
        profile=profile,
        nnz=np.concatenate(nnz_parts) if nnz_parts else None,
        output_bytes=sum(sr.output_bytes for sr in results),
        p_matrix=calibration.p_matrix,
        extras=extras,
    )
