"""Shard planning: split a calling job into window-aligned site ranges.

A shard is a contiguous run of whole windows.  Because windows are
independent (invariant 6: results are window-size invariant) and shard
boundaries coincide with window boundaries, executing shards in any order
on any number of workers and reassembling in genomic order reproduces the
serial run bit for bit — calls *and* compressed bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..bench.events import RunProfile
from ..errors import PipelineError
from ..formats.cns import ResultTable


@dataclass(frozen=True)
class Shard:
    """One contiguous range of whole windows, ``[start, end)`` in sites."""

    index: int
    start: int
    end: int

    @property
    def n_sites(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        return f"shard {self.index} [{self.start}, {self.end})"


def align_shard_size(shard_size: int, window_size: int) -> int:
    """Snap a shard size up to the next multiple of the window size.

    Determinism requires shard boundaries to be window boundaries;
    otherwise shard-local windows would differ from the serial run's and
    the per-window compressed blobs would diverge.
    """
    if shard_size <= 0:
        raise PipelineError("shard size must be positive")
    return -(-shard_size // window_size) * window_size


def plan_shards(
    n_sites: int,
    window_size: int,
    shard_size: Optional[int] = None,
    workers: int = 1,
) -> list[Shard]:
    """Tile ``[0, n_sites)`` with window-aligned shards.

    Without an explicit ``shard_size``, aim for ~4 shards per worker (load
    balancing headroom for uneven read depth) of at least one window each.
    """
    if n_sites <= 0:
        raise PipelineError("cannot shard an empty site range")
    n_windows = -(-n_sites // window_size)
    if shard_size is None:
        per_shard = max(1, -(-n_windows // max(1, workers * 4)))
        shard_size = per_shard * window_size
    else:
        shard_size = align_shard_size(shard_size, window_size)
    shards = []
    for i, start in enumerate(range(0, n_sites, shard_size)):
        shards.append(
            Shard(index=i, start=start, end=min(start + shard_size, n_sites))
        )
    return shards


@dataclass
class ShardResult:
    """What one executed shard sends back to the parent."""

    shard: Shard
    table: ResultTable
    profile: RunProfile
    #: GSNP engines: the shard's windows' compressed blobs, in order.
    compressed: bytes = b""
    #: Output bytes the shard would write (text for soapsnp, blob for gsnp).
    output_bytes: int = 0
    sort_stats: list = field(default_factory=list)
    nnz: Optional[np.ndarray] = None
    peak_gpu_bytes: int = 0
    #: Worker-side wall seconds for this shard (timing/throughput metric).
    wall: float = 0.0
    #: 1 + number of retries it took to produce this result.
    attempts: int = 1
    pid: int = 0
    #: Cohort runs: per-sample result tables for this shard's range
    #: (cohort order; ``table``/``compressed`` then mirror sample 0).
    sample_tables: Optional[list] = None
    #: Cohort runs: per-sample compressed blobs, aligned with
    #: ``sample_tables``.
    sample_compressed: Optional[list] = None

    @property
    def sites_per_second(self) -> float:
        return self.shard.n_sites / self.wall if self.wall > 0 else 0.0

    def metrics(self) -> dict:
        """Per-shard timing/throughput row for ``extras['shards']``."""
        return {
            "index": self.shard.index,
            "start": self.shard.start,
            "end": self.shard.end,
            "sites": self.shard.n_sites,
            "wall": self.wall,
            "sites_per_second": self.sites_per_second,
            "attempts": self.attempts,
            "pid": self.pid,
        }
