"""Worker pools: multiprocessing and an in-process serial fallback.

Both pools expose the same three-call interface — ``submit`` returning a
handle, ``wait_any`` blocking until at least one handle finishes, and the
handle's ``outcome()`` reporting ``("ok", value)`` or ``("err", exc)`` —
so the executor's bounded-queue/retry loop is written once.  A worker
process that dies outright (not just raises) surfaces as
:class:`PoolBroken`; the executor restarts the pool and re-dispatches.
"""

from __future__ import annotations

import concurrent.futures as cf
import multiprocessing
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Optional


class PoolBroken(RuntimeError):
    """A worker process terminated abruptly; the pool must be rebuilt."""


class _SerialHandle:
    """Handle of an eagerly-executed in-process task."""

    def __init__(self, fn: Callable[[Any], Any], arg: Any) -> None:
        try:
            self._outcome = ("ok", fn(arg))
        except Exception as exc:  # noqa: BLE001 — forwarded to retry logic
            self._outcome = ("err", exc)

    def outcome(self) -> tuple[str, Any]:
        return self._outcome


class SerialPool:
    """In-process executor sharing :class:`ProcessPool`'s interface.

    The fallback when ``workers <= 1`` or when the platform cannot fork:
    the same worker function, initializer, bounded queue and retry logic
    run in the parent process, one task at a time.
    """

    kind = "serial"

    def __init__(
        self,
        workers: int = 1,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ) -> None:
        self.workers = 1
        if initializer is not None:
            initializer(*initargs)

    def submit(self, fn: Callable[[Any], Any], arg: Any) -> _SerialHandle:
        return _SerialHandle(fn, arg)

    def wait_any(self, handles: Iterable[_SerialHandle]) -> list[_SerialHandle]:
        return list(handles)  # eager execution: everything is already done

    def shutdown(self) -> None:
        pass


class _ProcessHandle:
    def __init__(self, future: cf.Future) -> None:
        self.future = future

    def outcome(self) -> tuple[str, Any]:
        try:
            return ("ok", self.future.result())
        except BrokenProcessPool as exc:
            raise PoolBroken(str(exc)) from exc
        except Exception as exc:  # noqa: BLE001 — forwarded to retry logic
            return ("err", exc)


class ProcessPool:
    """Multiprocessing pool over ``concurrent.futures``."""

    kind = "process"

    def __init__(
        self,
        workers: int,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ) -> None:
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Optional[cf.ProcessPoolExecutor] = None
        self._start()

    def _start(self) -> None:
        self._executor = cf.ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(),
            initializer=self._initializer,
            initargs=self._initargs,
        )

    def submit(self, fn: Callable[[Any], Any], arg: Any) -> _ProcessHandle:
        return _ProcessHandle(self._executor.submit(fn, arg))

    def wait_any(self, handles: Iterable[_ProcessHandle]) -> list[_ProcessHandle]:
        handles = list(handles)
        done, _ = cf.wait(
            [h.future for h in handles], return_when=cf.FIRST_COMPLETED
        )
        return [h for h in handles if h.future in done]

    def restart(self) -> None:
        """Rebuild the pool after a worker crash (in-flight work is lost)."""
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._start()

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


def make_pool(
    workers: int,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    force_serial: bool = False,
):
    """Build the right pool: multiprocessing, or the serial fallback."""
    if force_serial or workers <= 1:
        return SerialPool(initializer=initializer, initargs=initargs)
    try:
        return ProcessPool(workers, initializer=initializer, initargs=initargs)
    except (OSError, ImportError, ValueError):
        # Platforms without working multiprocessing primitives fall back
        # to the serial executor; results are identical, just slower.
        return SerialPool(initializer=initializer, initargs=initargs)
