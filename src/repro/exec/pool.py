"""Worker pools: multiprocessing and an in-process serial fallback.

Both pools expose the same three-call interface — ``submit`` returning a
handle, ``wait_any`` blocking until at least one handle finishes (or an
optional timeout elapses), and the handle's ``outcome()`` reporting
``("ok", value)`` or ``("err", exc)`` — so the executor's bounded-queue /
retry loop is written once.  A worker process that dies outright (not
just raises) surfaces as :class:`PoolBroken`; the executor restarts the
pool and re-dispatches.  :meth:`ProcessPool.kill` force-terminates the
workers — the deadline enforcement path for shards that overrun their
``shard_timeout``.

Falling back from multiprocessing to the serial pool is the first rung of
the degradation ladder and is never silent: :func:`make_pool` emits a
structured :class:`~repro.faults.degrade.DegradationWarning` naming the
exception that broke multiprocessing and the fallback chosen.
"""

from __future__ import annotations

import concurrent.futures as cf
import multiprocessing
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Optional

from ..faults.degrade import degrade


class PoolBroken(RuntimeError):
    """A worker process terminated abruptly; the pool must be rebuilt."""


class _SerialHandle:
    """Handle of an eagerly-executed in-process task."""

    def __init__(self, fn: Callable[[Any], Any], arg: Any) -> None:
        try:
            self._outcome = ("ok", fn(arg))
        except Exception as exc:  # noqa: BLE001 — forwarded to retry logic
            self._outcome = ("err", exc)

    def outcome(self) -> tuple[str, Any]:
        return self._outcome


class SerialPool:
    """In-process executor sharing :class:`ProcessPool`'s interface.

    The fallback when ``workers <= 1`` or when the platform cannot fork:
    the same worker function, initializer, bounded queue and retry logic
    run in the parent process, one task at a time.  Tasks execute eagerly
    at ``submit``, so shard deadlines cannot preempt here — the executor
    skips deadline enforcement on serial pools.
    """

    kind = "serial"

    def __init__(
        self,
        workers: int = 1,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ) -> None:
        self.workers = 1
        if initializer is not None:
            initializer(*initargs)

    def submit(self, fn: Callable[[Any], Any], arg: Any) -> _SerialHandle:
        return _SerialHandle(fn, arg)

    def wait_any(
        self,
        handles: Iterable[_SerialHandle],
        timeout: Optional[float] = None,
    ) -> list[_SerialHandle]:
        return list(handles)  # eager execution: everything is already done

    def restart(self) -> None:
        pass

    def kill(self) -> None:
        pass

    def shutdown(self) -> None:
        pass


class _ProcessHandle:
    def __init__(self, future: cf.Future) -> None:
        self.future = future

    def outcome(self) -> tuple[str, Any]:
        try:
            return ("ok", self.future.result())
        except BrokenProcessPool as exc:
            raise PoolBroken(str(exc)) from exc
        except cf.CancelledError as exc:
            raise PoolBroken(f"task cancelled by pool restart: {exc}") from exc
        except Exception as exc:  # noqa: BLE001 — forwarded to retry logic
            return ("err", exc)


class ProcessPool:
    """Multiprocessing pool over ``concurrent.futures``."""

    kind = "process"

    def __init__(
        self,
        workers: int,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ) -> None:
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Optional[cf.ProcessPoolExecutor] = None
        self._start()

    def _start(self) -> None:
        self._executor = cf.ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(),
            initializer=self._initializer,
            initargs=self._initargs,
        )

    def submit(self, fn: Callable[[Any], Any], arg: Any) -> _ProcessHandle:
        return _ProcessHandle(self._executor.submit(fn, arg))

    def wait_any(
        self,
        handles: Iterable[_ProcessHandle],
        timeout: Optional[float] = None,
    ) -> list[_ProcessHandle]:
        """Handles done within ``timeout`` (possibly none on expiry)."""
        handles = list(handles)
        done, _ = cf.wait(
            [h.future for h in handles],
            timeout=timeout,
            return_when=cf.FIRST_COMPLETED,
        )
        return [h for h in handles if h.future in done]

    def restart(self) -> None:
        """Rebuild the pool after a worker crash (in-flight work is lost)."""
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._start()

    def kill(self) -> None:
        """Force-terminate every worker, then rebuild.

        The deadline path: a shard that overran its ``shard_timeout`` is
        running arbitrary code and cannot be cancelled cooperatively, so
        its process is terminated outright.  Every other in-flight handle
        surfaces :class:`PoolBroken` and is re-dispatched by the executor.
        """
        procs = list(getattr(self._executor, "_processes", {}).values())
        for p in procs:
            p.terminate()
        self._executor.shutdown(wait=False, cancel_futures=True)
        for p in procs:
            p.join(timeout=5.0)
        self._start()

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


def make_pool(
    workers: int,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    force_serial: bool = False,
):
    """Build the right pool: multiprocessing, or the serial fallback.

    The fallback fires only for the two ways a platform can lack working
    multiprocessing — ``OSError`` (no usable synchronization primitives /
    insufficient resources) and ``ImportError`` (no ``_multiprocessing``)
    — and announces itself with a structured warning naming the cause.
    Anything else (e.g. a ``ValueError`` from a bad ``workers`` count) is
    a programming error and propagates.
    """
    if force_serial or workers <= 1:
        return SerialPool(initializer=initializer, initargs=initargs)
    try:
        return ProcessPool(workers, initializer=initializer, initargs=initargs)
    except (OSError, ImportError) as exc:
        degrade(
            "pool-serial-fallback",
            action=f"running {workers}-worker job in-process, serially",
            reason=f"multiprocessing unavailable: {exc!r}",
            workers=workers,
        )
        return SerialPool(initializer=initializer, initargs=initargs)
