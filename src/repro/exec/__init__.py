"""Sharded parallel execution of SNP-calling pipelines.

Splits a calling job into window-aligned shards, dispatches them to a
worker pool (multiprocessing, or a serial fallback sharing the same
interface), and reassembles calls, compressed output and event counters
into a result bitwise identical to the serial run.  Entry point:
:func:`execute`.
"""

from .executor import ExecConfig, execute, release_resident, resident_stats
from .hetero import pool_stats, run_hetero
from .merge import merge_profiles, merge_shard_results
from .pool import PoolBroken, ProcessPool, SerialPool, make_pool
from .shard import Shard, ShardResult, align_shard_size, plan_shards

__all__ = [
    "ExecConfig",
    "PoolBroken",
    "ProcessPool",
    "SerialPool",
    "Shard",
    "ShardResult",
    "align_shard_size",
    "execute",
    "make_pool",
    "merge_profiles",
    "merge_shard_results",
    "plan_shards",
    "pool_stats",
    "release_resident",
    "resident_stats",
    "run_hetero",
]
