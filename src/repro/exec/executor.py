"""Sharded execution: dispatch window-aligned shards to a worker pool.

The execution model mirrors SNAP/SOAP3-dp-style genome sharding: the
parent runs the one-time ``cal_p_matrix`` pass, splits the site range into
window-aligned shards (:mod:`repro.exec.shard`), and dispatches them to a
pool (:mod:`repro.exec.pool`) — ``multiprocessing`` workers, or the serial
fallback with the identical interface.  Shard inputs either reference the
dataset shipped once per worker, or stream incrementally from a SOAP file
(:class:`~repro.formats.stream.ShardBatchReader`) through the bounded
submission queue, so at most ``workers * backlog`` shard batches are ever
resident.  Completed shards merge back in genomic order
(:mod:`repro.exec.merge`); a failing shard is retried up to
``max_retries`` times and then surfaced as
:class:`~repro.errors.ShardError` with its genomic range.

Determinism: shard boundaries are window boundaries and the merge is
order-restoring, so calls, event counters and compressed bytes are bitwise
identical to a serial run for all three engines, at any worker count.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

import numpy as np

from ..api import Engine, create_pipeline, resolve_engine
from ..constants import DEFAULT_WINDOW_GSNP
from ..core.likelihood import OPTIMIZED, LikelihoodVariant
from ..errors import PipelineError, ShardError
from ..formats.stream import ShardBatchReader
from ..align.records import AlignmentBatch
from ..seqsim.reads import ReadSet
from .merge import merge_shard_results
from .pool import PoolBroken, make_pool
from .shard import ShardResult, plan_shards


@dataclass(frozen=True)
class ExecConfig:
    """Knobs of the sharded executor."""

    workers: int = 1
    #: Sites per shard; ``None`` = ~4 shards per worker.  Snapped up to a
    #: multiple of the window size (determinism requires aligned shards).
    shard_size: Optional[int] = None
    #: Times a failed shard is re-executed before the run is aborted.
    max_retries: int = 2
    #: In-flight shards per worker (the bounded queue's depth factor).
    backlog: int = 2
    #: Use the serial fallback executor even for ``workers > 1``.
    force_serial: bool = False
    #: Double-buffered window streaming inside each shard run.
    prefetch: bool = True
    #: Persistent device residency: each worker keeps one pipeline (and its
    #: uploaded score tables) across all the shards it executes.
    cache: bool = True
    #: Test/chaos hook: shard index -> number of times it must fail.
    inject_failures: Mapping[int, int] = field(default_factory=dict)


# Worker-side state, installed once per worker process by the pool
# initializer (or once in-process by the serial fallback).
_WORKER_STATE: dict = {}


def _init_worker(state: dict) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _run_shard(task) -> ShardResult:
    """Execute one shard in the worker; the unit the pool retries."""
    shard, batch, attempt = task
    st = _WORKER_STATE
    must_fail = st["inject"].get(shard.index, 0)
    if attempt < must_fail:
        raise PipelineError(
            f"injected failure for {shard} (attempt {attempt + 1})"
        )
    pipeline = st.get("pipeline")
    if pipeline is None:
        pipeline = create_pipeline(
            st["engine"],
            params=st["params"],
            window_size=st["window_size"],
            variant=st["variant"],
            prefetch=st.get("prefetch"),
            cache=st.get("cache"),
        )
        if st.get("cache", True):
            # Persist across this worker's shards: the device score tables
            # upload exactly once per worker process.
            st["pipeline"] = pipeline
    t0 = time.perf_counter()
    result = pipeline.run(
        st["dataset"],
        site_range=(shard.start, shard.end),
        calibration=st["calibration"],
        reads=batch,
    )
    wall = time.perf_counter() - t0
    return ShardResult(
        shard=shard,
        table=result.table,
        profile=result.profile,
        compressed=getattr(result, "compressed_output", b""),
        output_bytes=result.output_bytes,
        sort_stats=getattr(result, "sort_stats", []),
        nnz=getattr(result, "nnz", None),
        peak_gpu_bytes=result.extras.get("peak_gpu_bytes", 0),
        wall=wall,
        attempts=attempt + 1,
        pid=os.getpid(),
    )


def _drain(pool, tasks, max_retries: int, backlog: int):
    """Pump tasks through the pool with a bounded in-flight window.

    ``tasks`` yields ``(shard, batch_or_None)`` lazily — with a streaming
    source this bounds resident shard batches to ``workers * backlog``.
    Yields :class:`ShardResult` in completion order; re-dispatches failed
    shards (counting attempts) and raises :class:`ShardError` once a
    shard exhausts its budget.
    """
    limit = max(1, pool.workers * backlog)
    task_iter = iter(tasks)
    exhausted = False
    retry_q: deque = deque()
    in_flight: dict = {}
    retries_used = 0

    while True:
        while len(in_flight) < limit:
            if retry_q:
                shard, batch, attempt = retry_q.popleft()
            elif not exhausted:
                try:
                    shard, batch = next(task_iter)
                    attempt = 0
                except StopIteration:
                    exhausted = True
                    continue
            else:
                break
            handle = pool.submit(_run_shard, (shard, batch, attempt))
            in_flight[handle] = (shard, batch, attempt)
        if not in_flight:
            if exhausted and not retry_q:
                return retries_used
            continue

        for handle in pool.wait_any(list(in_flight)):
            shard, batch, attempt = in_flight.pop(handle)
            try:
                kind, value = handle.outcome()
            except PoolBroken:
                # The worker died outright; rebuild and re-dispatch.
                pool.restart()
                kind, value = "err", PipelineError(
                    f"worker process died while executing {shard}"
                )
            if kind == "ok":
                yield value
                continue
            if attempt >= max_retries:
                raise ShardError(
                    f"{shard} failed after {attempt + 1} attempts: "
                    f"{value!r}",
                    shard_index=shard.index,
                    site_range=(shard.start, shard.end),
                    attempts=attempt + 1,
                ) from value
            retries_used += 1
            retry_q.append((shard, batch, attempt + 1))


def _dataset_without_reads(dataset):
    """The dataset container minus its read set (streaming-shard mode):
    workers receive reference/prior once and shard batches incrementally."""
    rs = dataset.reads
    empty = ReadSet(
        chrom=rs.chrom,
        read_len=rs.read_len,
        pos=np.empty(0, dtype=np.int64),
        strand=np.empty(0, dtype=np.uint8),
        hits=np.empty(0, dtype=np.uint8),
        bases=np.empty((0, rs.read_len), dtype=np.uint8),
        quals=np.empty((0, rs.read_len), dtype=np.uint8),
    )
    return replace(dataset, reads=empty)


def execute(
    dataset,
    engine: Engine | str = Engine.GSNP,
    *,
    params=None,
    window_size: int = DEFAULT_WINDOW_GSNP,
    variant: LikelihoodVariant = OPTIMIZED,
    output_path=None,
    soap_path=None,
    config: Optional[ExecConfig] = None,
    **config_kwargs,
):
    """Run a calling job as parallel window-aligned shards.

    Returns the engine's own result type with tables, compressed output
    and merged event counters bitwise/exactly equal to the serial path;
    ``extras['shards']`` carries per-shard timing/throughput metrics and
    ``extras['exec']`` the pool configuration.  ``soap_path`` switches the
    shard inputs to incremental streaming from that SOAP file via
    :class:`~repro.formats.stream.ShardBatchReader`.

    ``config_kwargs`` (``workers=4``, ``shard_size=...``, ...) are a
    shorthand for building :class:`ExecConfig`.
    """
    if config is None:
        config = ExecConfig(**config_kwargs)
    elif config_kwargs:
        config = replace(config, **config_kwargs)
    engine = resolve_engine(engine)

    # The parent-side pipeline fixes the effective window (registry caps)
    # and runs the one-time calibration pass.
    pipeline = create_pipeline(
        engine, params=params, window_size=window_size, variant=variant
    )
    eff_window = pipeline.window_size
    reads = AlignmentBatch.from_read_set(dataset.reads)
    calibration = pipeline.calibrate(dataset, reads=reads)
    shards = plan_shards(
        dataset.n_sites, eff_window, config.shard_size, config.workers
    )

    streaming = soap_path is not None
    state = {
        "engine": str(engine),
        "params": params,
        "window_size": eff_window,
        "variant": variant,
        "dataset": _dataset_without_reads(dataset) if streaming else dataset,
        "calibration": calibration.strip(),
        "prefetch": config.prefetch,
        "cache": config.cache,
        "inject": dict(config.inject_failures),
    }
    if streaming:
        batches = ShardBatchReader(
            soap_path,
            [(s.start, s.end) for s in shards],
            dataset.n_sites,
            chrom=dataset.reference.name,
        )
        tasks = (
            (shard, batch)
            for shard, (_, _, batch) in zip(shards, batches)
        )
    else:
        tasks = ((shard, None) for shard in shards)

    t0 = time.perf_counter()
    pool = make_pool(
        config.workers,
        initializer=_init_worker,
        initargs=(state,),
        force_serial=config.force_serial,
    )
    try:
        results: list[ShardResult] = []
        drain = _drain(pool, tasks, config.max_retries, config.backlog)
        retries_used = 0
        while True:
            try:
                results.append(next(drain))
            except StopIteration as stop:
                retries_used = stop.value or 0
                break
    finally:
        pool.shutdown()

    exec_meta = {
        "workers": config.workers,
        "pool": pool.kind,
        "shard_size": shards[0].n_sites if shards else 0,
        "n_shards": len(shards),
        "streaming": streaming,
        "prefetch": config.prefetch,
        "cache": config.cache,
        "retries": retries_used,
        "wall": time.perf_counter() - t0,
    }
    return merge_shard_results(
        results, calibration, output_path=output_path, exec_meta=exec_meta
    )
