"""Sharded execution: dispatch window-aligned shards to a worker pool.

The execution model mirrors SNAP/SOAP3-dp-style genome sharding: the
parent runs the one-time ``cal_p_matrix`` pass, splits the site range into
window-aligned shards (:mod:`repro.exec.shard`), and dispatches them to a
pool (:mod:`repro.exec.pool`) — ``multiprocessing`` workers, or the serial
fallback with the identical interface.  Shard inputs either reference the
dataset shipped once per worker, or stream incrementally from a SOAP file
(:class:`~repro.formats.stream.ShardBatchReader`) through the bounded
submission queue, so at most ``workers * backlog`` shard batches are ever
resident.  Completed shards merge back in genomic order
(:mod:`repro.exec.merge`).

Failure handling (exercised deliberately by :mod:`repro.faults`):

* a failing shard is re-dispatched with deterministic, jitter-free
  exponential backoff (``backoff_base * 2**attempt``) up to
  ``max_retries`` times, then surfaced as
  :class:`~repro.errors.ShardError` chaining the last worker exception;
* with ``shard_timeout`` set (process pools only), a shard that overruns
  its deadline has its worker killed and is retried like any failure;
* a worker ``AllocationError`` steps the worker down a degradation rung
  (residency, prefetch and simulator fast paths off) and re-runs the
  shard in place — results are bitwise identical either way;
* with ``journal_dir`` set, every completed shard is checkpointed
  atomically (:class:`~repro.faults.journal.ShardJournal`); ``resume``
  skips committed shards on a re-invocation after process death, with a
  bitwise-identical final merge.

Determinism: shard boundaries are window boundaries and the merge is
order-restoring, so calls, event counters and compressed bytes are bitwise
identical to a serial run for all three engines, at any worker count —
with or without injected faults, retries and resumes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

import numpy as np

from ..api import Engine, create_pipeline, resolve_engine
from ..constants import DEFAULT_WINDOW_GSNP
from ..core.likelihood import OPTIMIZED, LikelihoodVariant
from ..errors import AllocationError, PipelineError, ShardError, ShardTimeout
from ..faults.degrade import degrade, logger as fault_logger
from ..faults.journal import ShardJournal, run_fingerprint
from ..faults.plan import (
    FaultPlan,
    FaultSpec,
    fault_plan,
    fault_point,
    scope as fault_scope,
)
from ..formats.stream import ShardBatchReader
from ..align.records import AlignmentBatch
from ..seqsim.reads import ReadSet
from .merge import merge_shard_results
from .pool import PoolBroken, make_pool
from .shard import ShardResult, plan_shards


@dataclass(frozen=True)
class ExecConfig:
    """Knobs of the sharded executor."""

    workers: int = 1
    #: Sites per shard; ``None`` = ~4 shards per worker.  Snapped up to a
    #: multiple of the window size (determinism requires aligned shards).
    shard_size: Optional[int] = None
    #: Times a failed shard is re-executed before the run is aborted.
    max_retries: int = 2
    #: In-flight shards per worker (the bounded queue's depth factor).
    backlog: int = 2
    #: Use the serial fallback executor even for ``workers > 1``.
    force_serial: bool = False
    #: Double-buffered window streaming inside each shard run.
    prefetch: bool = True
    #: Persistent device residency: each worker keeps one pipeline (and its
    #: uploaded score tables) across all the shards it executes.
    cache: bool = True
    #: Fused ragged-megabatch launching inside each shard run (GPU engine
    #: only; off under degradation, like the other throughput toggles).
    fusion: bool = False
    #: Per-shard wall-clock deadline in seconds (process pools only): an
    #: overrunning shard's worker is killed and the shard retried.
    shard_timeout: Optional[float] = None
    #: Base of the deterministic, jitter-free retry backoff: a shard's
    #: k-th retry is delayed ``backoff_base * 2**(k-1)`` seconds.
    backoff_base: float = 0.02
    #: Chaos schedule installed in the parent and every worker.
    faults: Optional[FaultPlan] = None
    #: Checkpoint directory: completed shards commit here atomically.
    journal_dir: Optional[str] = None
    #: Skip shards already committed to ``journal_dir`` by a prior run.
    resume: bool = False
    #: Quarantine file for malformed streamed input records (streaming
    #: mode); ``None`` keeps the fail-fast behaviour.
    quarantine: Optional[str] = None
    #: Back-compat shorthand: shard index -> number of times it must fail
    #: (translated onto the ``exec.shard.error`` fault site).
    inject_failures: Mapping[int, int] = field(default_factory=dict)


# Worker-side state, installed once per worker process by the pool
# initializer (or once in-process by the serial fallback).
_WORKER_STATE: dict = {}


def _init_worker(state: dict) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state
    from ..faults.plan import install_plan

    install_plan(state.get("faults"))


def _make_pipeline(st: dict, *, degraded: bool = False):
    return create_pipeline(
        st["engine"],
        params=st["params"],
        window_size=st["window_size"],
        variant=st["variant"],
        prefetch=False if degraded else st.get("prefetch"),
        cache=False if degraded else st.get("cache"),
        fusion=False if degraded else st.get("fusion"),
    )


def _run_shard(task) -> ShardResult:
    """Execute one shard in the worker; the unit the pool retries."""
    shard, batch, attempt = task
    st = _WORKER_STATE
    with fault_scope(shard=shard.index, attempt=attempt):
        fault_point("exec.worker.crash", key=shard.index)
        fault_point("exec.shard.error", key=shard.index)
        fault_point("exec.shard.slow", key=shard.index)
        pipeline = st.get("pipeline")
        if pipeline is None:
            pipeline = _make_pipeline(st)
            if st.get("cache", True):
                # Persist across this worker's shards: the device score
                # tables upload exactly once per worker process.
                st["pipeline"] = pipeline
        run_kwargs = dict(
            site_range=(shard.start, shard.end),
            calibration=st["calibration"],
            reads=batch,
        )
        t0 = time.perf_counter()
        try:
            result = pipeline.run(st["dataset"], **run_kwargs)
        except AllocationError as exc:
            # Degradation rung: the device could not satisfy the resident
            # footprint.  Rebuild this worker's pipeline with residency,
            # prefetch and simulator fast paths disabled and re-run the
            # shard in place; results are bitwise identical either way.
            degrade(
                "device-degraded",
                action="re-running shard with residency/prefetch/fast "
                "paths disabled",
                reason=repr(exc),
                shard=shard.index,
                attempt=attempt,
            )
            st.pop("pipeline", None)
            from ..gpusim.memory import set_fast_paths

            prev_fast = set_fast_paths(False)
            try:
                with fault_scope(degraded=True):
                    pipeline = _make_pipeline(st, degraded=True)
                    result = pipeline.run(st["dataset"], **run_kwargs)
            finally:
                set_fast_paths(prev_fast)
        wall = time.perf_counter() - t0
    return ShardResult(
        shard=shard,
        table=result.table,
        profile=result.profile,
        compressed=getattr(result, "compressed_output", b""),
        output_bytes=result.output_bytes,
        sort_stats=getattr(result, "sort_stats", []),
        nnz=getattr(result, "nnz", None),
        peak_gpu_bytes=result.extras.get("peak_gpu_bytes", 0),
        wall=wall,
        attempts=attempt + 1,
        pid=os.getpid(),
    )


def _drain(pool, tasks, config: ExecConfig):
    """Pump tasks through the pool with a bounded in-flight window.

    ``tasks`` yields ``(shard, batch_or_None)`` lazily — with a streaming
    source this bounds resident shard batches to ``workers * backlog``.
    Yields :class:`ShardResult` in completion order; re-dispatches failed
    shards after a deterministic exponential backoff (counting attempts),
    kills and retries shards that overrun ``shard_timeout``, and raises
    :class:`ShardError` chaining the last worker exception once a shard
    exhausts its budget.
    """
    max_retries = config.max_retries
    limit = max(1, pool.workers * config.backlog)
    enforce_deadline = (
        config.shard_timeout is not None and pool.kind == "process"
    )
    if config.shard_timeout is not None and not enforce_deadline:
        fault_logger.info(
            "shard_timeout=%s ignored: the serial pool executes tasks "
            "eagerly and cannot preempt a running shard",
            config.shard_timeout,
        )
    task_iter = iter(tasks)
    exhausted = False
    retry_q: list = []  # (ready_at, shard, batch, attempt)
    in_flight: dict = {}  # handle -> (shard, batch, attempt, deadline)
    retries_used = 0

    def fail(shard, batch, attempt: int, last_exc: BaseException):
        """Schedule a retry, or give up with the root cause chained."""
        nonlocal retries_used
        if attempt >= max_retries:
            raise ShardError(
                f"{shard} failed after {attempt + 1} attempts; last "
                f"error: {last_exc!r}",
                shard_index=shard.index,
                site_range=(shard.start, shard.end),
                attempts=attempt + 1,
            ) from last_exc
        delay = config.backoff_base * (2 ** attempt)
        degrade(
            "shard-retry",
            action=f"re-dispatching in {delay:.3f}s "
            f"(attempt {attempt + 2}/{max_retries + 1})",
            reason=repr(last_exc),
            shard=shard.index,
        )
        retries_used += 1
        retry_q.append((time.monotonic() + delay, shard, batch, attempt + 1))

    while True:
        # -- submission: fill the bounded window ---------------------------
        while len(in_flight) < limit:
            now = time.monotonic()
            ready = next(
                (i for i, e in enumerate(retry_q) if e[0] <= now), None
            )
            if ready is not None:
                _, shard, batch, attempt = retry_q.pop(ready)
            elif not exhausted:
                try:
                    shard, batch = next(task_iter)
                    attempt = 0
                except StopIteration:
                    exhausted = True
                    continue
            else:
                break
            handle = pool.submit(_run_shard, (shard, batch, attempt))
            deadline = (
                time.monotonic() + config.shard_timeout
                if enforce_deadline
                else None
            )
            in_flight[handle] = (shard, batch, attempt, deadline)

        if not in_flight:
            if exhausted and not retry_q:
                return retries_used
            # Nothing running and every retry still backing off: sleep to
            # the earliest ready time (deterministic schedule, no jitter).
            wake = min(e[0] for e in retry_q) - time.monotonic()
            if wake > 0:
                time.sleep(wake)
            continue

        # -- completion wait (bounded by the earliest deadline) ------------
        timeout = None
        if enforce_deadline:
            next_deadline = min(
                d for (*_, d) in in_flight.values() if d is not None
            )
            timeout = max(0.0, next_deadline - time.monotonic())
        for handle in pool.wait_any(list(in_flight), timeout=timeout):
            shard, batch, attempt, _dl = in_flight.pop(handle)
            try:
                kind, value = handle.outcome()
            except PoolBroken as exc:
                # The worker died outright; rebuild and re-dispatch.
                pool.restart()
                crash = PipelineError(
                    f"worker process died while executing {shard}"
                )
                crash.__cause__ = exc
                kind, value = "err", crash
            if kind == "ok":
                yield value
                continue
            fail(shard, batch, attempt, value)

        # -- deadline sweep ------------------------------------------------
        if enforce_deadline:
            now = time.monotonic()
            expired = [
                h
                for h, (_s, _b, _a, d) in in_flight.items()
                if d is not None and d <= now
            ]
            if expired:
                for handle in expired:
                    shard, batch, attempt, _dl = in_flight.pop(handle)
                    fail(
                        shard, batch, attempt,
                        ShardTimeout(
                            f"{shard} exceeded its "
                            f"{config.shard_timeout}s deadline "
                            f"(attempt {attempt + 1})",
                            shard_index=shard.index,
                            deadline=config.shard_timeout,
                        ),
                    )
                # The overrunning workers cannot be cancelled cooperatively:
                # kill the pool.  Collateral in-flight handles surface
                # PoolBroken above and re-dispatch.
                pool.kill()


def _dataset_without_reads(dataset):
    """The dataset container minus its read set (streaming-shard mode):
    workers receive reference/prior once and shard batches incrementally."""
    rs = dataset.reads
    empty = ReadSet(
        chrom=rs.chrom,
        read_len=rs.read_len,
        pos=np.empty(0, dtype=np.int64),
        strand=np.empty(0, dtype=np.uint8),
        hits=np.empty(0, dtype=np.uint8),
        bases=np.empty((0, rs.read_len), dtype=np.uint8),
        quals=np.empty((0, rs.read_len), dtype=np.uint8),
    )
    return replace(dataset, reads=empty)


def _effective_plan(config: ExecConfig) -> Optional[FaultPlan]:
    """The configured plan, with legacy ``inject_failures`` folded in as
    ``exec.shard.error`` specs (the registry is the only injection path)."""
    specs = tuple(
        FaultSpec(site="exec.shard.error", key=int(idx), times=int(n))
        for idx, n in sorted(dict(config.inject_failures).items())
        if n > 0
    )
    if not specs:
        return config.faults
    if config.faults is None:
        return FaultPlan(specs)
    return FaultPlan(config.faults.specs + specs, seed=config.faults.seed)


def execute(
    dataset,
    engine: Engine | str = Engine.GSNP,
    *,
    params=None,
    window_size: int = DEFAULT_WINDOW_GSNP,
    variant: LikelihoodVariant = OPTIMIZED,
    output_path=None,
    soap_path=None,
    config: Optional[ExecConfig] = None,
    **config_kwargs,
):
    """Run a calling job as parallel window-aligned shards.

    Returns the engine's own result type with tables, compressed output
    and merged event counters bitwise/exactly equal to the serial path;
    ``extras['shards']`` carries per-shard timing/throughput metrics and
    ``extras['exec']`` the pool configuration.  ``soap_path`` switches the
    shard inputs to incremental streaming from that SOAP file via
    :class:`~repro.formats.stream.ShardBatchReader`.

    ``config_kwargs`` (``workers=4``, ``shard_size=...``,
    ``shard_timeout=...``, ``journal_dir=...``, ``resume=True``, ...) are
    a shorthand for building :class:`ExecConfig`.
    """
    if config is None:
        config = ExecConfig(**config_kwargs)
    elif config_kwargs:
        config = replace(config, **config_kwargs)
    engine = resolve_engine(engine)
    plan = _effective_plan(config)

    # The parent-side pipeline fixes the effective window (registry caps)
    # and runs the one-time calibration pass.
    pipeline = create_pipeline(
        engine, params=params, window_size=window_size, variant=variant
    )
    eff_window = pipeline.window_size
    reads = AlignmentBatch.from_read_set(dataset.reads)
    calibration = pipeline.calibrate(dataset, reads=reads)
    shards = plan_shards(
        dataset.n_sites, eff_window, config.shard_size, config.workers
    )

    # Crash-safe checkpointing: the journal is keyed by a fingerprint of
    # everything that determines shard bytes, so resume can never splice
    # results from a different input/engine/calibration into the merge.
    journal = None
    committed: dict[int, ShardResult] = {}
    if config.journal_dir is not None:
        fingerprint = run_fingerprint(
            str(engine),
            eff_window,
            getattr(variant, "name", str(variant)),
            dataset.n_sites,
            [(s.start, s.end) for s in shards],
            calibration,
        )
        journal = ShardJournal(config.journal_dir, fingerprint)
        if config.resume:
            committed = journal.load(shards)
            if committed:
                fault_logger.info(
                    "resume: %d/%d shards already committed in %s; "
                    "skipping them",
                    len(committed), len(shards), journal.dir,
                )

    streaming = soap_path is not None
    state = {
        "engine": str(engine),
        "params": params,
        "window_size": eff_window,
        "variant": variant,
        "dataset": _dataset_without_reads(dataset) if streaming else dataset,
        "calibration": calibration.strip(),
        "prefetch": config.prefetch,
        "cache": config.cache,
        "fusion": config.fusion,
        "faults": plan,
    }
    if streaming:
        batches = ShardBatchReader(
            soap_path,
            [(s.start, s.end) for s in shards],
            dataset.n_sites,
            chrom=dataset.reference.name,
            quarantine=config.quarantine,
        )
        tasks = (
            (shard, batch)
            for shard, (_, _, batch) in zip(shards, batches)
            if shard.index not in committed
        )
    else:
        tasks = (
            (shard, None) for shard in shards if shard.index not in committed
        )

    t0 = time.perf_counter()
    results: list[ShardResult] = list(committed.values())
    retries_used = 0
    with fault_plan(plan):
        pool = make_pool(
            config.workers,
            initializer=_init_worker,
            initargs=(state,),
            force_serial=config.force_serial,
        )
        try:
            drain = _drain(pool, tasks, config)
            while True:
                try:
                    sr = next(drain)
                except StopIteration as stop:
                    retries_used = stop.value or 0
                    break
                if journal is not None:
                    journal.commit(sr)
                results.append(sr)
        finally:
            pool.shutdown()

    exec_meta = {
        "workers": config.workers,
        "pool": pool.kind,
        "shard_size": shards[0].n_sites if shards else 0,
        "n_shards": len(shards),
        "streaming": streaming,
        "prefetch": config.prefetch,
        "cache": config.cache,
        "fusion": config.fusion,
        "retries": retries_used,
        "resumed": len(committed),
        "shard_timeout": config.shard_timeout,
        "wall": time.perf_counter() - t0,
    }
    return merge_shard_results(
        results, calibration, output_path=output_path, exec_meta=exec_meta
    )
