"""Sharded execution: dispatch window-aligned shards to a worker pool.

The execution model mirrors SNAP/SOAP3-dp-style genome sharding: the
parent runs the one-time ``cal_p_matrix`` pass, splits the site range into
window-aligned shards (:mod:`repro.exec.shard`), and dispatches them to a
pool (:mod:`repro.exec.pool`) — ``multiprocessing`` workers, or the serial
fallback with the identical interface.  Shard inputs either reference the
dataset shipped once per worker, or stream incrementally from a SOAP file
(:class:`~repro.formats.stream.ShardBatchReader`) through the bounded
submission queue, so at most ``workers * backlog`` shard batches are ever
resident.  Completed shards merge back in genomic order
(:mod:`repro.exec.merge`).

Jobs are described by a :class:`~repro.api.JobSpec` —
``execute(dataset, spec=spec)`` is the canonical entry point, and
:meth:`ExecConfig.from_spec` derives the executor's knobs from the same
object.  The legacy kwarg spelling (``execute(ds, engine, workers=4)``)
keeps working through a shim that emits a ``DeprecationWarning``.

Long-lived callers (the ``gsnp-serve`` daemon) pass ``resident=True`` and
an optional precomputed ``calibration``: the in-process worker pipeline is
then kept in a per-thread resident cache across ``execute`` calls, so a
repeated job over the same dataset skips both the calibration pass and the
device score-table upload (the hit/miss counters surface through
:func:`resident_stats`).

Failure handling (exercised deliberately by :mod:`repro.faults`):

* a failing shard is re-dispatched with deterministic, jitter-free
  exponential backoff (``backoff_base * 2**attempt``) up to
  ``max_retries`` times, then surfaced as
  :class:`~repro.errors.ShardError` chaining the last worker exception;
* with ``shard_timeout`` set (process pools only), a shard that overruns
  its deadline has its worker killed and is retried like any failure;
* a worker ``AllocationError`` steps the worker down a degradation rung
  (residency, prefetch and simulator fast paths off) and re-runs the
  shard in place — results are bitwise identical either way;
* with ``journal_dir`` set, every completed shard is checkpointed
  atomically (:class:`~repro.faults.journal.ShardJournal`); ``resume``
  skips committed shards on a re-invocation after process death, with a
  bitwise-identical final merge.

Determinism: shard boundaries are window boundaries and the merge is
order-restoring, so calls, event counters and compressed bytes are bitwise
identical to a serial run for all three engines, at any worker count —
with or without injected faults, retries and resumes.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

import numpy as np

from ..api import Engine, JobSpec, create_pipeline, effective_window
from ..errors import AllocationError, PipelineError, ShardError, ShardTimeout
from ..faults.degrade import degrade, logger as fault_logger
from ..faults.journal import ShardJournal, run_fingerprint
from ..faults.plan import (
    FaultPlan,
    FaultSpec,
    fault_plan,
    fault_point,
    scope as fault_scope,
)
from ..formats.stream import ShardBatchReader
from ..align.records import AlignmentBatch
from ..seqsim.reads import ReadSet
from .merge import merge_shard_results
from .pool import PoolBroken, make_pool
from .shard import ShardResult, plan_shards


@dataclass(frozen=True)
class ExecConfig:
    """Knobs of the sharded executor.

    Job-level fields mirror :class:`~repro.api.JobSpec` — build this via
    :meth:`from_spec` rather than spelling them again.  The remaining
    fields (retry budget, queue depth, pool selection, backoff) are
    executor tuning that no job should need to carry on the wire.
    """

    workers: int = 1
    #: Sites per shard; ``None`` = ~4 shards per worker.  Snapped up to a
    #: multiple of the window size (determinism requires aligned shards).
    shard_size: Optional[int] = None
    #: Times a failed shard is re-executed before the run is aborted.
    max_retries: int = 2
    #: In-flight shards per worker (the bounded queue's depth factor).
    backlog: int = 2
    #: Use the serial fallback executor even for ``workers > 1``.
    force_serial: bool = False
    #: Double-buffered window streaming inside each shard run.
    prefetch: bool = True
    #: Persistent device residency: each worker keeps one pipeline (and its
    #: uploaded score tables) across all the shards it executes.
    cache: bool = True
    #: Fused ragged-megabatch launching inside each shard run (GPU engine
    #: only; off under degradation, like the other throughput toggles).
    fusion: bool = False
    #: Modeled devices in the pool; ``> 1`` routes the job through the
    #: heterogeneous work-stealing scheduler (:mod:`repro.exec.hetero`).
    devices: int = 1
    #: Add the sparse host engine as an extra work-stealing lane.
    cpu_steal: bool = False
    #: Per-shard wall-clock deadline in seconds (process pools only): an
    #: overrunning shard's worker is killed and the shard retried.
    shard_timeout: Optional[float] = None
    #: Base of the deterministic, jitter-free retry backoff: a shard's
    #: k-th retry is delayed ``backoff_base * 2**(k-1)`` seconds.
    backoff_base: float = 0.02
    #: Chaos schedule installed in the parent and every worker.
    faults: Optional[FaultPlan] = None
    #: Checkpoint directory: completed shards commit here atomically.
    journal_dir: Optional[str] = None
    #: Skip shards already committed to ``journal_dir`` by a prior run.
    resume: bool = False
    #: Quarantine file for malformed streamed input records (streaming
    #: mode); ``None`` keeps the fail-fast behaviour.
    quarantine: Optional[str] = None
    #: Back-compat shorthand: shard index -> number of times it must fail
    #: (translated onto the ``exec.shard.error`` fault site).
    inject_failures: Mapping[int, int] = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec: JobSpec) -> "ExecConfig":
        """The executor knobs a :class:`~repro.api.JobSpec` pins.

        This is the one sanctioned translation from job description to
        executor configuration (``gsnp-lint`` GSNP108 flags ad-hoc
        re-spellings elsewhere).
        """
        return cls(  # gsnp-lint: disable=GSNP108 (the sanctioned JobSpec translation site)
            workers=spec.workers,
            shard_size=spec.shard_size,
            prefetch=spec.prefetch,
            cache=spec.cache,
            fusion=spec.fusion,
            devices=spec.devices,
            cpu_steal=spec.cpu_steal,
            shard_timeout=spec.shard_timeout,
            faults=spec.faults,
            journal_dir=spec.journal,
            resume=spec.resume,
            quarantine=spec.quarantine,
        )


# Worker-side state, installed by the pool initializer.  Thread-local
# rather than a bare module global: the serve daemon runs several serial
# in-process jobs on concurrent threads, each with its own state.
_WORKER_TLS = threading.local()

# Resident worker pipelines that outlive a single ``execute`` call, keyed
# by thread ident then pipeline identity.  Devices are only ever touched
# by their owning thread; the lock guards the outer map so a stats reader
# on another thread can aggregate the counters safely.
_RESIDENT_LOCK = threading.Lock()
_RESIDENT: dict[int, dict] = {}


def _worker_state() -> dict:
    return _WORKER_TLS.state


def _resident_pipelines() -> dict:
    ident = threading.get_ident()
    with _RESIDENT_LOCK:
        return _RESIDENT.setdefault(ident, {})


def _resident_key(spec: JobSpec) -> tuple:
    return (
        spec.engine, spec.window, spec.variant_name,
        spec.prefetch, spec.cache, spec.fusion, spec.megabatch,
    )


def resident_stats() -> dict:
    """Aggregate counters over every thread's resident worker pipelines.

    ``table_hits``/``table_misses`` come from the underlying
    :class:`~repro.gpusim.residency.DeviceResidency` caches — a hit means
    a job reused already-uploaded score tables instead of re-uploading.
    """
    with _RESIDENT_LOCK:
        per_thread = [dict(p) for p in _RESIDENT.values()]
    stats = {"pipelines": 0, "table_hits": 0, "table_misses": 0}
    for pipes in per_thread:
        stats["pipelines"] += len(pipes)
        for pipe in pipes.values():
            res = getattr(getattr(pipe, "_cached_device", None), "resident",
                          None)
            if res is not None:
                stats["table_hits"] += res.hits
                stats["table_misses"] += res.misses
    return stats


def release_resident() -> None:
    """Drop every thread's resident pipelines (and their device caches)."""
    with _RESIDENT_LOCK:
        per_thread = list(_RESIDENT.values())
        _RESIDENT.clear()
    for pipes in per_thread:
        for pipe in pipes.values():
            release = getattr(pipe, "release_cache", None)
            if release is not None:
                release()


def _init_worker(state: dict) -> None:
    _WORKER_TLS.state = state
    if state.get("faults") is not None:
        from ..faults.plan import install_plan

        install_plan(state["faults"])


def _pipeline_spec(spec: JobSpec, *, degraded: bool = False) -> JobSpec:
    """The worker pipeline's view of the job (degradation rung applied)."""
    if degraded:
        return replace(spec, prefetch=False, cache=False, fusion=False)
    return spec


def _make_pipeline(st: dict, *, degraded: bool = False):
    return create_pipeline(
        spec=_pipeline_spec(st["spec"], degraded=degraded),
        params=st["params"],
    )


def _run_shard(task) -> ShardResult:
    """Execute one shard in the worker; the unit the pool retries."""
    shard, batch, attempt = task
    st = _worker_state()
    spec: JobSpec = st["spec"]
    resident = bool(st.get("resident")) and spec.cache
    with fault_scope(shard=shard.index, attempt=attempt):
        fault_point("exec.worker.crash", key=shard.index)
        fault_point("exec.shard.error", key=shard.index)
        fault_point("exec.shard.slow", key=shard.index)
        pipeline = st.get("pipeline")
        if pipeline is None and resident:
            # Outlive this job: a later job with the same pipeline shape
            # reuses the device and its uploaded tables.
            pipeline = _resident_pipelines().get(_resident_key(spec))
        if pipeline is None:
            pipeline = _make_pipeline(st)
        if spec.cache:
            # Persist across this worker's shards: the device score
            # tables upload exactly once per worker process.
            st["pipeline"] = pipeline
            if resident:
                _resident_pipelines()[_resident_key(spec)] = pipeline
        cohort_samples = st.get("samples")

        def _invoke(pipe):
            if cohort_samples is not None:
                return pipe.run_cohort(
                    st["dataset"],
                    cohort_samples,
                    site_range=(shard.start, shard.end),
                    calibration=st["calibration"],
                )
            return pipe.run(
                st["dataset"],
                site_range=(shard.start, shard.end),
                calibration=st["calibration"],
                reads=batch,
            )

        t0 = time.perf_counter()
        try:
            result = _invoke(pipeline)
        except AllocationError as exc:
            # Degradation rung: the device could not satisfy the resident
            # footprint.  Rebuild this worker's pipeline with residency,
            # prefetch and simulator fast paths disabled and re-run the
            # shard in place; results are bitwise identical either way.
            degrade(
                "device-degraded",
                action="re-running shard with residency/prefetch/fast "
                "paths disabled",
                reason=repr(exc),
                shard=shard.index,
                attempt=attempt,
            )
            st.pop("pipeline", None)
            if resident:
                _resident_pipelines().pop(_resident_key(spec), None)
            from ..gpusim.memory import set_fast_paths

            prev_fast = set_fast_paths(False)
            try:
                with fault_scope(degraded=True):
                    pipeline = _make_pipeline(st, degraded=True)
                    result = _invoke(pipeline)
            finally:
                set_fast_paths(prev_fast)
        wall = time.perf_counter() - t0
    if cohort_samples is not None:
        return ShardResult(
            shard=shard,
            table=result.samples[0].table,
            profile=result.profile,
            compressed=result.samples[0].compressed_output,
            output_bytes=result.output_bytes,
            sort_stats=result.samples[0].sort_stats,
            peak_gpu_bytes=result.extras.get("peak_gpu_bytes", 0),
            wall=wall,
            attempts=attempt + 1,
            pid=os.getpid(),
            sample_tables=[s.table for s in result.samples],
            sample_compressed=[s.compressed_output for s in result.samples],
        )
    return ShardResult(
        shard=shard,
        table=result.table,
        profile=result.profile,
        compressed=getattr(result, "compressed_output", b""),
        output_bytes=result.output_bytes,
        sort_stats=getattr(result, "sort_stats", []),
        nnz=getattr(result, "nnz", None),
        peak_gpu_bytes=result.extras.get("peak_gpu_bytes", 0),
        wall=wall,
        attempts=attempt + 1,
        pid=os.getpid(),
    )


def _drain(pool, tasks, config: ExecConfig):
    """Pump tasks through the pool with a bounded in-flight window.

    ``tasks`` yields ``(shard, batch_or_None)`` lazily — with a streaming
    source this bounds resident shard batches to ``workers * backlog``.
    Yields :class:`ShardResult` in completion order; re-dispatches failed
    shards after a deterministic exponential backoff (counting attempts),
    kills and retries shards that overrun ``shard_timeout``, and raises
    :class:`ShardError` chaining the last worker exception once a shard
    exhausts its budget.
    """
    max_retries = config.max_retries
    limit = max(1, pool.workers * config.backlog)
    enforce_deadline = (
        config.shard_timeout is not None and pool.kind == "process"
    )
    if config.shard_timeout is not None and not enforce_deadline:
        fault_logger.info(
            "shard_timeout=%s ignored: the serial pool executes tasks "
            "eagerly and cannot preempt a running shard",
            config.shard_timeout,
        )
    task_iter = iter(tasks)
    exhausted = False
    retry_q: list = []  # (ready_at, shard, batch, attempt)
    in_flight: dict = {}  # handle -> (shard, batch, attempt, deadline)
    retries_used = 0

    def fail(shard, batch, attempt: int, last_exc: BaseException):
        """Schedule a retry, or give up with the root cause chained."""
        nonlocal retries_used
        if attempt >= max_retries:
            raise ShardError(
                f"{shard} failed after {attempt + 1} attempts; last "
                f"error: {last_exc!r}",
                shard_index=shard.index,
                site_range=(shard.start, shard.end),
                attempts=attempt + 1,
            ) from last_exc
        delay = config.backoff_base * (2 ** attempt)
        degrade(
            "shard-retry",
            action=f"re-dispatching in {delay:.3f}s "
            f"(attempt {attempt + 2}/{max_retries + 1})",
            reason=repr(last_exc),
            shard=shard.index,
        )
        retries_used += 1
        retry_q.append((time.monotonic() + delay, shard, batch, attempt + 1))

    while True:
        # -- submission: fill the bounded window ---------------------------
        while len(in_flight) < limit:
            now = time.monotonic()
            ready = next(
                (i for i, e in enumerate(retry_q) if e[0] <= now), None
            )
            if ready is not None:
                _, shard, batch, attempt = retry_q.pop(ready)
            elif not exhausted:
                try:
                    shard, batch = next(task_iter)
                    attempt = 0
                except StopIteration:
                    exhausted = True
                    continue
            else:
                break
            handle = pool.submit(_run_shard, (shard, batch, attempt))
            deadline = (
                time.monotonic() + config.shard_timeout
                if enforce_deadline
                else None
            )
            in_flight[handle] = (shard, batch, attempt, deadline)

        if not in_flight:
            if exhausted and not retry_q:
                return retries_used
            # Nothing running and every retry still backing off: sleep to
            # the earliest ready time (deterministic schedule, no jitter).
            wake = min(e[0] for e in retry_q) - time.monotonic()
            if wake > 0:
                time.sleep(wake)
            continue

        # -- completion wait (bounded by the earliest deadline) ------------
        timeout = None
        if enforce_deadline:
            next_deadline = min(
                d for (*_, d) in in_flight.values() if d is not None
            )
            timeout = max(0.0, next_deadline - time.monotonic())
        for handle in pool.wait_any(list(in_flight), timeout=timeout):
            shard, batch, attempt, _dl = in_flight.pop(handle)
            try:
                kind, value = handle.outcome()
            except PoolBroken as exc:
                # The worker died outright; rebuild and re-dispatch.
                pool.restart()
                crash = PipelineError(
                    f"worker process died while executing {shard}"
                )
                crash.__cause__ = exc
                kind, value = "err", crash
            if kind == "ok":
                yield value
                continue
            fail(shard, batch, attempt, value)

        # -- deadline sweep ------------------------------------------------
        if enforce_deadline:
            now = time.monotonic()
            expired = [
                h
                for h, (_s, _b, _a, d) in in_flight.items()
                if d is not None and d <= now
            ]
            if expired:
                for handle in expired:
                    shard, batch, attempt, _dl = in_flight.pop(handle)
                    fail(
                        shard, batch, attempt,
                        ShardTimeout(
                            f"{shard} exceeded its "
                            f"{config.shard_timeout}s deadline "
                            f"(attempt {attempt + 1})",
                            shard_index=shard.index,
                            deadline=config.shard_timeout,
                        ),
                    )
                # The overrunning workers cannot be cancelled cooperatively:
                # kill the pool.  Collateral in-flight handles surface
                # PoolBroken above and re-dispatch.
                pool.kill()


def _dataset_without_reads(dataset):
    """The dataset container minus its read set (streaming-shard mode):
    workers receive reference/prior once and shard batches incrementally."""
    rs = dataset.reads
    empty = ReadSet(
        chrom=rs.chrom,
        read_len=rs.read_len,
        pos=np.empty(0, dtype=np.int64),
        strand=np.empty(0, dtype=np.uint8),
        hits=np.empty(0, dtype=np.uint8),
        bases=np.empty((0, rs.read_len), dtype=np.uint8),
        quals=np.empty((0, rs.read_len), dtype=np.uint8),
    )
    return replace(dataset, reads=empty)


def _effective_plan(config: ExecConfig) -> Optional[FaultPlan]:
    """The configured plan, with legacy ``inject_failures`` folded in as
    ``exec.shard.error`` specs (the registry is the only injection path)."""
    specs = tuple(
        FaultSpec(site="exec.shard.error", key=int(idx), times=int(n))
        for idx, n in sorted(dict(config.inject_failures).items())
        if n > 0
    )
    if not specs:
        return config.faults
    if config.faults is None:
        return FaultPlan(specs)
    return FaultPlan(config.faults.specs + specs, seed=config.faults.seed)


#: ``execute`` kwargs that survive the JobSpec redesign: pure executor
#: tuning with no JobSpec field, allowed alongside ``spec=``.
_EXECUTOR_ONLY_KWARGS = (
    "max_retries", "backlog", "force_serial", "backoff_base",
    "inject_failures",
)


def _legacy_spec(engine, window_size, variant, config: ExecConfig) -> JobSpec:
    """Fold the legacy ``execute`` spelling into a JobSpec."""
    values: dict = {
        "engine": str(engine) if engine is not None else Engine.GSNP.value,
        "prefetch": config.prefetch,
        "cache": config.cache,
        "fusion": config.fusion,
        "workers": config.workers,
        "shard_size": config.shard_size,
        "devices": config.devices,
        "cpu_steal": config.cpu_steal,
        "shard_timeout": config.shard_timeout,
        "journal": config.journal_dir,
        "resume": config.resume,
        "quarantine": config.quarantine,
        "faults": config.faults,
    }
    if window_size is not None:
        values["window"] = window_size
    if variant is not None:
        values["variant"] = variant
    return JobSpec(**values)


def execute(
    dataset,
    engine: Engine | str | None = None,
    *,
    spec: Optional[JobSpec] = None,
    params=None,
    window_size: Optional[int] = None,
    variant=None,
    output_path=None,
    soap_path=None,
    config: Optional[ExecConfig] = None,
    calibration=None,
    resident: bool = False,
    sample_reads=None,
    **config_kwargs,
):
    """Run a calling job as parallel window-aligned shards.

    The canonical call is ``execute(dataset, spec=JobSpec(...))`` — the
    spec carries every job-level knob and :meth:`ExecConfig.from_spec`
    derives the executor configuration; executor-only tuning
    (``max_retries``, ``backlog``, ``force_serial``, ``backoff_base``,
    ``inject_failures``) may still be passed as keywords.  The legacy
    spelling (``engine`` plus ``window_size``/``variant``/job keywords)
    keeps working through a shim that emits a ``DeprecationWarning``.

    Returns the engine's own result type with tables, compressed output
    and merged event counters bitwise/exactly equal to the serial path;
    ``extras['shards']`` carries per-shard timing/throughput metrics and
    ``extras['exec']`` the pool configuration.  ``soap_path`` switches the
    shard inputs to incremental streaming from that SOAP file via
    :class:`~repro.formats.stream.ShardBatchReader`.

    Long-lived callers pass ``calibration=`` (a previously computed
    calibration for this dataset/engine/params, skipping the input pass)
    and ``resident=True`` (keep the in-process worker pipeline, device and
    uploaded tables in a per-thread cache across calls; implies the serial
    pool so the resident device stays thread-confined).

    ``sample_reads`` switches the job to cohort mode: a list of full
    alignment batches (sample 0 first) that every shard slices by its own
    site range via the window reader.  When the spec names ``samples``
    paths and ``sample_reads`` is not given, the extra samples are parsed
    here (sample 0 stays the dataset's own reads).  Cohort mode shards
    by site range exactly like a solo run — every shard calls
    ``run_cohort`` over all S samples for its windows — so per-sample
    merged outputs are bitwise identical to S solo runs sharing the
    pooled calibration.
    """
    if spec is not None:
        stray = {
            k: v for k, v in config_kwargs.items()
            if k not in _EXECUTOR_ONLY_KWARGS
        }
        if engine is not None or window_size is not None \
                or variant is not None or config is not None or stray:
            raise ValueError(
                "execute(spec=...) does not combine with the legacy "
                "engine/window_size/variant/config kwargs: set those "
                "fields on the JobSpec instead"
            )
        spec = spec.validate().normalized()
        config = ExecConfig.from_spec(spec)
        if resident:
            config_kwargs.setdefault("force_serial", True)
        if config_kwargs:
            config = replace(config, **config_kwargs)
    else:
        legacy = [k for k in config_kwargs if k not in _EXECUTOR_ONLY_KWARGS]
        if window_size is not None:
            legacy.append("window_size")
        if variant is not None:
            legacy.append("variant")
        if legacy:
            warnings.warn(
                "execute(" + ", ".join(f"{k}=..." for k in sorted(legacy))
                + ") is deprecated; pass spec=JobSpec(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if config is None:
            config = ExecConfig(**config_kwargs)
        elif config_kwargs:
            config = replace(config, **config_kwargs)
        spec = _legacy_spec(engine, window_size, variant, config)
    plan = _effective_plan(config)

    eff_window = effective_window(spec.engine, spec.window)
    variant_obj = spec.resolved_variant()

    if sample_reads is None and spec.samples:
        # Parse the extra cohort inputs; sample 0 is always the
        # dataset's own reads (the primary soap input).
        from ..formats.soap import read_soap

        sample_reads = [AlignmentBatch.from_read_set(dataset.reads)]
        for path in spec.samples:
            sample_reads.append(
                read_soap(path, quarantine=config.quarantine)
            )
    if sample_reads is not None:
        sample_reads = list(sample_reads)
        if not sample_reads:
            raise ValueError("sample_reads must name at least one sample")
        if soap_path is not None:
            raise ValueError(
                "streaming shard input (soap_path) does not combine with "
                "cohort mode: every shard windows all S resident batches"
            )

    # The one-time calibration pass — skipped entirely when the caller
    # supplies a cached calibration for this dataset/engine/params.  A
    # cohort calibrates over the pooled reads of all samples: one
    # pm_flat fingerprint, one resident score-table set per device.
    if calibration is None:
        pipeline = create_pipeline(
            spec=replace(spec, faults=None), params=params
        )
        if sample_reads is not None:
            from ..core.cohort import pooled_batch

            reads = pooled_batch(sample_reads)
        else:
            reads = AlignmentBatch.from_read_set(dataset.reads)
        calibration = pipeline.calibrate(dataset, reads=reads)
    # The multi-device scheduler needs enough shards for every lane (N
    # devices + the optional host lane) to hold a deque worth stealing
    # from, so lanes count as workers for planning purposes.
    n_lanes = config.devices + (1 if config.cpu_steal else 0)
    shards = plan_shards(
        dataset.n_sites, eff_window, config.shard_size,
        max(config.workers, n_lanes),
    )

    # Crash-safe checkpointing: the journal is keyed by a fingerprint of
    # everything that determines shard bytes, so resume can never splice
    # results from a different input/engine/calibration into the merge.
    journal = None
    committed: dict[int, ShardResult] = {}
    if config.journal_dir is not None:
        fingerprint = run_fingerprint(
            spec.engine,
            eff_window,
            variant_obj.name,
            dataset.n_sites,
            [(s.start, s.end) for s in shards],
            calibration,
            n_samples=len(sample_reads) if sample_reads is not None else 1,
        )
        journal = ShardJournal(config.journal_dir, fingerprint)
        if config.resume:
            committed = journal.load(shards)
            if committed:
                fault_logger.info(
                    "resume: %d/%d shards already committed in %s; "
                    "skipping them",
                    len(committed), len(shards), journal.dir,
                )

    if config.devices > 1 or config.cpu_steal:
        # Multi-device jobs run on the heterogeneous work-stealing
        # scheduler: one lane per pool device (plus the optional host
        # lane), deque-seeded by the cost model and merged in genomic
        # order — bytes identical to every other execution mode.
        if soap_path is not None:
            raise ValueError(
                "streaming shard input (soap_path) does not combine with "
                "the multi-device scheduler: shards are dealt to lane "
                "deques up front, so the whole read set must be resident"
            )
        from .hetero import run_hetero

        pending = [s for s in shards if s.index not in committed]
        run_spec = replace(
            spec, window=eff_window, variant=variant_obj, faults=None
        )
        t0 = time.perf_counter()
        ambient = (
            fault_plan(plan) if plan is not None else contextlib.nullcontext()
        )
        with ambient:
            hetero_results, hetero_meta = run_hetero(
                dataset, run_spec, params, calibration.strip(), pending,
                config, journal=journal, sample_reads=sample_reads,
            )
        results = list(committed.values()) + hetero_results
        exec_meta = {
            "workers": config.workers,
            "pool": "hetero",
            "shard_size": shards[0].n_sites if shards else 0,
            "n_shards": len(shards),
            "streaming": False,
            "prefetch": config.prefetch,
            "cache": config.cache,
            "fusion": config.fusion,
            "retries": sum(sr.attempts - 1 for sr in hetero_results),
            "resumed": len(committed),
            "shard_timeout": config.shard_timeout,
            "samples": len(sample_reads) if sample_reads is not None else 1,
            "wall": time.perf_counter() - t0,
            "hetero": hetero_meta,
        }
        return merge_shard_results(
            results, calibration, output_path=output_path,
            exec_meta=exec_meta,
        )

    streaming = soap_path is not None
    state = {
        "spec": replace(
            spec, window=eff_window, variant=variant_obj, faults=None
        ),
        "params": params,
        "dataset": _dataset_without_reads(dataset) if streaming else dataset,
        "calibration": calibration.strip(),
        "faults": plan,
        "resident": resident,
    }
    if sample_reads is not None:
        state["samples"] = sample_reads
    if streaming:
        batches = ShardBatchReader(
            soap_path,
            [(s.start, s.end) for s in shards],
            dataset.n_sites,
            chrom=dataset.reference.name,
            quarantine=config.quarantine,
        )
        tasks = (
            (shard, batch)
            for shard, (_, _, batch) in zip(shards, batches)
            if shard.index not in committed
        )
    else:
        tasks = (
            (shard, None) for shard in shards if shard.index not in committed
        )

    t0 = time.perf_counter()
    results: list[ShardResult] = list(committed.values())
    retries_used = 0
    # Installing the plan is process-global; skip the install entirely for
    # plan-free jobs so concurrent serve threads don't clear each other's
    # schedules.
    ambient = fault_plan(plan) if plan is not None else contextlib.nullcontext()
    with ambient:
        pool = make_pool(
            config.workers,
            initializer=_init_worker,
            initargs=(state,),
            force_serial=config.force_serial,
        )
        try:
            drain = _drain(pool, tasks, config)
            while True:
                try:
                    sr = next(drain)
                except StopIteration as stop:
                    retries_used = stop.value or 0
                    break
                if journal is not None:
                    journal.commit(sr)
                results.append(sr)
        finally:
            pool.shutdown()

    exec_meta = {
        "workers": config.workers,
        "pool": pool.kind,
        "shard_size": shards[0].n_sites if shards else 0,
        "n_shards": len(shards),
        "streaming": streaming,
        "prefetch": config.prefetch,
        "cache": config.cache,
        "fusion": config.fusion,
        "retries": retries_used,
        "resumed": len(committed),
        "shard_timeout": config.shard_timeout,
        "samples": len(sample_reads) if sample_reads is not None else 1,
        "wall": time.perf_counter() - t0,
    }
    return merge_shard_results(
        results, calibration, output_path=output_path, exec_meta=exec_meta
    )
