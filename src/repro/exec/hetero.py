"""Heterogeneous multi-device scheduling with deque-based work stealing.

SOAP3-dp splits one short-read workload across several GPUs *and* the host
CPU at once; this module is that scheduler for the simulated pool.  A job
with ``devices > 1`` or ``cpu_steal`` runs here instead of the process
pool: window-aligned shards (the same plan the sharded executor uses) are
dealt onto per-lane deques — one lane per pool device, plus an optional
``gsnp_cpu`` host-engine lane — and each lane drains its own deque from
the front while idle lanes steal from the *back* of the fullest deque
(the classic owner-pops-head / thief-pops-tail discipline).  The initial
deal comes from the roofline cost model
(:func:`~repro.gpusim.costmodel.predict_split`): lanes receive shards in
proportion to their predicted rates, and stealing corrects whatever the
prediction got wrong, so a slow device or the CPU path picks up straggler
windows instead of gating the run.

Correctness is schedule-independent: every lane produces the same bytes
for a given shard (the three engines are bitwise-identical by
construction), results are keyed by shard index, and the final merge is
the executor's ordered :func:`~repro.exec.merge.merge_shard_results` —
never completion order.  The output is bitwise identical to a serial run
for any device count, any steal schedule, with fusion/prefetch/residency/
sanitizer on or off.

Failure handling extends the degradation ladder with the ``device-failed``
rung: a lane whose device dies (a real ``AllocationError`` or the seeded
``gpusim.device.fail`` chaos site) announces itself, pushes its in-hand
shard back on its deque and retires — surviving lanes steal the orphaned
work.  If *every* lane dies, the coordinator finishes the leftovers on a
fresh host-engine pipeline, so the job completes with identical bytes as
long as any compute resource remains.

Modeled time: lanes compute concurrently but share one PCIe/host link, so
the pool makespan is ``max(lane compute) + serialized link time``
(:class:`~repro.gpusim.costmodel.PoolCostModel`) — the number
``gsnp-bench``'s multi-device arm reports against the paper's
cluster-scale tables.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Optional

from ..api import JobSpec, create_pipeline
from ..errors import AllocationError, ShardError
from ..faults.degrade import degrade
from ..faults.plan import fault_point, scope as fault_scope
from ..gpusim.costmodel import (
    GpuCostModel,
    LaneUsage,
    PoolCostModel,
    predict_lane_rates,
    predict_split,
)
from ..gpusim.device import Device
from ..gpusim.pool import DevicePool
from .shard import Shard, ShardResult

#: Lane id of the host-engine (gsnp_cpu) steal lane.
CPU_LANE = -1


@dataclass
class _Lane:
    """One scheduler lane: a device (or the host engine) plus its deque."""

    lane_id: int  # device_id, or CPU_LANE for the host lane
    kind: str  # "gpu" | "cpu"
    device: Optional[Device] = None
    deque: "deque[tuple[Shard, int]]" = field(default_factory=deque)
    pipeline: object = None
    dead: bool = False
    #: Roofline-predicted modeled seconds per shard, set at deal time;
    #: the steal arbiter's stand-in until the lane has observed costs.
    predicted_cost: float = 0.0
    #: Shards this lane completed / stole from other lanes.
    shards_run: int = 0
    steals: int = 0
    #: Modeled seconds of the shards this lane ran (incl. transfer time).
    modeled_seconds: float = 0.0
    #: Host<->device bytes this lane's shards moved.
    transfer_bytes: int = 0
    wall: float = 0.0

    @property
    def name(self) -> str:
        return "cpu" if self.kind == "cpu" else f"gpu{self.lane_id}"


def _shard_model(profile) -> tuple[float, int]:
    """(modeled seconds, transfer bytes) of one shard's profile."""
    total = profile.total_modeled()
    xfer = sum(r.transfer_bytes for r in profile.records.values())
    return total, xfer


class _HeteroRun:
    """State of one heterogeneous execution (lanes, lock, results)."""

    def __init__(
        self,
        dataset,
        spec: JobSpec,
        params,
        calibration,
        shards: list[Shard],
        config,
        journal,
        sample_reads=None,
    ) -> None:
        self.dataset = dataset
        self.spec = spec
        self.params = params
        self.calibration = calibration
        self.shards = shards
        self.config = config
        self.journal = journal
        #: Cohort mode: full per-sample alignment batches (sample 0
        #: first); every lane windows all S samples for its shard range.
        self.sample_reads = sample_reads
        self.lock = threading.Lock()
        self.results: dict[int, ShardResult] = {}
        self.error: Optional[BaseException] = None
        self.pool = DevicePool(spec.devices, sanitize=spec.sanitize)
        self.lanes: list[_Lane] = [
            _Lane(lane_id=dev.device_id, kind="gpu", device=dev)
            for dev in self.pool
        ]
        if spec.cpu_steal:
            self.lanes.append(_Lane(lane_id=CPU_LANE, kind="cpu"))
        # Lane concurrency: by default every lane runs at once; an explicit
        # --workers N caps the number of simultaneously busy lanes (the
        # deques and steal policy are unchanged, so output is identical).
        busy = (
            len(self.lanes)
            if spec.workers <= 1
            else min(spec.workers, len(self.lanes))
        )
        self.busy_sem = threading.BoundedSemaphore(busy)
        self._cpu_calibration = None

    # -- initial deal ----------------------------------------------------

    def deal(self) -> list[int]:
        """Seed the lane deques from the cost model's predicted split."""
        reads = self.dataset.reads
        gpu_rate, cpu_rate = predict_lane_rates(
            self.dataset.n_sites,
            self.calibration.total_reads * (reads.read_len or 100),
        )
        counts = predict_split(
            len(self.shards),
            self.spec.devices,
            self.spec.cpu_steal,
            gpu_rate,
            cpu_rate,
        )
        avg_sites = (
            sum(s.n_sites for s in self.shards) / len(self.shards)
            if self.shards
            else 0.0
        )
        for lane in self.lanes:
            rate = cpu_rate if lane.kind == "cpu" else gpu_rate
            lane.predicted_cost = avg_sites / rate
        # Interleaved deal: lane quotas are consumed round-robin over the
        # shard list so every lane's deque spans the genome (ragged read
        # depth then averages out within each lane).
        remaining = list(counts)
        lane_idx = 0
        for shard in self.shards:
            while remaining[lane_idx] == 0:
                lane_idx = (lane_idx + 1) % len(self.lanes)
            self.lanes[lane_idx].deque.append((shard, 0))
            remaining[lane_idx] -= 1
            lane_idx = (lane_idx + 1) % len(self.lanes)
        return counts

    # -- lane pipelines --------------------------------------------------

    def _lane_spec(self, lane: _Lane) -> JobSpec:
        # Each lane is a plain serial single-device pipeline; the pool
        # shape lives in the scheduler, not in the lane's spec.
        base = replace(self.spec, devices=1, cpu_steal=False)
        if lane.kind == "cpu":
            # The host steal lane is the sparse CPU engine; fusion is a
            # device-side concept and stays off there.
            return replace(base, engine="gsnp_cpu", fusion=False)
        return base

    def _lane_calibration(self, lane: _Lane):
        if lane.kind == "gpu":
            return self.calibration
        # The shared calibration was produced by the GPU engine, which
        # leaves the expanded host tables unbuilt; the CPU lane expands
        # them once (memoized by pm_flat fingerprint) and reuses the rest.
        if self._cpu_calibration is None:
            from ..core.score_table import cached_new_p_matrix

            self._cpu_calibration = replace(
                self.calibration,
                new_p_flat=cached_new_p_matrix(self.calibration.pm_flat),
            )
        return self._cpu_calibration

    def _lane_pipeline(self, lane: _Lane):
        if lane.pipeline is None:
            lane.pipeline = create_pipeline(
                spec=self._lane_spec(lane),
                params=self.params,
                device=lane.device,
            )
        return lane.pipeline

    # -- the work-stealing loop ------------------------------------------

    def _steal_helps(self, thief: _Lane, victim: _Lane) -> bool:
        """Whether a steal improves the *modeled* finish time.

        Lanes race in Python wall time, which bears no relation to the
        modeled hardware speeds (a simulated kernel is slower to emulate
        than the sparse host loop is to run).  Stealing is therefore
        arbitrated on modeled lane clocks: the thief takes a shard only
        if it would finish it before the victim would have drained its
        own deque.  A thief that has not run a shard yet has no observed
        cost — its first steal is allowed whenever the victim has a
        backlog to spare, which bootstraps its cost estimate (and
        guarantees an idle CPU lane's first act is a steal).
        """
        if not thief.shards_run:
            return len(victim.deque) >= (2 if thief.kind == "cpu" else 1)
        thief_cost = thief.modeled_seconds / thief.shards_run
        # An unobserved victim's backlog is priced from the roofline
        # predictor, not the thief's own cost — a CPU thief pricing a GPU
        # deque at CPU rates would justify stealing the whole queue.
        victim_cost = (
            victim.modeled_seconds / victim.shards_run
            if victim.shards_run
            else victim.predicted_cost
        )
        return (
            thief.modeled_seconds + thief_cost
            <= victim.modeled_seconds + len(victim.deque) * victim_cost
        )

    def _next_task(self, lane: _Lane) -> Optional[tuple[Shard, int, bool]]:
        """Pop the lane's next shard, stealing when its deque is empty.

        Owner pops from the head of its own deque; a thief takes from the
        *tail* of the fullest other deque (including a dead lane's — that
        is how orphaned work drains).  A steal grabs *half the victim's
        backlog* (at least one shard), Cilk-style: the thief runs the
        first stolen shard now and queues the rest on its own deque, so
        an imbalance is corrected in O(log n) steals instead of one
        lock-contended steal per shard.  Tail order is preserved, which
        keeps the schedule deterministic for a given interleaving —
        output bytes are schedule-independent regardless.  Returns
        ``(shard, attempt, stolen)`` or ``None`` when every deque is
        empty or no steal would help.
        """
        with self.lock:
            if self.error is not None:
                return None
            if lane.deque and not lane.dead:
                shard, attempt = lane.deque.popleft()
                return shard, attempt, False
            victims = [
                other
                for other in self.lanes
                if other is not lane and other.deque
            ]
            if not victims or lane.dead:
                return None
            victim = max(victims, key=lambda o: (len(o.deque), -o.lane_id))
            if not self._steal_helps(lane, victim) and not victim.dead:
                return None
            grab = max(1, len(victim.deque) // 2)
            taken = [victim.deque.pop() for _ in range(grab)]
            lane.steals += grab
            # ``taken`` came off the tail newest-first; re-queue the
            # surplus on the thief preserving the victim's order.
            shard, attempt = taken[-1]
            for entry in reversed(taken[:-1]):
                lane.deque.append(entry)
            return shard, attempt, True

    def _run_one(self, lane: _Lane, shard: Shard, attempt: int) -> ShardResult:
        pipeline = self._lane_pipeline(lane)
        with fault_scope(shard=shard.index, attempt=attempt):
            if lane.kind == "gpu":
                # Chaos site: a scheduled plan kills this device outright;
                # the lane retires and the other lanes steal its work.
                fault_point("gpusim.device.fail", key=lane.lane_id)
            fault_point("exec.shard.error", key=shard.index)
            fault_point("exec.shard.slow", key=shard.index)
            t0 = time.perf_counter()
            if self.sample_reads is not None:
                result = pipeline.run_cohort(
                    self.dataset,
                    self.sample_reads,
                    site_range=(shard.start, shard.end),
                    calibration=self._lane_calibration(lane),
                )
            else:
                result = pipeline.run(
                    self.dataset,
                    site_range=(shard.start, shard.end),
                    calibration=self._lane_calibration(lane),
                )
            wall = time.perf_counter() - t0
        if self.sample_reads is not None:
            return ShardResult(
                shard=shard,
                table=result.samples[0].table,
                profile=result.profile,
                compressed=result.samples[0].compressed_output,
                output_bytes=result.output_bytes,
                sort_stats=result.samples[0].sort_stats,
                peak_gpu_bytes=result.extras.get("peak_gpu_bytes", 0),
                wall=wall,
                attempts=attempt + 1,
                pid=lane.lane_id,
                sample_tables=[s.table for s in result.samples],
                sample_compressed=[
                    s.compressed_output for s in result.samples
                ],
            )
        return ShardResult(
            shard=shard,
            table=result.table,
            profile=result.profile,
            compressed=getattr(result, "compressed_output", b""),
            output_bytes=result.output_bytes,
            sort_stats=getattr(result, "sort_stats", []),
            peak_gpu_bytes=result.extras.get("peak_gpu_bytes", 0),
            wall=wall,
            attempts=attempt + 1,
            pid=lane.lane_id,
        )

    def _record(self, lane: _Lane, sr: ShardResult) -> None:
        modeled, xfer = _shard_model(sr.profile)
        with self.lock:
            self.results[sr.shard.index] = sr
            lane.shards_run += 1
            lane.modeled_seconds += modeled
            lane.transfer_bytes += xfer
            if self.journal is not None:
                self.journal.commit(sr)

    def _retire(self, lane: _Lane, shard: Shard, attempt: int,
                exc: BaseException) -> None:
        """The device-failed rung: give the shard back and kill the lane."""
        with self.lock:
            lane.deque.appendleft((shard, attempt))
            lane.dead = True
            survivors = [
                o.name for o in self.lanes if not o.dead and o is not lane
            ]
        degrade(
            "device-failed",
            action="retiring lane %s; %s steal its remaining shards"
            % (lane.name, "/".join(survivors) or "the coordinator fallback"),
            reason=repr(exc),
            lane=lane.name,
            shard=shard.index,
        )

    def _lane_main(self, lane: _Lane) -> None:
        t0 = time.perf_counter()
        try:
            while True:
                task = self._next_task(lane)
                if task is None:
                    return
                shard, attempt, _stolen = task
                try:
                    with self.busy_sem:
                        sr = self._run_one(lane, shard, attempt)
                except AllocationError as exc:
                    # A pool device that cannot even allocate is treated
                    # as failed hardware, not a footprint to shrink: the
                    # multi-device rung is redistribution, and the shard
                    # reruns identically on a surviving lane.
                    self._retire(lane, shard, attempt, exc)
                    return
                except BaseException as exc:
                    if lane.kind == "gpu" and _is_device_death(exc):
                        self._retire(lane, shard, attempt, exc)
                        return
                    if attempt >= self.config.max_retries:
                        with self.lock:
                            if self.error is None:
                                self.error = ShardError(
                                    f"{shard} failed after {attempt + 1} "
                                    f"attempts on lane {lane.name}; last "
                                    f"error: {exc!r}",
                                    shard_index=shard.index,
                                    site_range=(shard.start, shard.end),
                                    attempts=attempt + 1,
                                )
                                self.error.__cause__ = exc
                        return
                    delay = self.config.backoff_base * (2 ** attempt)
                    degrade(
                        "shard-retry",
                        action=f"re-queueing on lane {lane.name} in "
                        f"{delay:.3f}s (attempt {attempt + 2}/"
                        f"{self.config.max_retries + 1})",
                        reason=repr(exc),
                        shard=shard.index,
                    )
                    time.sleep(delay)
                    with self.lock:
                        lane.deque.appendleft((shard, attempt + 1))
                    continue
                self._record(lane, sr)
        finally:
            lane.wall = time.perf_counter() - t0

    # -- coordinator -----------------------------------------------------

    def _fallback_leftovers(self) -> None:
        """Run shards no lane completed on a fresh host-engine pipeline."""
        missing = [s for s in self.shards if s.index not in self.results]
        if not missing:
            return
        degrade(
            "device-failed",
            action=f"running {len(missing)} leftover shard(s) on a fresh "
            "host-engine pipeline",
            reason="no surviving scheduler lane",
            shards=[s.index for s in missing],
        )
        lane = _Lane(lane_id=CPU_LANE, kind="cpu")
        for shard in missing:
            sr = self._run_one(lane, shard, 0)
            self._record(lane, sr)
        self.lanes.append(lane)

    def lane_usages(self) -> list[LaneUsage]:
        """Per-lane modeled usage with transfers separated onto the link."""
        gpu_model = GpuCostModel(self.pool.spec)
        usages = []
        for lane in self.lanes:
            compute = lane.modeled_seconds - gpu_model.transfer_time(
                lane.transfer_bytes
            )
            usages.append(
                LaneUsage(
                    compute_seconds=max(compute, 0.0),
                    transfer_bytes=lane.transfer_bytes,
                    transfer_count=(
                        lane.device.transfers.h2d_count
                        + lane.device.transfers.d2h_count
                        if lane.device is not None
                        else 0
                    ),
                )
            )
        return usages

    def meta(self, counts: list[int]) -> dict:
        pool_model = PoolCostModel(self.pool.link.spec)
        usages = self.lane_usages()
        link_total = self.pool.link.total()
        lanes_meta = []
        for lane, usage in zip(self.lanes, usages):
            lanes_meta.append(
                {
                    "lane": lane.name,
                    "kind": lane.kind,
                    "shards": lane.shards_run,
                    "steals": lane.steals,
                    "dead": lane.dead,
                    "modeled_seconds": lane.modeled_seconds,
                    "compute_seconds": usage.compute_seconds,
                    "transfer_bytes": lane.transfer_bytes,
                    "wall": lane.wall,
                }
            )
        return {
            "devices": self.spec.devices,
            "cpu_steal": self.spec.cpu_steal,
            "initial_split": list(counts),
            "steals": sum(l.steals for l in self.lanes),
            "lanes": lanes_meta,
            "per_device": self.pool.per_device_stats(),
            "link": {
                "h2d_bytes": link_total.h2d_bytes,
                "d2h_bytes": link_total.d2h_bytes,
                "h2d_count": link_total.h2d_count,
                "d2h_count": link_total.d2h_count,
                "launches": link_total.launches,
                "serialized_seconds": self.pool.link.serialized_seconds(),
            },
            "pool_launches": self.pool.total_counters().launches,
            "modeled": {
                "makespan_seconds": pool_model.makespan(usages),
                "link_seconds": pool_model.link_seconds(usages),
                "compute_seconds_max": max(
                    (u.compute_seconds for u in usages), default=0.0
                ),
            },
        }

    def close(self) -> None:
        """Release lane pipelines and pool residency; leak-check sanitized
        devices that survived the run."""
        for lane in self.lanes:
            release = getattr(lane.pipeline, "release_cache", None)
            if release is not None:
                release()
        for dev in self.pool:
            if dev.sanitizer is not None and not any(
                lane.dead for lane in self.lanes
                if lane.device is dev
            ):
                dev.resident.clear()
                dev.sanitize_teardown(strict=True)
        self.pool.release()


def _is_device_death(exc: BaseException) -> bool:
    """Whether an exception marks the lane's device as failed hardware."""
    from ..errors import InjectedFault

    if isinstance(exc, AllocationError):
        return True
    return (
        isinstance(exc, InjectedFault)
        and getattr(exc, "site", "") == "gpusim.device.fail"
    )


def run_hetero(
    dataset,
    spec: JobSpec,
    params,
    calibration,
    shards: list[Shard],
    config,
    journal=None,
    sample_reads=None,
) -> tuple[list[ShardResult], dict]:
    """Execute ``shards`` across the device pool + optional CPU lane.

    Returns the completed :class:`ShardResult` list (unordered — the
    caller's merge restores genomic order) and the scheduler metadata dict
    (per-lane stats, steal counts, link traffic, modeled makespan).
    Raises :class:`~repro.errors.ShardError` if any shard exhausts its
    retry budget on every lane that tried it.
    """
    run = _HeteroRun(dataset, spec, params, calibration, shards, config,
                     journal, sample_reads=sample_reads)
    try:
        counts = run.deal()
        threads = [
            threading.Thread(
                target=run._lane_main, args=(lane,),
                name=f"gsnp-lane-{lane.name}", daemon=True,
            )
            for lane in run.lanes
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if run.error is not None:
            raise run.error
        run._fallback_leftovers()
        meta = run.meta(counts)
        _note_job(meta)
        return list(run.results.values()), meta
    finally:
        run.close()


# -- cumulative pool stats (the serve daemon's /stats "devices" section) ---

_STATS_LOCK = threading.Lock()
_POOL_STATS: dict = {"jobs": 0, "shards": 0, "steals": 0, "last": None}


def _note_job(meta: dict) -> None:
    with _STATS_LOCK:
        _POOL_STATS["jobs"] += 1
        _POOL_STATS["shards"] += sum(l["shards"] for l in meta["lanes"])
        _POOL_STATS["steals"] += meta["steals"]
        _POOL_STATS["last"] = {
            "devices": meta["devices"],
            "cpu_steal": meta["cpu_steal"],
            "steals": meta["steals"],
            "per_device": meta["per_device"],
            "modeled": meta["modeled"],
        }


def pool_stats() -> dict:
    """Cumulative multi-device scheduler stats (plus the last job's
    per-device breakdown), for ``gsnp-serve`` ``/stats``."""
    with _STATS_LOCK:
        return {
            "jobs": _POOL_STATS["jobs"],
            "shards": _POOL_STATS["shards"],
            "steals": _POOL_STATS["steals"],
            "last": _POOL_STATS["last"],
        }


__all__ = ["CPU_LANE", "pool_stats", "run_hetero"]
