"""Global constants shared across the GSNP reproduction.

These pin down the matrix geometry and bit layouts that the paper's
Algorithms 1-4 rely on.  All encodings follow Section IV of the paper:

* ``base_occ`` is the dense per-site aligned-base matrix of shape
  ``base x score x coord x strand`` = 4 x 64 x 256 x 2 = 131,072 cells.
* ``base_word`` packs one aligned-base observation into a 32-bit word as
  ``base << 15 | score << 9 | coord << 1 | strand`` (Figure 3).
* ``p_matrix`` is indexed as ``q << 12 | coord << 4 | allele << 2 | base``
  (Algorithm 2).
* ``new_p_matrix`` is indexed as ``(q << 10 | coord << 2 | base) * 10 + i``
  where ``i`` is the i-th of the ten unordered diploid genotypes
  (Algorithm 3).
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# Alphabet
# ---------------------------------------------------------------------------

#: Number of nucleotide base types (A, C, G, T).
N_BASES = 4

#: Canonical base ordering used for all integer encodings.
BASES = "ACGT"

#: base char -> small int (A=0, C=1, G=2, T=3).
BASE_TO_CODE = {b: i for i, b in enumerate(BASES)}

#: small int -> base char.
CODE_TO_BASE = {i: b for i, b in enumerate(BASES)}

#: Complement map at the code level (A<->T, C<->G).
COMPLEMENT_CODE = np.array([3, 2, 1, 0], dtype=np.uint8)

#: Unknown/missing base marker in text formats.
N_CHAR = "N"

# ---------------------------------------------------------------------------
# Matrix geometry (Section IV-A)
# ---------------------------------------------------------------------------

#: Number of distinct sequencing quality scores (Phred 0..63).
N_SCORES = 64

#: Maximum read length supported by the coordinate dimension.
MAX_READ_LEN = 256

#: Number of strands (forward=0, reverse=1).
N_STRANDS = 2

#: Elements per site in the dense ``base_occ`` matrix (= 131,072).
BASE_OCC_SIZE = N_BASES * N_SCORES * MAX_READ_LEN * N_STRANDS

# ---------------------------------------------------------------------------
# base_word bit layout (Figure 3): base<<15 | score<<9 | coord<<1 | strand
# ---------------------------------------------------------------------------

STRAND_SHIFT = 0
COORD_SHIFT = 1
SCORE_SHIFT = 9
BASE_SHIFT = 15

STRAND_BITS = 1
COORD_BITS = 8
SCORE_BITS = 6
BASE_BITS = 2

STRAND_MASK = ((1 << STRAND_BITS) - 1) << STRAND_SHIFT
COORD_MASK = ((1 << COORD_BITS) - 1) << COORD_SHIFT
SCORE_MASK = ((1 << SCORE_BITS) - 1) << SCORE_SHIFT
BASE_MASK = ((1 << BASE_BITS) - 1) << BASE_SHIFT

#: XOR-ing a base_word with this mask inverts the score field so that an
#: ascending sort yields the canonical iteration order of Algorithm 1
#: (base ascending, score DESCENDING, coord ascending, strand ascending).
CANONICAL_SORT_MASK = SCORE_MASK

#: Sentinel used to pad batch-sort buckets; sorts after every real word.
BASE_WORD_SENTINEL = np.uint32(0xFFFFFFFF)

# ---------------------------------------------------------------------------
# Genotypes
# ---------------------------------------------------------------------------

#: The ten unordered diploid genotypes (allele1 <= allele2), in the order
#: produced by the two nested loops of Algorithm 1 lines 11-12.
GENOTYPES = tuple(
    (a1, a2) for a1 in range(N_BASES) for a2 in range(a1, N_BASES)
)

#: Number of unordered diploid genotypes.
N_GENOTYPES = len(GENOTYPES)  # == 10

#: Map (a1, a2) -> index in GENOTYPES order.
GENOTYPE_INDEX = {g: i for i, g in enumerate(GENOTYPES)}

#: Dense 16-slot index used by SOAPsnp's ``type_likely[a1<<2|a2]`` layout;
#: maps a1<<2|a2 -> compact genotype index (or -1 for a1 > a2 slots).
DENSE_TO_COMPACT = np.full(16, -1, dtype=np.int8)
for _i, (_a1, _a2) in enumerate(GENOTYPES):
    DENSE_TO_COMPACT[(_a1 << 2) | _a2] = _i

#: IUPAC ambiguity code for each genotype (AA=A, AC=M, ...).
GENOTYPE_IUPAC = {
    (0, 0): "A", (1, 1): "C", (2, 2): "G", (3, 3): "T",
    (0, 1): "M", (0, 2): "R", (0, 3): "W",
    (1, 2): "S", (1, 3): "Y", (2, 3): "K",
}

#: IUPAC char -> genotype tuple (inverse of GENOTYPE_IUPAC).
IUPAC_GENOTYPE = {v: k for k, v in GENOTYPE_IUPAC.items()}

#: Transitions are A<->G and C<->T; all other substitutions are
#: transversions.  Used for genotype priors (ti/tv weighting).
TRANSITIONS = {(0, 2), (2, 0), (1, 3), (3, 1)}

# ---------------------------------------------------------------------------
# p_matrix / new_p_matrix layouts (Algorithms 2 and 3)
# ---------------------------------------------------------------------------

#: Number of entries in ``p_matrix`` (q x coord x allele x base).
P_MATRIX_SIZE = N_SCORES * MAX_READ_LEN * N_BASES * N_BASES

P_Q_SHIFT = 12
P_COORD_SHIFT = 4
P_ALLELE_SHIFT = 2
P_BASE_SHIFT = 0

#: Number of entries in ``new_p_matrix`` = 10 genotype-expanded copies.
NEW_P_MATRIX_SIZE = N_SCORES * MAX_READ_LEN * N_BASES * N_GENOTYPES

NP_Q_SHIFT = 10
NP_COORD_SHIFT = 2
NP_BASE_SHIFT = 0

# ---------------------------------------------------------------------------
# Pipeline defaults (Section VI-A)
# ---------------------------------------------------------------------------

#: Default per-window number of sites for GSNP / GSNP_CPU.
DEFAULT_WINDOW_GSNP = 256_000

#: Default per-window number of sites for the SOAPsnp baseline.
DEFAULT_WINDOW_SOAPSNP = 4_000

#: Default read length for second-generation data used in the evaluation.
DEFAULT_READ_LEN = 100

#: Maximum consensus quality reported in the output.
MAX_CNS_QUALITY = 99

#: Multipass sort size-class boundaries (Section VI-C): buckets are
#: [0,1], (1,8], (8,16], (16,32], (32,64], (64, inf).
MULTIPASS_BOUNDS = (1, 8, 16, 32, 64)

#: Number of output columns in the SOAPsnp .cns result table.
N_OUTPUT_COLUMNS = 17
