"""Cross-engine verification harness.

The paper's genomists "suggest that it is critical to keep the results
consistent" (§IV-G); this module gives operators a one-call audit that the
three engines, all kernel variants, and the compression round trip agree
bitwise on a given dataset — the check BGI would run before swapping GSNP
into the production pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .compress.columnar import decode_table, encode_table
from .core.likelihood import ALL_VARIANTS
from .core.pipeline import GsnpPipeline
from .formats.cns import ResultTable
from .seqsim.datasets import SimulatedDataset
from .soapsnp.pipeline import SoapsnpPipeline


@dataclass
class VerificationReport:
    """Outcome of one verification run."""

    n_sites: int = 0
    checks: list[tuple[str, bool]] = field(default_factory=list)

    def record(self, name: str, ok: bool) -> None:
        self.checks.append((name, ok))

    @property
    def passed(self) -> bool:
        return all(ok for _, ok in self.checks)

    def summary(self) -> str:
        lines = [
            f"{'PASS' if ok else 'FAIL'}  {name}" for name, ok in self.checks
        ]
        verdict = "ALL CHECKS PASSED" if self.passed else "FAILURES PRESENT"
        return "\n".join(lines + [verdict])


def verify_engines(
    dataset: SimulatedDataset,
    window_sizes: tuple[int, ...] = (1000, 4096),
    check_variants: bool = True,
    check_compression: bool = True,
) -> VerificationReport:
    """Run the full consistency audit over a dataset.

    Checks, all bitwise:

    * SOAPsnp == GSNP_CPU == GSNP (reference window size),
    * every engine is invariant to the window size,
    * every GPU likelihood-kernel variant agrees (optional),
    * compressed output decodes to the exact table (optional).
    """
    report = VerificationReport(n_sites=dataset.n_sites)
    ref_window = min(max(window_sizes), dataset.n_sites)

    reference = SoapsnpPipeline(window_size=ref_window).run(dataset).table
    report.n_sites = reference.n_sites

    cpu = GsnpPipeline(window_size=ref_window, mode="cpu").run(dataset)
    report.record("gsnp_cpu == soapsnp", cpu.table.equals(reference))
    gpu = GsnpPipeline(window_size=ref_window, mode="gpu").run(dataset)
    report.record("gsnp == soapsnp", gpu.table.equals(reference))

    for w in window_sizes:
        w = min(w, dataset.n_sites)
        if w == ref_window:
            continue
        t = SoapsnpPipeline(window_size=min(w, 4000)).run(dataset).table
        report.record(f"soapsnp window={w} invariant", t.equals(reference))
        t = GsnpPipeline(window_size=w, mode="gpu").run(dataset).table
        report.record(f"gsnp window={w} invariant", t.equals(reference))

    if check_variants:
        for variant in ALL_VARIANTS:
            t = GsnpPipeline(
                window_size=ref_window, mode="gpu", variant=variant
            ).run(dataset).table
            report.record(
                f"kernel variant {variant.name} consistent",
                t.equals(reference),
            )

    if check_compression:
        blob = encode_table(reference)
        decoded, _ = decode_table(blob)
        report.record("compression round trip exact", decoded.equals(reference))

    return report
