"""GSNP reproduction: GPU-accelerated SNP detection (ICPP 2011).

A from-scratch Python reproduction of *GSNP: A DNA Single-Nucleotide
Polymorphism Detection System with GPU Acceleration* (Lu et al., ICPP
2011), including every substrate the paper depends on: the SOAPsnp dense
baseline, a simulated SIMT GPU with hardware counters and a roofline cost
model, a short-read/diploid-genome simulator, a pigeonhole aligner, the
multipass batch bitonic sorting network, and the customized columnar
compression stack.

Quick start::

    from repro import generate_dataset, CH21_SPEC, Engine, GsnpDetector

    dataset = generate_dataset(CH21_SPEC)
    detector = GsnpDetector(engine=Engine.GSNP, workers=4)
    result = detector.run(dataset)
    for call in detector.calls(result.table):
        print(call.pos, call.quality)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .constants import GENOTYPES, GENOTYPE_IUPAC, N_GENOTYPES

# .core must initialize before .api: core.detector pulls .api mid-init,
# which in turn only needs core *sub-modules* (resolvable while the core
# package is still initializing), not the core package itself.
from .core import (
    Accuracy,
    GsnpDetector,
    GsnpPipeline,
    GsnpResult,
    SnpCall,
    detect_snps,
)
from .api import Engine, Pipeline, create_pipeline, engine_names
from .formats.cns import ResultTable, read_cns, write_cns
from .gpusim import BGI_PLATFORM, Device, GpuCostModel
from .seqsim import (
    CH1_SPEC,
    CH21_SPEC,
    DatasetSpec,
    QualityModel,
    SimulatedDataset,
    generate_dataset,
    whole_genome_specs,
)
from .exec import ExecConfig, execute
from .soapsnp import CallingParams, SoapsnpPipeline, SoapsnpResult
from .validate import VerificationReport, verify_engines

__version__ = "1.0.0"

__all__ = [
    "Accuracy",
    "BGI_PLATFORM",
    "CH1_SPEC",
    "CH21_SPEC",
    "CallingParams",
    "DatasetSpec",
    "Device",
    "Engine",
    "ExecConfig",
    "GENOTYPES",
    "GENOTYPE_IUPAC",
    "GpuCostModel",
    "GsnpDetector",
    "GsnpPipeline",
    "GsnpResult",
    "N_GENOTYPES",
    "Pipeline",
    "QualityModel",
    "ResultTable",
    "SimulatedDataset",
    "SnpCall",
    "SoapsnpPipeline",
    "SoapsnpResult",
    "VerificationReport",
    "__version__",
    "create_pipeline",
    "detect_snps",
    "engine_names",
    "execute",
    "generate_dataset",
    "read_cns",
    "verify_engines",
    "whole_genome_specs",
    "write_cns",
]
