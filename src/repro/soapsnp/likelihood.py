"""Likelihood calculation (Algorithms 1 and 2 of the paper).

Two implementations with *identical* numerical behaviour:

* :func:`likelihood_site_reference` — the literal quadruple loop of
  Algorithm 1 over one site's dense ``base_occ`` matrix.  O(131k) per site;
  used by tests as the ground-truth oracle.
* the vectorized *canonical engine* — the same mathematics evaluated over
  flat observation arrays in canonical order, with strictly per-site
  sequential accumulation (a lockstep loop across sites, sequential within
  a site).  This is the semantics both the SOAPsnp baseline pipeline and
  GSNP's simulated GPU kernel execute, which is how the reproduction
  achieves the paper's §IV-G bitwise CPU/GPU consistency.

The quality-dependency adjustment ``adjust(score, dep_count)`` is expressed
through *occurrence ordinals*: the k-th counted observation at the same
(base, strand, coord) of a site — in canonical order — is penalized by
``penalty[k-1]`` Phred (table precomputed on the host with log10; see
:mod:`repro.stats.tables`).
"""

from __future__ import annotations

import numpy as np

from ..constants import (
    GENOTYPES,
    MAX_READ_LEN,
    N_BASES,
    N_GENOTYPES,
    N_SCORES,
    N_STRANDS,
)
from ..sortnet.multipass import MULTIPASS_BOUNDS, size_class_of
from ..sortnet.bitonic import next_pow2
from .observe import Observations
from .p_matrix import p_matrix_index


def adjust_score_scalar(score: int, dep_count: int, penalty: np.ndarray) -> int:
    """``adjust``: penalized quality of the dep_count-th observation."""
    k = min(dep_count - 1, penalty.size - 1)
    return max(0, int(score) - int(penalty[k]))


def likelihood_site_reference(
    occ: np.ndarray, p_matrix: np.ndarray, penalty: np.ndarray,
    read_len: int = MAX_READ_LEN,
) -> np.ndarray:
    """Algorithm 1, literally, for one site.

    ``occ`` is the (4, 64, 256, 2) dense matrix, ``p_matrix`` the
    (64, 256, 4, 4) calibration matrix.  Returns the 10 log10 genotype
    likelihoods in :data:`~repro.constants.GENOTYPES` order.
    """
    type_likely = np.zeros(16, dtype=np.float64)
    for base in range(N_BASES):
        dep_count = np.zeros(N_STRANDS * read_len, dtype=np.int64)
        for score in range(N_SCORES - 1, -1, -1):
            for coord in range(read_len):
                for strand in range(N_STRANDS):
                    n_occ = int(occ[base, score, coord, strand])
                    for _ in range(n_occ):
                        dep_count[strand * read_len + coord] += 1
                        q_adj = adjust_score_scalar(
                            score, dep_count[strand * read_len + coord], penalty
                        )
                        # Algorithm 2: likely_update for the 10 genotypes.
                        p_row = p_matrix[q_adj, coord]
                        for a1 in range(N_BASES):
                            for a2 in range(a1, N_BASES):
                                val = np.log10(
                                    0.5 * p_row[a1, base] + 0.5 * p_row[a2, base]
                                )
                                type_likely[a1 << 2 | a2] += val
    out = np.empty(N_GENOTYPES, dtype=np.float64)
    for gi, (a1, a2) in enumerate(GENOTYPES):
        out[gi] = type_likely[a1 << 2 | a2]
    return out


# ---------------------------------------------------------------------------
# Vectorized canonical engine
# ---------------------------------------------------------------------------


def occurrence_ordinals(
    site: np.ndarray, base: np.ndarray, coord: np.ndarray, strand: np.ndarray
) -> np.ndarray:
    """0-based ordinal of each observation within its dependency group.

    The group is (site, base, strand, coord); ordinals follow the input
    (canonical) order.  ``dep_count`` at the moment Algorithm 1 processes
    observation i is exactly ``ordinal[i] + 1``.
    """
    m = site.size
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.lexsort((strand, coord, base, site))
    key = (
        site[order].astype(np.int64) << 20
        | base[order].astype(np.int64) << 18
        | coord[order].astype(np.int64) << 2
        | strand[order].astype(np.int64)
    )
    change = np.concatenate([[True], key[1:] != key[:-1]])
    run_id = np.cumsum(change) - 1
    run_start = np.nonzero(change)[0]
    ordinal_sorted = np.arange(m) - run_start[run_id]
    out = np.empty(m, dtype=np.int64)
    out[order] = ordinal_sorted
    return out


def adjust_scores(
    score: np.ndarray, ordinal: np.ndarray, penalty: np.ndarray
) -> np.ndarray:
    """Vectorized ``adjust``: q_adj = max(0, score - penalty[ordinal])."""
    k = np.minimum(ordinal, penalty.size - 1)
    return np.maximum(0, score.astype(np.int64) - penalty[k]).astype(np.int64)


def direct_contributions(
    pm_flat: np.ndarray,
    q_adj: np.ndarray,
    coord: np.ndarray,
    base: np.ndarray,
) -> np.ndarray:
    """Algorithm 2 for every observation and all 10 genotypes at once.

    Returns ``(m, 10)``; column i is
    ``log10(0.5 p[q,c,a1,b] + 0.5 p[q,c,a2,b])`` for the i-th genotype.
    """
    m = q_adj.size
    out = np.empty((m, N_GENOTYPES), dtype=np.float64)
    for gi, (a1, a2) in enumerate(GENOTYPES):
        p1 = pm_flat[p_matrix_index(q_adj, coord, a1, base)]
        p2 = pm_flat[p_matrix_index(q_adj, coord, a2, base)]
        out[:, gi] = np.log10(0.5 * p1 + 0.5 * p2)
    return out


def sequential_site_sums(
    contrib: np.ndarray,
    offsets: np.ndarray,
    bounds=MULTIPASS_BOUNDS,
) -> np.ndarray:
    """Per-site sequential sums of contributions, vectorized across sites.

    ``contrib`` is ``(m, 10)`` in canonical order; ``offsets`` delimits
    each site's slice.  Accumulation within a site is strictly sequential
    (element 0, then 1, ...), matching both the dense CPU loop and the
    one-thread-per-site GPU kernel bit for bit.  Sites are bucketed by
    length (the multipass size classes) so the lockstep loop wastes little
    work on short sites.
    """
    n_sites = offsets.size - 1
    acc = np.zeros((n_sites, N_GENOTYPES), dtype=np.float64)
    lengths = np.diff(offsets)
    classes = size_class_of(lengths, bounds)
    uppers = list(bounds) + [int(lengths.max(initial=1))]
    for ci in range(len(bounds) + 1):
        rows = np.nonzero((classes == ci) & (lengths > 0))[0]
        if rows.size == 0:
            continue
        width = int(uppers[ci])
        starts = offsets[:-1][rows]
        lens = lengths[rows]
        for j in range(width):
            mask = j < lens
            idx = starts + j
            # Masked lanes add exactly 0.0, which leaves the accumulator
            # bit-identical to not adding at all.
            vals = np.where(
                mask[:, None], contrib[np.minimum(idx, contrib.shape[0] - 1)], 0.0
            )
            acc[rows] += vals
    return acc


def window_type_likely(
    obs: Observations,
    pm_flat: np.ndarray,
    penalty: np.ndarray,
) -> np.ndarray:
    """Genotype log-likelihoods for every site of a window (dense baseline).

    Functionally this is Algorithm 1 applied per site; the dense matrix is
    never materialized because zero cells contribute nothing — the *cost*
    of scanning them is what the pipeline's event accounting charges.
    """
    sel, offsets = obs.counted_offsets()
    if sel.size == 0:
        return np.zeros((obs.n_sites, N_GENOTYPES), dtype=np.float64)
    base = obs.base[sel]
    score = obs.score[sel]
    coord = obs.coord[sel]
    strand = obs.strand[sel]
    site = obs.site[sel]
    ordinal = occurrence_ordinals(site, base, coord, strand)
    q_adj = adjust_scores(score, ordinal, penalty)
    contrib = direct_contributions(pm_flat, q_adj, coord, base)
    return sequential_site_sums(contrib, offsets)
